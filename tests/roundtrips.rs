//! Round-trip properties: serializers and pretty-printers must re-parse to
//! the same artifact, on randomly generated inputs.

use proptest::prelude::*;

use shapex_rdf::graph::Dataset;
use shapex_rdf::term::{Literal, Term};
use shapex_rdf::{ntriples, turtle, writer};
use shapex_shex::ast::{ArcConstraint, ShapeExpr, ShapeLabel};
use shapex_shex::constraint::{Facet, NodeConstraint, NodeKind, ValueSetValue};
use shapex_shex::display::schema_to_shexc;
use shapex_shex::schema::Schema;
use shapex_shex::shexc;

// ---- random RDF terms ----

fn arb_iri() -> impl Strategy<Value = Term> {
    "[a-z][a-z0-9]{0,8}".prop_map(|local| Term::iri(format!("http://example.org/{local}")))
}

fn arb_literal() -> impl Strategy<Value = Term> {
    prop_oneof![
        // Printable text including escapes-worthy characters.
        "[ -~]{0,12}".prop_map(|s| Term::Literal(Literal::string(s))),
        any::<i64>().prop_map(|i| Term::Literal(Literal::integer(i))),
        "[a-z]{1,6}".prop_map(|s| Term::Literal(Literal::lang_string(s, "en-GB"))),
        any::<bool>().prop_map(|b| Term::Literal(Literal::boolean(b))),
    ]
}

fn arb_subject() -> impl Strategy<Value = Term> {
    prop_oneof![arb_iri(), "[a-z][a-z0-9]{0,5}".prop_map(Term::blank),]
}

fn arb_object() -> impl Strategy<Value = Term> {
    prop_oneof![
        arb_iri(),
        arb_literal(),
        "[a-z][a-z0-9]{0,5}".prop_map(Term::blank)
    ]
}

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    proptest::collection::vec((arb_subject(), arb_iri(), arb_object()), 0..20).prop_map(|triples| {
        let mut ds = Dataset::new();
        for (s, p, o) in triples {
            ds.insert(s, p, o);
        }
        ds
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// N-Triples: serialize → parse → serialize is a fixpoint.
    #[test]
    fn ntriples_roundtrip(ds in arb_dataset()) {
        let nt = writer::to_ntriples(&ds.graph, &ds.pool);
        let re = ntriples::parse(&nt).expect("serialized N-Triples re-parses");
        prop_assert_eq!(re.graph.len(), ds.graph.len());
        prop_assert_eq!(writer::to_ntriples(&re.graph, &re.pool), nt);
    }

    /// Turtle writer output re-parses to the same graph (compared via
    /// canonical N-Triples).
    #[test]
    fn turtle_roundtrip(ds in arb_dataset()) {
        let ttl = writer::to_turtle(
            &ds.graph,
            &ds.pool,
            &[("ex", "http://example.org/")],
        );
        let re = turtle::parse(&ttl).expect("serialized Turtle re-parses");
        prop_assert_eq!(
            writer::to_ntriples(&re.graph, &re.pool),
            writer::to_ntriples(&ds.graph, &ds.pool),
            "turtle was:\n{}", ttl
        );
    }
}

// ---- random schemas ----

fn arb_constraint() -> impl Strategy<Value = NodeConstraint> {
    // ShExC surface syntax is "atom + facets": AllOf combinations beyond
    // that (e.g. two node kinds) have no compact-syntax rendering, so the
    // generator sticks to parser-producible shapes.
    let atom = prop_oneof![
        prop_oneof![
            Just(NodeKind::Iri),
            Just(NodeKind::BNode),
            Just(NodeKind::Literal),
            Just(NodeKind::NonLiteral)
        ]
        .prop_map(NodeConstraint::Kind),
        Just(NodeConstraint::Datatype(
            shapex_rdf::vocab::xsd::INTEGER.into()
        )),
        proptest::collection::vec(
            prop_oneof![
                (1i64..100).prop_map(|i| ValueSetValue::Term(Term::Literal(Literal::integer(i)))),
                "[a-z]{1,5}".prop_map(|s| ValueSetValue::Term(Term::Literal(Literal::string(s)))),
                "[a-z]{1,5}".prop_map(|s| ValueSetValue::IriStem(format!("http://e/{s}").into())),
                Just(ValueSetValue::Language("en".into())),
                Just(ValueSetValue::LanguageStem("de".into())),
            ],
            1..4
        )
        .prop_map(NodeConstraint::ValueSet),
    ];
    let facet = prop_oneof![
        (0usize..20).prop_map(Facet::MinLength),
        (1usize..20).prop_map(Facet::MaxLength),
        (0usize..9).prop_map(Facet::Length),
    ];
    prop_oneof![
        Just(NodeConstraint::Any),
        atom.clone(),
        facet.clone().prop_map(NodeConstraint::Facet),
        atom.clone().prop_map(|c| NodeConstraint::Not(Box::new(c))),
        (atom, proptest::collection::vec(facet, 1..3)).prop_map(|(a, fs)| {
            let mut all = vec![a];
            all.extend(fs.into_iter().map(NodeConstraint::Facet));
            NodeConstraint::AllOf(all)
        }),
    ]
}

fn arb_shape_expr() -> impl Strategy<Value = ShapeExpr> {
    let arc =
        ("[a-z][a-z0-9]{0,6}", arb_constraint(), proptest::bool::ANY).prop_map(|(p, c, inv)| {
            let mut a = ArcConstraint::value(format!("http://e/{p}"), c);
            a.inverse = inv;
            ShapeExpr::Arc(a)
        });
    arc.prop_recursive(3, 20, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(ShapeExpr::star),
            inner.clone().prop_map(ShapeExpr::plus),
            inner.clone().prop_map(ShapeExpr::opt),
            (inner.clone(), 0u32..4, 0u32..4).prop_map(|(e, m, x)| ShapeExpr::repeat(
                e,
                m,
                Some(m + x)
            )),
            (inner.clone(), 1u32..4).prop_map(|(e, m)| ShapeExpr::repeat(e, m, None)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ShapeExpr::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ShapeExpr::or(a, b)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// ShExC: print → parse returns an identical schema.
    #[test]
    fn shexc_print_parse_roundtrip(exprs in proptest::collection::vec(arb_shape_expr(), 1..4)) {
        let mut schema = Schema::new();
        for (i, e) in exprs.into_iter().enumerate() {
            schema
                .add_shape(ShapeLabel::new(format!("S{i}")), e)
                .expect("unique labels");
        }
        let printed = schema_to_shexc(&schema);
        let reparsed = shexc::parse(&printed)
            .unwrap_or_else(|e| panic!("printed schema must re-parse: {e}\n{printed}"));
        for (label, expr) in schema.iter() {
            prop_assert_eq!(
                Some(expr),
                reparsed.get(label),
                "shape {} changed; printed form:\n{}",
                label,
                printed
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// ShExJ: `to_json` is a canonical form — re-reading and re-writing is
    /// a fixpoint, and the decoded schema validates identically (same
    /// ShExC rendering of each shape body).
    #[test]
    fn shexj_fixpoint(exprs in proptest::collection::vec(arb_shape_expr(), 1..4)) {
        let mut schema = Schema::new();
        for (i, e) in exprs.into_iter().enumerate() {
            schema
                .add_shape(ShapeLabel::new(format!("S{i}")), e)
                .expect("unique labels");
        }
        let j1 = shapex_shex::shexj::to_json(&schema);
        let decoded = shapex_shex::shexj::from_json(&j1)
            .unwrap_or_else(|e| panic!("generated ShExJ must re-parse: {e}\n{j1}"));
        let j2 = shapex_shex::shexj::to_json(&decoded);
        prop_assert_eq!(&j1, &j2, "not a fixpoint");
    }
}

/// Pattern-facet strings with metacharacters survive the print/parse trip.
#[test]
fn pattern_escaping_roundtrip() {
    for pattern in [r"a\d+", r#"quote\"inside"#, r"back\\slash", "[a-z]{2,3}"] {
        let mut schema = Schema::new();
        schema
            .add_shape(
                ShapeLabel::new("S"),
                ShapeExpr::Arc(ArcConstraint::value(
                    "http://e/p",
                    NodeConstraint::Facet(Facet::Pattern(pattern.into())),
                )),
            )
            .unwrap();
        let printed = schema_to_shexc(&schema);
        let reparsed = shexc::parse(&printed).expect("re-parses");
        assert_eq!(
            schema.get(&"S".into()),
            reparsed.get(&"S".into()),
            "pattern {pattern:?}; printed:\n{printed}"
        );
    }
}

//! Data-driven fixture suite: every directory under `fixtures/` holds a
//! ShExC schema, a Turtle data graph, and a shape map whose `@` / `@!`
//! associations state the expected verdicts. Each fixture runs through
//! **both** engines (derivative and backtracking), and through the
//! derivative engine with the SORBE fast path disabled — all three must
//! meet every expectation.
//!
//! This mirrors how the W3C ShEx test suite drives conformance testing,
//! scaled to this implementation's dialect.

use std::fs;
use std::path::{Path, PathBuf};

use shapex::{Engine, EngineConfig};
use shapex_backtrack::BacktrackValidator;
use shapex_rdf::turtle;
use shapex_shex::shapemap::{self, ShapeMap};
use shapex_shex::shexc;

fn fixtures_root() -> PathBuf {
    // tests run from the integration-tests crate dir; fixtures live at the
    // workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fixtures")
}

struct Fixture {
    name: String,
    schema: shapex_shex::Schema,
    map: ShapeMap,
    data: String,
}

fn load_fixtures() -> Vec<Fixture> {
    let root = fixtures_root();
    let mut out = Vec::new();
    let mut dirs: Vec<_> = fs::read_dir(&root)
        .expect("fixtures directory exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| {
            // Underscore-prefixed dirs opt out; dirs without a schema.shex
            // belong to other suites (fixtures/shacl is driven by
            // shacl_conformance.rs).
            p.is_dir()
                && !p
                    .file_name()
                    .is_some_and(|n| n.to_string_lossy().starts_with('_'))
                && p.join("schema.shex").is_file()
        })
        .collect();
    dirs.sort();
    assert!(!dirs.is_empty(), "no fixtures found in {root:?}");
    for dir in dirs {
        let name = dir.file_name().unwrap().to_string_lossy().into_owned();
        let schema_src = fs::read_to_string(dir.join("schema.shex"))
            .unwrap_or_else(|e| panic!("{name}/schema.shex: {e}"));
        let schema =
            shexc::parse(&schema_src).unwrap_or_else(|e| panic!("{name}/schema.shex: {e}"));
        schema
            .check_references()
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let data = fs::read_to_string(dir.join("data.ttl"))
            .unwrap_or_else(|e| panic!("{name}/data.ttl: {e}"));
        let map_src =
            fs::read_to_string(dir.join("map.sm")).unwrap_or_else(|e| panic!("{name}/map.sm: {e}"));
        let map = shapemap::parse(&map_src).unwrap_or_else(|e| panic!("{name}/map.sm: {e}"));
        assert!(!map.is_empty(), "{name}: empty shape map");
        out.push(Fixture {
            name,
            schema,
            map,
            data,
        });
    }
    out
}

#[test]
fn fixtures_pass_on_derivative_engine() {
    for f in load_fixtures() {
        for no_sorbe in [false, true] {
            let mut ds =
                turtle::parse(&f.data).unwrap_or_else(|e| panic!("{}/data.ttl: {e}", f.name));
            let mut engine = Engine::compile(
                &f.schema,
                &mut ds.pool,
                EngineConfig {
                    no_sorbe,
                    ..EngineConfig::default()
                },
            )
            .unwrap_or_else(|e| panic!("{}: {e}", f.name));
            let outcomes = engine
                .validate_map(&ds.graph, &mut ds.pool, &f.map)
                .unwrap_or_else(|e| panic!("{}: {e}", f.name));
            for outcome in outcomes {
                let assoc = &f.map.associations[outcome.index];
                assert!(
                    outcome.as_expected,
                    "{} (no_sorbe={no_sorbe}): {} @{} expected conforms={} got {}{}",
                    f.name,
                    assoc.node,
                    assoc.shape,
                    assoc.expected,
                    outcome.conforms,
                    outcome
                        .failure
                        .map(|x| format!("; failure: {}", x.render(&ds.pool)))
                        .unwrap_or_default()
                );
            }
        }
    }
}

#[test]
fn fixtures_pass_on_backtracking_engine() {
    for f in load_fixtures() {
        let mut ds = turtle::parse(&f.data).unwrap_or_else(|e| panic!("{}/data.ttl: {e}", f.name));
        let validator =
            BacktrackValidator::new(&f.schema).unwrap_or_else(|e| panic!("{}: {e}", f.name));
        for assoc in f.map.iter() {
            let node = ds.pool.intern(assoc.node.clone());
            let got = validator
                .check(&ds.graph, &ds.pool, node, &assoc.shape)
                .unwrap_or_else(|e| panic!("{}: {e}", f.name));
            assert_eq!(
                got, assoc.expected,
                "{} (backtracking): {} @{}",
                f.name, assoc.node, assoc.shape
            );
        }
    }
}

/// Fixture schemas survive the print → parse round trip and still meet
/// every expectation afterwards.
#[test]
fn fixtures_pass_after_schema_roundtrip() {
    for f in load_fixtures() {
        let printed = shapex_shex::display::schema_to_shexc(&f.schema);
        let reparsed = shexc::parse(&printed)
            .unwrap_or_else(|e| panic!("{}: reprinted schema: {e}\n{printed}", f.name));
        let mut ds = turtle::parse(&f.data).unwrap();
        let mut engine = Engine::new(&reparsed, &mut ds.pool).unwrap();
        let outcomes = engine
            .validate_map(&ds.graph, &mut ds.pool, &f.map)
            .unwrap();
        for outcome in outcomes {
            let assoc = &f.map.associations[outcome.index];
            assert!(
                outcome.as_expected,
                "{} (roundtripped): {} @{}",
                f.name, assoc.node, assoc.shape
            );
        }
    }
}

/// Lenient Turtle recovery on the bracket-corruption fixture: the error
/// strikes inside a `[...]` property list, so exactly one statement is
/// skipped (not resynced mid-list into phantom statements) and the
/// statement after it still parses.
#[test]
fn lenient_recovery_is_bracket_aware() {
    let path = fixtures_root().join("_negative/bracket_recovery.ttl");
    let src = fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path:?}: {e}"));
    let (ds, errors) = turtle::parse_lenient(&src);
    assert_eq!(errors.len(), 1, "one corrupt statement: {errors:?}");
    assert!(
        ds.iri("http://example.org/x").is_none(),
        "tail of the corrupt property list replayed as a phantom statement"
    );
    assert!(ds.iri("http://example.org/good").is_some());
    assert!(ds.iri("http://example.org/b").is_some());
    assert_eq!(
        ds.graph.len(),
        2,
        "statements around the corruption survive"
    );
}

/// Negative-syntax fixtures: every `.shex` under `fixtures/_negative/`
/// must fail to parse or fail reference checking — and never panic.
#[test]
fn negative_schemas_are_rejected() {
    let dir = fixtures_root().join("_negative");
    let mut any = false;
    for entry in fs::read_dir(&dir).expect("negative fixtures exist") {
        let path = entry.expect("readable").path();
        if path.extension().is_none_or(|e| e != "shex") {
            continue;
        }
        any = true;
        let src = fs::read_to_string(&path).unwrap();
        let rejected = match shexc::parse(&src) {
            Err(_) => true,
            Ok(schema) => schema.check_references().is_err(),
        };
        assert!(rejected, "{path:?} should have been rejected");
    }
    assert!(any, "no negative fixtures found");
}

//! Every numbered example in the paper, verified end to end.
//!
//! Examples 1–2 (the Person schema and its typing), 3 (decomposition),
//! 5–7 (the `a→1 ‖ b→{1,2}*` family and its shape set), 8 (Fig. 2
//! matching), 9 (a derivative computation), 10 (derivative growth),
//! 11–12 (the matching traces), 13–14 (recursive schemas).

use shapex::{Engine, EngineConfig};
use shapex_backtrack::BacktrackValidator;
use shapex_rdf::graph::Dataset;
use shapex_rdf::turtle;
use shapex_shex::ast::ShapeLabel;
use shapex_shex::shexc;

fn engine_for(schema_src: &str, ds: &mut Dataset) -> Engine {
    let schema = shexc::parse(schema_src).unwrap();
    Engine::new(&schema, &mut ds.pool).unwrap()
}

fn check(engine: &mut Engine, ds: &Dataset, node_iri: &str, shape: &str) -> bool {
    let node = ds.iri(node_iri).expect("node in data");
    engine
        .check(&ds.graph, &ds.pool, node, &ShapeLabel::new(shape))
        .unwrap()
        .matched
}

const PERSON_SCHEMA: &str = r#"
    PREFIX foaf: <http://xmlns.com/foaf/0.1/>
    PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
    <Person> {
      foaf:age xsd:integer
      , foaf:name xsd:string+
      , foaf:knows @<Person>*
    }
"#;

const EXAMPLE_2_DATA: &str = r#"
    @prefix : <http://example.org/> .
    @prefix foaf: <http://xmlns.com/foaf/0.1/> .
    :john foaf:age 23;
          foaf:name "John";
          foaf:knows :bob .
    :bob foaf:age 34;
         foaf:name "Bob", "Robert" .
    :mary foaf:age 50, 65 .
"#;

/// Examples 1 & 2: ":john and :bob ... have shape Person while :mary does
/// not".
#[test]
fn examples_1_and_2_person_typing() {
    let mut ds = turtle::parse(EXAMPLE_2_DATA).unwrap();
    let mut engine = engine_for(PERSON_SCHEMA, &mut ds);
    assert!(check(&mut engine, &ds, "http://example.org/john", "Person"));
    assert!(check(&mut engine, &ds, "http://example.org/bob", "Person"));
    assert!(!check(
        &mut engine,
        &ds,
        "http://example.org/mary",
        "Person"
    ));
}

/// Example 3: the decomposition of a 3-triple graph has 2³ = 8 pairs. The
/// backtracking And-rule enumerates exactly those.
#[test]
fn example_3_decomposition_count() {
    let schema = shexc::parse("PREFIX e: <http://e/>\n<S> { e:x .* , e:y .* }").unwrap();
    let ds = turtle::parse("@prefix e: <http://e/> . e:n e:a 1; e:b 1, 2 .").unwrap();
    let v = BacktrackValidator::new(&schema).unwrap();
    let n = ds.iri("http://e/n").unwrap();
    // The match fails (predicates x/y don't occur) but the top-level And
    // still tries all 8 decompositions of {⟨n,a,1⟩, ⟨n,b,1⟩, ⟨n,b,2⟩}.
    assert!(!v.check(&ds.graph, &ds.pool, n, &"S".into()).unwrap());
    assert!(v.stats().decompositions >= 8);
}

const EX5_SCHEMA: &str = "PREFIX e: <http://e/>\n<S> { e:a [1], e:b [1 2]* }";

/// Example 5/6: "one arc with predicate a and value 1, and zero or more
/// arcs with predicate b and values 1 or 2" (the paper's Example 5 says
/// "one or more" for `∗` in prose but its semantics in Example 7 include
/// the bare {⟨n,a,1⟩} — star is zero-or-more).
#[test]
fn example_5_shape_family() {
    let mut ds = turtle::parse(
        r#"
        @prefix e: <http://e/> .
        e:just_a e:a 1 .
        e:ab1  e:a 1; e:b 1 .
        e:ab2  e:a 1; e:b 2 .
        e:ab12 e:a 1; e:b 1, 2 .
        e:wrong_a e:a 2 .
        e:b_only e:b 1 .
        e:bad_b e:a 1; e:b 3 .
        "#,
    )
    .unwrap();
    let mut engine = engine_for(EX5_SCHEMA, &mut ds);
    // Example 7: S_n[[e]] = { {a1}, {a1,b1}, {a1,b2}, {a1,b1,b2} }
    for good in ["just_a", "ab1", "ab2", "ab12"] {
        assert!(
            check(&mut engine, &ds, &format!("http://e/{good}"), "S"),
            "{good} should conform"
        );
    }
    for bad in ["wrong_a", "b_only", "bad_b"] {
        assert!(
            !check(&mut engine, &ds, &format!("http://e/{bad}"), "S"),
            "{bad} should not conform"
        );
    }
}

/// Example 8 / Fig. 2: `a→1 ‖ b→{1,2}* ≃ {⟨n,a,1⟩, ⟨n,b,1⟩, ⟨n,b,2⟩}`,
/// on both engines.
#[test]
fn example_8_matching_both_engines() {
    let data = "@prefix e: <http://e/> . e:n e:a 1; e:b 1, 2 .";
    let mut ds = turtle::parse(data).unwrap();
    let mut engine = engine_for(EX5_SCHEMA, &mut ds);
    assert!(check(&mut engine, &ds, "http://e/n", "S"));

    let schema = shexc::parse(EX5_SCHEMA).unwrap();
    let v = BacktrackValidator::new(&schema).unwrap();
    let n = ds.iri("http://e/n").unwrap();
    assert!(v.check(&ds.graph, &ds.pool, n, &"S".into()).unwrap());
}

/// Example 9: ∂⟨n,a,1⟩(a→1 ‖ b→{1,2}*) = b→{1,2}*. We observe this
/// indirectly: after consuming the a-triple, the residual must accept
/// exactly the b-graphs.
#[test]
fn example_9_derivative_by_a() {
    let mut ds = turtle::parse(
        r#"
        @prefix e: <http://e/> .
        e:n1 e:a 1 .
        e:n2 e:a 1; e:b 1 .
        e:n3 e:a 1; e:b 1, 2 .
        e:n4 e:a 1; e:a 1 .
        "#,
    )
    .unwrap();
    let mut engine = engine_for(EX5_SCHEMA, &mut ds);
    assert!(check(&mut engine, &ds, "http://e/n1", "S"));
    assert!(check(&mut engine, &ds, "http://e/n2", "S"));
    assert!(check(&mut engine, &ds, "http://e/n3", "S"));
    // duplicate triples collapse in a set, so n4 == n1
    assert!(check(&mut engine, &ds, "http://e/n4", "S"));
}

/// Example 10: the derivative of `(a→{1,2} ‖ b→{1,2})*` grows ("Notice
/// that it grows because once it finds an arc with predicate a, it needs
/// to find another arc with predicate b and continue with the rest of the
/// graph") — but hash-consing keeps the growth polynomial, not
/// exponential, in the neighbourhood size.
#[test]
fn example_10_derivative_growth_is_tamed() {
    let pool_size = |pairs: usize| {
        let w = shapex_workloads::balanced_ab(pairs);
        let schema = shexc::parse(&w.schema).unwrap();
        let mut ds = w.dataset;
        let mut engine = Engine::new(&schema, &mut ds.pool).unwrap();
        let node = ds.iri(&w.focus[0]).unwrap();
        assert!(
            engine
                .check(
                    &ds.graph,
                    &ds.pool,
                    node,
                    &ShapeLabel::new(w.shape.as_str())
                )
                .unwrap()
                .matched
        );
        engine.stats().expr_pool_size
    };
    let small = pool_size(8);
    let medium = pool_size(16);
    let large = pool_size(32);
    // The expression state does grow while matching (Example 10's point)…
    assert!(medium > small, "no growth: {small} vs {medium}");
    // …but polynomially: doubling the input multiplies the arena by a
    // bounded factor, nowhere near the 2^n of naive set representations.
    let ratio = large as f64 / medium as f64;
    assert!(
        ratio < 8.0,
        "superpolynomial growth: {small} → {medium} → {large}"
    );
    let _ = EngineConfig::default(); // (ablation variants measured in E9 benches)
}

/// Example 11: the full linear matching trace accepts.
#[test]
fn example_11_accepting_trace() {
    let mut ds = turtle::parse("@prefix e: <http://e/> . e:n e:a 1; e:b 1, 2 .").unwrap();
    let mut engine = engine_for(EX5_SCHEMA, &mut ds);
    assert!(check(&mut engine, &ds, "http://e/n", "S"));
    // The derivative algorithm consumes one triple per step: 3 triples,
    // no decomposition — ∂-steps stays linear in neighbourhood size.
    let stats = engine.stats();
    assert!(stats.derivative_steps < 64, "{stats}");
}

/// Example 12: `{⟨n,a,1⟩, ⟨n,a,2⟩, ⟨n,b,1⟩}` fails — the second a-triple
/// derives ∅.
#[test]
fn example_12_rejecting_trace() {
    let mut ds = turtle::parse("@prefix e: <http://e/> . e:n e:a 1, 2; e:b 1 .").unwrap();
    let mut engine = engine_for(EX5_SCHEMA, &mut ds);
    let node = ds.iri("http://e/n").unwrap();
    let r = engine
        .check(&ds.graph, &ds.pool, node, &ShapeLabel::new("S"))
        .unwrap();
    assert!(!r.matched);
    let failure = r.failure.expect("explained");
    assert!(matches!(
        failure.kind,
        shapex::FailureKind::UnexpectedTriple { .. }
    ));
}

/// Example 13: `p ↦ a→1 ‖ b→{1,2}+ ‖ c→@p*` — a recursive schema.
#[test]
fn example_13_recursive_schema() {
    let schema_src = r#"
        PREFIX e: <http://e/>
        <p> { e:a [1], e:b [1 2]+, e:c @<p>* }
    "#;
    let mut ds = turtle::parse(
        r#"
        @prefix e: <http://e/> .
        e:root e:a 1; e:b 1; e:c e:child .
        e:child e:a 1; e:b 2 .
        e:badroot e:a 1; e:b 1; e:c e:badchild .
        e:badchild e:a 1 .
        e:loop e:a 1; e:b 1, 2; e:c e:loop .
        "#,
    )
    .unwrap();
    let mut engine = engine_for(schema_src, &mut ds);
    assert!(check(&mut engine, &ds, "http://e/root", "p"));
    assert!(check(&mut engine, &ds, "http://e/child", "p"));
    assert!(!check(&mut engine, &ds, "http://e/badchild", "p"));
    assert!(!check(&mut engine, &ds, "http://e/badroot", "p"));
    // Self-referential node: the coinductive assumption Γ{n→l} closes it.
    assert!(check(&mut engine, &ds, "http://e/loop", "p"));
}

/// Example 14: the Person schema as a shape expression schema; a knows-
/// cycle validates coinductively on both engines.
#[test]
fn example_14_knows_cycle_both_engines() {
    let data = r#"
        @prefix : <http://example.org/> .
        @prefix foaf: <http://xmlns.com/foaf/0.1/> .
        :a foaf:age 1; foaf:name "A"; foaf:knows :b .
        :b foaf:age 2; foaf:name "B"; foaf:knows :a .
    "#;
    let mut ds = turtle::parse(data).unwrap();
    let mut engine = engine_for(PERSON_SCHEMA, &mut ds);
    assert!(check(&mut engine, &ds, "http://example.org/a", "Person"));
    assert!(check(&mut engine, &ds, "http://example.org/b", "Person"));

    let schema = shexc::parse(PERSON_SCHEMA).unwrap();
    let v = BacktrackValidator::new(&schema).unwrap();
    for node in ["a", "b"] {
        let n = ds.iri(&format!("http://example.org/{node}")).unwrap();
        assert!(v.check(&ds.graph, &ds.pool, n, &"Person".into()).unwrap());
    }
}

/// Section 3's point, mechanised: the recursive Person schema cannot be
/// translated to SPARQL, while its non-recursive restriction can.
#[test]
fn section_3_sparql_limits() {
    let recursive = shexc::parse(PERSON_SCHEMA).unwrap();
    assert!(shapex_sparql::generate_node_ask(
        &recursive,
        &"Person".into(),
        "http://example.org/john"
    )
    .is_err());

    let flat = shexc::parse(
        r#"
        PREFIX foaf: <http://xmlns.com/foaf/0.1/>
        PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
        <Person> { foaf:age xsd:integer, foaf:name xsd:string+ }
        "#,
    )
    .unwrap();
    // :bob fits the flat schema; :john carries a foaf:knows triple, which
    // the closed shape rejects — on both the SPARQL mapping and the
    // derivative engine.
    let ds = turtle::parse(EXAMPLE_2_DATA).unwrap();
    for (node, expected) in [("bob", true), ("john", false), ("mary", false)] {
        let iri = format!("http://example.org/{node}");
        let q = shapex_sparql::generate_node_ask(&flat, &"Person".into(), &iri).unwrap();
        let parsed = shapex_sparql::parser::parse(&q).unwrap();
        assert_eq!(
            shapex_sparql::ask(&parsed, &ds.graph, &ds.pool).unwrap(),
            expected,
            "sparql on {node}"
        );
    }
}

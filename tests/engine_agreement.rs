//! Differential testing: the derivative engine must agree with the
//! backtracking baseline (the paper's reference semantics, Fig. 1/Fig. 4)
//! on randomly generated schemas and graphs, and both must agree with the
//! workload generators' analytic ground truth.

use proptest::prelude::*;

use shapex::{Closure, Engine, EngineConfig};
use shapex_backtrack::{BacktrackValidator, BtConfig};
use shapex_rdf::graph::Dataset;
use shapex_rdf::term::{Literal, Term};
use shapex_rdf::vocab::xsd;
use shapex_rdf::xsd::Numeric;
use shapex_shex::ast::{ArcConstraint, ShapeExpr, ShapeLabel};
use shapex_shex::constraint::{Facet, NodeConstraint, ValueSetValue};
use shapex_shex::schema::Schema;
use shapex_workloads::{person_network, Topology};

const PREDS: [&str; 3] = ["http://e/p0", "http://e/p1", "http://e/p2"];
const VALUES: [i64; 3] = [1, 2, 3];

/// A random value-set constraint over VALUES.
fn arb_constraint() -> impl Strategy<Value = NodeConstraint> {
    proptest::collection::btree_set(0usize..VALUES.len(), 1..=VALUES.len()).prop_map(|vals| {
        NodeConstraint::ValueSet(
            vals.into_iter()
                .map(|i| ValueSetValue::Term(Term::Literal(Literal::integer(VALUES[i]))))
                .collect(),
        )
    })
}

fn arb_arc() -> impl Strategy<Value = ShapeExpr> {
    (0usize..PREDS.len(), arb_constraint())
        .prop_map(|(p, c)| ShapeExpr::arc(ArcConstraint::value(PREDS[p], c)))
}

/// Random shape expressions of bounded depth over the tiny vocabulary.
fn arb_expr() -> impl Strategy<Value = ShapeExpr> {
    arb_arc().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(ShapeExpr::star),
            inner.clone().prop_map(ShapeExpr::plus),
            inner.clone().prop_map(ShapeExpr::opt),
            (inner.clone(), 0u32..=2, 0u32..=2).prop_map(|(e, m, extra)| ShapeExpr::repeat(
                e,
                m,
                Some(m + extra)
            )),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ShapeExpr::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ShapeExpr::or(a, b)),
        ]
    })
}

/// A random neighbourhood: up to 6 triples over PREDS × VALUES.
fn arb_graph() -> impl Strategy<Value = Vec<(usize, i64)>> {
    proptest::collection::btree_set((0usize..PREDS.len(), 0usize..VALUES.len()), 0..=6)
        .prop_map(|set| set.into_iter().map(|(p, v)| (p, VALUES[v])).collect())
}

fn build_dataset(triples: &[(usize, i64)]) -> (Dataset, &'static str) {
    let mut ds = Dataset::new();
    let node = "http://e/n";
    for &(p, v) in triples {
        ds.insert(
            Term::iri(node),
            Term::iri(PREDS[p]),
            Term::Literal(Literal::integer(v)),
        );
    }
    // Ensure the node exists even with zero triples.
    ds.pool.intern_iri(node);
    (ds, node)
}

fn run_derivative(expr: &ShapeExpr, ds: &mut Dataset, node: &str, closure: Closure) -> bool {
    let schema = Schema::from_rules([(ShapeLabel::new("S"), expr.clone())]).expect("one rule");
    let mut engine = Engine::compile(
        &schema,
        &mut ds.pool,
        EngineConfig {
            closure,
            ..EngineConfig::default()
        },
    )
    .expect("compiles");
    let n = ds.iri(node).expect("node interned");
    engine
        .check(&ds.graph, &ds.pool, n, &"S".into())
        .expect("shape exists")
        .matched
}

fn run_backtracking(expr: &ShapeExpr, ds: &Dataset, node: &str) -> Option<bool> {
    let schema = Schema::from_rules([(ShapeLabel::new("S"), expr.clone())]).expect("one rule");
    let v = BacktrackValidator::with_config(
        &schema,
        BtConfig {
            budget: shapex::Budget::steps(5_000_000),
        },
    )
    .expect("compiles");
    let n = ds.iri(node).expect("node interned");
    v.check(&ds.graph, &ds.pool, n, &"S".into()).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The derivative engine and the Fig. 1 backtracking rules decide the
    /// same language.
    #[test]
    fn derivative_agrees_with_backtracking(expr in arb_expr(), triples in arb_graph()) {
        let (mut ds, node) = build_dataset(&triples);
        let derivative = run_derivative(&expr, &mut ds, node, Closure::Closed);
        if let Some(backtracking) = run_backtracking(&expr, &ds, node) {
            prop_assert_eq!(
                derivative, backtracking,
                "disagree on {:?} over {:?}", expr, triples
            );
        }
    }

    /// `e{m,n}` (native counter derivative) is equivalent to its §4
    /// expansion into the core algebra.
    #[test]
    fn repeat_equals_expansion(
        inner in arb_arc(),
        m in 0u32..3,
        extra in 0u32..3,
        unbounded in proptest::bool::ANY,
        triples in arb_graph()
    ) {
        let max = if unbounded { None } else { Some(m + extra) };
        let repeat = ShapeExpr::repeat(inner, m, max);
        let expanded = repeat.desugared();
        let (mut ds, node) = build_dataset(&triples);
        let native = run_derivative(&repeat, &mut ds, node, Closure::Closed);
        let via_expansion = run_derivative(&expanded, &mut ds, node, Closure::Closed);
        prop_assert_eq!(native, via_expansion, "on {:?}", triples);
    }

    /// The SORBE counting fast path and the general derivative algorithm
    /// decide the same language on every expression that qualifies for
    /// the fast path (and on the rest, `no_sorbe` is a no-op) — in both
    /// closure modes.
    #[test]
    fn sorbe_agrees_with_general(expr in arb_expr(), triples in arb_graph()) {
        let (mut ds, node) = build_dataset(&triples);
        let schema =
            Schema::from_rules([(ShapeLabel::new("S"), expr.clone())]).expect("one rule");
        for closure in [Closure::Closed, Closure::Open] {
            let mut with_sorbe = Engine::compile(
                &schema,
                &mut ds.pool,
                EngineConfig { closure, ..EngineConfig::default() },
            )
            .expect("compiles");
            let mut general = Engine::compile(
                &schema,
                &mut ds.pool,
                EngineConfig { closure, no_sorbe: true, ..EngineConfig::default() },
            )
            .expect("compiles");
            let n = ds.iri(node).expect("node interned");
            let a = with_sorbe.check(&ds.graph, &ds.pool, n, &"S".into()).unwrap().matched;
            let b = general.check(&ds.graph, &ds.pool, n, &"S".into()).unwrap().matched;
            prop_assert_eq!(
                a, b,
                "sorbe path diverges ({:?}) on {:?} over {:?}", closure, expr, triples
            );
        }
    }

    /// Closed conformance implies open conformance (open only ignores
    /// extra triples).
    #[test]
    fn closed_implies_open(expr in arb_expr(), triples in arb_graph()) {
        let (mut ds, node) = build_dataset(&triples);
        let closed = run_derivative(&expr, &mut ds, node, Closure::Closed);
        let open = run_derivative(&expr, &mut ds, node, Closure::Open);
        prop_assert!(!closed || open, "closed ⊄ open on {:?} / {:?}", expr, triples);
    }

    /// Every non-conforming verdict carries a failure explanation that
    /// renders without panicking.
    #[test]
    fn failures_always_explained(expr in arb_expr(), triples in arb_graph()) {
        let (mut ds, node) = build_dataset(&triples);
        let schema =
            Schema::from_rules([(ShapeLabel::new("S"), expr.clone())]).expect("one rule");
        let mut engine = Engine::new(&schema, &mut ds.pool).expect("compiles");
        let n = ds.iri(node).expect("interned");
        let result = engine.check(&ds.graph, &ds.pool, n, &"S".into()).unwrap();
        if !result.matched {
            let failure = result.failure.expect("failing checks are explained");
            let rendered = failure.render(&ds.pool);
            prop_assert!(!rendered.is_empty());
        }
    }

    /// The §7 trace reaches the same verdict as the checker (general
    /// path), on arbitrary expressions and graphs.
    #[test]
    fn trace_verdict_matches_check(expr in arb_expr(), triples in arb_graph()) {
        let (mut ds, node) = build_dataset(&triples);
        let schema =
            Schema::from_rules([(ShapeLabel::new("S"), expr.clone())]).expect("one rule");
        let mut engine = Engine::compile(
            &schema,
            &mut ds.pool,
            EngineConfig { no_sorbe: true, ..EngineConfig::default() },
        )
        .expect("compiles");
        let n = ds.iri(node).expect("interned");
        let checked = engine
            .check(&ds.graph, &ds.pool, n, &"S".into())
            .unwrap()
            .matched;
        let traced = engine
            .trace(&ds.graph, &ds.pool, n, &"S".into())
            .unwrap()
            .matched;
        prop_assert_eq!(checked, traced, "on {:?} over {:?}", expr, triples);
    }

    /// Matching is insensitive to triple consumption order: validating the
    /// same neighbourhood built in reversed insertion order agrees.
    #[test]
    fn order_insensitive(expr in arb_expr(), triples in arb_graph()) {
        let (mut ds, node) = build_dataset(&triples);
        let forward = run_derivative(&expr, &mut ds, node, Closure::Closed);
        let reversed: Vec<_> = triples.iter().rev().copied().collect();
        let (mut ds2, node2) = build_dataset(&reversed);
        let backward = run_derivative(&expr, &mut ds2, node2, Closure::Closed);
        prop_assert_eq!(forward, backward);
    }
}

// ---------------------------------------------------------------------------
// §10 extensions, differentially: inverse arcs × numeric facets.
// ---------------------------------------------------------------------------

/// Peers that point *into* the focus node (subjects of inverse triples).
const PEERS: [&str; 2] = ["http://e/m0", "http://e/m1"];

/// Facet bounds straddling 2^53, where `xsd:decimal` vs `xsd:double`
/// comparison must be exact (an f64 round-trip collapses the neighbours
/// of 9007199254740992 onto it).
const BOUNDS: [(&str, &str); 6] = [
    (xsd::INTEGER, "2"),
    (xsd::INTEGER, "9007199254740991"),
    (xsd::INTEGER, "9007199254740992"),
    (xsd::INTEGER, "9007199254740993"),
    (xsd::DECIMAL, "9007199254740992.5"),
    (xsd::DOUBLE, "9.007199254740992E15"),
];

/// Numeric literal objects for the outgoing triples — same critical region
/// as BOUNDS plus small values, across all three numeric datatypes.
const NUM_OBJECTS: [(&str, &str); 6] = [
    (xsd::INTEGER, "1"),
    (xsd::INTEGER, "3"),
    (xsd::INTEGER, "9007199254740991"),
    (xsd::INTEGER, "9007199254740993"),
    (xsd::DECIMAL, "9007199254740992.0000001"),
    (xsd::DOUBLE, "9.007199254740992E15"),
];

fn arb_numeric_facet() -> impl Strategy<Value = NodeConstraint> {
    (0usize..BOUNDS.len(), 0usize..4).prop_map(|(b, op)| {
        let (dt, lex) = BOUNDS[b];
        let bound = Numeric::parse(dt, lex).expect("BOUNDS entries are valid lexical forms");
        NodeConstraint::Facet(match op {
            0 => Facet::MinInclusive(bound),
            1 => Facet::MinExclusive(bound),
            2 => Facet::MaxInclusive(bound),
            _ => Facet::MaxExclusive(bound),
        })
    })
}

/// A value set over PEERS — the object constraint of an inverse arc
/// (incoming subjects are IRIs, so numeric facets cannot apply there).
fn arb_peer_constraint() -> impl Strategy<Value = NodeConstraint> {
    proptest::collection::btree_set(0usize..PEERS.len(), 1..=PEERS.len()).prop_map(|s| {
        NodeConstraint::ValueSet(
            s.into_iter()
                .map(|i| ValueSetValue::Term(Term::iri(PEERS[i])))
                .collect(),
        )
    })
}

/// Forward arcs carry numeric-facet constraints; inverse arcs (`^p`)
/// constrain the incoming subject.
fn arb_ext_arc() -> impl Strategy<Value = ShapeExpr> {
    prop_oneof![
        (0usize..PREDS.len(), arb_numeric_facet())
            .prop_map(|(p, c)| ShapeExpr::arc(ArcConstraint::value(PREDS[p], c))),
        (0usize..PREDS.len(), arb_peer_constraint())
            .prop_map(|(p, c)| ShapeExpr::arc(ArcConstraint::value(PREDS[p], c).inverted())),
    ]
}

fn arb_ext_expr() -> impl Strategy<Value = ShapeExpr> {
    arb_ext_arc().prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(ShapeExpr::star),
            inner.clone().prop_map(ShapeExpr::plus),
            inner.clone().prop_map(ShapeExpr::opt),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ShapeExpr::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ShapeExpr::or(a, b)),
        ]
    })
}

/// Outgoing numeric triples `(pred, object)` plus incoming peer triples
/// `(peer, pred)` around the focus node.
type ExtGraph = (Vec<(usize, usize)>, Vec<(usize, usize)>);

fn arb_ext_graph() -> impl Strategy<Value = ExtGraph> {
    (
        proptest::collection::btree_set((0usize..PREDS.len(), 0usize..NUM_OBJECTS.len()), 0..=4)
            .prop_map(|s| s.into_iter().collect()),
        proptest::collection::btree_set((0usize..PEERS.len(), 0usize..PREDS.len()), 0..=4)
            .prop_map(|s| s.into_iter().collect()),
    )
}

fn build_ext_dataset(
    outgoing: &[(usize, usize)],
    incoming: &[(usize, usize)],
) -> (Dataset, &'static str) {
    let mut ds = Dataset::new();
    let node = "http://e/n";
    for &(p, v) in outgoing {
        let (dt, lex) = NUM_OBJECTS[v];
        ds.insert(
            Term::iri(node),
            Term::iri(PREDS[p]),
            Term::Literal(Literal::typed(lex, dt)),
        );
    }
    for &(m, p) in incoming {
        ds.insert(Term::iri(PEERS[m]), Term::iri(PREDS[p]), Term::iri(node));
    }
    ds.pool.intern_iri(node);
    (ds, node)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The §10 extensions interact soundly: schemas mixing inverse arcs
    /// with numeric facets whose bounds straddle 2^53 decide the same
    /// language on both engines. Exercises the exact decimal/double
    /// comparison differentially — before that fix, bounds like
    /// `9007199254740992.5` collapsed onto their f64 neighbours.
    #[test]
    fn inverse_and_numeric_facets_agree(
        expr in arb_ext_expr(),
        (outgoing, incoming) in arb_ext_graph()
    ) {
        let (mut ds, node) = build_ext_dataset(&outgoing, &incoming);
        let derivative = run_derivative(&expr, &mut ds, node, Closure::Closed);
        if let Some(backtracking) = run_backtracking(&expr, &ds, node) {
            prop_assert_eq!(
                derivative, backtracking,
                "disagree on {:?} over out={:?} in={:?}", expr, outgoing, incoming
            );
        }
    }

    /// Metrics invariants on arbitrary runs: every cache satisfies
    /// `lookups == hits + misses`, the budget meter never spends past its
    /// limit, and the `Stats`/`Metrics` copies of the shared step counter
    /// agree.
    #[test]
    fn metric_invariants_hold(
        expr in arb_ext_expr(),
        (outgoing, incoming) in arb_ext_graph(),
        limit in 50u64..5_000
    ) {
        let (mut ds, node) = build_ext_dataset(&outgoing, &incoming);
        let schema =
            Schema::from_rules([(ShapeLabel::new("S"), expr)]).expect("one rule");
        let mut engine = Engine::compile(
            &schema,
            &mut ds.pool,
            EngineConfig {
                budget: shapex::Budget::steps(limit),
                metrics: true,
                ..EngineConfig::default()
            },
        )
        .expect("compiles");
        let n = ds.iri(node).expect("interned");
        // Exhaustion is a legal outcome here; the invariants must hold
        // either way.
        let _ = engine.check(&ds.graph, &ds.pool, n, &"S".into());
        let stats = engine.stats();
        prop_assert!(
            stats.budget_steps <= limit,
            "spent {} steps past the {} limit", stats.budget_steps, limit
        );
        let m = engine.metrics().expect("metrics enabled");
        for (name, c) in [
            ("profile_stable", &m.profile_stable),
            ("profile_assumption", &m.profile_assumption),
            ("deriv_memo", &m.deriv_memo),
            ("dfa_table", &m.dfa_table),
        ] {
            prop_assert_eq!(
                c.lookups, c.hits + c.misses,
                "{} cache: lookups != hits + misses", name
            );
        }
        prop_assert_eq!(m.budget_steps, stats.budget_steps);
    }
}

// ---------------------------------------------------------------------------
// Lazy shape DFA, differentially: the dense transition table must be a
// byte-identical drop-in for the HashMap derivative memo.
// ---------------------------------------------------------------------------

/// Runs one check with the given lookup-structure configuration and
/// returns the verdict plus the counters that must not depend on it.
fn run_dfa_mode(
    expr: &ShapeExpr,
    outgoing: &[(usize, usize)],
    incoming: &[(usize, usize)],
    no_dfa: bool,
    budget: shapex::Budget,
) -> (shapex::Outcome, u64, u64, u64) {
    let (mut ds, node) = build_ext_dataset(outgoing, incoming);
    let schema = Schema::from_rules([(ShapeLabel::new("S"), expr.clone())]).expect("one rule");
    let mut engine = Engine::compile(
        &schema,
        &mut ds.pool,
        EngineConfig {
            no_dfa,
            no_sorbe: true, // force the derivative path so the caches matter
            budget,
            ..EngineConfig::default()
        },
    )
    .expect("compiles");
    let n = ds.iri(node).expect("interned");
    let shape = engine.shape_id(&"S".into()).expect("shape exists");
    let outcome = engine.check_id(&ds.graph, &ds.pool, n, shape);
    let stats = engine.stats();
    (
        outcome,
        stats.derivative_steps,
        stats.deriv_memo_hits,
        stats.budget_steps,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// DFA on, DFA off, and the backtracking reference agree on the §10
    /// extension vocabulary (inverse arcs × exact numeric facets) — the
    /// harshest schemas for alphabet-class compression, since arcs with
    /// the same predicate refine into distinct classes by object.
    #[test]
    fn dfa_agrees_with_memo_and_backtracking(
        expr in arb_ext_expr(),
        (outgoing, incoming) in arb_ext_graph()
    ) {
        let unlimited = shapex::Budget::UNLIMITED;
        let (dfa, ..) = run_dfa_mode(&expr, &outgoing, &incoming, false, unlimited);
        let (memo, ..) = run_dfa_mode(&expr, &outgoing, &incoming, true, unlimited);
        prop_assert_eq!(
            &dfa, &memo,
            "dfa vs --no-dfa diverge on {:?} over out={:?} in={:?}",
            expr, outgoing, incoming
        );
        let matched = matches!(dfa, shapex::Outcome::Conforms);
        let (ds, node) = build_ext_dataset(&outgoing, &incoming);
        if let Some(backtracking) = run_backtracking(&expr, &ds, node) {
            prop_assert_eq!(
                matched, backtracking,
                "dfa vs backtracking diverge on {:?} over out={:?} in={:?}",
                expr, outgoing, incoming
            );
        }
    }

    /// Under tight step *and* arena budgets, both lookup structures spend
    /// the budget identically: same outcome (including which resource
    /// exhausts and how much was spent), same derivative-step count, same
    /// cache-hit count. Table fills are charged as arena units exactly
    /// like memo entries, so even arena exhaustion must coincide.
    #[test]
    fn dfa_budgeted_runs_exhaust_identically(
        expr in arb_ext_expr(),
        (outgoing, incoming) in arb_ext_graph(),
        steps in 8u64..400,
        arena in 8usize..400
    ) {
        let budget = shapex::Budget::steps(steps).with_max_arena_nodes(arena);
        let (o1, d1, h1, b1) = run_dfa_mode(&expr, &outgoing, &incoming, false, budget);
        let (o2, d2, h2, b2) = run_dfa_mode(&expr, &outgoing, &incoming, true, budget);
        prop_assert_eq!(
            &o1, &o2,
            "outcomes diverge under budget on {:?} over out={:?} in={:?}",
            expr, outgoing, incoming
        );
        prop_assert_eq!(d1, d2, "derivative steps diverge");
        prop_assert_eq!(h1, h2, "cache hits diverge");
        prop_assert_eq!(b1, b2, "budget charging diverges");
    }
}

const NODES: [&str; 4] = ["http://e/n0", "http://e/n1", "http://e/n2", "http://e/n3"];

/// A two-shape schema where `S` requires `ref`-arcs into `T`, plus a small
/// multi-node graph with cross-links — exercises the Arcref rule (§8) on
/// both engines, including self/mutual references.
fn arb_ref_schema() -> impl Strategy<Value = Schema> {
    // T: a flat value-set shape; S: one value arc + a ref arc to T (or S,
    // making it recursive) under a random cardinality.
    (
        arb_constraint(),
        arb_constraint(),
        0usize..2, // 0 = @T, 1 = @S (recursive)
        prop_oneof![
            Just((0u32, None)),       // *
            Just((1u32, None)),       // +
            Just((0u32, Some(1u32))), // ?
            Just((1u32, Some(1u32))), // exactly one
        ],
    )
        .prop_map(|(c_t, c_s, target, (min, max))| {
            let target_label = if target == 0 { "T" } else { "S" };
            let ref_arc = ShapeExpr::repeat(
                ShapeExpr::arc(ArcConstraint::reference("http://e/link", target_label)),
                min,
                max,
            );
            let s_expr = ShapeExpr::and(
                ShapeExpr::opt(ShapeExpr::arc(ArcConstraint::value(PREDS[0], c_s))),
                ref_arc,
            );
            let t_expr = ShapeExpr::opt(ShapeExpr::arc(ArcConstraint::value(PREDS[1], c_t)));
            Schema::from_rules([
                (ShapeLabel::new("S"), s_expr),
                (ShapeLabel::new("T"), t_expr),
            ])
            .expect("two rules")
        })
}

/// A random 4-node graph: value triples over PREDS plus `link` edges.
fn arb_linked_graph() -> impl Strategy<Value = Vec<(usize, usize, Option<usize>)>> {
    // (node, pred index, Some(value)) or (node, target node, None) = link
    proptest::collection::btree_set(
        prop_oneof![
            (0usize..NODES.len(), 0usize..2, 0usize..VALUES.len()).prop_map(|(n, p, v)| (
                n,
                p,
                Some(v)
            )),
            (0usize..NODES.len(), 0usize..NODES.len()).prop_map(|(n, t)| (n, t, None)),
        ],
        0..8,
    )
    .prop_map(|set| set.into_iter().collect())
}

fn build_linked(triples: &[(usize, usize, Option<usize>)]) -> Dataset {
    let mut ds = Dataset::new();
    for &(n, x, v) in triples {
        match v {
            Some(vi) => ds.insert(
                Term::iri(NODES[n]),
                Term::iri(PREDS[x]),
                Term::Literal(Literal::integer(VALUES[vi])),
            ),
            None => ds.insert(
                Term::iri(NODES[n]),
                Term::iri("http://e/link"),
                Term::iri(NODES[x]),
            ),
        };
    }
    for n in NODES {
        ds.pool.intern_iri(n);
    }
    ds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Referencing (possibly recursive) schemas: derivative engine ≡
    /// backtracking gfp reference on every node × both shapes.
    #[test]
    fn referencing_schemas_agree(
        schema in arb_ref_schema(),
        triples in arb_linked_graph()
    ) {
        let mut ds = build_linked(&triples);
        let mut engine = Engine::new(&schema, &mut ds.pool).expect("compiles");
        let bt = BacktrackValidator::new(&schema).expect("compiles");
        for node_iri in NODES {
            let node = ds.iri(node_iri).expect("interned");
            for label in ["S", "T"] {
                let d = engine
                    .check(&ds.graph, &ds.pool, node, &label.into())
                    .unwrap()
                    .matched;
                let b = bt
                    .check(&ds.graph, &ds.pool, node, &label.into())
                    .unwrap();
                prop_assert_eq!(
                    d, b,
                    "disagree on {} @{} over {:?}", node_iri, label, triples
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The sharded parallel typing is byte-identical to the sequential one
    /// on recursive referencing schemas, at every worker count.
    #[test]
    fn parallel_typing_matches_sequential(
        schema in arb_ref_schema(),
        triples in arb_linked_graph()
    ) {
        let mut ds = build_linked(&triples);
        let mut seq = Engine::new(&schema, &mut ds.pool).expect("compiles");
        let sequential = seq.type_all(&ds.graph, &ds.pool);
        for jobs in [2usize, 4, 8] {
            let mut par = Engine::new(&schema, &mut ds.pool).expect("compiles");
            let parallel = par.type_all_par(&ds.graph, &ds.pool, jobs);
            prop_assert_eq!(
                &sequential, &parallel,
                "jobs={} over {:?}", jobs, triples
            );
        }
    }

    /// Both schedulers — fixed-shard waves and the work-stealing epoch
    /// loop — produce byte-identical typings on recursive referencing
    /// schemas, at every worker count. (The default-config arm of
    /// `parallel_typing_matches_sequential` covers stealing; this pins the
    /// A/B pair against each other and the sequential reference.)
    #[test]
    fn schedulers_agree_unbudgeted(
        schema in arb_ref_schema(),
        triples in arb_linked_graph()
    ) {
        let mut ds = build_linked(&triples);
        let mut seq = Engine::new(&schema, &mut ds.pool).expect("compiles");
        let sequential = seq.type_all(&ds.graph, &ds.pool);
        for fixed_shard in [false, true] {
            for jobs in [2usize, 4] {
                let config = EngineConfig { fixed_shard, ..EngineConfig::default() };
                let mut par = Engine::compile(&schema, &mut ds.pool, config).expect("compiles");
                let parallel = par.type_all_par(&ds.graph, &ds.pool, jobs);
                prop_assert_eq!(
                    &sequential, &parallel,
                    "fixed_shard={} jobs={} over {:?}", fixed_shard, jobs, triples
                );
            }
        }
    }

    /// Under *joint* step + arena budgets, which pairs exhaust may differ
    /// between schedulers (steal interleaving changes what the shared memo
    /// holds when each query runs), but every pair answered by both the
    /// sequential run and a parallel run must get the same verdict —
    /// whichever scheduler and worker count produced it.
    #[test]
    fn schedulers_agree_under_joint_budgets(
        schema in arb_ref_schema(),
        triples in arb_linked_graph(),
        steps in 8u64..200,
        arena in 8usize..400
    ) {
        let budget = shapex::Budget::steps(steps).with_max_arena_nodes(arena);
        let config = EngineConfig { budget, ..EngineConfig::default() };
        let mut ds = build_linked(&triples);
        let mut seq = Engine::compile(&schema, &mut ds.pool, config).expect("compiles");
        let sequential = seq.type_all(&ds.graph, &ds.pool);
        let ex_seq: std::collections::HashSet<_> =
            sequential.exhausted.iter().map(|&(n, s, _)| (n, s)).collect();
        for fixed_shard in [false, true] {
            for jobs in [2usize, 4] {
                let config = EngineConfig { budget, fixed_shard, ..EngineConfig::default() };
                let mut par = Engine::compile(&schema, &mut ds.pool, config).expect("compiles");
                let parallel = par.type_all_par(&ds.graph, &ds.pool, jobs);
                let ex_par: std::collections::HashSet<_> =
                    parallel.exhausted.iter().map(|&(n, s, _)| (n, s)).collect();
                for node_iri in NODES {
                    let node = ds.iri(node_iri).expect("interned");
                    for label in ["S", "T"] {
                        let shape = seq.shape_id(&label.into()).expect("shape exists");
                        if ex_seq.contains(&(node, shape)) || ex_par.contains(&(node, shape)) {
                            continue;
                        }
                        prop_assert_eq!(
                            sequential.has(node, shape),
                            parallel.has(node, shape),
                            "fixed_shard={} jobs={}: verdicts diverge on {} @{} over {:?}",
                            fixed_shard, jobs, node_iri, label, triples
                        );
                    }
                }
            }
        }
    }

    /// Under a small per-query budget, *which* pairs exhaust may differ
    /// between the sequential and parallel runs (memo seeding changes how
    /// much work each query needs), but every pair answered by both must
    /// get the same verdict.
    #[test]
    fn parallel_typing_agrees_under_budget(
        schema in arb_ref_schema(),
        triples in arb_linked_graph(),
        steps in 8u64..200
    ) {
        let mut ds = build_linked(&triples);
        let config = EngineConfig {
            budget: shapex::Budget::steps(steps),
            ..EngineConfig::default()
        };
        let mut seq = Engine::compile(&schema, &mut ds.pool, config).expect("compiles");
        let sequential = seq.type_all(&ds.graph, &ds.pool);
        let ex_seq: std::collections::HashSet<_> =
            sequential.exhausted.iter().map(|&(n, s, _)| (n, s)).collect();
        for jobs in [2usize, 4] {
            let mut par = Engine::compile(&schema, &mut ds.pool, config).expect("compiles");
            let parallel = par.type_all_par(&ds.graph, &ds.pool, jobs);
            let ex_par: std::collections::HashSet<_> =
                parallel.exhausted.iter().map(|&(n, s, _)| (n, s)).collect();
            for node_iri in NODES {
                let node = ds.iri(node_iri).expect("interned");
                for label in ["S", "T"] {
                    let shape = seq.shape_id(&label.into()).expect("shape exists");
                    if ex_seq.contains(&(node, shape)) || ex_par.contains(&(node, shape)) {
                        continue;
                    }
                    prop_assert_eq!(
                        sequential.has(node, shape),
                        parallel.has(node, shape),
                        "jobs={}: verdicts diverge on {} @{} over {:?}",
                        jobs, node_iri, label, triples
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Jobs-invariance on hub-skewed graphs: the workload where stealing
    /// actually fires (one mega-task, a Zipf tail) must still produce
    /// typings byte-identical to the sequential run under both schedulers,
    /// across random sizes and seeds.
    #[test]
    fn hub_skew_typing_jobs_invariant(
        members in 10usize..60,
        seed in 0u64..1_000
    ) {
        let w = shapex_workloads::scale::hub(members, seed);
        let schema = shapex_shex::shexc::parse(&w.schema).expect("hub schema parses");
        let mut ds = w.dataset;
        let mut seq = Engine::new(&schema, &mut ds.pool).expect("compiles");
        let sequential = seq.type_all(&ds.graph, &ds.pool);
        for fixed_shard in [false, true] {
            for jobs in [2usize, 4] {
                let config = EngineConfig { fixed_shard, ..EngineConfig::default() };
                let mut par = Engine::compile(&schema, &mut ds.pool, config).expect("compiles");
                let parallel = par.type_all_par(&ds.graph, &ds.pool, jobs);
                prop_assert_eq!(
                    &sequential, &parallel,
                    "hub(members={}, seed={}) fixed_shard={} jobs={}",
                    members, seed, fixed_shard, jobs
                );
            }
        }
    }
}

/// Recursive schemas: the derivative engine's optimised coinduction must
/// match (a) the analytic ground truth of the generator and (b) the
/// backtracking greatest-fixpoint reference, across topologies and seeds.
#[test]
fn person_networks_agree_with_ground_truth_and_backtracking() {
    for topology in [
        Topology::Chain,
        Topology::Cycle,
        Topology::Random { degree: 2 },
    ] {
        for seed in 0..8u64 {
            let w = person_network(8, topology, 0.3, seed);
            let schema = shapex_shex::shexc::parse(&w.schema).unwrap();
            let mut ds = w.dataset;
            let mut engine = Engine::new(&schema, &mut ds.pool).unwrap();
            let bt = BacktrackValidator::new(&schema).unwrap();
            for (iri, &expected) in w.focus.iter().zip(&w.expected) {
                let node = ds.iri(iri).unwrap();
                let got = engine
                    .check(
                        &ds.graph,
                        &ds.pool,
                        node,
                        &ShapeLabel::new(w.shape.as_str()),
                    )
                    .unwrap()
                    .matched;
                assert_eq!(
                    got, expected,
                    "derivative vs truth: {iri} ({topology:?}, seed {seed})"
                );
                let bt_got = bt
                    .check(
                        &ds.graph,
                        &ds.pool,
                        node,
                        &ShapeLabel::new(w.shape.as_str()),
                    )
                    .unwrap();
                assert_eq!(
                    bt_got, expected,
                    "backtracking vs truth: {iri} ({topology:?}, seed {seed})"
                );
            }
        }
    }
}

/// The two engines also agree on which *queries* fail when schemas use
/// node kinds and datatypes (not just value sets).
#[test]
fn datatype_schema_agreement() {
    let schema_src = r#"
        PREFIX e: <http://e/>
        PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
        <S> { e:i xsd:integer, e:s xsd:string?, e:any .* }
    "#;
    let data = r#"
        @prefix e: <http://e/> .
        e:good e:i 42; e:s "text"; e:any e:x, 1, "z" .
        e:bad1 e:i "not int"; e:s "text" .
        e:bad2 e:i 42; e:s "a", "b" .
        e:good2 e:i 7 .
    "#;
    let schema = shapex_shex::shexc::parse(schema_src).unwrap();
    let mut ds = shapex_rdf::turtle::parse(data).unwrap();
    let mut engine = Engine::new(&schema, &mut ds.pool).unwrap();
    let bt = BacktrackValidator::new(&schema).unwrap();
    for node in ["good", "bad1", "bad2", "good2"] {
        let n = ds.iri(&format!("http://e/{node}")).unwrap();
        let d = engine
            .check(&ds.graph, &ds.pool, n, &"S".into())
            .unwrap()
            .matched;
        let b = bt.check(&ds.graph, &ds.pool, n, &"S".into()).unwrap();
        assert_eq!(d, b, "engines disagree on {node}");
    }
}

/// Flat schemas: the generated-SPARQL path agrees with the derivative
/// engine on seeded record workloads.
#[test]
fn sparql_mapping_agrees_on_flat_records() {
    for seed in 0..4u64 {
        let w = shapex_workloads::flat_person_records(40, seed);
        let schema = shapex_shex::shexc::parse(&w.schema).unwrap();
        let mut ds = w.dataset;
        let mut engine = Engine::new(&schema, &mut ds.pool).unwrap();
        for (iri, &expected) in w.focus.iter().zip(&w.expected) {
            let node = ds.iri(iri).unwrap();
            let d = engine
                .check(
                    &ds.graph,
                    &ds.pool,
                    node,
                    &ShapeLabel::new(w.shape.as_str()),
                )
                .unwrap()
                .matched;
            assert_eq!(d, expected, "derivative vs truth on {iri} (seed {seed})");
            let q =
                shapex_sparql::generate_node_ask(&schema, &ShapeLabel::new(w.shape.as_str()), iri)
                    .unwrap();
            let parsed = shapex_sparql::parser::parse(&q).unwrap();
            let s = shapex_sparql::ask(&parsed, &ds.graph, &ds.pool).unwrap();
            assert_eq!(s, expected, "sparql vs truth on {iri} (seed {seed})");
        }
    }
}

//! End-to-end flows across all crates: file-style inputs through parsing,
//! validation with each engine, SPARQL generation/evaluation, and
//! serialization.

use shapex::{validate, Closure, Engine, EngineConfig};
use shapex_backtrack::BacktrackValidator;
use shapex_rdf::{ntriples, turtle, writer};
use shapex_shex::ast::ShapeLabel;
use shapex_shex::display::schema_to_shexc;
use shapex_shex::shexc;
use shapex_workloads::{person_network, Topology};

/// A library catalogue: books, authors, and a review workflow with
/// alternatives — exercises Or-groups, value sets, dates, and recursion
/// through two mutually referencing shapes.
const LIBRARY_SCHEMA: &str = r#"
    PREFIX lib: <http://library.example/vocab/>
    PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>

    start = @<Book>

    <Book> {
      lib:title xsd:string
      , lib:isbn PATTERN "97[89]-\\d{10}"
      , lib:published xsd:gYear
      , lib:author @<Author>+
      , (lib:status ["draft"] | lib:status ["published"], lib:reviewedBy @<Author>)
    }

    <Author> {
      lib:name xsd:string
      , lib:wrote @<Book>*
    }
"#;

const LIBRARY_DATA: &str = r#"
    @prefix lib: <http://library.example/vocab/> .
    @prefix : <http://library.example/id/> .
    @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .

    :dune lib:title "Dune" ;
        lib:isbn "978-0441172719" ;
        lib:published "1965"^^xsd:gYear ;
        lib:author :herbert ;
        lib:status "published" ;
        lib:reviewedBy :asimov .

    :herbert lib:name "Frank Herbert" ;
        lib:wrote :dune .

    :asimov lib:name "Isaac Asimov" .

    :wip lib:title "Unfinished" ;
        lib:isbn "978-0000000000" ;
        lib:published "2026"^^xsd:gYear ;
        lib:author :herbert ;
        lib:status "draft" .

    # Bad ISBN checksum format (missing digit)
    :badisbn lib:title "Oops" ;
        lib:isbn "978-044117271" ;
        lib:published "2001"^^xsd:gYear ;
        lib:author :herbert ;
        lib:status "draft" .

    # published but not reviewed
    :unreviewed lib:title "Rush job" ;
        lib:isbn "978-1111111111" ;
        lib:published "2020"^^xsd:gYear ;
        lib:author :asimov ;
        lib:status "published" .
"#;

#[test]
fn library_catalogue_validation() {
    let schema = shexc::parse(LIBRARY_SCHEMA).unwrap();
    assert_eq!(schema.start().unwrap().as_str(), "Book");
    let mut ds = turtle::parse(LIBRARY_DATA).unwrap();
    let mut engine = Engine::new(&schema, &mut ds.pool).unwrap();

    let book = ShapeLabel::new("Book");
    let cases = [
        ("dune", true),
        ("wip", true),
        ("badisbn", false),
        ("unreviewed", false),
    ];
    for (local, expected) in cases {
        let node = ds
            .iri(&format!("http://library.example/id/{local}"))
            .unwrap();
        let got = engine.check(&ds.graph, &ds.pool, node, &book).unwrap();
        assert_eq!(got.matched, expected, ":{local}");
    }
    // herbert's wrote-link to a valid Book; asimov has no wrote links.
    let author = ShapeLabel::new("Author");
    for a in ["herbert", "asimov"] {
        let node = ds.iri(&format!("http://library.example/id/{a}")).unwrap();
        assert!(
            engine
                .check(&ds.graph, &ds.pool, node, &author)
                .unwrap()
                .matched
        );
    }
}

#[test]
fn library_schema_survives_print_parse_validate() {
    let schema = shexc::parse(LIBRARY_SCHEMA).unwrap();
    let printed = schema_to_shexc(&schema);
    let schema2 = shexc::parse(&printed).expect("printed schema parses");
    let mut ds = turtle::parse(LIBRARY_DATA).unwrap();
    let mut engine = Engine::new(&schema2, &mut ds.pool).unwrap();
    let node = ds.iri("http://library.example/id/dune").unwrap();
    assert!(
        engine
            .check(&ds.graph, &ds.pool, node, &"Book".into())
            .unwrap()
            .matched
    );
}

#[test]
fn data_survives_serialisation_cycles() {
    let ds = turtle::parse(LIBRARY_DATA).unwrap();
    // Turtle → N-Triples → parse → Turtle → parse: same graph throughout.
    let nt = writer::to_ntriples(&ds.graph, &ds.pool);
    let ds2 = ntriples::parse(&nt).unwrap();
    let ttl = writer::to_turtle(
        &ds2.graph,
        &ds2.pool,
        &[
            ("lib", "http://library.example/vocab/"),
            ("id", "http://library.example/id/"),
        ],
    );
    let ds3 = turtle::parse(&ttl).unwrap();
    assert_eq!(ds3.graph.len(), ds.graph.len());
    assert_eq!(writer::to_ntriples(&ds3.graph, &ds3.pool), nt);

    // And the reloaded data still validates identically.
    let schema = shexc::parse(LIBRARY_SCHEMA).unwrap();
    let mut ds3 = ds3;
    let mut engine = Engine::new(&schema, &mut ds3.pool).unwrap();
    let node = ds3.iri("http://library.example/id/badisbn").unwrap();
    assert!(
        !engine
            .check(&ds3.graph, &ds3.pool, node, &"Book".into())
            .unwrap()
            .matched
    );
}

#[test]
fn convenience_api_full_flow() {
    let mut report = validate(LIBRARY_SCHEMA, LIBRARY_DATA).unwrap();
    assert!(report.conforms("http://library.example/id/dune", "Book"));
    assert!(!report.conforms("http://library.example/id/badisbn", "Book"));
    let why = report
        .explain("http://library.example/id/badisbn", "Book")
        .unwrap();
    assert!(why.contains("isbn"), "{why}");
    let typing = report.render_typing();
    assert!(typing.contains("dune"));
    assert!(typing.contains("Author"));
}

#[test]
fn engines_and_sparql_agree_on_big_open_world_batch() {
    // 60-person networks in three topologies: derivative engine result is
    // already differential-tested; here we pin the end-to-end totals.
    for (topology, seed) in [
        (Topology::Chain, 3u64),
        (Topology::Cycle, 5),
        (Topology::Random { degree: 2 }, 7),
    ] {
        let w = person_network(60, topology, 0.15, seed);
        let schema = shexc::parse(&w.schema).unwrap();
        let mut ds = w.dataset;
        let mut engine = Engine::new(&schema, &mut ds.pool).unwrap();
        let label = ShapeLabel::new(w.shape.as_str());
        let mut conforming = 0usize;
        for (iri, &expected) in w.focus.iter().zip(&w.expected) {
            let node = ds.iri(iri).unwrap();
            let got = engine
                .check(&ds.graph, &ds.pool, node, &label)
                .unwrap()
                .matched;
            assert_eq!(got, expected, "{iri} in {topology:?}");
            conforming += usize::from(got);
        }
        let expected_total = w.expected.iter().filter(|&&v| v).count();
        assert_eq!(conforming, expected_total);
    }
}

#[test]
fn open_vs_closed_on_annotated_data() {
    let schema_src = "PREFIX lib: <http://library.example/vocab/>\n<Named> { lib:name . }";
    // rdf:type annotations break closed validation, not open.
    let data = r#"
        @prefix lib: <http://library.example/vocab/> .
        @prefix : <http://library.example/id/> .
        :x a lib:Thing ; lib:name "X" .
    "#;
    let schema = shexc::parse(schema_src).unwrap();
    let mut ds = turtle::parse(data).unwrap();
    let node_iri = "http://library.example/id/x";

    let mut closed = Engine::new(&schema, &mut ds.pool).unwrap();
    let node = ds.iri(node_iri).unwrap();
    assert!(
        !closed
            .check(&ds.graph, &ds.pool, node, &"Named".into())
            .unwrap()
            .matched
    );

    let schema2 = shexc::parse(schema_src).unwrap();
    let mut open = Engine::compile(
        &schema2,
        &mut ds.pool,
        EngineConfig {
            closure: Closure::Open,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    assert!(
        open.check(&ds.graph, &ds.pool, node, &"Named".into())
            .unwrap()
            .matched
    );
}

#[test]
fn backtracking_handles_the_library_non_recursively_scoped() {
    // The library schema is recursive (Book ↔ Author), so the baseline
    // computes the full gfp table — still correct, just slower.
    let schema = shexc::parse(LIBRARY_SCHEMA).unwrap();
    let ds = turtle::parse(LIBRARY_DATA).unwrap();
    let v = BacktrackValidator::new(&schema).unwrap();
    for (local, expected) in [("dune", true), ("badisbn", false), ("unreviewed", false)] {
        let node = ds
            .iri(&format!("http://library.example/id/{local}"))
            .unwrap();
        assert_eq!(
            v.check(&ds.graph, &ds.pool, node, &"Book".into()).unwrap(),
            expected,
            ":{local}"
        );
    }
}

#[test]
fn generated_sparql_runs_against_serialised_copy() {
    // Generate validation SPARQL from a flat schema, serialize the graph
    // to N-Triples, reload, and run the query on the copy.
    let schema = shexc::parse(
        "PREFIX lib: <http://library.example/vocab/>\nPREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n\
         <Authorish> { lib:name xsd:string }",
    )
    .unwrap();
    let ds = turtle::parse(LIBRARY_DATA).unwrap();
    let nt = writer::to_ntriples(&ds.graph, &ds.pool);
    let copy = ntriples::parse(&nt).unwrap();
    let q = shapex_sparql::generate_node_ask(
        &schema,
        &"Authorish".into(),
        "http://library.example/id/asimov",
    )
    .unwrap();
    let parsed = shapex_sparql::parser::parse(&q).unwrap();
    assert!(shapex_sparql::ask(&parsed, &copy.graph, &copy.pool).unwrap());
    // herbert has an extra wrote-triple → closed shape fails.
    let q2 = shapex_sparql::generate_node_ask(
        &schema,
        &"Authorish".into(),
        "http://library.example/id/herbert",
    )
    .unwrap();
    let parsed2 = shapex_sparql::parser::parse(&q2).unwrap();
    assert!(!shapex_sparql::ask(&parsed2, &copy.graph, &copy.pool).unwrap());
}

//! Regression suite for `--stats`/metrics totals under parallel typing.
//!
//! The wave-boundary merge in `Engine::type_all_par` folds each worker's
//! counter *delta* into the coordinator exactly once. These tests pin the
//! observable consequence: over the `fixtures/_pathological` inputs run
//! **under a steps budget**, a `--jobs 4` run reports byte-identical
//! step/memo totals to the sequential `--jobs 1` run — every exhausted
//! query deterministically burns its full budget, and exhausted pairs are
//! never memoised, so sharding cannot change any total. (Without a budget
//! the totals legitimately diverge: parallel workers re-derive recursive
//! sub-proofs a sequential run would answer from its shared memo.)

use std::fs;
use std::path::{Path, PathBuf};

use shapex::{Budget, Engine, EngineConfig, Metrics, Stats};
use shapex_rdf::graph::Dataset;
use shapex_rdf::turtle;
use shapex_shex::shexc;

fn pathological(name: &str) -> (shapex_shex::Schema, Dataset) {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fixtures/_pathological");
    let read = |p: PathBuf| fs::read_to_string(&p).unwrap_or_else(|e| panic!("{p:?}: {e}"));
    let schema = shexc::parse(&read(root.join(format!("{name}.shex")))).expect("schema parses");
    let ds = turtle::parse(&read(root.join(format!("{name}.ttl")))).expect("data parses");
    (schema, ds)
}

/// Runs the full typing at the given worker count and returns the final
/// coordinator-side counters.
fn run(name: &str, budget: Budget, jobs: usize) -> (Stats, Metrics, usize, usize) {
    let (schema, mut ds) = pathological(name);
    let config = EngineConfig {
        budget,
        metrics: true,
        ..EngineConfig::default()
    };
    let mut engine = Engine::compile(&schema, &mut ds.pool, config).expect("schema compiles");
    let typing = engine.type_all_par(&ds.graph, &ds.pool, jobs);
    let metrics = engine.metrics().expect("metrics enabled").clone();
    (
        engine.stats(),
        metrics,
        typing.len(),
        typing.exhausted.len(),
    )
}

/// Asserts the totals that must be sharding-invariant. Arena/pool sizes
/// are excluded by design: each worker interns its own arena, so those
/// high-water marks measure per-shard state, not run totals (documented in
/// `Stats::absorb`).
fn assert_totals_match(name: &str, budget: Budget) {
    let (seq, seq_m, seq_typed, seq_exhausted) = run(name, budget, 1);
    let (par, par_m, par_typed, par_exhausted) = run(name, budget, 4);
    assert_eq!(seq_typed, par_typed, "{name}: typed pairs diverged");
    assert_eq!(
        seq_exhausted, par_exhausted,
        "{name}: exhausted pairs diverged"
    );
    for (field, a, b) in [
        (
            "derivative_steps",
            seq.derivative_steps,
            par.derivative_steps,
        ),
        ("deriv_memo_hits", seq.deriv_memo_hits, par.deriv_memo_hits),
        ("node_checks", seq.node_checks, par.node_checks),
        ("gfp_reruns", seq.gfp_reruns, par.gfp_reruns),
        ("sorbe_checks", seq.sorbe_checks, par.sorbe_checks),
        ("budget_steps", seq.budget_steps, par.budget_steps),
        (
            "exhausted_checks",
            seq.exhausted_checks,
            par.exhausted_checks,
        ),
        (
            "max_depth_reached",
            seq.max_depth_reached as u64,
            par.max_depth_reached as u64,
        ),
    ] {
        assert_eq!(
            a, b,
            "{name}: stats.{field} diverged between jobs=1 and jobs=4"
        );
    }
    for (field, a, b) in [
        (
            "profile_stable.lookups",
            seq_m.profile_stable.lookups,
            par_m.profile_stable.lookups,
        ),
        (
            "profile_assumption.lookups",
            seq_m.profile_assumption.lookups,
            par_m.profile_assumption.lookups,
        ),
        (
            "deriv_memo.lookups",
            seq_m.deriv_memo.lookups,
            par_m.deriv_memo.lookups,
        ),
        (
            "deriv_memo.hits",
            seq_m.deriv_memo.hits,
            par_m.deriv_memo.hits,
        ),
        (
            "head_index_queries",
            seq_m.head_index_queries,
            par_m.head_index_queries,
        ),
        ("budget_steps", seq_m.budget_steps, par_m.budget_steps),
    ] {
        assert_eq!(
            a, b,
            "{name}: metrics.{field} diverged between jobs=1 and jobs=4"
        );
    }
    // Per-shape attribution must agree too — it is merged through the same
    // delta discipline.
    assert_eq!(
        seq_m.per_shape, par_m.per_shape,
        "{name}: per-shape metrics diverged"
    );
    // The merged metrics obey the cache invariant on both sides.
    for m in [&seq_m, &par_m] {
        for c in [&m.profile_stable, &m.profile_assumption, &m.deriv_memo] {
            assert_eq!(
                c.lookups,
                c.hits + c.misses,
                "{name}: cache invariant broken"
            );
        }
    }
}

#[test]
fn deep_recursion_totals_jobs_invariant() {
    // 2000 queries over the e:next cycle; each exhausts its 200-step
    // budget deterministically, whichever worker runs it.
    assert_totals_match("deep_recursion", Budget::steps(200));
}

#[test]
fn fanout_totals_jobs_invariant() {
    // One subject × one shape: the window degenerates to a single query,
    // which must produce identical totals however many workers idle.
    assert_totals_match("fanout", Budget::steps(1_000));
}

#[test]
fn interleave_totals_jobs_invariant() {
    assert_totals_match("interleave", Budget::steps(10_000));
}

#[test]
fn dfa_typing_jobs_invariant_and_matches_no_dfa() {
    // The lazy DFA shares dense transition tables across shards: workers
    // fork a snapshot and the coordinator merges their fill logs at wave
    // boundaries. Whatever the sharing does to *when* cells fill, the
    // typing must be identical at every jobs count, and identical to the
    // HashMap-memo (`--no-dfa`) runs. `no_sorbe` forces the derivative
    // path so the tables are genuinely exercised.
    let run = |no_dfa: bool, jobs: usize| {
        let w = shapex_workloads::person_network(
            40,
            shapex_workloads::Topology::Random { degree: 2 },
            0.3,
            7,
        );
        let schema = shexc::parse(&w.schema).expect("schema parses");
        let mut ds = w.dataset;
        let config = EngineConfig {
            no_dfa,
            no_sorbe: true,
            ..EngineConfig::default()
        };
        let mut engine = Engine::compile(&schema, &mut ds.pool, config).expect("schema compiles");
        let typing = engine.type_all_par(&ds.graph, &ds.pool, jobs);
        let filled: usize = engine.dfa_summary().iter().map(|&(_, _, _, f)| f).sum();
        (typing, filled)
    };
    let (dfa_seq, filled_seq) = run(false, 1);
    let (dfa_par, filled_par) = run(false, 4);
    let (memo_seq, _) = run(true, 1);
    let (memo_par, _) = run(true, 4);
    assert!(filled_seq > 0, "sequential run never filled a DFA cell");
    assert!(filled_par > 0, "parallel run never filled a DFA cell");
    assert_eq!(
        dfa_seq, dfa_par,
        "DFA typing diverged between jobs=1 and jobs=4"
    );
    assert_eq!(
        memo_seq, memo_par,
        "memo typing diverged between jobs=1 and jobs=4"
    );
    assert_eq!(dfa_seq, memo_seq, "DFA and memo typings diverged");
}

#[test]
fn hub_typing_jobs_and_scheduler_invariant() {
    // The adversarial shape for fixed sharding: one (hub, Hub) mega-task
    // whose proof transitively decides every member, plus a Zipf fanout
    // tail. Whatever the scheduler does — fixed shards or work-stealing
    // with mid-epoch publication — the typing must be byte-identical to
    // the sequential run at every worker count.
    let w = shapex_workloads::scale::hub(120, 9);
    let schema = shexc::parse(&w.schema).expect("hub schema parses");
    let mut ds = w.dataset;
    let mut seq =
        Engine::compile(&schema, &mut ds.pool, EngineConfig::default()).expect("compiles");
    let reference = seq.type_all(&ds.graph, &ds.pool);
    let hub_node = ds
        .iri(&format!("{}hub", shapex_workloads::scale::HUB))
        .expect("hub interned");
    let hub_shape = seq.shape_id(&"Hub".into()).expect("Hub shape");
    let member_shape = seq.shape_id(&"Member".into()).expect("Member shape");
    assert!(reference.has(hub_node, hub_shape), "hub must conform");
    for focus in &w.focus {
        let node = ds.iri(focus).expect("member interned");
        assert!(reference.has(node, member_shape), "{focus} must conform");
    }
    for fixed_shard in [false, true] {
        for jobs in [1usize, 2, 4] {
            let config = EngineConfig {
                fixed_shard,
                ..EngineConfig::default()
            };
            let mut par = Engine::compile(&schema, &mut ds.pool, config).expect("compiles");
            let typing = par.type_all_par(&ds.graph, &ds.pool, jobs);
            assert_eq!(
                typing, reference,
                "typing diverged at jobs={jobs}, fixed_shard={fixed_shard}"
            );
        }
    }
}

#[test]
fn hub_wave_accounting_is_consistent() {
    // Pins the wave-metrics split this refactor fixed: `memo_answered`
    // (verdicts memoised before the run) is disjoint from
    // `merged_answered` (verdicts another worker proved earlier in THIS
    // run), and together with `dispatched` they tile the window exactly.
    // On a fresh engine nothing predates the run, so the hub's cascade —
    // which decides every member while epoch 1 is still running — must
    // show up as `merged_answered`, not `memo_answered`.
    let w = shapex_workloads::scale::hub(300, 3);
    let schema = shexc::parse(&w.schema).expect("hub schema parses");
    let mut ds = w.dataset;
    let config = EngineConfig {
        metrics: true,
        ..EngineConfig::default()
    };
    let mut engine = Engine::compile(&schema, &mut ds.pool, config).expect("compiles");
    // jobs=2 keeps the epoch window (2 × 256) below the 602-query run, so
    // a second epoch exists to observe the first epoch's merged verdicts.
    let typing = engine.type_all_par(&ds.graph, &ds.pool, 2);
    assert!(!typing.is_partial());
    let metrics = engine.metrics().expect("metrics enabled");
    assert!(metrics.waves.len() >= 2, "expected multiple epochs");
    let mut merged_total = 0;
    for (i, wave) in metrics.waves.iter().enumerate() {
        assert_eq!(
            wave.memo_answered + wave.merged_answered + wave.dispatched,
            wave.queries,
            "epoch {i}: answered + dispatched must tile the window"
        );
        assert_eq!(
            wave.memo_answered, 0,
            "epoch {i}: fresh engine has no pre-run memo verdicts"
        );
        assert_eq!(
            wave.steals,
            wave.shards.iter().map(|s| s.steals).sum::<u64>(),
            "epoch {i}: wave steal total must equal the shard sum"
        );
        assert_eq!(
            wave.published,
            wave.shards.iter().map(|s| s.published).sum::<u64>(),
            "epoch {i}: wave published total must equal the shard sum"
        );
        merged_total += wave.merged_answered;
    }
    assert!(
        merged_total > 0,
        "the hub cascade should answer later epochs' queries via merge"
    );
    assert!(
        metrics.waves.iter().map(|w| w.published).sum::<u64>() > 0,
        "workers should publish unconditional verdicts mid-epoch"
    );
}

#[test]
fn exhausted_queries_burn_exactly_their_budget() {
    // The determinism the jobs-invariance rests on: every exhausted query
    // spends exactly `limit` steps, so budget_steps == exhausted × limit
    // when every query exhausts.
    let (stats, metrics, typed, exhausted) = run("deep_recursion", Budget::steps(200), 4);
    assert_eq!(typed, 0, "no pair should complete under 200 steps");
    assert!(exhausted > 0);
    assert_eq!(stats.budget_steps, exhausted as u64 * 200);
    assert_eq!(metrics.budget_steps, stats.budget_steps);
    assert_eq!(stats.exhausted_checks, exhausted as u64);
}

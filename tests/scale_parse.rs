//! Differential properties for the million-triple ingestion path.
//!
//! 1. Parallel chunked N-Triples parsing (`ntriples::parse_par`) must be
//!    *byte-identical* to sequential `ntriples::parse` on arbitrary
//!    documents — same `TermId` assignment, same adjacency order, same
//!    subject iteration order — and must report the *same first error* on
//!    malformed input, whatever chunk seam the error straddles.
//! 2. Batched delta apply/revert on the compact adjacency layout must
//!    agree with a naive per-triple reference implementation, and
//!    apply-then-revert must be a structural identity.

use proptest::prelude::*;

use shapex_rdf::graph::{Dataset, Graph, Triple};
use shapex_rdf::ntriples;
use shapex_rdf::pool::TermPool;

// ---- random N-Triples documents ----

/// One syntactically valid triple line. Term universes are small so that
/// terms recur across chunk boundaries (exercising the merge's remapping)
/// while fresh literals keep some terms chunk-local.
fn arb_good_line() -> impl Strategy<Value = String> {
    (0u8..40, 0u8..6, 0u8..40, any::<u16>()).prop_map(|(s, p, o, fresh)| {
        let obj = match o % 4 {
            0 => format!("<http://e/n{o}>"),
            1 => format!("_:b{o}"),
            2 => format!("\"v{fresh}\""),
            _ => format!("\"v{o}\"@en-US"),
        };
        format!("<http://e/n{s}> <http://e/p{p}> {obj} .")
    })
}

fn arb_line() -> impl Strategy<Value = String> {
    prop_oneof![
        arb_good_line(),
        arb_good_line(),
        arb_good_line(),
        arb_good_line(),
        Just(String::new()),
        Just("# a comment".to_string()),
        arb_good_line().prop_map(|l| format!("  {l} # trailing")),
    ]
}

/// A whole document: lines joined by LF or CRLF, with or without a final
/// newline.
fn arb_doc() -> impl Strategy<Value = String> {
    (
        proptest::collection::vec(arb_line(), 0..120),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(lines, crlf, trailing)| {
            let sep = if crlf { "\r\n" } else { "\n" };
            let mut doc = lines.join(sep);
            if trailing && !doc.is_empty() {
                doc.push_str(sep);
            }
            doc
        })
}

/// A malformed line of the kinds the satellites call out: a triple torn
/// across a line break (the old parser accepted these), a forbidden
/// character inside an IRI, trailing garbage, a bare fragment.
fn arb_bad_line() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("<http://e/torn>".to_string()),
        Just("<http://e/a> <http://e/p>".to_string()),
        Just("<http://e/a b> <http://e/p> <http://e/o> .".to_string()),
        Just("<http://e/a> <http://e/p> <http://e/o> . garbage".to_string()),
        Just("\"lit\" <http://e/p> <http://e/o> .".to_string()),
        Just("random trailing garbage".to_string()),
    ]
}

fn assert_identical(seq: &Dataset, par: &Dataset) {
    assert_eq!(seq.pool.len(), par.pool.len(), "pool sizes differ");
    for ((ia, ta), (ib, tb)) in seq.pool.iter().zip(par.pool.iter()) {
        assert_eq!(ia, ib);
        assert_eq!(ta, tb, "term id {ia:?} bound to different terms");
    }
    assert_eq!(seq.graph.triples_sorted(), par.graph.triples_sorted());
    assert_eq!(
        seq.graph.subjects().collect::<Vec<_>>(),
        par.graph.subjects().collect::<Vec<_>>()
    );
    for (id, _) in seq.pool.iter() {
        assert_eq!(seq.graph.neighbourhood(id), par.graph.neighbourhood(id));
        assert_eq!(seq.graph.incoming(id), par.graph.incoming(id));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Well-formed documents: parallel == sequential, bit for bit, at every
    /// worker count and with chunk seams forced through the document.
    #[test]
    fn parallel_parse_matches_sequential(doc in arb_doc(), jobs in 2usize..6) {
        let seq = ntriples::parse(&doc).expect("generated docs are valid");
        // min_chunk = 1 forces real chunking even on tiny documents.
        let par = ntriples::parse_par_min_chunk(&doc, jobs, 1)
            .expect("parallel parse of valid doc");
        assert_identical(&seq, &par);
    }

    /// Malformed documents: the parallel parser reports the same first
    /// error (line, column, message) as the sequential one, no matter
    /// which chunk the bad line lands in — including a triple torn across
    /// a chunk seam, CRLF endings, and trailing garbage.
    #[test]
    fn parallel_parse_matches_sequential_errors(
        prefix in arb_doc(),
        bad in arb_bad_line(),
        suffix in arb_doc(),
        jobs in 2usize..6,
        crlf in any::<bool>(),
    ) {
        let sep = if crlf { "\r\n" } else { "\n" };
        let doc = format!("{prefix}{sep}{bad}{sep}{suffix}");
        let seq_err = ntriples::parse(&doc).expect_err("doc contains a bad line");
        let par_err = ntriples::parse_par_min_chunk(&doc, jobs, 1)
            .expect_err("parallel parse must reject too");
        prop_assert_eq!(seq_err, par_err);
    }
}

// ---- UniProt-shaped workload end-to-end ----

/// The scale workload's schema and generator agree: every generated
/// protein conforms, through the real parse → compile → validate path.
#[test]
fn uniprot_workload_validates_conformant() {
    use shapex::Engine;
    use shapex_shex::ast::ShapeLabel;
    use shapex_shex::shexc;

    let mut w = shapex_workloads::scale::uniprot(40, 11);
    let schema = shexc::parse(&w.schema).expect("uniprot schema parses");
    let mut engine = Engine::new(&schema, &mut w.dataset.pool).unwrap();
    let shape = ShapeLabel::new(w.shape.clone());
    for (focus, expected) in w.focus.iter().zip(&w.expected) {
        let node = w.dataset.iri(focus).expect("focus node in dump");
        let got = engine
            .check(&w.dataset.graph, &w.dataset.pool, node, &shape)
            .unwrap();
        assert_eq!(got.matched, *expected, "{focus}");
    }
}

// ---- batched delta apply/revert vs naive reference ----

fn arb_triple() -> impl Strategy<Value = (u8, u8, u8)> {
    (0u8..12, 0u8..4, 0u8..12)
}

fn build(pool: &mut TermPool, triples: &[(u8, u8, u8)]) -> Graph {
    let mut g = Graph::new();
    for &(s, p, o) in triples {
        let t = Triple::new(
            pool.intern_iri(&format!("http://e/n{s}")),
            pool.intern_iri(&format!("http://e/p{p}")),
            pool.intern_iri(&format!("http://e/n{o}")),
        );
        g.insert(t);
    }
    g
}

/// Per-node `(outgoing, incoming)` arc lists, a predicate/object id pair
/// each, in adjacency order — the full structural state of a graph.
type Arcs = Vec<(shapex_rdf::pool::TermId, shapex_rdf::pool::TermId)>;

fn snapshot(g: &Graph, pool: &TermPool) -> Vec<(Arcs, Arcs)> {
    pool.iter()
        .map(|(id, _)| (g.neighbourhood(id).to_vec(), g.incoming(id).to_vec()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The batched `try_apply_delta` produces the same triple set as a
    /// naive remove-then-insert loop, and `revert_delta` restores the
    /// original graph *structurally* (adjacency order and subject order,
    /// not just set equality) — on compacted and uncompacted layouts.
    #[test]
    fn batched_delta_agrees_with_naive_reference(
        base in proptest::collection::vec(arb_triple(), 0..60),
        removed in proptest::collection::vec(arb_triple(), 0..20),
        added in proptest::collection::vec(arb_triple(), 0..20),
        compact_first in any::<bool>(),
    ) {
        let mut pool = TermPool::new();
        let mut g = build(&mut pool, &base);
        if compact_first {
            g.compact();
        }

        let intern3 = |pool: &mut TermPool, (s, p, o): (u8, u8, u8)| {
            Triple::new(
                pool.intern_iri(&format!("http://e/n{s}")),
                pool.intern_iri(&format!("http://e/p{p}")),
                pool.intern_iri(&format!("http://e/n{o}")),
            )
        };
        let delta = shapex_rdf::delta::GraphDelta {
            removed: removed.iter().map(|&t| intern3(&mut pool, t)).collect(),
            added: added.iter().map(|&t| intern3(&mut pool, t)).collect(),
        };

        // Naive reference: rebuild and mutate one triple at a time.
        let mut reference = build(&mut pool, &base);
        for t in &delta.removed {
            reference.remove(t);
        }
        for t in &delta.added {
            reference.insert(*t);
        }

        let before = snapshot(&g, &pool);
        let before_subjects: Vec<_> = g.subjects().collect();

        let applied = g.apply_delta(&delta);
        prop_assert_eq!(g.triples_sorted(), reference.triples_sorted());
        // Post-apply adjacency order must match the reference's too: both
        // keep survivors in order and append additions at the tail.
        prop_assert_eq!(snapshot(&g, &pool), snapshot(&reference, &pool));

        g.revert_delta(&applied);
        prop_assert_eq!(snapshot(&g, &pool), before);
        prop_assert_eq!(g.subjects().collect::<Vec<_>>(), before_subjects);
    }
}

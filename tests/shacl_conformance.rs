//! Mini W3C-style SHACL conformance suite, driven by
//! `fixtures/shacl/conformance/manifest.json`: each manifest entry names a
//! case directory (shapes.ttl + data.ttl) and pins either the expected
//! validation report (conforms flag and every violation row, matched on
//! focus node / constraint component / result path) or the expected
//! compile-time refusal (error code + message substring).
//!
//! Two invariants ride along:
//!
//! - **No vacuous validation**: a shapes graph using an unsupported SHACL
//!   term must be refused by `compile` with a term-identified `E001` —
//!   never loaded as a weaker schema that conforms by omission.
//! - **Differential typing**: workload-generated SHACL schemas and their
//!   hand-written ShEx equivalents must produce byte-identical verdict
//!   tables over the same data (proptest below).

use std::fs;
use std::path::{Path, PathBuf};

use shapex::{Closure, Engine, EngineConfig};
use shapex_rdf::turtle;
use shapex_shacl::{compile, ShaclValidator};
use shapex_shex::shexc;

fn conformance_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fixtures/shacl/conformance")
}

fn manifest() -> serde_json::Value {
    let raw = fs::read_to_string(conformance_root().join("manifest.json"))
        .expect("manifest.json exists");
    serde_json::from_str(&raw).expect("manifest.json parses")
}

/// Runs one case end to end and returns the outcome, or the compile error.
fn run_case(name: &str) -> Result<shapex_shacl::ShaclOutcome, shapex_shacl::ShaclError> {
    let dir = conformance_root().join(name);
    let shapes_src =
        fs::read_to_string(dir.join("shapes.ttl")).unwrap_or_else(|e| panic!("{name}: {e}"));
    let data_src =
        fs::read_to_string(dir.join("data.ttl")).unwrap_or_else(|e| panic!("{name}: {e}"));
    let shapes = turtle::parse(&shapes_src).unwrap_or_else(|e| panic!("{name}/shapes.ttl: {e}"));
    let schema = compile(&shapes)?;
    let mut ds = turtle::parse(&data_src).unwrap_or_else(|e| panic!("{name}/data.ttl: {e}"));
    let mut validator = ShaclValidator::new(schema, &mut ds.pool, EngineConfig::default())
        .unwrap_or_else(|e| panic!("{name}: engine refused compiled schema: {e}"));
    Ok(validator.validate_par(&mut ds, 1))
}

#[test]
fn conformance_manifest_passes() {
    let manifest = manifest();
    let entries = manifest
        .get("entries")
        .and_then(|e| e.as_array())
        .expect("entries array");
    assert!(entries.len() >= 14, "manifest should cover the component set");
    for entry in entries {
        let name = entry
            .get("name")
            .and_then(|n| n.as_str())
            .expect("entry name");
        match run_case(name) {
            Ok(outcome) => {
                let expect = entry.get("expect").unwrap_or_else(|| {
                    panic!("{name}: manifest expects a compile error, got a report")
                });
                assert!(
                    outcome.exhausted.is_empty(),
                    "{name}: unexpected exhaustion: {:?}",
                    outcome.exhausted
                );
                let conforms = expect
                    .get("conforms")
                    .and_then(|c| c.as_bool())
                    .expect("conforms flag");
                assert_eq!(
                    outcome.conforms(),
                    Some(conforms),
                    "{name}: conformance flag mismatch; rows: {:?}",
                    outcome.results
                );
                if let Some(targets) = expect.get("targets").and_then(|t| t.as_u64()) {
                    assert_eq!(outcome.targets as u64, targets, "{name}: target count");
                }
                let rows = expect
                    .get("results")
                    .and_then(|r| r.as_array())
                    .expect("results array");
                assert_eq!(
                    outcome.results.len(),
                    rows.len(),
                    "{name}: violation count mismatch; rows: {:?}",
                    outcome.results
                );
                for row in rows {
                    let focus = row.get("focus").and_then(|f| f.as_str()).expect("focus");
                    let component = row
                        .get("component")
                        .and_then(|c| c.as_str())
                        .expect("component");
                    let path = row.get("path").and_then(|p| p.as_str());
                    let hit = outcome.results.iter().any(|r| {
                        r.focus == focus
                            && r.component == component
                            && path.is_none_or(|p| r.path.as_deref() == Some(p))
                    });
                    assert!(
                        hit,
                        "{name}: no row matching focus={focus} component={component} \
                         path={path:?}; rows: {:?}",
                        outcome.results
                    );
                }
            }
            Err(e) => {
                let expect = entry.get("error").unwrap_or_else(|| {
                    panic!("{name}: unexpected compile error {e}")
                });
                let code = expect.get("code").and_then(|c| c.as_str()).expect("code");
                assert_eq!(e.code, code, "{name}: {e}");
                let needle = expect
                    .get("contains")
                    .and_then(|c| c.as_str())
                    .expect("contains");
                assert!(
                    e.detail.contains(needle),
                    "{name}: error `{e}` does not name `{needle}`"
                );
            }
        }
    }
}

/// An unsupported term must fail *compilation* with the term's name in the
/// diagnostic — silently validating the rest of the shapes graph would
/// report `sh:conforms true` for data the full schema rejects. (This is
/// the fail-pre-fix regression for the vacuous-validation bug class: drop
/// the `sh:sparql` arm from the compiler's term table and this test turns
/// a conforming report into a failure.)
#[test]
fn unsupported_terms_never_validate_vacuously() {
    let shapes_src = "\
        @prefix sh: <http://www.w3.org/ns/shacl#> .\n\
        @prefix ex: <http://example.org/> .\n\
        ex:S a sh:NodeShape ; sh:targetClass ex:T ;\n\
             sh:property [ sh:path ex:p ; sh:minCount 1 ] ;\n\
             sh:sparql ex:Query .\n";
    let shapes = turtle::parse(shapes_src).unwrap();
    let err = compile(&shapes).expect_err("sh:sparql must be refused at compile time");
    assert_eq!(err.code, "E001");
    assert!(err.detail.contains("sh:sparql"), "diagnostic names the term: {err}");
    // The shape node is identified too, so the author can find it.
    assert!(
        err.detail.contains("http://example.org/S"),
        "diagnostic names the shape: {err}"
    );
}

/// The verdict table both sides must produce: `focus conforms?` lines in
/// focus order — byte-identical across the SHACL front end and the
/// hand-written ShEx schema.
fn verdict_table(verdicts: &[(String, bool)]) -> String {
    let mut out = String::new();
    for (focus, ok) in verdicts {
        out.push_str(focus);
        out.push(' ');
        out.push_str(if *ok { "conforms" } else { "fails" });
        out.push('\n');
    }
    out
}

fn shacl_verdicts(w: shapex_workloads::generators::ShaclWorkload) -> String {
    let shapes = turtle::parse(&w.shapes).expect("workload shapes graph parses");
    let schema = compile(&shapes).expect("workload shapes graph compiles");
    let mut ds = w.dataset;
    let mut validator = ShaclValidator::new(schema, &mut ds.pool, EngineConfig::default())
        .expect("engine accepts compiled workload schema");
    let outcome = validator.validate_par(&mut ds, 1);
    assert!(outcome.exhausted.is_empty());
    let table: Vec<(String, bool)> = w
        .focus
        .iter()
        .map(|f| {
            let rendered = format!("<{f}>");
            let ok = !outcome.results.iter().any(|r| r.focus == rendered);
            (rendered, ok)
        })
        .collect();
    verdict_table(&table)
}

fn shex_verdicts(w: shapex_workloads::generators::ShaclWorkload) -> String {
    let schema = shexc::parse(&w.shex).expect("workload ShEx parses");
    let mut ds = w.dataset;
    let config = EngineConfig {
        closure: Closure::Open,
        ..EngineConfig::default()
    };
    let mut engine = Engine::compile(&schema, &mut ds.pool, config).expect("ShEx compiles");
    let label = w.shex_shape.as_str().into();
    let table: Vec<(String, bool)> = w
        .focus
        .iter()
        .map(|f| {
            let node = ds.iri(f).expect("focus node interned");
            let ok = engine
                .check(&ds.graph, &ds.pool, node, &label)
                .expect("no exhaustion on workload data")
                .matched;
            (format!("<{f}>"), ok)
        })
        .collect();
    verdict_table(&table)
}

#[test]
fn differential_fixed_seed_matches_ground_truth() {
    let w = shapex_workloads::generators::shacl_person_records(60, 7);
    let shacl = shacl_verdicts(shapex_workloads::generators::shacl_person_records(60, 7));
    let shex = shex_verdicts(shapex_workloads::generators::shacl_person_records(60, 7));
    assert_eq!(shacl, shex, "SHACL and ShEx verdict tables must be byte-identical");
    let truth: Vec<(String, bool)> = w
        .focus
        .iter()
        .zip(&w.expected)
        .map(|(f, &ok)| (format!("<{f}>"), ok))
        .collect();
    assert_eq!(shacl, verdict_table(&truth), "verdicts must match ground truth");
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]

    /// Differential pin: for any generated person workload, the compiled
    /// SHACL schema and the hand-written ShEx schema (open closure) type
    /// every focus node identically — rendered verdict tables are
    /// byte-identical and match the generator's ground truth.
    #[test]
    fn differential_shacl_vs_shex(n in 1usize..40, seed in 0u64..1000) {
        let w = shapex_workloads::generators::shacl_person_records(n, seed);
        let shacl = shacl_verdicts(shapex_workloads::generators::shacl_person_records(n, seed));
        let shex = shex_verdicts(shapex_workloads::generators::shacl_person_records(n, seed));
        proptest::prop_assert_eq!(&shacl, &shex);
        let truth: Vec<(String, bool)> = w
            .focus
            .iter()
            .zip(&w.expected)
            .map(|(f, &ok)| (format!("<{f}>"), ok))
            .collect();
        proptest::prop_assert_eq!(shacl, verdict_table(&truth));
    }
}

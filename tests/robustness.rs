//! Robustness: no parser in the workspace may panic on arbitrary input —
//! they must return structured errors — and the string-regex matchers must
//! agree with each other on arbitrary ASTs.

use std::rc::Rc;

use proptest::prelude::*;

use shapex_shex::strre::{backtrack_match, CharClass, Re, Regex};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The Turtle parser returns Ok or Err on any string — never panics.
    #[test]
    fn turtle_parser_never_panics(input in ".{0,200}") {
        let _ = shapex_rdf::turtle::parse(&input);
    }

    /// Likewise for near-miss Turtle: mutations of a valid document.
    #[test]
    fn turtle_parser_survives_mutations(cut in 0usize..120, insert in ".{0,4}") {
        let valid = "@prefix e: <http://e/> . e:a e:p \"x\"@en, 4.5, true; e:q [ e:r (1 2) ] .";
        let cut = cut.min(valid.len());
        let mut mutated = String::new();
        mutated.push_str(&valid[..cut]);
        mutated.push_str(&insert);
        // Cut on a char boundary (ASCII document, always true).
        mutated.push_str(&valid[cut..]);
        let _ = shapex_rdf::turtle::parse(&mutated);
    }

    /// The N-Triples parser never panics.
    #[test]
    fn ntriples_parser_never_panics(input in ".{0,200}") {
        let _ = shapex_rdf::ntriples::parse(&input);
    }

    /// The ShExC parser never panics.
    #[test]
    fn shexc_parser_never_panics(input in ".{0,200}") {
        let _ = shapex_shex::shexc::parse(&input);
    }

    /// ShExC near-misses.
    #[test]
    fn shexc_parser_survives_mutations(cut in 0usize..100, insert in ".{0,4}") {
        let valid = "PREFIX e: <http://e/>\n<S> { e:a [1 2]+, e:b IRI? | ^e:c NOT LITERAL{1,3} }";
        let cut = cut.min(valid.len());
        let mut mutated = String::new();
        mutated.push_str(&valid[..cut]);
        mutated.push_str(&insert);
        mutated.push_str(&valid[cut..]);
        let _ = shapex_shex::shexc::parse(&mutated);
    }

    /// The SPARQL parser never panics.
    #[test]
    fn sparql_parser_never_panics(input in ".{0,200}") {
        let _ = shapex_sparql::parser::parse(&input);
    }

    /// The string-regex pattern parser never panics.
    #[test]
    fn pattern_parser_never_panics(input in ".{0,60}") {
        let _ = Regex::new(&input);
    }
}

// ---- string-regex matcher agreement on random ASTs ----

fn arb_re() -> impl Strategy<Value = Rc<Re>> {
    let leaf = prop_oneof![
        Just(Rc::new(Re::Epsilon)),
        prop_oneof![Just('a'), Just('b'), Just('c')].prop_map(Re::char),
        Just(Re::class(CharClass::ranges(vec![('a', 'b')], false))),
        Just(Re::class(CharClass::ranges(vec![('b', 'c')], true))),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Re::concat(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Re::alt(a, b)),
            inner.prop_map(Re::star),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Alternation is canonical: commutative and associative at the
    /// constructor level (required for derivative-state convergence).
    #[test]
    fn alt_is_canonical(a in arb_re(), b in arb_re(), c in arb_re()) {
        prop_assert_eq!(Re::alt(a.clone(), b.clone()), Re::alt(b.clone(), a.clone()));
        prop_assert_eq!(
            Re::alt(Re::alt(a.clone(), b.clone()), c.clone()),
            Re::alt(a.clone(), Re::alt(b.clone(), c.clone()))
        );
        prop_assert_eq!(Re::alt(a.clone(), a.clone()), a.clone());
    }

    /// Derivative matching ≡ memoised derivative matching ≡ naive
    /// backtracking, on arbitrary regex ASTs and short inputs.
    #[test]
    fn string_matchers_agree(re in arb_re(), input in "[abc]{0,7}") {
        let source = Regex::from_ast(re.clone());
        let derivative = source.is_match(&input);
        let memoised = source.is_match_memo(&input);
        let backtracking = backtrack_match(&re, &input);
        prop_assert_eq!(derivative, memoised, "memo diverges on {:?} / {:?}", re, input);
        prop_assert_eq!(derivative, backtracking, "backtracking diverges on {:?} / {:?}", re, input);
    }
}

//! Robustness: no parser in the workspace may panic on arbitrary input —
//! they must return structured errors — the string-regex matchers must
//! agree with each other on arbitrary ASTs, and validation under a
//! [`Budget`] always terminates with a structured outcome (pathological
//! fixtures trip budgets fast; healthy nodes are isolated from blown ones).

use std::path::Path;
use std::rc::Rc;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use shapex::{Budget, Engine, EngineConfig, Outcome, Resource};
use shapex_backtrack::{BacktrackValidator, BtConfig, BtError};
use shapex_shex::ast::ShapeLabel;
use shapex_shex::strre::{backtrack_match, CharClass, Re, Regex};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The Turtle parser returns Ok or Err on any string — never panics.
    #[test]
    fn turtle_parser_never_panics(input in ".{0,200}") {
        let _ = shapex_rdf::turtle::parse(&input);
    }

    /// Likewise for near-miss Turtle: mutations of a valid document.
    #[test]
    fn turtle_parser_survives_mutations(cut in 0usize..120, insert in ".{0,4}") {
        let valid = "@prefix e: <http://e/> . e:a e:p \"x\"@en, 4.5, true; e:q [ e:r (1 2) ] .";
        let cut = cut.min(valid.len());
        let mut mutated = String::new();
        mutated.push_str(&valid[..cut]);
        mutated.push_str(&insert);
        // Cut on a char boundary (ASCII document, always true).
        mutated.push_str(&valid[cut..]);
        let _ = shapex_rdf::turtle::parse(&mutated);
    }

    /// The N-Triples parser never panics.
    #[test]
    fn ntriples_parser_never_panics(input in ".{0,200}") {
        let _ = shapex_rdf::ntriples::parse(&input);
    }

    /// The lenient Turtle parser never panics on arbitrary input, and
    /// every error it reports carries an in-bounds line number.
    #[test]
    fn lenient_parser_never_panics(input in ".{0,200}") {
        let (_, errors) = shapex_rdf::turtle::parse_lenient(&input);
        let lines = input.lines().count().max(1);
        for e in &errors {
            prop_assert!(e.line >= 1 && e.line <= lines + 1, "error line {} out of bounds", e.line);
        }
    }

    /// Truncation at any byte position — mid-IRI, mid-string-literal,
    /// mid-escape, mid-UTF-8-sequence — must not panic the lenient
    /// parser: EOF inside any token is an error to recover from, and
    /// statements before the cut survive.
    #[test]
    fn lenient_parser_survives_truncation(cut in 0usize..180) {
        let valid = "@prefix e: <http://e/\u{e9}#> .\n\
                     e:a e:p \"caf\u{e9} \\\"quoted\\\" text\"@en, 4.5e2, true .\n\
                     e:b e:q \"\"\"long\nliteral\"\"\"; e:r <http://e/x> .\n\
                     e:c e:s [ e:t (1 2 3) ] .";
        let mut cut = cut.min(valid.len());
        while !valid.is_char_boundary(cut) {
            cut -= 1;
        }
        let full = shapex_rdf::turtle::parse(valid).expect("fixture is valid").graph.len();
        let (ds, _) = shapex_rdf::turtle::parse_lenient(&valid[..cut]);
        // A truncated document can't yield more triples than the whole.
        prop_assert!(ds.graph.len() <= full);
        // Cutting after the first object-list statement keeps its three
        // triples: recovery never discards already-completed statements.
        let first_statement_end = valid.find("true .").unwrap() + "true .".len();
        if cut >= first_statement_end {
            prop_assert!(ds.graph.len() >= 3);
        }
    }

    /// Arbitrary byte mutations of a valid document (any byte overwritten
    /// with any byte, lossily re-decoded) never panic the lenient parser.
    #[test]
    fn lenient_parser_survives_byte_mutations(pos in 0usize..180, byte in 0u8..=255) {
        let valid = "@prefix e: <http://e/> .\n\
                     e:a e:p \"x\\u00e9y\"^^<http://t> .\n\
                     e:b e:q 1, 2.5, -3e1; e:r \"\"\"m\"\"\" .\n\
                     e:c e:s _:bn, [ e:t (e:u) ] .";
        let mut bytes = valid.as_bytes().to_vec();
        let pos = pos.min(bytes.len() - 1);
        bytes[pos] = byte;
        let mutated = String::from_utf8_lossy(&bytes);
        let (_, _) = shapex_rdf::turtle::parse_lenient(&mutated);
    }

    /// The ShExC parser never panics.
    #[test]
    fn shexc_parser_never_panics(input in ".{0,200}") {
        let _ = shapex_shex::shexc::parse(&input);
    }

    /// ShExC near-misses.
    #[test]
    fn shexc_parser_survives_mutations(cut in 0usize..100, insert in ".{0,4}") {
        let valid = "PREFIX e: <http://e/>\n<S> { e:a [1 2]+, e:b IRI? | ^e:c NOT LITERAL{1,3} }";
        let cut = cut.min(valid.len());
        let mut mutated = String::new();
        mutated.push_str(&valid[..cut]);
        mutated.push_str(&insert);
        mutated.push_str(&valid[cut..]);
        let _ = shapex_shex::shexc::parse(&mutated);
    }

    /// The SPARQL parser never panics.
    #[test]
    fn sparql_parser_never_panics(input in ".{0,200}") {
        let _ = shapex_sparql::parser::parse(&input);
    }

    /// The string-regex pattern parser never panics.
    #[test]
    fn pattern_parser_never_panics(input in ".{0,60}") {
        let _ = Regex::new(&input);
    }
}

// ---- string-regex matcher agreement on random ASTs ----

fn arb_re() -> impl Strategy<Value = Rc<Re>> {
    let leaf = prop_oneof![
        Just(Rc::new(Re::Epsilon)),
        prop_oneof![Just('a'), Just('b'), Just('c')].prop_map(Re::char),
        Just(Re::class(CharClass::ranges(vec![('a', 'b')], false))),
        Just(Re::class(CharClass::ranges(vec![('b', 'c')], true))),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Re::concat(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Re::alt(a, b)),
            inner.prop_map(Re::star),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Alternation is canonical: commutative and associative at the
    /// constructor level (required for derivative-state convergence).
    #[test]
    fn alt_is_canonical(a in arb_re(), b in arb_re(), c in arb_re()) {
        prop_assert_eq!(Re::alt(a.clone(), b.clone()), Re::alt(b.clone(), a.clone()));
        prop_assert_eq!(
            Re::alt(Re::alt(a.clone(), b.clone()), c.clone()),
            Re::alt(a.clone(), Re::alt(b.clone(), c.clone()))
        );
        prop_assert_eq!(Re::alt(a.clone(), a.clone()), a.clone());
    }

    /// Derivative matching ≡ memoised derivative matching ≡ naive
    /// backtracking, on arbitrary regex ASTs and short inputs.
    #[test]
    fn string_matchers_agree(re in arb_re(), input in "[abc]{0,7}") {
        let source = Regex::from_ast(re.clone());
        let derivative = source.is_match(&input);
        let memoised = source.is_match_memo(&input);
        let backtracking = backtrack_match(&re, &input);
        prop_assert_eq!(derivative, memoised, "memo diverges on {:?} / {:?}", re, input);
        prop_assert_eq!(derivative, backtracking, "backtracking diverges on {:?} / {:?}", re, input);
    }
}

// ---- resource governance: pathological fixtures trip budgets fast ----

fn pathological(name: &str) -> (shapex_shex::Schema, shapex_rdf::graph::Dataset) {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fixtures/_pathological");
    let schema_src = std::fs::read_to_string(root.join(format!("{name}.shex")))
        .unwrap_or_else(|e| panic!("{name}.shex: {e}"));
    let data_src = std::fs::read_to_string(root.join(format!("{name}.ttl")))
        .unwrap_or_else(|e| panic!("{name}.ttl: {e}"));
    let schema = shapex_shex::shexc::parse(&schema_src).unwrap();
    let ds = shapex_rdf::turtle::parse(&data_src).unwrap();
    (schema, ds)
}

fn check_under(
    schema: &shapex_shex::Schema,
    ds: &mut shapex_rdf::graph::Dataset,
    node_iri: &str,
    shape: &str,
    budget: Budget,
) -> Outcome {
    let config = EngineConfig {
        budget,
        ..EngineConfig::default()
    };
    let mut engine = Engine::compile(schema, &mut ds.pool, config).unwrap();
    let node = ds.iri(node_iri).expect("focus node in data");
    let shape = engine.shape_id(&ShapeLabel::new(shape)).expect("shape");
    engine.check_id(&ds.graph, &ds.pool, node, shape)
}

/// The 2000-node cycle needs recursion ~= the cycle length: a small depth
/// budget must trip it quickly and report the depth axis.
#[test]
fn deep_recursion_trips_depth_budget_fast() {
    let (schema, mut ds) = pathological("deep_recursion");
    let start = Instant::now();
    let outcome = check_under(
        &schema,
        &mut ds,
        "http://e/n0",
        "Chain",
        Budget::UNLIMITED.with_max_depth(64),
    );
    let e = outcome.exhaustion().expect("depth budget should trip");
    assert_eq!(e.resource, Resource::Depth);
    assert!(e.spent <= e.limit);
    assert!(
        start.elapsed() < Duration::from_secs(1),
        "exhaustion took {:?}",
        start.elapsed()
    );
}

/// Without a budget the same cycle conforms (greatest fixpoint: the cyclic
/// assumption is coinductively sound) — exhaustion is a resource verdict,
/// not an answer.
#[test]
fn deep_recursion_conforms_unlimited() {
    // The 2000-deep coinductive proof outgrows the 2 MiB default test
    // stack; an ungoverned run gets a worker thread with room to recurse
    // (exactly the OS-fault mode `max_depth` exists to pre-empt).
    std::thread::Builder::new()
        .stack_size(64 * 1024 * 1024)
        .spawn(|| {
            let (schema, mut ds) = pathological("deep_recursion");
            let outcome = check_under(&schema, &mut ds, "http://e/n0", "Chain", Budget::UNLIMITED);
            assert!(outcome.matched(), "cycle should conform coinductively");
        })
        .unwrap()
        .join()
        .unwrap();
}

/// 18 same-predicate conjuncts with pseudo-random value sets: every
/// triple has a distinct satisfaction profile, the And-rule derivative
/// branches exponentially, and step and arena budgets must both trip in
/// well under a second.
#[test]
fn interleave_trips_step_and_arena_budgets_fast() {
    let (schema, mut ds) = pathological("interleave");
    let start = Instant::now();
    let outcome = check_under(
        &schema,
        &mut ds,
        "http://e/big",
        "Blowup",
        Budget::steps(10_000),
    );
    let e = outcome.exhaustion().expect("step budget should trip");
    assert_eq!(e.resource, Resource::Steps);
    assert_eq!(e.spent, 10_000);

    let outcome = check_under(
        &schema,
        &mut ds,
        "http://e/big",
        "Blowup",
        Budget::UNLIMITED.with_max_arena_nodes(2_000),
    );
    let e = outcome.exhaustion().expect("arena budget should trip");
    assert_eq!(e.resource, Resource::ArenaNodes);
    assert!(
        start.elapsed() < Duration::from_secs(1),
        "exhaustion took {:?}",
        start.elapsed()
    );
}

/// The 5000-object fan-out crosses the deadline poll interval, so an
/// already-expired deadline trips on the wall-clock axis; a tiny step
/// budget trips on steps; and unlimited still answers (it is linear for
/// the derivative engine).
#[test]
fn fanout_budget_axes() {
    let (schema, mut ds) = pathological("fanout");
    let outcome = check_under(&schema, &mut ds, "http://e/hub", "Fan", Budget::steps(100));
    let e = outcome.exhaustion().expect("step budget should trip");
    assert_eq!(e.resource, Resource::Steps);
    assert_eq!(e.spent, e.limit);

    let outcome = check_under(
        &schema,
        &mut ds,
        "http://e/hub",
        "Fan",
        Budget::UNLIMITED.with_deadline(Duration::ZERO),
    );
    let e = outcome.exhaustion().expect("expired deadline should trip");
    assert_eq!(e.resource, Resource::WallClock);

    let outcome = check_under(&schema, &mut ds, "http://e/hub", "Fan", Budget::UNLIMITED);
    assert!(outcome.matched(), "all 5000 objects are literals");
}

/// Per-node fault isolation: in one `type_all` run over a graph holding
/// both a pathological node and a healthy one, the blown pair lands in
/// `typing.exhausted` while the healthy node still gets its definitive
/// (and correct) typing.
#[test]
fn type_all_isolates_pathological_node() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fixtures/_pathological");
    let schema_src =
        std::fs::read_to_string(root.join("interleave.shex")).unwrap() + "\n<Ok> { e:q [1] }\n";
    let data_src =
        std::fs::read_to_string(root.join("interleave.ttl")).unwrap() + "e:good e:q 1 .\n";
    let schema = shapex_shex::shexc::parse(&schema_src).unwrap();
    let mut ds = shapex_rdf::turtle::parse(&data_src).unwrap();
    let config = EngineConfig {
        budget: Budget::steps(10_000),
        ..EngineConfig::default()
    };
    let mut engine = Engine::compile(&schema, &mut ds.pool, config).unwrap();
    let typing = engine.type_all(&ds.graph, &ds.pool);

    let good = ds.iri("http://e/good").unwrap();
    let big = ds.iri("http://e/big").unwrap();
    let ok_shape = engine.shape_id(&ShapeLabel::new("Ok")).unwrap();
    let blowup = engine.shape_id(&ShapeLabel::new("Blowup")).unwrap();

    assert!(typing.is_partial(), "the blowup pair should exhaust");
    assert!(
        typing.has(good, ok_shape),
        "healthy node must still be typed correctly"
    );
    assert!(
        !typing.has(big, blowup),
        "an exhausted pair must not be asserted in the typing"
    );
    assert!(
        typing
            .exhausted
            .iter()
            .any(|&(n, s, _)| n == big && s == blowup),
        "the blown pair must be reported in typing.exhausted"
    );
    // The exhausted pair is retryable: a bigger budget on the same engine
    // must not be poisoned by leftover state from the blown run.
    engine.set_budget(Budget::UNLIMITED.with_max_depth(1_000));
    let retry = engine.check_id(&ds.graph, &ds.pool, good, ok_shape);
    assert!(retry.matched());
    let stats = engine.stats();
    assert!(stats.exhausted_checks >= 1, "{stats}");
}

/// The backtracking baseline under a budget fails cleanly on the blow-up
/// and still answers healthy nodes afterwards (per-node meters).
#[test]
fn backtracker_exhausts_cleanly_and_isolates() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fixtures/_pathological");
    let schema_src =
        std::fs::read_to_string(root.join("interleave.shex")).unwrap() + "\n<Ok> { e:q [1] }\n";
    let data_src =
        std::fs::read_to_string(root.join("interleave.ttl")).unwrap() + "e:good e:q 1 .\n";
    let schema = shapex_shex::shexc::parse(&schema_src).unwrap();
    let ds = shapex_rdf::turtle::parse(&data_src).unwrap();
    let validator = BacktrackValidator::with_config(
        &schema,
        BtConfig {
            budget: Budget::steps(10_000),
        },
    )
    .unwrap();
    let big = ds.iri("http://e/big").unwrap();
    let good = ds.iri("http://e/good").unwrap();
    let start = Instant::now();
    let err = validator
        .check(&ds.graph, &ds.pool, big, &ShapeLabel::new("Blowup"))
        .unwrap_err();
    match err {
        BtError::ResourceExhausted(e) => {
            assert_eq!(e.resource, Resource::Steps);
            assert!(e.spent <= e.limit);
        }
        other => panic!("expected exhaustion, got {other}"),
    }
    assert!(start.elapsed() < Duration::from_secs(1));
    // Fresh meter per node: the healthy node is unaffected.
    let ok = validator
        .check(&ds.graph, &ds.pool, good, &ShapeLabel::new("Ok"))
        .unwrap();
    assert!(ok);
}

// ---- budget safety under random workloads and random budgets ----

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any workload × any small budget: validation never panics, always
    /// terminates with a structured outcome, respects `spent <= limit`,
    /// and — crucially — a definitive answer under a budget equals the
    /// unlimited answer (budgets must not change verdicts).
    #[test]
    fn derivative_budget_safety(
        family in 0usize..5,
        size in 1usize..10,
        steps in 1u64..3_000,
        depth in 1u32..48,
        arena in 1usize..3_000,
    ) {
        let w = match family {
            0 => shapex_workloads::example8_neighbourhood(size),
            1 => shapex_workloads::and_width(size.min(6), 2),
            2 => shapex_workloads::balanced_ab(size),
            3 => shapex_workloads::alternation_fanout(3, size),
            _ => shapex_workloads::repeat_bounds(1, size as u32, size),
        };
        let mut w = w;
        let schema = shapex_shex::shexc::parse(&w.schema).unwrap();
        let budget = Budget::steps(steps)
            .with_max_depth(depth)
            .with_max_arena_nodes(arena);
        let config = EngineConfig { budget, ..EngineConfig::default() };
        let mut engine = Engine::compile(&schema, &mut w.dataset.pool, config).unwrap();
        let shape = engine.shape_id(&ShapeLabel::new(w.shape.as_str())).unwrap();
        for (i, iri) in w.focus.iter().enumerate() {
            let node = w.dataset.iri(iri).unwrap();
            match engine.check_id(&w.dataset.graph, &w.dataset.pool, node, shape) {
                Outcome::Exhausted(e) => {
                    prop_assert!(e.spent <= e.limit, "{e}");
                }
                definitive => {
                    // Budgets never flip answers.
                    prop_assert_eq!(
                        definitive.matched(),
                        w.expected[i],
                        "budget changed the verdict for {}", iri
                    );
                }
            }
        }
        // Stats render without panicking and record any exhaustion.
        let _ = engine.stats().to_string();
    }

    /// Same safety envelope for the backtracking baseline.
    #[test]
    fn backtracker_budget_safety(
        size in 1usize..8,
        steps in 1u64..2_000,
        depth in 1u32..48,
    ) {
        let w = shapex_workloads::and_width(size, 2);
        let schema = shapex_shex::shexc::parse(&w.schema).unwrap();
        let budget = Budget::steps(steps).with_max_depth(depth);
        let validator = BacktrackValidator::with_config(&schema, BtConfig { budget }).unwrap();
        let label = ShapeLabel::new(w.shape.as_str());
        for (i, iri) in w.focus.iter().enumerate() {
            let node = w.dataset.iri(iri).unwrap();
            match validator.check(&w.dataset.graph, &w.dataset.pool, node, &label) {
                Err(BtError::ResourceExhausted(e)) => {
                    prop_assert!(e.spent <= e.limit, "{e}");
                }
                Err(other) => prop_assert!(false, "unexpected error: {}", other),
                Ok(got) => prop_assert_eq!(got, w.expected[i]),
            }
        }
    }
}

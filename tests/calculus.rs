//! Differential tests for the schema calculus (emptiness, containment,
//! schema-delta revalidation, empty-branch pruning) against the
//! validation engine as ground truth.
//!
//! Emptiness and containment verdicts are *proofs* about bag languages;
//! the engine decides membership for concrete neighbourhoods. Every
//! neighbourhood expressible as a set of `(predicate, value)` triples
//! over a tiny alphabet is enumerated exhaustively, giving one-sided
//! oracles: an UNSAT shape must match no enumerated neighbourhood, and a
//! Contained pair must never show an enumerated counterexample. (The
//! converses are not checkable this way — a witness may need multiplicity
//! above one, which RDF's set semantics cannot express over a fixed
//! value alphabet.)

use proptest::prelude::*;

use shapex::{
    containment, emptiness, prune_empty_branches, schema_diff, Budget, Closure, CompiledSchema,
    Engine, EngineConfig, ShapeId, Simplify, Verdict,
};
use shapex_rdf::graph::Dataset;
use shapex_rdf::pool::TermPool;
use shapex_rdf::term::{Literal, Term};
use shapex_shex::ast::{ArcConstraint, ShapeExpr, ShapeLabel};
use shapex_shex::constraint::{NodeConstraint, ValueSetValue};
use shapex_shex::sat::Sat3;
use shapex_shex::schema::Schema;

const PREDS: [&str; 2] = ["http://e/p0", "http://e/p1"];
const VALUES: [i64; 3] = [1, 2, 3];

/// A random value-set constraint over VALUES.
fn arb_constraint() -> impl Strategy<Value = NodeConstraint> {
    proptest::collection::btree_set(0usize..VALUES.len(), 1..=VALUES.len()).prop_map(|vals| {
        NodeConstraint::ValueSet(
            vals.into_iter()
                .map(|i| ValueSetValue::Term(Term::Literal(Literal::integer(VALUES[i]))))
                .collect(),
        )
    })
}

fn arb_arc() -> impl Strategy<Value = ShapeExpr> {
    (0usize..PREDS.len(), arb_constraint())
        .prop_map(|(p, c)| ShapeExpr::arc(ArcConstraint::value(PREDS[p], c)))
}

/// Random shape expressions of bounded depth over the tiny vocabulary.
fn arb_expr() -> impl Strategy<Value = ShapeExpr> {
    arb_arc().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(ShapeExpr::star),
            inner.clone().prop_map(ShapeExpr::plus),
            inner.clone().prop_map(ShapeExpr::opt),
            (inner.clone(), 0u32..=2, 0u32..=2).prop_map(|(e, m, extra)| ShapeExpr::repeat(
                e,
                m,
                Some(m + extra)
            )),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ShapeExpr::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| ShapeExpr::or(a, b)),
        ]
    })
}

/// Every neighbourhood expressible over PREDS × VALUES as an RDF set of
/// triples — all 2^6 subsets, indexed by bit mask.
fn all_bags() -> Vec<Vec<(usize, i64)>> {
    let pairs: Vec<(usize, i64)> = (0..PREDS.len())
        .flat_map(|p| VALUES.iter().map(move |&v| (p, v)))
        .collect();
    (0u32..1 << pairs.len())
        .map(|mask| {
            pairs
                .iter()
                .enumerate()
                .filter(|&(i, _)| mask >> i & 1 == 1)
                .map(|(_, &pv)| pv)
                .collect()
        })
        .collect()
}

fn single(expr: &ShapeExpr) -> Schema {
    Schema::from_rules([(ShapeLabel::new("S"), expr.clone())]).expect("one rule")
}

/// The engine's membership verdict for every enumerated neighbourhood:
/// one node per bag, checked under closed (paper) semantics.
fn engine_matches(expr: &ShapeExpr, prune: bool) -> Vec<bool> {
    let schema = single(expr);
    let mut ds = Dataset::new();
    let bags = all_bags();
    let nodes: Vec<String> = (0..bags.len()).map(|m| format!("http://e/n{m}")).collect();
    for (m, bag) in bags.iter().enumerate() {
        for &(p, v) in bag {
            ds.insert(
                Term::iri(nodes[m].as_str()),
                Term::iri(PREDS[p]),
                Term::Literal(Literal::integer(v)),
            );
        }
        ds.pool.intern_iri(nodes[m].as_str());
    }
    let mut engine = Engine::compile(
        &schema,
        &mut ds.pool,
        EngineConfig {
            closure: Closure::Closed,
            prune,
            ..EngineConfig::default()
        },
    )
    .expect("compiles");
    nodes
        .iter()
        .map(|node| {
            let n = ds.iri(node).expect("node interned");
            engine
                .check(&ds.graph, &ds.pool, n, &"S".into())
                .expect("shape exists")
                .matched
        })
        .collect()
}

/// Compiles `a` and `b` into one shared term pool (predicate TermIds must
/// line up for the containment product) and returns the compiled pair.
fn compile_pair(a: &ShapeExpr, b: &ShapeExpr) -> (CompiledSchema, CompiledSchema, ShapeId) {
    let mut terms = TermPool::new();
    let ca = CompiledSchema::compile(&single(a), &mut terms, Simplify::default()).expect("a");
    let cb = CompiledSchema::compile(&single(b), &mut terms, Simplify::default()).expect("b");
    let id = ca.shape_id(&"S".into()).expect("label S");
    (ca, cb, id)
}

/// Budget for one random containment query: enough that small products
/// decide exactly, with an arena cap so the occasional derivative-chain
/// explosion is cut off early instead of grinding. Cases that exhaust it
/// are simply skipped by the one-sided oracles below (exhaustion is
/// itself a legal outcome — see `containment_budget_exhausts_cleanly`).
fn prop_budget() -> Budget {
    Budget::steps(50_000).with_max_arena_nodes(10_000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// UNSAT is an exact proof: a shape the calculus declares empty must
    /// match no enumerated neighbourhood under the engine.
    #[test]
    fn emptiness_never_calls_a_matchable_shape_empty(expr in arb_expr()) {
        let schema = single(&expr);
        let mut terms = TermPool::new();
        let compiled =
            CompiledSchema::compile(&schema, &mut terms, Simplify::default()).expect("compiles");
        if emptiness(&compiled)[0] == Sat3::Unsat {
            let matched = engine_matches(&expr, false);
            for (m, ok) in matched.iter().enumerate() {
                prop_assert!(
                    !ok,
                    "UNSAT shape matched neighbourhood {m:#08b}: {expr:?}"
                );
            }
        }
    }

    /// Contained is an exact proof of language inclusion: no enumerated
    /// neighbourhood may match the sub-shape but not the super-shape.
    #[test]
    fn containment_shows_no_enumerated_counterexample(a in arb_expr(), b in arb_expr()) {
        let (ca, cb, id) = compile_pair(&a, &b);
        let verdict = containment(&ca, id, &cb, id, Closure::Closed, &prop_budget());
        if let Verdict::Contained = verdict {
            let in_a = engine_matches(&a, false);
            let in_b = engine_matches(&b, false);
            for m in 0..in_a.len() {
                prop_assert!(
                    !in_a[m] || in_b[m],
                    "Contained, but neighbourhood {m:#08b} matches {a:?} and not {b:?}"
                );
            }
        }
    }

    /// Containment of a shape in itself always holds: the product may
    /// exhaust its budget on a huge state space, but it must never
    /// *disprove* `L(e) ⊆ L(e)`.
    #[test]
    fn containment_is_reflexive(expr in arb_expr()) {
        let (ca, cb, id) = compile_pair(&expr, &expr);
        let verdict = containment(&ca, id, &cb, id, Closure::Closed, &prop_budget());
        prop_assert!(
            matches!(verdict, Verdict::Contained | Verdict::Exhausted(_)),
            "self-containment of {expr:?} gave {verdict}"
        );
    }

    /// Empty-branch pruning is a language-preserving rewrite: the engine's
    /// verdict for every enumerated neighbourhood is identical with the
    /// pass on and off.
    #[test]
    fn prune_preserves_every_engine_verdict(expr in arb_expr()) {
        prop_assert_eq!(engine_matches(&expr, false), engine_matches(&expr, true));
    }
}

const OLD_SCHEMA: &str = "\
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
<Person> { foaf:age xsd:integer , foaf:name xsd:string+ }
<Thing> { foaf:name . }
";

const NEW_SCHEMA: &str = "\
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
<Person> { foaf:age xsd:integer , foaf:name xsd:string* }
<Thing> { foaf:name . }
";

const DELTA_DATA: &str = "\
@prefix : <http://example.org/> .
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
:a foaf:age 23; foaf:name \"A\" .
:b foaf:age 34; foaf:name \"B\", \"Bee\" .
:c foaf:age 50 .
:d foaf:name \"D\" .
";

/// Schema-delta revalidation (classify via `schema_diff`, transplant the
/// reusable shapes' verdicts, re-type) produces a typing identical to a
/// from-scratch build of the new schema — at any worker count.
#[test]
fn schema_delta_typing_matches_scratch_at_any_jobs() {
    let old = shapex_shex::shexc::parse(OLD_SCHEMA).expect("old schema");
    let new = shapex_shex::shexc::parse(NEW_SCHEMA).expect("new schema");
    for jobs in [1, 4] {
        let mut ds = shapex_rdf::turtle::parse(DELTA_DATA).expect("data");
        let config = EngineConfig::default();
        let mut old_engine = Engine::compile(&old, &mut ds.pool, config).expect("old engine");
        old_engine.type_all_par(&ds.graph, &ds.pool, jobs);

        let diff = schema_diff(
            &old,
            &new,
            config.simplify,
            config.closure,
            &Budget::UNLIMITED,
        )
        .expect("diff");
        assert!(
            diff.changed.iter().any(|l| l.as_str() == "Person"),
            "Person loosened string+ to string*"
        );
        assert!(
            diff.reusable.iter().any(|l| l.as_str() == "Thing"),
            "Thing untouched and reference-free"
        );

        let mut warm = Engine::compile(&new, &mut ds.pool, config).expect("new engine");
        let moved = warm.transplant_verdicts(&old_engine, &diff.reusable);
        assert!(moved > 0, "some <Thing> verdicts must carry over");
        let warm_typing = warm.type_all_par(&ds.graph, &ds.pool, jobs);

        let mut scratch = Engine::compile(&new, &mut ds.pool, config).expect("scratch engine");
        let scratch_typing = scratch.type_all_par(&ds.graph, &ds.pool, jobs);
        assert_eq!(warm_typing, scratch_typing, "jobs={jobs}");
    }
}

/// An oversized containment product exhausts its budget with a clean
/// `Exhausted` verdict — never a hang, never a wrong answer.
#[test]
fn containment_budget_exhausts_cleanly() {
    let any = || ShapeExpr::arc(ArcConstraint::value(PREDS[0], NodeConstraint::Any));
    let a = ShapeExpr::repeat(any(), 1, Some(400));
    let b = ShapeExpr::star(any());
    let (ca, cb, id) = compile_pair(&a, &b);
    let verdict = containment(&ca, id, &cb, id, Closure::Closed, &Budget::steps(50));
    assert!(
        matches!(verdict, Verdict::Exhausted(_)),
        "expected exhaustion, got {verdict}"
    );
}

/// The pruning pass really fires on a provably dead alternation branch,
/// and the pruned schema's typing is unchanged.
#[test]
fn prune_drops_dead_branch_and_preserves_typing() {
    let schema = shapex_shex::shexc::parse(
        "PREFIX e: <http://e/>\n<S> { e:p [1 2] , ( e:q [] | e:r [3] ) }\n",
    )
    .expect("schema");
    let mut terms = TermPool::new();
    let mut compiled =
        CompiledSchema::compile(&schema, &mut terms, Simplify::default()).expect("compiles");
    let pruned = prune_empty_branches(&mut compiled);
    assert!(pruned >= 1, "the `e:q []` branch is provably empty");

    let data = "\
@prefix : <http://example.org/> .
@prefix e: <http://e/> .
:x e:p 1; e:r 3 .
:y e:p 2; e:q 9 .
";
    let mut typings = Vec::new();
    for prune in [false, true] {
        let mut ds = shapex_rdf::turtle::parse(data).expect("data");
        let mut engine = Engine::compile(
            &schema,
            &mut ds.pool,
            EngineConfig {
                prune,
                ..EngineConfig::default()
            },
        )
        .expect("engine");
        typings.push(engine.type_all_par(&ds.graph, &ds.pool, 1));
    }
    assert_eq!(typings[0], typings[1], "pruning changed the typing");
}

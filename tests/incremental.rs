//! Differential testing for incremental revalidation: after any
//! [`GraphDelta`], `Engine::revalidate` over the mutated graph must produce
//! the same typing as a from-scratch engine — including on recursive
//! referencing schemas, under resource budgets, and with parallel workers —
//! and applying a delta followed by its inverse must restore the original
//! typing byte-for-byte.

use proptest::prelude::*;

use shapex::{Engine, EngineConfig};
use shapex_rdf::delta::GraphDelta;
use shapex_rdf::graph::{Dataset, Triple};
use shapex_rdf::term::{Literal, Term};
use shapex_shex::ast::{ArcConstraint, ShapeExpr, ShapeLabel};
use shapex_shex::constraint::{NodeConstraint, ValueSetValue};
use shapex_shex::schema::Schema;

const PREDS: [&str; 3] = ["http://e/p0", "http://e/p1", "http://e/p2"];
const VALUES: [i64; 3] = [1, 2, 3];
const NODES: [&str; 4] = ["http://e/n0", "http://e/n1", "http://e/n2", "http://e/n3"];
const LINK: &str = "http://e/link";

/// A random value-set constraint over VALUES.
fn arb_constraint() -> impl Strategy<Value = NodeConstraint> {
    proptest::collection::btree_set(0usize..VALUES.len(), 1..=VALUES.len()).prop_map(|vals| {
        NodeConstraint::ValueSet(
            vals.into_iter()
                .map(|i| ValueSetValue::Term(Term::Literal(Literal::integer(VALUES[i]))))
                .collect(),
        )
    })
}

/// A two-shape schema where `S` carries a ref arc to `T` — or to itself,
/// making it recursive — so invalidation must chase reference edges.
fn arb_ref_schema() -> impl Strategy<Value = Schema> {
    (
        arb_constraint(),
        arb_constraint(),
        0usize..2, // 0 = @T, 1 = @S (recursive)
        prop_oneof![
            Just((0u32, None)),
            Just((1u32, None)),
            Just((0u32, Some(1u32))),
            Just((1u32, Some(1u32))),
        ],
    )
        .prop_map(|(c_t, c_s, target, (min, max))| {
            let target_label = if target == 0 { "T" } else { "S" };
            let ref_arc = ShapeExpr::repeat(
                ShapeExpr::arc(ArcConstraint::reference(LINK, target_label)),
                min,
                max,
            );
            let s_expr = ShapeExpr::and(
                ShapeExpr::opt(ShapeExpr::arc(ArcConstraint::value(PREDS[0], c_s))),
                ref_arc,
            );
            let t_expr = ShapeExpr::opt(ShapeExpr::arc(ArcConstraint::value(PREDS[1], c_t)));
            Schema::from_rules([
                (ShapeLabel::new("S"), s_expr),
                (ShapeLabel::new("T"), t_expr),
            ])
            .expect("two rules")
        })
}

/// One abstract triple: a value arc `(node, pred, Some(value))` or a link
/// arc `(node, target, None)`.
type Spec = (usize, usize, Option<usize>);

fn arb_triples(max: usize) -> impl Strategy<Value = Vec<Spec>> {
    proptest::collection::btree_set(
        prop_oneof![
            (0usize..NODES.len(), 0usize..2, 0usize..VALUES.len()).prop_map(|(n, p, v)| (
                n,
                p,
                Some(v)
            )),
            (0usize..NODES.len(), 0usize..NODES.len()).prop_map(|(n, t)| (n, t, None)),
        ],
        0..max,
    )
    .prop_map(|set| set.into_iter().collect())
}

/// A random edit: a subset of the base triples to remove (by index mask)
/// plus freshly generated triples to add. Additions may duplicate base
/// triples and removals may miss — `apply_delta` tolerates both, and the
/// invalidation must too.
fn arb_delta() -> impl Strategy<Value = (u32, Vec<Spec>)> {
    (0u32..u32::MAX, arb_triples(5))
}

fn build_dataset(triples: &[Spec]) -> Dataset {
    let mut ds = Dataset::new();
    for &spec in triples {
        let t = intern_spec(&mut ds, spec);
        ds.graph.insert(t);
    }
    for n in NODES {
        ds.pool.intern_iri(n);
    }
    ds
}

fn intern_spec(ds: &mut Dataset, (n, x, v): Spec) -> Triple {
    let subject = ds.pool.intern_iri(NODES[n]);
    match v {
        Some(vi) => Triple {
            subject,
            predicate: ds.pool.intern_iri(PREDS[x]),
            object: ds.pool.intern(Term::Literal(Literal::integer(VALUES[vi]))),
        },
        None => Triple {
            subject,
            predicate: ds.pool.intern_iri(LINK),
            object: ds.pool.intern_iri(NODES[x]),
        },
    }
}

/// Materializes the abstract edit against a dataset's pool.
fn build_delta(
    ds: &mut Dataset,
    base: &[Spec],
    (remove_mask, additions): &(u32, Vec<Spec>),
) -> GraphDelta {
    let mut delta = GraphDelta::new();
    for (i, &spec) in base.iter().enumerate() {
        if remove_mask & (1 << (i % 32)) != 0 {
            let t = intern_spec(ds, spec);
            delta.removed.push(t);
        }
    }
    for &spec in additions {
        let t = intern_spec(ds, spec);
        delta.added.push(t);
    }
    delta
}

fn incremental_engine(schema: &Schema, ds: &mut Dataset, config: EngineConfig) -> Engine {
    let config = EngineConfig {
        incremental: true,
        ..config
    };
    Engine::compile(schema, &mut ds.pool, config).expect("compiles")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The tentpole guarantee: after an arbitrary delta, the incremental
    /// typing equals a from-scratch typing of the mutated graph — exactly,
    /// including on recursive schemas.
    #[test]
    fn revalidate_matches_scratch(
        schema in arb_ref_schema(),
        base in arb_triples(8),
        edit in arb_delta()
    ) {
        let mut ds = build_dataset(&base);
        let mut engine = incremental_engine(&schema, &mut ds, EngineConfig::default());
        engine.type_all(&ds.graph, &ds.pool);
        let delta = build_delta(&mut ds, &base, &edit);
        ds.apply_delta(&delta);
        let incremental = engine.revalidate(&ds.graph, &ds.pool, &delta).expect("delta applied");
        let mut fresh = Engine::new(&schema, &mut ds.pool).expect("compiles");
        let scratch = fresh.type_all(&ds.graph, &ds.pool);
        prop_assert_eq!(
            &incremental, &scratch,
            "incremental diverges from scratch on base={:?} edit={:?}", base, edit
        );
    }

    /// Same guarantee through the sharded parallel path: `revalidate_par`
    /// at several worker counts equals the scratch typing.
    #[test]
    fn revalidate_par_matches_scratch(
        schema in arb_ref_schema(),
        base in arb_triples(8),
        edit in arb_delta()
    ) {
        for jobs in [2usize, 4] {
            let mut ds = build_dataset(&base);
            let mut engine = incremental_engine(&schema, &mut ds, EngineConfig::default());
            engine.type_all_par(&ds.graph, &ds.pool, jobs);
            let delta = build_delta(&mut ds, &base, &edit);
            ds.apply_delta(&delta);
            let incremental = engine
                .revalidate_par(&ds.graph, &ds.pool, &delta, jobs)
                .expect("delta applied");
            let mut fresh = Engine::new(&schema, &mut ds.pool).expect("compiles");
            let scratch = fresh.type_all(&ds.graph, &ds.pool);
            prop_assert_eq!(
                &incremental, &scratch,
                "jobs={} diverges on base={:?} edit={:?}", jobs, base, edit
            );
        }
    }

    /// Under a per-query step budget, *which* pairs exhaust may differ
    /// (the warm memo changes how much work each query needs), but every
    /// pair answered by both runs must get the same verdict.
    #[test]
    fn revalidate_agrees_under_budget(
        schema in arb_ref_schema(),
        base in arb_triples(8),
        edit in arb_delta(),
        steps in 8u64..200
    ) {
        let budget = shapex::Budget::steps(steps);
        let config = EngineConfig { budget, ..EngineConfig::default() };
        let mut ds = build_dataset(&base);
        let mut engine = incremental_engine(&schema, &mut ds, config);
        engine.type_all(&ds.graph, &ds.pool);
        let delta = build_delta(&mut ds, &base, &edit);
        ds.apply_delta(&delta);
        let incremental = engine.revalidate(&ds.graph, &ds.pool, &delta).expect("delta applied");
        let mut fresh = Engine::compile(&schema, &mut ds.pool, config).expect("compiles");
        let scratch = fresh.type_all(&ds.graph, &ds.pool);
        let ex_inc: std::collections::HashSet<_> =
            incremental.exhausted.iter().map(|&(n, s, _)| (n, s)).collect();
        let ex_scr: std::collections::HashSet<_> =
            scratch.exhausted.iter().map(|&(n, s, _)| (n, s)).collect();
        for node_iri in NODES {
            let node = ds.iri(node_iri).expect("interned");
            for label in ["S", "T"] {
                let shape = fresh.shape_id(&label.into()).expect("shape exists");
                if ex_inc.contains(&(node, shape)) || ex_scr.contains(&(node, shape)) {
                    continue;
                }
                prop_assert_eq!(
                    incremental.has(node, shape),
                    scratch.has(node, shape),
                    "verdicts diverge on {} @{} (base={:?} edit={:?})",
                    node_iri, label, base, edit
                );
            }
        }
    }

    /// Round trip: applying a delta and then its inverse restores the
    /// original typing byte-for-byte (rendered output included), with
    /// metrics on and off.
    #[test]
    fn delta_roundtrip_restores_typing(
        schema in arb_ref_schema(),
        base in arb_triples(8),
        edit in arb_delta()
    ) {
        for metrics in [false, true] {
            let config = EngineConfig { metrics, ..EngineConfig::default() };
            let mut ds = build_dataset(&base);
            let mut engine = incremental_engine(&schema, &mut ds, config);
            let before = engine.type_all(&ds.graph, &ds.pool);
            let rendered_before =
                before.render(&ds.pool, &|s| engine.label_of(s).clone());
            let delta = build_delta(&mut ds, &base, &edit);
            let applied = ds.apply_delta(&delta);
            engine.revalidate(&ds.graph, &ds.pool, &delta).expect("delta applied");
            // Structural revert plus the *effective* inverse's revalidation.
            // (The logical `delta.inverse()` may claim to add triples a
            // missed removal never touched — the effective inverse from
            // the AppliedDelta is what actually describes the revert.)
            ds.revert_delta(&applied);
            let inverse = GraphDelta {
                removed: applied.added_triples().collect(),
                added: applied.removed_triples().collect(),
            };
            let after = engine.revalidate(&ds.graph, &ds.pool, &inverse).expect("reverted");
            let rendered_after =
                after.render(&ds.pool, &|s| engine.label_of(s).clone());
            prop_assert_eq!(
                &before, &after,
                "metrics={}: round trip changed the typing (base={:?} edit={:?})",
                metrics, base, edit
            );
            prop_assert_eq!(rendered_before, rendered_after);
        }
    }

    /// An empty delta invalidates nothing and retypes nothing: every pair
    /// is answered from the memo.
    #[test]
    fn empty_delta_retypes_nothing(
        schema in arb_ref_schema(),
        base in arb_triples(8)
    ) {
        let mut ds = build_dataset(&base);
        let mut engine = incremental_engine(&schema, &mut ds, EngineConfig::default());
        let before = engine.type_all(&ds.graph, &ds.pool);
        let after = engine
            .revalidate(&ds.graph, &ds.pool, &GraphDelta::new())
            .expect("empty delta");
        prop_assert_eq!(&before, &after);
        let stats = engine.stats();
        prop_assert_eq!(stats.invalidated_pairs, 0);
        prop_assert_eq!(stats.retyped_pairs, 0);
        let expected_pairs =
            ds.graph.subjects().count() as u64 * 2; // two shapes
        prop_assert_eq!(stats.reused_pairs, expected_pairs);
    }
}

/// A deterministic end-to-end check mirroring the CI smoke flow: a chain of
/// recursive references where an edit at the tail flips the whole chain.
#[test]
fn cascading_invalidation_through_reference_chain() {
    let schema =
        shapex_shex::shexc::parse("PREFIX e: <http://e/>\n<S> { e:p [1] | e:link @<S> }").unwrap();
    let mut ds = shapex_rdf::turtle::parse(
        "@prefix e: <http://e/> .\n\
         e:n0 e:link e:n1 .\n\
         e:n1 e:link e:n2 .\n\
         e:n2 e:p 2 .\n",
    )
    .unwrap();
    let mut engine = Engine::compile(
        &schema,
        &mut ds.pool,
        EngineConfig {
            incremental: true,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    let typing = engine.type_all(&ds.graph, &ds.pool);
    for n in ["n0", "n1", "n2"] {
        let node = ds.iri(&format!("http://e/{n}")).unwrap();
        assert_eq!(typing.shapes_of(node).count(), 0, "{n} should fail");
    }
    // Repair the tail: the fix must cascade through both referrers.
    let delta = shapex_rdf::delta::parse(
        "@prefix e: <http://e/> .\n- e:n2 e:p 2 .\n+ e:n2 e:p 1 .\n",
        &mut ds.pool,
    )
    .unwrap();
    ds.apply_delta(&delta);
    let typing = engine.revalidate(&ds.graph, &ds.pool, &delta).unwrap();
    for n in ["n0", "n1", "n2"] {
        let node = ds.iri(&format!("http://e/{n}")).unwrap();
        assert_eq!(typing.shapes_of(node).count(), 1, "{n} should now conform");
    }
    let mut fresh = Engine::new(&schema, &mut ds.pool).unwrap();
    assert_eq!(typing, fresh.type_all(&ds.graph, &ds.pool));
}

/// Fail-pre-fix: revalidating with a delta that was never applied to the
/// graph silently produced a typing computed over a stale dependency
/// index — the engine assumed the graph matched the delta. It must now be
/// a typed error, and the engine must stay usable afterwards.
#[test]
fn revalidate_unapplied_delta_is_a_typed_error() {
    use shapex::EngineError;

    let schema = shapex_shex::shexc::parse("PREFIX e: <http://e/>\n<S> { e:p [1 2] }").unwrap();
    let mut ds =
        shapex_rdf::turtle::parse("@prefix e: <http://e/> .\ne:a e:p 1 .\ne:b e:p 3 .\n").unwrap();
    let mut engine = Engine::compile(
        &schema,
        &mut ds.pool,
        EngineConfig {
            incremental: true,
            ..EngineConfig::default()
        },
    )
    .unwrap();
    engine.type_all(&ds.graph, &ds.pool);

    let delta = shapex_rdf::delta::parse(
        "@prefix e: <http://e/> .\n- e:b e:p 3 .\n+ e:b e:p 2 .\n",
        &mut ds.pool,
    )
    .unwrap();

    // Never applied: the added triple is absent.
    let err = engine
        .revalidate(&ds.graph, &ds.pool, &delta)
        .expect_err("unapplied delta must be rejected");
    assert!(
        matches!(&err, EngineError::StaleDelta { detail } if detail.contains("added triple")),
        "{err}"
    );

    // A removal-only delta that was never applied is caught by the other
    // arm: the triple it claims to have removed is still present.
    let removal_only =
        shapex_rdf::delta::parse("@prefix e: <http://e/> .\n- e:b e:p 3 .\n", &mut ds.pool)
            .unwrap();
    let err = engine
        .revalidate(&ds.graph, &ds.pool, &removal_only)
        .expect_err("unapplied removal must be rejected");
    assert!(
        matches!(&err, EngineError::StaleDelta { detail } if detail.contains("removed triple")),
        "{err}"
    );

    // The failed calls must not have disturbed the engine: applying the
    // delta for real now revalidates cleanly and matches scratch.
    ds.apply_delta(&delta);
    let typing = engine.revalidate(&ds.graph, &ds.pool, &delta).unwrap();
    let mut fresh = Engine::new(&schema, &mut ds.pool).unwrap();
    assert_eq!(typing, fresh.type_all(&ds.graph, &ds.pool));

    // Applying the same delta twice is set-idempotent, so a double apply
    // is indistinguishable from a single one at the graph level: the
    // consistency check documents (rather than detects) that case.
    ds.apply_delta(&delta);
    assert!(engine.revalidate(&ds.graph, &ds.pool, &delta).is_ok());
}

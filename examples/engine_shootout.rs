//! A miniature version of the benchmark suite: validate the same workloads
//! with all three strategies the paper discusses and print a comparison —
//! §5's backtracking matcher, §6–7's derivatives, and §3's
//! generate-SPARQL-and-run mapping.
//!
//! ```sh
//! cargo run --release --example engine_shootout
//! ```

use std::time::Instant;

use shapex::{Engine, EngineConfig};
use shapex_backtrack::{BacktrackValidator, BtConfig};
use shapex_shex::ast::ShapeLabel;
use shapex_shex::shexc;
use shapex_workloads::{and_width, example8_neighbourhood, flat_person_records, Workload};

fn main() {
    println!("== E1: Example 8 shape (a→[1] ‖ b→.*), growing neighbourhood ==");
    println!(
        "{:>10} {:>14} {:>12} {:>14} {:>20}",
        "triples", "derivative", "sorbe", "backtracking", "bt decompositions"
    );
    for b in [2usize, 4, 8, 12, 16, 20] {
        let d_us = time_derivative_config(example8_neighbourhood(b), true);
        let s_us = time_derivative_config(example8_neighbourhood(b), false);
        let (bt_us, decomps) = time_backtracking(example8_neighbourhood(b));
        println!(
            "{:>10} {:>12}µs {:>10}µs {:>14} {:>20}",
            b + 1,
            d_us,
            s_us,
            bt_us.map_or("budget!".to_string(), |v| format!("{v}µs")),
            decomps.map_or("-".to_string(), |d| d.to_string()),
        );
    }

    println!("\n== E2: And-width w (p1→.+ ‖ … ‖ pw→.+), 2 triples/branch ==");
    println!(
        "{:>10} {:>14} {:>14}",
        "width", "derivative", "backtracking"
    );
    for w in [1usize, 2, 3, 4, 5, 6] {
        let d_us = time_derivative(and_width(w, 2));
        let (bt_us, _) = time_backtracking(and_width(w, 2));
        println!(
            "{:>10} {:>12}µs {:>14}",
            w,
            d_us,
            bt_us.map_or("budget!".to_string(), |v| format!("{v}µs")),
        );
    }

    println!("\n== E7: flat person records, derivative vs generated SPARQL ==");
    println!(
        "{:>10} {:>14} {:>14}",
        "records", "derivative", "sparql-gen"
    );
    for n in [10usize, 50, 200] {
        let d_us = time_derivative(flat_person_records(n, 42));
        let s_us = time_sparql(flat_person_records(n, 42));
        println!("{:>10} {:>12}µs {:>12}µs", n, d_us, s_us);
    }
}

/// Validates every focus node with the derivative engine, checking the
/// workload's ground truth; returns elapsed microseconds.
fn time_derivative(w: Workload) -> u128 {
    time_derivative_config(w, true)
}

/// Same, selecting the general derivative path (`no_sorbe = true`) or the
/// default engine (SORBE fast path where shapes qualify).
fn time_derivative_config(mut w: Workload, no_sorbe: bool) -> u128 {
    let schema = shexc::parse(&w.schema).expect("schema parses");
    let mut engine = Engine::compile(
        &schema,
        &mut w.dataset.pool,
        EngineConfig {
            no_sorbe,
            ..EngineConfig::default()
        },
    )
    .expect("schema compiles");
    let label = ShapeLabel::new(w.shape.as_str());
    let start = Instant::now();
    for (iri, &expect) in w.focus.iter().zip(&w.expected) {
        let node = w.dataset.iri(iri).expect("focus node exists");
        let got = engine
            .check(&w.dataset.graph, &w.dataset.pool, node, &label)
            .expect("shape exists")
            .matched;
        assert_eq!(got, expect, "derivative engine wrong on {iri}");
    }
    start.elapsed().as_micros()
}

/// Same with the backtracking baseline; `None` time when the budget blows.
fn time_backtracking(w: Workload) -> (Option<u128>, Option<u64>) {
    let schema = shexc::parse(&w.schema).expect("schema parses");
    let validator = BacktrackValidator::with_config(
        &schema,
        BtConfig {
            budget: shapex::Budget::steps(20_000_000),
        },
    )
    .expect("schema compiles");
    let label = ShapeLabel::new(w.shape.as_str());
    let start = Instant::now();
    for (iri, &expect) in w.focus.iter().zip(&w.expected) {
        let node = w.dataset.iri(iri).expect("focus node exists");
        match validator.check(&w.dataset.graph, &w.dataset.pool, node, &label) {
            Ok(got) => assert_eq!(got, expect, "backtracking wrong on {iri}"),
            Err(_) => return (None, Some(validator.stats().decompositions)),
        }
    }
    (
        Some(start.elapsed().as_micros()),
        Some(validator.stats().decompositions),
    )
}

/// Generates the per-node ASK query and runs it on the mini SPARQL engine.
fn time_sparql(w: Workload) -> u128 {
    let schema = shexc::parse(&w.schema).expect("schema parses");
    let label = ShapeLabel::new(w.shape.as_str());
    let start = Instant::now();
    for (iri, &expect) in w.focus.iter().zip(&w.expected) {
        let q =
            shapex_sparql::generate_node_ask(&schema, &label, iri).expect("flat shape translates");
        let parsed = shapex_sparql::parser::parse(&q).expect("generated query parses");
        let got =
            shapex_sparql::ask(&parsed, &w.dataset.graph, &w.dataset.pool).expect("evaluates");
        assert_eq!(got, expect, "sparql mapping wrong on {iri}");
    }
    start.elapsed().as_micros()
}

//! Validating clinical observation records — the healthcare use case behind
//! the paper (one author is at the Mayo Clinic; ShEx grew out of exactly
//! this need to validate FHIR-style RDF).
//!
//! Shows the constraint vocabulary beyond datatypes: numeric facets,
//! PATTERN (backed by the Brzozowski string-regex engine), value sets with
//! IRI stems, NOT (the §10 negation extension), and inverse arcs.
//!
//! ```sh
//! cargo run --example clinical_records
//! ```

use shapex::{Engine, EngineConfig};
use shapex_rdf::turtle;
use shapex_shex::shexc;

const SCHEMA: &str = r#"
    PREFIX ex:  <http://clinic.example/>
    PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>

    # A blood-pressure observation:
    #  * a LOINC-style code from the coding namespace (IRI stem),
    #  * systolic/diastolic readings with physiologic bounds,
    #  * an ISO timestamp checked by PATTERN,
    #  * a status that must NOT be "entered-in-error",
    #  * a subject reference conforming to <Patient>.
    <Observation> {
      ex:code [<http://loinc.example/>~]
      , ex:systolic xsd:integer MININCLUSIVE 50 MAXEXCLUSIVE 260
      , ex:diastolic xsd:integer MININCLUSIVE 20 MAXEXCLUSIVE 200
      , ex:effective PATTERN "\\d{4}-\\d{2}-\\d{2}T\\d{2}:\\d{2}:\\d{2}"
      , ex:status NOT ["entered-in-error"]
      , ex:subject @<Patient>
    }

    # A patient: an MRN with a fixed format and a year of birth; the
    # inverse arc requires at least one record to point back here.
    # (Requiring @<Observation>+ instead would entangle every patient with
    # the validity of *all* its observations — see the coinduction tests.)
    <Patient> {
      ex:mrn LITERAL PATTERN "MRN-[0-9]{6}"
      , ex:birthYear xsd:integer MININCLUSIVE 1900 MAXINCLUSIVE 2026
      , ^ex:subject IRI+
    }
"#;

const DATA: &str = r#"
    @prefix ex:  <http://clinic.example/> .
    @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .

    ex:obs1 ex:code <http://loinc.example/85354-9> ;
        ex:systolic 120 ;
        ex:diastolic 80 ;
        ex:effective "2015-03-27T09:30:00" ;
        ex:status "final" ;
        ex:subject ex:patient1 .

    ex:patient1 ex:mrn "MRN-004217" ;
        ex:birthYear 1970 .

    # Implausible systolic reading.
    ex:obs2 ex:code <http://loinc.example/85354-9> ;
        ex:systolic 300 ;
        ex:diastolic 80 ;
        ex:effective "2015-03-27T10:00:00" ;
        ex:status "final" ;
        ex:subject ex:patient1 .

    # Voided record: status is entered-in-error.
    ex:obs3 ex:code <http://loinc.example/85354-9> ;
        ex:systolic 118 ;
        ex:diastolic 76 ;
        ex:effective "2015-03-27T11:00:00" ;
        ex:status "entered-in-error" ;
        ex:subject ex:patient1 .

    # Code from the wrong terminology.
    ex:obs4 ex:code <http://snomed.example/271649006> ;
        ex:systolic 110 ;
        ex:diastolic 70 ;
        ex:effective "2015-03-27T12:00:00" ;
        ex:status "final" ;
        ex:subject ex:patient1 .

    # Malformed MRN, and no observation points at this patient.
    ex:patient2 ex:mrn "004217" ;
        ex:birthYear 1985 .
"#;

fn main() {
    let schema = shexc::parse(SCHEMA).expect("schema parses");
    let mut ds = turtle::parse(DATA).expect("data parses");
    let mut engine =
        Engine::compile(&schema, &mut ds.pool, EngineConfig::default()).expect("compiles");

    println!("Observations:");
    for obs in ["obs1", "obs2", "obs3", "obs4"] {
        report(&mut engine, &ds, obs, "Observation");
    }
    println!("\nPatients:");
    for p in ["patient1", "patient2"] {
        report(&mut engine, &ds, p, "Patient");
    }
}

fn report(engine: &mut Engine, ds: &shapex_rdf::graph::Dataset, local: &str, shape: &str) {
    let iri = format!("http://clinic.example/{local}");
    let node = ds.iri(&iri).expect("node exists");
    let result = engine
        .check(&ds.graph, &ds.pool, node, &shape.into())
        .expect("shape exists");
    if result.matched {
        println!("  ex:{local} ✓");
    } else {
        println!("  ex:{local} ✗");
        if let Some(f) = result.failure {
            println!("      {}", f.render(&ds.pool));
        }
    }
}

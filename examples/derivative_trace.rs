//! The paper's §6–§7 worked traces, reproduced live: Example 9 (one
//! derivative), Example 11 (an accepting run), and Example 12 (a rejecting
//! run), printed in the paper's notation.
//!
//! ```sh
//! cargo run --example derivative_trace
//! ```

use shapex::Engine;
use shapex_rdf::turtle;
use shapex_shex::shexc;

// Example 5's expression: e = a→[1] ‖ b→[1 2]*
const SCHEMA: &str = "PREFIX e: <http://e/>\n<S> { e:a [1], e:b [1 2]* }";

fn main() {
    println!("Expression (paper Example 5):  a→1 ‖ b→{{1,2}}*\n");

    // Example 9 / 11: Σg_n = {⟨n,a,1⟩, ⟨n,b,1⟩, ⟨n,b,2⟩} — matches.
    println!("== Example 11: Σg_n = {{⟨n,a,1⟩, ⟨n,b,1⟩, ⟨n,b,2⟩}} ==");
    trace_of("@prefix e: <http://e/> . e:n e:a 1; e:b 1, 2 .");

    // Example 12: Σg_n = {⟨n,a,1⟩, ⟨n,a,2⟩, ⟨n,b,1⟩} — fails at ⟨n,a,2⟩.
    println!("== Example 12: Σg_n = {{⟨n,a,1⟩, ⟨n,a,2⟩, ⟨n,b,1⟩}} ==");
    trace_of("@prefix e: <http://e/> . e:n e:a 1, 2; e:b 1 .");

    // Example 10's growth, visible step by step.
    println!("== Example 10: (a→. ‖ b→.)* consuming two a's then two b's ==");
    let schema = shexc::parse("PREFIX e: <http://e/>\n<S> { (e:a . , e:b .)* }").unwrap();
    let mut ds = turtle::parse("@prefix e: <http://e/> . e:n e:a 1, 2; e:b 1, 2 .").unwrap();
    let mut engine = Engine::new(&schema, &mut ds.pool).unwrap();
    let node = ds.iri("http://e/n").unwrap();
    let trace = engine
        .trace(&ds.graph, &ds.pool, node, &"S".into())
        .unwrap();
    println!("{}", trace.render(&ds.pool));
}

fn trace_of(data: &str) {
    let schema = shexc::parse(SCHEMA).unwrap();
    let mut ds = turtle::parse(data).unwrap();
    let mut engine = Engine::new(&schema, &mut ds.pool).unwrap();
    let node = ds.iri("http://e/n").unwrap();
    let trace = engine
        .trace(&ds.graph, &ds.pool, node, &"S".into())
        .unwrap();
    println!("{}", trace.render(&ds.pool));
}

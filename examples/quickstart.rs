//! Quickstart: the paper's running example (Examples 1 & 2), end to end.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use shapex::validate;

fn main() {
    // Example 1: Person shapes — one foaf:age (xsd:integer), one or more
    // foaf:name (xsd:string), zero or more foaf:knows pointing at Persons.
    let schema = r#"
        PREFIX foaf: <http://xmlns.com/foaf/0.1/>
        PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>

        <Person> {
          foaf:age xsd:integer
          , foaf:name xsd:string+
          , foaf:knows @<Person>*
        }
    "#;

    // Example 2: john and bob have shape Person; mary does not.
    let data = r#"
        @prefix : <http://example.org/> .
        @prefix foaf: <http://xmlns.com/foaf/0.1/> .

        :john foaf:age 23;
              foaf:name "John";
              foaf:knows :bob .
        :bob foaf:age 34;
             foaf:name "Bob", "Robert" .
        :mary foaf:age 50, 65 .
    "#;

    let mut report = validate(schema, data).expect("schema and data parse");

    println!("Shape typing (node → shape):");
    println!("{}", report.render_typing());
    println!();

    for person in ["john", "bob", "mary"] {
        let iri = format!("http://example.org/{person}");
        if report.conforms(&iri, "Person") {
            println!(":{person} has shape Person ✓");
        } else {
            println!(":{person} does NOT have shape Person ✗");
            if let Some(why) = report.explain(&iri, "Person") {
                println!("    {why}");
            }
        }
    }

    let stats = report.engine.stats();
    println!("\nengine: {stats}");
}

//! Validating a linked-data portal (the paper's §1 motivation and [16]:
//! "Shape expressions can be used to describe and validate the contents of
//! linked data portals").
//!
//! A small open-data portal publishes datasets, publishers, and contact
//! points. The portal's ingestion pipeline validates every record before
//! accepting it and reports actionable failures for the rest.
//!
//! ```sh
//! cargo run --example linked_data_portal
//! ```

use shapex::{Closure, Engine, EngineConfig};
use shapex_rdf::turtle;
use shapex_shex::shexc;

const SCHEMA: &str = r#"
    PREFIX dcat: <http://www.w3.org/ns/dcat#>
    PREFIX dct:  <http://purl.org/dc/terms/>
    PREFIX foaf: <http://xmlns.com/foaf/0.1/>
    PREFIX xsd:  <http://www.w3.org/2001/XMLSchema#>

    # A catalogued dataset: exactly one title, at least one description,
    # an issue date, one or more keywords, a publisher conforming to
    # <Publisher>, and optionally a distribution conforming to <Download>.
    <Dataset> {
      dct:title xsd:string
      , dct:description xsd:string+
      , dct:issued xsd:date
      , dcat:keyword xsd:string{1,5}
      , dct:publisher @<Publisher>
      , dcat:distribution @<Download>?
    }

    # A publisher: a name and a homepage that must be an IRI.
    <Publisher> {
      foaf:name xsd:string
      , foaf:homepage IRI
    }

    # A downloadable distribution: an access URL and a media type drawn
    # from a closed value set.
    <Download> {
      dcat:accessURL IRI
      , dcat:mediaType ["text/csv" "application/json" "text/turtle"]
    }
"#;

const DATA: &str = r#"
    @prefix : <http://portal.example/> .
    @prefix dcat: <http://www.w3.org/ns/dcat#> .
    @prefix dct:  <http://purl.org/dc/terms/> .
    @prefix foaf: <http://xmlns.com/foaf/0.1/> .
    @prefix xsd:  <http://www.w3.org/2001/XMLSchema#> .

    :air-quality a dcat:Dataset ;
        dct:title "Air quality measurements" ;
        dct:description "Hourly PM2.5 and NO2 readings" ;
        dct:issued "2015-03-27"^^xsd:date ;
        dcat:keyword "air", "environment" ;
        dct:publisher :city-env-dept ;
        dcat:distribution :air-quality-csv .

    :city-env-dept foaf:name "City Environment Dept" ;
        foaf:homepage <http://city.example/env> .

    :air-quality-csv dcat:accessURL <http://portal.example/files/air.csv> ;
        dcat:mediaType "text/csv" .

    # Broken: issued date malformed, publisher has a literal homepage.
    :bus-routes
        dct:title "Bus routes" ;
        dct:description "GTFS snapshot" ;
        dct:issued "March 2015"^^xsd:date ;
        dcat:keyword "transit" ;
        dct:publisher :transit-co .

    :transit-co foaf:name "Transit Co" ;
        foaf:homepage "http://transit.example" .

    # Broken: six keywords (max is 5).
    :noise
        dct:title "Noise complaints" ;
        dct:description "Reported incidents" ;
        dct:issued "2015-01-02"^^xsd:date ;
        dcat:keyword "a", "b", "c", "d", "e", "f" ;
        dct:publisher :city-env-dept .
"#;

fn main() {
    let schema = shexc::parse(SCHEMA).expect("schema parses");
    let mut ds = turtle::parse(DATA).expect("data parses");
    // Portals use open semantics: records may carry extra annotations
    // (e.g. rdf:type) beyond the validated properties.
    let mut engine = Engine::compile(
        &schema,
        &mut ds.pool,
        EngineConfig {
            closure: Closure::Open,
            ..EngineConfig::default()
        },
    )
    .expect("schema compiles");

    let records = [
        ("air-quality", "Dataset"),
        ("bus-routes", "Dataset"),
        ("noise", "Dataset"),
        ("city-env-dept", "Publisher"),
        ("transit-co", "Publisher"),
        ("air-quality-csv", "Download"),
    ];

    let mut accepted = 0;
    for (local, shape) in records {
        let iri = format!("http://portal.example/{local}");
        let node = ds.iri(&iri).expect("record exists");
        let result = engine
            .check(&ds.graph, &ds.pool, node, &shape.into())
            .expect("shape exists");
        if result.matched {
            accepted += 1;
            println!("ACCEPT  :{local} as <{shape}>");
        } else {
            println!("REJECT  :{local} as <{shape}>");
            if let Some(f) = result.failure {
                println!("        {}", f.render(&ds.pool));
            }
        }
    }
    println!(
        "\n{accepted}/{} records accepted; engine: {}",
        records.len(),
        engine.stats()
    );
}

//! Offline stand-in for `serde_json`.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This shim implements the slice of the API the workspace uses:
//! [`Value`], [`Map`] (BTreeMap-backed, like serde_json's default), the
//! [`json!`] macro, [`from_str`], and [`to_string_pretty`]. No serde traits —
//! everything in-tree goes through `Value`.

use std::collections::BTreeMap;
use std::fmt;

pub type Map<K, V> = BTreeMap<K, V>;

#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map<String, Value>),
}

#[derive(Clone, Copy, Debug)]
pub enum Number {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => a == b,
            _ => match (self.as_u64(), other.as_u64()) {
                (Some(a), Some(b)) => a == b,
                _ => self.as_f64() == other.as_f64(),
            },
        }
    }
}

impl Number {
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(u) => i64::try_from(u).ok(),
            Number::NegInt(i) => Some(i),
            Number::Float(_) => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(u) => Some(u),
            Number::NegInt(i) => u64::try_from(i).ok(),
            Number::Float(_) => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::PosInt(u) => Some(u as f64),
            Number::NegInt(i) => Some(i as f64),
            Number::Float(f) => Some(f),
        }
    }
}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Index into an object by key (None for non-objects, like serde_json).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

macro_rules! impl_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::PosInt(v as u64))
            }
        }
        impl From<&$t> for Value {
            fn from(v: &$t) -> Value {
                Value::from(*v)
            }
        }
    )*};
}

macro_rules! impl_from_sint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                if v < 0 {
                    Value::Number(Number::NegInt(v as i64))
                } else {
                    Value::Number(Number::PosInt(v as u64))
                }
            }
        }
        impl From<&$t> for Value {
            fn from(v: &$t) -> Value {
                Value::from(*v)
            }
        }
    )*};
}

impl_from_uint!(u8, u16, u32, u64, usize);
impl_from_sint!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::Float(v))
    }
}

impl From<&f64> for Value {
    fn from(v: &f64) -> Value {
        Value::Number(Number::Float(*v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&bool> for Value {
    fn from(v: &bool) -> Value {
        Value::Bool(*v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Array(v)
    }
}

impl From<Map<String, Value>> for Value {
    fn from(v: Map<String, Value>) -> Value {
        Value::Object(v)
    }
}

/// Construct a [`Value`] from a JSON-ish literal. Covers the shapes used
/// in-tree: scalars, expressions, `{"key": value, ...}` objects (values may
/// be nested objects, arrays, or arbitrary expressions), and `[...]` arrays.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elems:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elems) ),* ])
    };
    ({ $($body:tt)* }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $crate::json_obj!(map; $($body)*);
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

/// Internal helper for [`json!`] object bodies. Values that are themselves
/// braced objects or bracketed arrays are matched as single token trees
/// (before the `expr` fallback, which cannot capture them).
#[doc(hidden)]
#[macro_export]
macro_rules! json_obj {
    ($map:ident;) => {};
    ($map:ident; $k:literal : null , $($rest:tt)*) => {
        $map.insert($k.to_string(), $crate::Value::Null);
        $crate::json_obj!($map; $($rest)*);
    };
    ($map:ident; $k:literal : null) => {
        $map.insert($k.to_string(), $crate::Value::Null);
    };
    ($map:ident; $k:literal : { $($inner:tt)* } , $($rest:tt)*) => {
        $map.insert($k.to_string(), $crate::json!({ $($inner)* }));
        $crate::json_obj!($map; $($rest)*);
    };
    ($map:ident; $k:literal : { $($inner:tt)* }) => {
        $map.insert($k.to_string(), $crate::json!({ $($inner)* }));
    };
    ($map:ident; $k:literal : [ $($inner:tt)* ] , $($rest:tt)*) => {
        $map.insert($k.to_string(), $crate::json!([ $($inner)* ]));
        $crate::json_obj!($map; $($rest)*);
    };
    ($map:ident; $k:literal : [ $($inner:tt)* ]) => {
        $map.insert($k.to_string(), $crate::json!([ $($inner)* ]));
    };
    ($map:ident; $k:literal : $v:expr , $($rest:tt)*) => {
        $map.insert($k.to_string(), $crate::Value::from($v));
        $crate::json_obj!($map; $($rest)*);
    };
    ($map:ident; $k:literal : $v:expr) => {
        $map.insert($k.to_string(), $crate::Value::from($v));
    };
}

#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
    line: usize,
    column: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at line {} column {}",
            self.msg, self.line, self.column
        )
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------------------------
// Serialisation
// ---------------------------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::PosInt(u) => out.push_str(&u.to_string()),
        Number::NegInt(i) => out.push_str(&i.to_string()),
        Number::Float(f) => {
            if f.is_finite() {
                // Match serde_json: floats always render with a fractional
                // part or exponent so they re-parse as floats.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
    }
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    const STEP: usize = 2;
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent + STEP));
                write_pretty(out, item, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&" ".repeat(indent + STEP));
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, val, indent + STEP);
            }
            out.push('\n');
            out.push_str(&" ".repeat(indent));
            out.push('}');
        }
    }
}

pub fn to_string_pretty(value: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, value, 0);
    Ok(out)
}

pub fn to_string(value: &Value) -> Result<String, Error> {
    fn compact(out: &mut String, v: &Value) {
        match v {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(out, n),
            Value::String(s) => escape_into(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    compact(out, item);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, val)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(out, k);
                    out.push(':');
                    compact(out, val);
                }
                out.push('}');
            }
        }
    }
    let mut out = String::new();
    compact(&mut out, value);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> Error {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Error {
            msg: msg.into(),
            line,
            column: col,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{kw}`")))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u16, Error> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| self.err("invalid \\u escape"))?;
        let v = u16::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi as u32 - 0xD800) << 10) + (lo as u32 - 0xDC00)
                            } else {
                                hi as u32
                            };
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy a full UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| self.err("invalid number"))
    }
}

pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_pretty() {
        let v = json!({
            "type": "Schema",
            "start": "S",
            "n": 3,
            "neg": -7,
            "f": 1.5,
            "flag": true,
            "nothing": null,
            "items": [1, 2, 3],
            "nested": {"a": "b"}
        });
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&s).unwrap(), v);
    }

    #[test]
    fn json_macro_expr_values() {
        let label = String::from("Person");
        let v = json!({"type": "ShapeRef", "reference": label.as_str()});
        assert_eq!(v.get("reference").and_then(Value::as_str), Some("Person"));
    }

    #[test]
    fn string_escapes() {
        let v = from_str(r#""a\"b\\c\ndA𝄞""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nd\u{41}\u{1D11E}"));
        let back = to_string(&v).unwrap();
        assert_eq!(from_str(&back).unwrap(), v);
    }

    #[test]
    fn numbers() {
        assert_eq!(from_str("42").unwrap().as_u64(), Some(42));
        assert_eq!(from_str("-5").unwrap().as_i64(), Some(-5));
        assert_eq!(from_str("2.5").unwrap().as_f64(), Some(2.5));
        assert_eq!(from_str("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(from_str("7").unwrap().as_f64(), Some(7.0));
        assert_eq!(from_str("2.5").unwrap().as_i64(), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("tru").is_err());
        assert!(from_str("1 2").is_err());
        assert!(from_str("\"\u{1}\"").is_err());
    }

    #[test]
    fn float_rendering_reparses_as_float() {
        let s = to_string(&Value::from(2.0_f64)).unwrap();
        assert_eq!(s, "2.0");
        assert_eq!(from_str(&s).unwrap().as_i64(), None);
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the real `rand` cannot be
//! fetched. This shim provides the (small) API surface the workspace actually
//! uses — `StdRng::seed_from_u64`, `Rng::gen_range` over integer ranges, and
//! `Rng::gen_bool` — backed by a xoshiro256++ generator. Determinism for a
//! given seed is all callers rely on; stream compatibility with the real
//! crate is explicitly *not* promised.

use std::ops::{Range, RangeInclusive};

/// Core 64-bit generator: xoshiro256++ (public-domain reference algorithm).
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; splitmix64 cannot produce
        // four zeros from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 1;
        }
        StdRng { s }
    }
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Integer range sampling, mirroring `rand::distributions::uniform` for the
/// handful of integer types the workspace draws.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub trait Rng {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    fn gen_bool(&mut self, p: f64) -> bool;
}

impl Rng for StdRng {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        // 53 random bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(1..100);
            assert!((1..100).contains(&v));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
            let w: u8 = rng.gen_range(0..3u8);
            assert!(w < 3);
            let x: u32 = rng.gen_range(5..=5u32);
            assert_eq!(x, 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "hits={hits}");
    }
}

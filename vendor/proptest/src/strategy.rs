//! Strategy trait and combinators for the offline proptest stand-in.

use rand::{Rng as _, SeedableRng as _};
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Deterministic per-case RNG.
pub struct TestRng(rand::rngs::StdRng);

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng(rand::rngs::StdRng::seed_from_u64(seed))
    }

    pub fn bits(&mut self) -> u64 {
        self.0.gen_range(0..=u64::MAX)
    }

    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        self.0.gen_range(0..n)
    }
}

/// FNV-1a of a test path — a stable per-test base seed.
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01B3);
    }
    h
}

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        MapStrategy { inner: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMapStrategy<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMapStrategy { inner: self, f }
    }

    fn prop_filter<F>(self, _whence: &'static str, f: F) -> FilterStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        FilterStrategy { inner: self, f }
    }

    /// Build values recursively: `self` is the leaf strategy, `recurse` maps
    /// a strategy for shallower values to one for deeper values. `depth`
    /// bounds nesting; the other two hints are accepted for API parity and
    /// ignored.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let mut levels: Vec<BoxedStrategy<Self::Value>> = vec![self.boxed()];
        for _ in 0..depth {
            // Deeper levels draw subterms from any shallower level, so
            // generated values mix depths instead of always bottoming out
            // at the maximum.
            let inner = Union::new(levels.clone()).boxed();
            levels.push(recurse(inner).boxed());
        }
        Union::new(levels).boxed()
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
    }
}

/// Type-erased strategy; cheap to clone (shared via `Rc`).
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMapStrategy<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct FilterStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S, F> Strategy for FilterStrategy<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        // Bounded retry; on exhaustion return the last draw rather than
        // loop forever (no rejection machinery in this stand-in).
        let mut last = self.inner.generate(rng);
        for _ in 0..100 {
            if (self.f)(&last) {
                break;
            }
            last = self.inner.generate(rng);
        }
        last
    }
}

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Ranges
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($S:ident/$idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

// ---------------------------------------------------------------------------
// Collection sizes
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize, // inclusive
}

impl SizeRange {
    pub fn sample(&self, rng: &mut TestRng) -> usize {
        rng.0.gen_range(self.min..=self.max)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

// ---------------------------------------------------------------------------
// String patterns
// ---------------------------------------------------------------------------

/// A string literal is a strategy generating strings matching a small regex
/// subset: literal characters, `.`, character classes `[a-z+-]`, and the
/// quantifiers `{m,n}`, `{n}`, `?`, `*`, `+` (starred forms are capped).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (atom, min, max) in &atoms {
            let n = rng.0.gen_range(*min..=*max);
            for _ in 0..n {
                out.push(atom.sample(rng));
            }
        }
        out
    }
}

#[derive(Debug)]
enum Atom {
    Literal(char),
    Dot,
    Class(Vec<(char, char)>),
}

impl Atom {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            Atom::Literal(c) => *c,
            Atom::Dot => match rng.bits() % 20 {
                // Mostly printable ASCII, with occasional awkward inputs:
                // multibyte UTF-8, quotes, backslashes, and control chars
                // (never '\n' — `.` does not match it).
                0 => ['\u{E9}', '\u{1D11E}', '\u{80}', '\u{FFFD}'][rng.below(4)],
                1 => ['"', '\\', '\t', '\r', '\u{0}'][rng.below(5)],
                _ => (0x20 + (rng.bits() % 0x5F)) as u8 as char,
            },
            Atom::Class(ranges) => {
                let total: u32 = ranges
                    .iter()
                    .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                    .sum();
                let mut pick = (rng.bits() % total as u64) as u32;
                for (lo, hi) in ranges {
                    let span = *hi as u32 - *lo as u32 + 1;
                    if pick < span {
                        return char::from_u32(*lo as u32 + pick).unwrap();
                    }
                    pick -= span;
                }
                unreachable!()
            }
        }
    }
}

fn parse_pattern(pat: &str) -> Vec<(Atom, usize, usize)> {
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Dot
            }
            '[' => {
                i += 1;
                let mut ranges = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern {pat:?}");
                i += 1; // ']'
                Atom::Class(ranges)
            }
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "trailing backslash in pattern {pat:?}");
                let c = chars[i];
                i += 1;
                Atom::Literal(match c {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                })
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        // Quantifier?
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .expect("unterminated quantifier")
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    if let Some((lo, hi)) = body.split_once(',') {
                        (
                            lo.trim().parse().expect("bad quantifier"),
                            hi.trim().parse().expect("bad quantifier"),
                        )
                    } else {
                        let n = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        out.push((atom, min, max));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(seed_for("strategy::tests"))
    }

    #[test]
    fn ranges_and_tuples() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (0usize..5, 1i64..=3).generate(&mut r);
            assert!(v.0 < 5 && (1..=3).contains(&v.1));
        }
    }

    #[test]
    fn pattern_strings_match_shape() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z][a-z0-9]{0,8}".generate(&mut r);
            assert!(!s.is_empty() && s.len() <= 9);
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));

            let t = "[+-]?[0-9]{0,3}".generate(&mut r);
            assert!(t.len() <= 4);

            let dot = ".{0,20}".generate(&mut r);
            assert!(dot.chars().count() <= 20);
            assert!(!dot.contains('\n'));
        }
    }

    #[test]
    fn union_and_recursive_terminate() {
        #[derive(Clone, Debug, PartialEq)]
        enum T {
            Leaf,
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = Just(T::Leaf).prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
        });
        let mut r = rng();
        let mut max_seen = 0;
        for _ in 0..300 {
            let t = strat.generate(&mut r);
            max_seen = max_seen.max(depth(&t));
            assert!(depth(&t) <= 4);
        }
        assert!(max_seen >= 2, "recursion never went deep: {max_seen}");
    }

    #[test]
    fn btree_set_respects_bounds() {
        let s = crate::collection::btree_set(0usize..3, 1..=3usize);
        let mut r = rng();
        for _ in 0..100 {
            let set = s.generate(&mut r);
            assert!(!set.is_empty() && set.len() <= 3);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let s = "[a-f]{4}";
        let a: Vec<String> = {
            let mut r = TestRng::new(99);
            (0..10).map(|_| s.generate(&mut r)).collect()
        };
        let b: Vec<String> = {
            let mut r = TestRng::new(99);
            (0..10).map(|_| s.generate(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}

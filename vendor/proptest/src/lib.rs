//! Offline stand-in for `proptest`.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This shim keeps the property-based tests in this workspace
//! running: it implements the `Strategy` combinators, collection and string
//! pattern strategies, and the `proptest!`/`prop_oneof!`/`prop_assert*!`
//! macros the tests use. Generation is deterministic per test name and case
//! index. There is **no shrinking** — a failing case reports the assertion
//! message and the case's seed, not a minimised input.

pub mod strategy;

pub mod test_runner {
    /// Runner configuration. Only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            Config { cases }
        }
    }
}

pub mod collection {
    use crate::strategy::{SizeRange, Strategy};
    use std::collections::BTreeSet;

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut crate::strategy::TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut crate::strategy::TestRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            // Duplicates shrink the set; cap the retries so a tiny element
            // domain cannot loop forever.
            let mut attempts = 0;
            while set.len() < target && attempts < target * 4 + 8 {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

pub mod bool {
    use crate::strategy::{Strategy, TestRng};

    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.bits() & 1 == 1
        }
    }
}

pub mod arbitrary {
    use crate::strategy::{Strategy, TestRng};
    use std::marker::PhantomData;

    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    // Mix edge cases in: property tests lean on extremes.
                    match rng.bits() % 8 {
                        0 => <$t>::MIN,
                        1 => <$t>::MAX,
                        2 => 0 as $t,
                        3 => 1 as $t,
                        _ => rng.bits() as $t,
                    }
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.bits() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Mostly ASCII, occasionally any scalar value.
            if rng.bits().is_multiple_of(4) {
                char::from_u32((rng.bits() % 0x11_0000) as u32).unwrap_or('\u{FFFD}')
            } else {
                (0x20 + (rng.bits() % 0x5F)) as u8 as char
            }
        }
    }

    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T> Clone for AnyStrategy<T> {
        fn clone(&self) -> Self {
            AnyStrategy(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}:{})", stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}: {} ({}:{})",
                stringify!($cond), format_args!($($fmt)*), file!(), line!()
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` == `{:?}` ({}:{})", l, r, file!(), line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` == `{:?}`: {} ({}:{})",
                l, r, format_args!($($fmt)*), file!(), line!()
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}` ({}:{})", l, r, file!(), line!()
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}`: {} ({}:{})",
                l, r, format_args!($($fmt)*), file!(), line!()
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            // No rejection machinery: treat an unmet assumption as a pass.
            return ::std::result::Result::Ok(());
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($cfg) $($rest)*);
    };
    (@with_cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let cfg: $crate::test_runner::Config = $cfg;
                let base = $crate::strategy::seed_for(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases {
                    let mut rng = $crate::strategy::TestRng::new(base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!("proptest case {}/{} failed: {}", case + 1, cfg.cases, msg);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_cfg ($crate::test_runner::Config::default()) $($rest)*);
    };
}

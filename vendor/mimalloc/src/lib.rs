//! Offline stand-in for the `mimalloc` crate.
//!
//! The build environment has no network access, so the real `mimalloc`
//! (which builds the bundled C allocator via `cc`) cannot be fetched. This
//! shim exposes the same one-type API — `MiMalloc`, a unit struct
//! implementing [`GlobalAlloc`] — but forwards every call to
//! [`std::alloc::System`]. That keeps the `alloc-mimalloc` feature wiring
//! in `shapex-bench` compilable and honest to test: the allocator A/B in
//! `--bin scale` runs both arms, and on this shim they are *expected* to
//! measure identically. Swapping in the real crate (same name, same
//! `MiMalloc` type) turns the B arm into a genuine mimalloc measurement
//! with no source changes.
//!
//! ```no_run
//! #[global_allocator]
//! static GLOBAL: mimalloc::MiMalloc = mimalloc::MiMalloc;
//! ```

use std::alloc::{GlobalAlloc, Layout, System};

/// Drop-in for `mimalloc::MiMalloc`. Forwards to the system allocator.
pub struct MiMalloc;

// SAFETY: every method delegates directly to `System`, which upholds the
// `GlobalAlloc` contract.
unsafe impl GlobalAlloc for MiMalloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        System.alloc_zeroed(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        System.realloc(ptr, layout, new_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_and_frees() {
        unsafe {
            let layout = Layout::from_size_align(64, 8).unwrap();
            let p = MiMalloc.alloc(layout);
            assert!(!p.is_null());
            p.write_bytes(0xAB, 64);
            let p = MiMalloc.realloc(p, layout, 128);
            assert!(!p.is_null());
            assert_eq!(*p, 0xAB);
            MiMalloc.dealloc(p, Layout::from_size_align(128, 8).unwrap());

            let z = MiMalloc.alloc_zeroed(layout);
            assert!(!z.is_null());
            assert_eq!(*z, 0);
            MiMalloc.dealloc(z, layout);
        }
    }
}

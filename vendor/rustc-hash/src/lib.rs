//! Offline stand-in for the `rustc-hash` crate.
//!
//! The build environment has no network access, so the real `rustc-hash`
//! cannot be fetched. This shim reimplements the `FxHasher` algorithm (the
//! multiply-rotate hash the Rust compiler uses for its internal tables) and
//! the `FxHashMap`/`FxHashSet` aliases — the full surface this workspace
//! uses. Unlike the std `RandomState` (SipHash 1-3, keyed per process),
//! `FxHasher` is not DoS-resistant; it is only used for tables keyed by
//! engine-internal ids where throughput matters and adversarial keys do not
//! exist.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;
/// Zero-sized `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The multiply-rotate hasher: each word is folded in as
/// `hash = (hash.rotate_left(5) ^ word) * SEED`.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[..8]);
            self.add_to_hash(u64::from_le_bytes(buf));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let mut buf = [0u8; 4];
            buf.copy_from_slice(&bytes[..4]);
            self.add_to_hash(u64::from(u32::from_le_bytes(buf)));
            bytes = &bytes[4..];
        }
        if bytes.len() >= 2 {
            let mut buf = [0u8; 2];
            buf.copy_from_slice(&bytes[..2]);
            self.add_to_hash(u64::from(u16::from_le_bytes(buf)));
            bytes = &bytes[2..];
        }
        if let Some(&b) = bytes.first() {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<(u32, u32), u32> = FxHashMap::default();
        for i in 0..1_000u32 {
            m.insert((i, i.wrapping_mul(7)), i);
        }
        for i in 0..1_000u32 {
            assert_eq!(m.get(&(i, i.wrapping_mul(7))), Some(&i));
        }
        assert_eq!(m.len(), 1_000);
    }

    #[test]
    fn hashing_is_deterministic_across_instances() {
        use std::hash::BuildHasher;
        let b = FxBuildHasher::default();
        let h = |k: &(u64, bool)| b.hash_one(k);
        assert_eq!(h(&(42, true)), h(&(42, true)));
        assert_ne!(h(&(42, true)), h(&(42, false)));
    }

    #[test]
    fn write_covers_all_tail_lengths() {
        // Distinct byte strings of every short length hash distinctly.
        let hash_bytes = |bytes: &[u8]| {
            let mut s = FxHasher::default();
            s.write(bytes);
            s.finish()
        };
        // Non-zero bytes: folding `0` into the zero initial state is a
        // fixed point of the multiply-rotate step (as in real FxHasher),
        // so all-zero strings of any length hash to 0 by design.
        let inputs: Vec<Vec<u8>> = (0..=17u8).map(|n| (1..=n).collect()).collect();
        let hashes: Vec<u64> = inputs.iter().map(|b| hash_bytes(b)).collect();
        for i in 0..hashes.len() {
            for j in (i + 1)..hashes.len() {
                assert_ne!(hashes[i], hashes[j], "lengths {i} and {j} collided");
            }
        }
    }
}

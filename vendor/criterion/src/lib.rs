//! Offline stand-in for `criterion`.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This shim keeps `cargo bench` (and the smoke run `cargo test`
//! performs on `harness = false` bench targets) working: it implements the
//! group/`bench_with_input` surface the workspace's benches use, times each
//! benchmark with `Instant`, and prints a median per benchmark. Statistical
//! analysis, plots, and baselines are out of scope.
//!
//! Mode selection mirrors criterion: a `--bench` CLI argument (passed by
//! `cargo bench`) selects full measurement; anything else (e.g. `cargo
//! test`, which passes `--test`) runs each benchmark once as a smoke test.

pub use std::hint::black_box;

use std::fmt;
use std::time::{Duration, Instant};

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function[..], &self.parameter) {
            ("", Some(p)) => write!(f, "{p}"),
            (name, Some(p)) => write!(f, "{name}/{p}"),
            (name, None) => write!(f, "{name}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: s.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: s,
            parameter: None,
        }
    }
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    /// Smoke mode: run every benchmark body exactly once (under `cargo test`).
    smoke: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let smoke = !args.iter().any(|a| a == "--bench");
        // First free arg (not a flag, not the binary) filters benchmark names,
        // mirroring `cargo bench -- <filter>`.
        let filter = args.iter().skip(1).find(|a| !a.starts_with('-')).cloned();
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(600),
            smoke,
            filter,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into().to_string();
        run_benchmark(self, &name, f);
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, _t: Throughput) {}

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(self.criterion, &full, f);
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(self.criterion, &full, |b| f(b, input));
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    /// Iterations the next `iter` call should run.
    iters: u64,
    /// Total time spent inside the routine across those iterations.
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(c: &Criterion, name: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if let Some(filter) = &c.filter {
        if !name.contains(filter.as_str()) {
            return;
        }
    }
    if c.smoke {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        return;
    }

    // Warm-up: also sizes the per-sample iteration count.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < c.warm_up_time {
        f(&mut b);
        warm_iters += b.iters;
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
    let budget = c.measurement_time.as_secs_f64() / c.sample_size as f64;
    let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000_000);

    let mut samples: Vec<f64> = Vec::with_capacity(c.sample_size);
    for _ in 0..c.sample_size {
        b.iters = iters_per_sample;
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    println!(
        "{name:<60} time: [{} {} {}]",
        format_time(lo),
        format_time(median),
        format_time(hi)
    );
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Debug-profile smoke runs (cargo test --benches) hit bench
            // workloads whose recursion outgrows the default main stack;
            // give the groups the headroom an optimised run gets for free.
            ::std::thread::Builder::new()
                .stack_size(256 * 1024 * 1024)
                .spawn(|| { $($group();)+ })
                .expect("spawn bench thread")
                .join()
                .expect("bench thread panicked");
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion {
            smoke: true,
            filter: None,
            ..Criterion::default()
        };
        let mut runs = 0;
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("f", 1), &3, |b, &x| {
            b.iter(|| x + 1);
            runs += 1;
        });
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn id_formatting() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}

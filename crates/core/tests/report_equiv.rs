//! The resident server keeps warm engines compiled with `incremental:
//! true` (the `/delta` endpoint needs the dependency index) while the CLI
//! compiles `incremental: false` unless `--delta` is given. The CI serve
//! smoke diffs a server `/validate` response against CLI `--report json`
//! output byte-for-byte, so a cold full-typing report must not depend on
//! the incremental flag.

use shapex::report::{finish_engine_doc, push_typing_rows, ReportDoc};
use shapex::{Engine, EngineConfig};

fn report(incremental: bool, schema_src: &str, data_src: &str) -> String {
    let schema = shapex_shex::shexc::parse(schema_src).unwrap();
    let mut ds = shapex_rdf::turtle::parse(data_src).unwrap();
    let config = EngineConfig {
        metrics: true,
        incremental,
        ..EngineConfig::default()
    };
    let mut engine = Engine::compile(&schema, &mut ds.pool, config).unwrap();
    let typing = engine.type_all_par(&ds.graph, &ds.pool, 1);
    let mut doc = ReportDoc::new("typing", "derivative");
    push_typing_rows(&mut doc, &mut engine, &ds.graph, &ds.pool, &typing);
    let conforms = (!typing.is_partial()).then_some(true);
    finish_engine_doc(doc, &engine, 0, conforms)
}

fn fixture(rel: &str) -> String {
    let path = format!("{}/../../fixtures/{rel}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

#[test]
fn cold_full_typing_report_ignores_incremental_flag() {
    for (schema, data) in [
        ("person/schema.shex", "person/data.ttl"),
        ("clinical/schema.shex", "clinical/data.ttl"),
    ] {
        let schema = fixture(schema);
        let data = fixture(data);
        assert_eq!(
            report(false, &schema, &data),
            report(true, &schema, &data),
            "incremental flag leaked into the report bytes"
        );
    }
}

//! The hash-consed expression arena the derivative engine runs on.
//!
//! Derivatives of shape expressions can grow (paper Example 10), and the
//! same subexpressions recur constantly (`∂t(e1 ‖ e2) = ∂t(e1) ‖ e2 | ...`
//! shares `e2` wholesale). Hash-consing every node means:
//!
//! * structural equality is id equality (`ExprId: Copy + Eq`),
//! * the §4 simplification rules and `Or`-duplicate collapse are cheap,
//! * `(expression, triple-class)` derivative memoisation keys are dense.
//!
//! Smart constructors implement the paper's simplification table
//!
//! ```text
//! ∅ | x = x        x | ∅ = x
//! ∅ ‖ x = ∅        x ‖ ∅ = ∅
//! ε ‖ x = x        x ‖ ε = x
//! ```
//!
//! plus idempotence `x | x = x` and commutative normalisation (operands
//! sorted by id) — sound because both `‖` and `|` are commutative on bags.
//! All rules can be disabled for the E9 ablation via [`Simplify`].

use rustc_hash::FxHashMap;

/// Index of a compiled arc constraint within its
/// [`CompiledSchema`](crate::compile::CompiledSchema).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArcId(pub u32);

impl ArcId {
    /// The raw index into the arc table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Id of a hash-consed expression node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(u32);

impl ExprId {
    /// The raw index into the arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A compiled expression node. `Plus`/`Opt` are desugared at compile time
/// (`E+ = E ‖ E*`, `E? = E | ε`); `Repeat` stays native because its
/// counter-based derivative is linear where the §4 expansion is not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Node {
    /// `∅`.
    Empty,
    /// `ε`.
    Epsilon,
    /// An arc constraint `vp → vo`.
    Arc(ArcId),
    /// `e*`.
    Star(ExprId),
    /// `e{m,n}`; `max == u32::MAX` encodes unbounded.
    Repeat(ExprId, u32, u32),
    /// `e1 ‖ e2` — unordered concatenation.
    And(ExprId, ExprId),
    /// `e1 | e2` — alternative.
    Or(ExprId, ExprId),
}

/// Sentinel for an unbounded repeat upper bound.
pub const UNBOUNDED: u32 = u32::MAX;

/// Which simplification rules the constructors apply (E9 ablation knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Simplify {
    /// The paper's §4 identity/annihilator rules.
    pub identities: bool,
    /// `x | x = x` and commutative operand sorting.
    pub or_dedup: bool,
}

impl Default for Simplify {
    fn default() -> Self {
        Simplify {
            identities: true,
            or_dedup: true,
        }
    }
}

impl Simplify {
    /// Disables every rule (the E9 `no_simplify` ablation).
    pub fn none() -> Self {
        Simplify {
            identities: false,
            or_dedup: false,
        }
    }
}

/// The arena. `EMPTY` and `EPSILON` are pre-interned at fixed ids.
/// `Clone` lets parallel workers fork a private arena that diverges as
/// each worker interns its own derivative states.
#[derive(Debug, Clone)]
pub struct ExprPool {
    nodes: Vec<Node>,
    ids: FxHashMap<Node, ExprId>,
    /// `ν(e)` computed bottom-up at interning time.
    nullable: Vec<bool>,
    simplify: Simplify,
}

/// Pre-interned `∅`.
pub const EMPTY: ExprId = ExprId(0);
/// Pre-interned `ε`.
pub const EPSILON: ExprId = ExprId(1);

impl ExprPool {
    /// Creates an arena with `∅` and `ε` pre-interned.
    pub fn new(simplify: Simplify) -> Self {
        let mut pool = ExprPool {
            nodes: Vec::new(),
            ids: FxHashMap::default(),
            nullable: Vec::new(),
            simplify,
        };
        assert_eq!(pool.intern(Node::Empty), EMPTY);
        assert_eq!(pool.intern(Node::Epsilon), EPSILON);
        pool
    }

    /// Number of distinct interned nodes — the expression-growth measure
    /// used by experiment E4.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing is interned (never, after construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node behind an id.
    pub fn node(&self, id: ExprId) -> Node {
        self.nodes[id.index()]
    }

    /// `ν(e)` — precomputed.
    pub fn nullable(&self, id: ExprId) -> bool {
        self.nullable[id.index()]
    }

    fn intern(&mut self, node: Node) -> ExprId {
        if let Some(&id) = self.ids.get(&node) {
            return id;
        }
        let nullable = match node {
            Node::Empty | Node::Arc(_) => false,
            Node::Epsilon | Node::Star(_) => true,
            // ν(e{m,n}) = (m = 0) ∨ ν(e): zero mandatory copies, or each
            // mandatory copy can itself match the empty graph.
            Node::Repeat(e, m, _) => m == 0 || self.nullable(e),
            Node::And(a, b) => self.nullable(a) && self.nullable(b),
            Node::Or(a, b) => self.nullable(a) || self.nullable(b),
        };
        let id = ExprId(u32::try_from(self.nodes.len()).expect("expression pool overflow"));
        self.nodes.push(node);
        self.nullable.push(nullable);
        self.ids.insert(node, id);
        id
    }

    /// Interns an arc leaf.
    pub fn arc(&mut self, arc: ArcId) -> ExprId {
        self.intern(Node::Arc(arc))
    }

    /// `e*` with `∅* = ε* = ε` and `(e*)* = e*`.
    pub fn star(&mut self, e: ExprId) -> ExprId {
        if self.simplify.identities {
            if e == EMPTY || e == EPSILON {
                return EPSILON;
            }
            if matches!(self.node(e), Node::Star(_)) {
                return e;
            }
        }
        self.intern(Node::Star(e))
    }

    /// `e1 ‖ e2` with the §4 rules.
    pub fn and(&mut self, a: ExprId, b: ExprId) -> ExprId {
        if self.simplify.identities {
            if a == EMPTY || b == EMPTY {
                return EMPTY;
            }
            if a == EPSILON {
                return b;
            }
            if b == EPSILON {
                return a;
            }
        }
        let (a, b) = if self.simplify.or_dedup && b < a {
            (b, a)
        } else {
            (a, b)
        };
        self.intern(Node::And(a, b))
    }

    /// `e1 | e2` with the §4 rules plus idempotence.
    pub fn or(&mut self, a: ExprId, b: ExprId) -> ExprId {
        if self.simplify.identities {
            if a == EMPTY {
                return b;
            }
            if b == EMPTY {
                return a;
            }
        }
        if self.simplify.or_dedup {
            if a == b {
                return a;
            }
            let (a, b) = if b < a { (b, a) } else { (a, b) };
            return self.intern(Node::Or(a, b));
        }
        self.intern(Node::Or(a, b))
    }

    /// `e{m,n}` (`max = UNBOUNDED` for `e{m,}`), normalising the trivial
    /// bounds: `e{0,0} = ε`, `e{1,1} = e`, `e{0,} = e*`.
    pub fn repeat(&mut self, e: ExprId, min: u32, max: u32) -> ExprId {
        debug_assert!(min <= max);
        if self.simplify.identities {
            if max == 0 {
                return EPSILON;
            }
            if e == EPSILON {
                return EPSILON;
            }
            if e == EMPTY {
                // zero copies possible iff min = 0
                return if min == 0 { EPSILON } else { EMPTY };
            }
            if min == 1 && max == 1 {
                return e;
            }
            if min == 0 && max == UNBOUNDED {
                return self.star(e);
            }
        }
        self.intern(Node::Repeat(e, min, max))
    }

    /// Renders an expression in the paper's notation, for diagnostics.
    /// `arc_name` supplies a printable name per arc constraint.
    pub fn render(&self, id: ExprId, arc_name: &dyn Fn(ArcId) -> String) -> String {
        match self.node(id) {
            Node::Empty => "∅".to_string(),
            Node::Epsilon => "ε".to_string(),
            Node::Arc(a) => arc_name(a),
            Node::Star(e) => format!("{}*", self.render_atom(e, arc_name)),
            Node::Repeat(e, m, n) => {
                let bounds = if n == UNBOUNDED {
                    format!("{{{m},}}")
                } else {
                    format!("{{{m},{n}}}")
                };
                format!("{}{bounds}", self.render_atom(e, arc_name))
            }
            Node::And(a, b) => format!(
                "{} ‖ {}",
                self.render_atom(a, arc_name),
                self.render_atom(b, arc_name)
            ),
            Node::Or(a, b) => format!(
                "{} | {}",
                self.render_atom(a, arc_name),
                self.render_atom(b, arc_name)
            ),
        }
    }

    fn render_atom(&self, id: ExprId, arc_name: &dyn Fn(ArcId) -> String) -> String {
        match self.node(id) {
            Node::And(_, _) | Node::Or(_, _) => {
                format!("({})", self.render(id, arc_name))
            }
            _ => self.render(id, arc_name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> ExprPool {
        ExprPool::new(Simplify::default())
    }

    #[test]
    fn constants_are_preinterned() {
        let p = pool();
        assert_eq!(p.node(EMPTY), Node::Empty);
        assert_eq!(p.node(EPSILON), Node::Epsilon);
        assert!(!p.nullable(EMPTY));
        assert!(p.nullable(EPSILON));
    }

    #[test]
    fn hash_consing_dedups() {
        let mut p = pool();
        let a = p.arc(ArcId(0));
        let b = p.arc(ArcId(0));
        assert_eq!(a, b);
        let s1 = p.star(a);
        let s2 = p.star(b);
        assert_eq!(s1, s2);
        assert_eq!(p.len(), 4); // ∅, ε, arc, star
    }

    #[test]
    fn paper_simplification_rules() {
        let mut p = pool();
        let x = p.arc(ArcId(0));
        // ∅ | x = x, x | ∅ = x
        assert_eq!(p.or(EMPTY, x), x);
        assert_eq!(p.or(x, EMPTY), x);
        // ∅ ‖ x = ∅, x ‖ ∅ = ∅
        assert_eq!(p.and(EMPTY, x), EMPTY);
        assert_eq!(p.and(x, EMPTY), EMPTY);
        // ε ‖ x = x, x ‖ ε = x
        assert_eq!(p.and(EPSILON, x), x);
        assert_eq!(p.and(x, EPSILON), x);
    }

    #[test]
    fn or_idempotence_and_commutativity() {
        let mut p = pool();
        let x = p.arc(ArcId(0));
        let y = p.arc(ArcId(1));
        assert_eq!(p.or(x, x), x);
        assert_eq!(p.or(x, y), p.or(y, x));
        assert_eq!(p.and(x, y), p.and(y, x));
    }

    #[test]
    fn star_simplifications() {
        let mut p = pool();
        assert_eq!(p.star(EMPTY), EPSILON);
        assert_eq!(p.star(EPSILON), EPSILON);
        let x = p.arc(ArcId(0));
        let s = p.star(x);
        assert_eq!(p.star(s), s);
    }

    #[test]
    fn repeat_normalisation() {
        let mut p = pool();
        let x = p.arc(ArcId(0));
        assert_eq!(p.repeat(x, 0, 0), EPSILON);
        assert_eq!(p.repeat(x, 1, 1), x);
        assert_eq!(p.repeat(x, 0, UNBOUNDED), p.star(x));
        assert_eq!(p.repeat(EPSILON, 2, 5), EPSILON);
        assert_eq!(p.repeat(EMPTY, 0, 3), EPSILON);
        assert_eq!(p.repeat(EMPTY, 1, 3), EMPTY);
        let r = p.repeat(x, 2, 4);
        assert_eq!(p.node(r), Node::Repeat(x, 2, 4));
    }

    #[test]
    fn nullability() {
        let mut p = pool();
        let x = p.arc(ArcId(0));
        let y = p.arc(ArcId(1));
        assert!(!p.nullable(x));
        let s = p.star(x);
        assert!(p.nullable(s));
        let and_xs = p.and(x, s);
        assert!(!p.nullable(and_xs)); // x not nullable
        let or_xs = p.or(x, s);
        assert!(p.nullable(or_xs));
        let r0 = p.repeat(x, 0, 5);
        assert!(p.nullable(r0));
        let r2 = p.repeat(x, 2, 5);
        assert!(!p.nullable(r2));
        let and_ss = {
            let sy = p.star(y);
            p.and(s, sy)
        };
        assert!(p.nullable(and_ss));
    }

    #[test]
    fn no_simplify_mode_preserves_structure() {
        let mut p = ExprPool::new(Simplify::none());
        let x = p.arc(ArcId(0));
        let e = p.or(EMPTY, x);
        assert!(matches!(p.node(e), Node::Or(EMPTY, _)));
        let e = p.and(EPSILON, x);
        assert!(matches!(p.node(e), Node::And(EPSILON, _)));
        // Hash-consing still applies even without simplification.
        assert_eq!(p.or(EMPTY, x), p.or(EMPTY, x));
        // No commutative normalisation:
        let xy = p.or(x, EMPTY);
        let yx = p.or(EMPTY, x);
        assert_ne!(xy, yx);
    }

    #[test]
    fn render_paper_notation() {
        let mut p = pool();
        let a = p.arc(ArcId(0));
        let b = p.arc(ArcId(1));
        let sb = p.star(b);
        let e = p.and(a, sb);
        let name = |arc: ArcId| {
            if arc == ArcId(0) {
                "a→1".to_string()
            } else {
                "b→{1,2}".to_string()
            }
        };
        let s = p.render(e, &name);
        // operand order is normalised; accept either side
        assert!(s == "a→1 ‖ b→{1,2}*" || s == "b→{1,2}* ‖ a→1", "got {s}");
    }

    #[test]
    fn nullable_of_nested_repeat_with_nullable_body() {
        let mut p = pool();
        let x = p.arc(ArcId(0));
        let opt_x = p.or(x, EPSILON); // x?
        let r = p.repeat(opt_x, 3, 5);
        assert!(p.nullable(r)); // each mandatory copy can match {}
    }
}

//! Single-Occurrence Regular Bag Expression (SORBE) fast path.
//!
//! The paper's §8 closes with its planned next step: "the Single
//! Occurrence Regular Bag Expressions subset defined in [Boneva et al.,
//! ICDT 2015] offers a tractable language which could be expressive
//! enough. In the future we are planning to adapt our implementation to
//! that subset and study its performance behaviour in practice." This
//! module does exactly that.
//!
//! A shape is treated as SORBE here when it is an unordered concatenation
//! of arc constraints, each carrying one cardinality interval, whose
//! `(predicate set, direction)` heads are pairwise disjoint:
//!
//! ```text
//! p1 → C1 {m1,n1}  ‖  p2 → C2 {m2,n2}  ‖  …     (pi pairwise disjoint)
//! ```
//!
//! Because the heads are disjoint, every triple belongs to at most one
//! conjunct, so matching degenerates to *counting*: bucket the
//! neighbourhood by arc, require every bucketed object to satisfy the
//! arc's constraint, and check each count against `[mᵢ, nᵢ]` — linear
//! time, no expression state, no derivatives. The
//! [`Engine`](crate::engine::Engine) uses this automatically for
//! qualifying shapes (disable with
//! [`EngineConfig::no_sorbe`](crate::engine::EngineConfig)); experiment E9
//! measures the effect.

use shapex_shex::ast::{PredicateSet, ShapeExpr};

use crate::arena::UNBOUNDED;

/// One conjunct of a SORBE shape: the arc at DFS position `arc_pos`
/// (mapping to the shape's `arcs[arc_pos]` after compilation) with its
/// cardinality interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SorbeArc {
    /// Index into the owning shape's arc list (DFS order).
    pub arc_pos: usize,
    /// Minimum occurrences.
    pub min: u32,
    /// `UNBOUNDED` for `{m,}`.
    pub max: u32,
}

/// Attempts to classify a shape expression as SORBE. Returns the conjunct
/// list (possibly empty, for `ε`) or `None` when the expression needs the
/// general derivative engine.
pub fn classify(expr: &ShapeExpr) -> Option<Vec<SorbeArc>> {
    let mut arcs = Vec::new();
    let mut pos = 0usize;
    if !collect(expr, 1, 1, &mut arcs, &mut pos) {
        return None;
    }
    // Single occurrence: pairwise-disjoint (predicates, direction) heads.
    let mut heads: Vec<(&PredicateSet, bool)> = Vec::new();
    collect_heads(expr, &mut heads);
    debug_assert_eq!(heads.len(), arcs.len());
    for i in 0..heads.len() {
        for j in i + 1..heads.len() {
            if heads[i].1 == heads[j].1 && overlaps(heads[i].0, heads[j].0) {
                return None;
            }
        }
    }
    Some(arcs)
}

/// Walks the And-spine, accumulating arcs with their cardinalities.
/// `min`/`max` carry the cardinality context from enclosing operators;
/// nested cardinalities (e.g. `(e:p .{2}){3}`) disqualify.
fn collect(expr: &ShapeExpr, min: u32, max: u32, out: &mut Vec<SorbeArc>, pos: &mut usize) -> bool {
    match expr {
        ShapeExpr::Epsilon => true,
        ShapeExpr::Empty => false,
        ShapeExpr::Arc(_) => {
            out.push(SorbeArc {
                arc_pos: *pos,
                min,
                max,
            });
            *pos += 1;
            true
        }
        ShapeExpr::Star(e) => cardinality_of(e, 0, UNBOUNDED, out, pos),
        ShapeExpr::Plus(e) => cardinality_of(e, 1, UNBOUNDED, out, pos),
        ShapeExpr::Opt(e) => cardinality_of(e, 0, 1, out, pos),
        ShapeExpr::Repeat(e, m, n) => cardinality_of(e, *m, n.unwrap_or(UNBOUNDED), out, pos),
        ShapeExpr::And(a, b) => {
            // Cardinality over a whole group is not SORBE-flat.
            if (min, max) != (1, 1) {
                return false;
            }
            collect(a, 1, 1, out, pos) && collect(b, 1, 1, out, pos)
        }
        ShapeExpr::Or(_, _) => false,
    }
}

/// A cardinality operator's body must be a bare arc for the flat form.
fn cardinality_of(
    e: &ShapeExpr,
    min: u32,
    max: u32,
    out: &mut Vec<SorbeArc>,
    pos: &mut usize,
) -> bool {
    match e {
        ShapeExpr::Arc(_) => collect(e, min, max, out, pos),
        _ => false,
    }
}

fn collect_heads<'a>(expr: &'a ShapeExpr, out: &mut Vec<(&'a PredicateSet, bool)>) {
    expr.visit_arcs(&mut |arc| out.push((&arc.predicates, arc.inverse)));
}

fn overlaps(a: &PredicateSet, b: &PredicateSet) -> bool {
    match (a, b) {
        (PredicateSet::Any, _) | (_, PredicateSet::Any) => true,
        (PredicateSet::Iris(xs), PredicateSet::Iris(ys)) => {
            xs.iter().any(|x| ys.iter().any(|y| x == y))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapex_shex::shexc;

    fn classify_shape(src: &str) -> Option<Vec<SorbeArc>> {
        let schema = shexc::parse(src).unwrap();
        let (_, expr) = schema.iter().next().unwrap();
        classify(expr)
    }

    #[test]
    fn flat_person_schema_is_sorbe() {
        let arcs = classify_shape(
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\nPREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n\
             <P> { foaf:age xsd:integer, foaf:name xsd:string+, foaf:knows @<P>* }",
        )
        .expect("is SORBE");
        assert_eq!(arcs.len(), 3);
        assert_eq!((arcs[0].min, arcs[0].max), (1, 1));
        assert_eq!((arcs[1].min, arcs[1].max), (1, UNBOUNDED));
        assert_eq!((arcs[2].min, arcs[2].max), (0, UNBOUNDED));
        assert_eq!(arcs[2].arc_pos, 2);
    }

    #[test]
    fn cardinality_ranges_are_sorbe() {
        let arcs = classify_shape("PREFIX e: <http://e/>\n<S> { e:a .{2,5}, e:b .?, e:c .{3} }")
            .expect("is SORBE");
        assert_eq!(
            arcs[0],
            SorbeArc {
                arc_pos: 0,
                min: 2,
                max: 5
            }
        );
        assert_eq!(
            arcs[1],
            SorbeArc {
                arc_pos: 1,
                min: 0,
                max: 1
            }
        );
        assert_eq!(
            arcs[2],
            SorbeArc {
                arc_pos: 2,
                min: 3,
                max: 3
            }
        );
    }

    #[test]
    fn empty_shape_is_sorbe() {
        assert_eq!(classify_shape("<S> { }"), Some(vec![]));
    }

    #[test]
    fn repeated_predicate_is_not_sorbe() {
        // `e:p [1], e:p [2]` — the same triple head occurs twice.
        assert!(classify_shape("PREFIX e: <http://e/>\n<S> { e:p [1], e:p [2] }").is_none());
    }

    #[test]
    fn alternatives_are_not_sorbe() {
        assert!(classify_shape("PREFIX e: <http://e/>\n<S> { e:a . | e:b . }").is_none());
    }

    #[test]
    fn group_cardinality_is_not_sorbe() {
        assert!(classify_shape("PREFIX e: <http://e/>\n<S> { (e:a ., e:b .)+ }").is_none());
    }

    #[test]
    fn nested_cardinality_is_not_sorbe() {
        assert!(classify_shape("PREFIX e: <http://e/>\n<S> { (e:a .{2})* }").is_none());
    }

    #[test]
    fn wildcard_with_other_arcs_is_not_sorbe() {
        assert!(classify_shape("PREFIX e: <http://e/>\n<S> { . ., e:a . }").is_none());
        // But a lone wildcard arc is fine.
        assert!(classify_shape("<S> { . .* }").is_some());
    }

    #[test]
    fn inverse_and_forward_same_predicate_are_disjoint() {
        let arcs = classify_shape("PREFIX e: <http://e/>\n<S> { e:knows IRI+, ^e:knows IRI* }")
            .expect("directions make heads disjoint");
        assert_eq!(arcs.len(), 2);
    }

    #[test]
    fn or_under_and_is_not_sorbe() {
        assert!(classify_shape("PREFIX e: <http://e/>\n<S> { e:a ., (e:b . | e:c .) }").is_none());
    }
}

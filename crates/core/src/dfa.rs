//! Lazy shape DFA: alphabet-class compression + dense transition tables.
//!
//! The derivative engine's hot loop is `state --triple-class--> state`.
//! Two structural facts make it a finite automaton worth materialising:
//!
//! * **Alphabet classes.** `∂t(e)` depends only on which of the shape's
//!   arc constraints `t` satisfies *and the expression can observe* — the
//!   Owens–Reppy–Turon derivative-class idea. Each shape carries a
//!   compile-time [`class_mask`](crate::compile::CompiledShape::class_mask)
//!   (the arc bits reachable from its compiled expression); satisfaction
//!   profiles are masked with it before interning, so all triples the
//!   shape's derivatives treat identically collapse into one small dense
//!   class id.
//! * **Dense states.** Derivative results are hash-consed [`ExprId`]s;
//!   only a small set is ever reached from a shape's initial expression.
//!   Renumbering them densely per shape turns the derivative memo
//!   `HashMap<(ExprId, ProfileId), ExprId>` into a flat transition table
//!   `Vec<u32>` indexed by `state * stride + class` — one bounds-checked
//!   load instead of a hash per memoised derivative.
//!
//! The table is **lazy**: cells start at a sentinel and are filled the
//! first time the engine actually computes that `(state, class)`
//! derivative, so fills coincide exactly with the `--no-dfa` HashMap
//! memo's misses. That coincidence is what keeps the two paths
//! byte-identical (same derivative steps, same budget charging, same
//! exhaustion points); only the lookup structure differs.
//!
//! Sharing across [`type_all_par`](crate::Engine::type_all_par) shards
//! mirrors the memo promotion protocol: workers fork a read-mostly
//! snapshot of the coordinator's tables, log their fills, and the
//! coordinator merges prefix-valid transitions at each wave boundary and
//! re-seeds them to the other workers (class ids are translated through
//! their masked bitsets, which are engine-independent).
//!
//! Budget accounting: every filled transition counts as one arena unit
//! (see [`Engine`](crate::Engine)'s `arena_units`), so table growth is
//! governed by `max_arena_nodes` exactly like the HashMap memo it
//! replaces.

use rustc_hash::FxHashMap;

use crate::arena::ExprId;

/// Sentinel for a not-yet-computed transition cell.
const UNFILLED: u32 = u32::MAX;

/// One logged table fill, in engine-independent terms: the source and
/// target are hash-consed [`ExprId`]s (comparable across engines within
/// the shared fork-time pool prefix) and `class` is the *local* class id,
/// translated through [`ShapeDfa::class_bits`] when crossing engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Source expression state.
    pub src: ExprId,
    /// Local alphabet-class id (valid only in the logging engine).
    pub class: u32,
    /// Target expression state (`∂class(src)`).
    pub dst: ExprId,
}

/// The lazily built DFA for one shape: interned alphabet classes, densely
/// renumbered expression states, and the flat transition table.
#[derive(Debug, Clone, Default)]
pub struct ShapeDfa {
    /// Masked profile bits → local class id.
    classes: FxHashMap<Box<[u64]>, u32>,
    /// Local class id → masked profile bits (the engine-independent name
    /// of the class, used to translate ids across workers).
    class_bits: Vec<Box<[u64]>>,
    /// Expression → dense state id, indexed directly by `ExprId` (pool
    /// ids are themselves dense, so a sentinel-filled vector beats any
    /// hash table on both the probe and the fill path); [`UNFILLED`]
    /// marks expressions never interned as states.
    state_of: Vec<u32>,
    /// State id → expression.
    state_exprs: Vec<ExprId>,
    /// `ν(state)`, copied from the arena at interning time so a state
    /// walk never touches the arena.
    state_nullable: Vec<bool>,
    /// Row width of `table` — the power-of-two class capacity. The table
    /// is rebuilt with a doubled stride when classes outgrow it.
    stride: usize,
    /// `state * stride + class → target state`, [`UNFILLED`] when the
    /// derivative has not been computed yet.
    table: Vec<u32>,
    /// Number of filled cells (the table's arena-unit charge).
    filled: usize,
    /// Fill log drained at wave boundaries; only populated on parallel
    /// workers (see [`ShapeDfa::fork`]).
    log: Vec<Transition>,
    log_enabled: bool,
}

impl ShapeDfa {
    /// Initial class capacity (row width) of a fresh table.
    const INITIAL_STRIDE: usize = 4;

    /// An empty DFA.
    pub fn new() -> ShapeDfa {
        ShapeDfa::default()
    }

    /// A worker's copy for parallel typing: same snapshot, fill logging
    /// switched on, log empty.
    pub fn fork(&self) -> ShapeDfa {
        let mut d = self.clone();
        d.log.clear();
        d.log_enabled = true;
        d
    }

    /// Number of interned alphabet classes.
    pub fn classes(&self) -> usize {
        self.class_bits.len()
    }

    /// Number of interned states.
    pub fn states(&self) -> usize {
        self.state_exprs.len()
    }

    /// Number of filled transition cells.
    pub fn filled(&self) -> usize {
        self.filled
    }

    /// The masked profile bits naming a class — the translation key when
    /// moving transitions between engines.
    pub fn class_bits(&self, class: u32) -> &[u64] {
        &self.class_bits[class as usize]
    }

    /// The expression behind a state id.
    pub fn state_expr(&self, state: u32) -> ExprId {
        self.state_exprs[state as usize]
    }

    /// `ν(e)` for an interned state, `None` if `e` was never interned.
    pub fn nullable_of(&self, e: ExprId) -> Option<bool> {
        match self.state_of.get(e.index()) {
            Some(&s) if s != UNFILLED => Some(self.state_nullable[s as usize]),
            _ => None,
        }
    }

    /// Interns a masked profile bitset as an alphabet class. Returns the
    /// class id and whether it was freshly interned.
    pub fn intern_class(&mut self, bits: &[u64]) -> (u32, bool) {
        if let Some(&c) = self.classes.get(bits) {
            return (c, false);
        }
        let c = self.class_bits.len() as u32;
        let boxed: Box<[u64]> = bits.into();
        self.classes.insert(boxed.clone(), c);
        self.class_bits.push(boxed);
        if self.class_bits.len() > self.stride {
            self.grow_stride();
        }
        (c, true)
    }

    /// Interns an expression as a dense state. Returns the state id and
    /// whether it was freshly interned. `nullable` must be `ν(e)` (the
    /// arena precomputes it bottom-up).
    pub fn intern_state(&mut self, e: ExprId, nullable: bool) -> (u32, bool) {
        if e.index() >= self.state_of.len() {
            self.state_of.resize(e.index() + 1, UNFILLED);
        }
        let known = self.state_of[e.index()];
        if known != UNFILLED {
            return (known, false);
        }
        let s = self.state_exprs.len() as u32;
        self.state_of[e.index()] = s;
        self.state_exprs.push(e);
        self.state_nullable.push(nullable);
        if self.stride == 0 {
            self.stride = Self::INITIAL_STRIDE.max(self.class_bits.len().next_power_of_two());
        }
        self.table.resize(self.table.len() + self.stride, UNFILLED);
        (s, true)
    }

    /// The memoised target of `(state, class)`, if that derivative has
    /// been computed.
    #[inline]
    pub fn target(&self, state: u32, class: u32) -> Option<ExprId> {
        let t = self.table[state as usize * self.stride + class as usize];
        (t != UNFILLED).then(|| self.state_exprs[t as usize])
    }

    /// Whether `(state, class)` is already filled.
    pub fn is_filled(&self, state: u32, class: u32) -> bool {
        self.table[state as usize * self.stride + class as usize] != UNFILLED
    }

    /// Fills `(src, class) → dst`, logging it when this is a worker copy.
    /// Returns `true` if the cell was previously unfilled.
    pub fn record(&mut self, src: u32, class: u32, dst: u32) -> bool {
        let idx = src as usize * self.stride + class as usize;
        if self.table[idx] != UNFILLED {
            debug_assert_eq!(
                self.table[idx], dst,
                "conflicting derivative for the same (state, class)"
            );
            return false;
        }
        self.table[idx] = dst;
        self.filled += 1;
        if self.log_enabled {
            self.log.push(Transition {
                src: self.state_exprs[src as usize],
                class,
                dst: self.state_exprs[dst as usize],
            });
        }
        true
    }

    /// Fills a cell *without* logging — used when seeding transitions
    /// learned elsewhere (a seed echoed back into the log would bounce
    /// between coordinator and workers forever). Returns `true` if the
    /// cell was previously unfilled.
    pub fn seed(&mut self, src: u32, class: u32, dst: u32) -> bool {
        let was = self.log_enabled;
        self.log_enabled = false;
        let fresh = self.record(src, class, dst);
        self.log_enabled = was;
        fresh
    }

    /// Drains the fill log (wave-boundary merge).
    pub fn take_log(&mut self) -> Vec<Transition> {
        std::mem::take(&mut self.log)
    }

    /// Doubles the row width, re-laying out every existing row.
    fn grow_stride(&mut self) {
        let old = self.stride.max(1);
        let new = (old * 2).max(Self::INITIAL_STRIDE);
        let mut table = vec![UNFILLED; self.state_exprs.len() * new];
        for s in 0..self.state_exprs.len() {
            table[s * new..s * new + old].copy_from_slice(&self.table[s * old..(s + 1) * old]);
        }
        self.stride = new;
        self.table = table;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::{ExprPool, Simplify, EMPTY, EPSILON};

    fn pool_with_states() -> (ExprPool, Vec<ExprId>) {
        let mut pool = ExprPool::new(Simplify::none());
        let mut ids = vec![EMPTY, EPSILON];
        let mut prev = EPSILON;
        for _ in 0..6 {
            prev = pool.star(prev);
            ids.push(prev);
        }
        (pool, ids)
    }

    #[test]
    fn classes_and_states_intern_densely() {
        let (pool, ids) = pool_with_states();
        let mut dfa = ShapeDfa::new();
        assert_eq!(dfa.intern_class(&[0b01]), (0, true));
        assert_eq!(dfa.intern_class(&[0b10]), (1, true));
        assert_eq!(dfa.intern_class(&[0b01]), (0, false));
        assert_eq!(dfa.classes(), 2);
        let (s0, fresh) = dfa.intern_state(ids[2], pool.nullable(ids[2]));
        assert!(fresh);
        let (s0b, fresh) = dfa.intern_state(ids[2], pool.nullable(ids[2]));
        assert!(!fresh);
        assert_eq!(s0, s0b);
        assert_eq!(dfa.state_expr(s0), ids[2]);
        assert_eq!(dfa.nullable_of(ids[2]), Some(true));
        assert_eq!(dfa.nullable_of(EMPTY), None);
    }

    #[test]
    fn fills_are_lazy_and_idempotent() {
        let (pool, ids) = pool_with_states();
        let mut dfa = ShapeDfa::new();
        let (c, _) = dfa.intern_class(&[1]);
        let (a, _) = dfa.intern_state(ids[2], pool.nullable(ids[2]));
        let (b, _) = dfa.intern_state(ids[3], pool.nullable(ids[3]));
        assert_eq!(dfa.target(a, c), None);
        assert!(dfa.record(a, c, b));
        assert_eq!(dfa.target(a, c), Some(ids[3]));
        assert!(!dfa.record(a, c, b), "second fill of the same cell");
        assert_eq!(dfa.filled(), 1);
    }

    #[test]
    fn stride_growth_preserves_filled_cells() {
        let (pool, ids) = pool_with_states();
        let mut dfa = ShapeDfa::new();
        let (a, _) = dfa.intern_state(ids[2], pool.nullable(ids[2]));
        let (b, _) = dfa.intern_state(ids[3], pool.nullable(ids[3]));
        // Fill a cell per class while forcing several stride doublings.
        for i in 0..40u64 {
            let (c, fresh) = dfa.intern_class(&[1 << (i % 60), i]);
            assert!(fresh);
            dfa.record(a, c, b);
        }
        for i in 0..40u64 {
            let (c, fresh) = dfa.intern_class(&[1 << (i % 60), i]);
            assert!(!fresh);
            assert_eq!(dfa.target(a, c), Some(ids[3]), "class {i} lost by growth");
        }
        assert_eq!(dfa.filled(), 40);
        assert_eq!(dfa.target(b, 0), None);
    }

    #[test]
    fn fork_logs_fills_and_seeds_stay_silent() {
        let (pool, ids) = pool_with_states();
        let mut coord = ShapeDfa::new();
        let (c, _) = coord.intern_class(&[1]);
        let (a, _) = coord.intern_state(ids[2], pool.nullable(ids[2]));
        let (b, _) = coord.intern_state(ids[3], pool.nullable(ids[3]));
        coord.record(a, c, b);
        assert!(
            coord.take_log().is_empty(),
            "coordinator fills are not logged"
        );

        let mut worker = coord.fork();
        // Snapshot carries the transition over.
        assert_eq!(worker.target(a, c), Some(ids[3]));
        let (d, _) = worker.intern_state(ids[4], pool.nullable(ids[4]));
        worker.record(b, c, d);
        worker.seed(d, c, d);
        let log = worker.take_log();
        assert_eq!(
            log,
            vec![Transition {
                src: ids[3],
                class: c,
                dst: ids[4]
            }],
            "exactly the worker's own fill is logged; seeds are silent"
        );
        assert!(worker.take_log().is_empty(), "log drains");
    }
}

//! Fine-grained observability counters for the derivative engine.
//!
//! [`Stats`](crate::result::Stats) answers "how much work happened";
//! [`Metrics`] answers *where* it happened: cache-level hit/miss splits
//! (the stable vs. assumption-carrying profile caches behave very
//! differently under gfp reruns), per-shape attribution, `HeadIndex`
//! selectivity, and — for [`Engine::type_all_par`] — per-wave timings and
//! per-shard merge accounting.
//!
//! Collection is **off by default** and gated by
//! [`EngineConfig::metrics`](crate::EngineConfig): when disabled the
//! engine holds no `Metrics` allocation at all and every instrumentation
//! site reduces to one branch on an `Option` discriminant — nothing is
//! counted, nothing is timed.
//!
//! Merge discipline (also documented in `DESIGN.md`): parallel workers
//! collect into private `Metrics`/`Stats` shards; at each wave boundary
//! the coordinator folds in exactly the *delta* each shard accumulated
//! since the previous boundary ([`Metrics::absorb_delta`]). Counters are
//! therefore merged exactly once — re-seeding the promotion log never
//! re-counts them, and workers idle in a wave contribute an empty delta
//! rather than being dropped.
//!
//! [`Engine::type_all_par`]: crate::Engine::type_all_par

use std::fmt;

/// Hit/miss counters for one memo table. The defining invariant — checked
/// by the metric-invariant proptests — is `lookups == hits + misses`
/// (with [`CacheMetrics::hits`] summing every hit flavour).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheMetrics {
    /// Times the table was consulted.
    pub lookups: u64,
    /// Lookups answered from the table.
    pub hits: u64,
    /// Lookups that fell through to a fresh computation.
    pub misses: u64,
}

impl CacheMetrics {
    /// Hit ratio in `[0, 1]`; `0` when the table was never consulted.
    pub fn hit_ratio(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    fn absorb_delta(&mut self, prev: &CacheMetrics, now: &CacheMetrics) {
        self.lookups += now.lookups - prev.lookups;
        self.hits += now.hits - prev.hits;
        self.misses += now.misses - prev.misses;
    }

    /// The table's counters as a JSON object.
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
        })
    }
}

/// Per-shape work attribution, indexed by [`ShapeId`](crate::ShapeId).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShapeMetrics {
    /// `(node, shape)` evaluations (memo misses) against this shape.
    pub checks: u64,
    /// Evaluations that proved conformance.
    pub conforms: u64,
    /// Evaluations that refuted conformance.
    pub fails: u64,
    /// Derivative-rule applications attributed to this shape's checks.
    pub derivative_steps: u64,
    /// Checks answered by the SORBE counting fast path.
    pub sorbe_checks: u64,
    /// Satisfaction profiles computed (profile-cache misses) for this
    /// shape.
    pub profiles_computed: u64,
}

impl ShapeMetrics {
    fn absorb_delta(&mut self, prev: &ShapeMetrics, now: &ShapeMetrics) {
        self.checks += now.checks - prev.checks;
        self.conforms += now.conforms - prev.conforms;
        self.fails += now.fails - prev.fails;
        self.derivative_steps += now.derivative_steps - prev.derivative_steps;
        self.sorbe_checks += now.sorbe_checks - prev.sorbe_checks;
        self.profiles_computed += now.profiles_computed - prev.profiles_computed;
    }
}

/// Per-shape lazy-DFA structure sizes (see [`crate::dfa`]). These are
/// *gauges*, not rates: they report how large the shape's automaton has
/// grown, so the wave-boundary merge takes the max across shards instead
/// of summing deltas.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DfaShapeMetrics {
    /// Dense expression states interned for the shape.
    pub states: u64,
    /// Alphabet classes interned for the shape.
    pub classes: u64,
}

impl DfaShapeMetrics {
    fn absorb_max(&mut self, now: &DfaShapeMetrics) {
        self.states = self.states.max(now.states);
        self.classes = self.classes.max(now.classes);
    }
}

/// One shard's contribution to a [`WaveMetrics`] record: what a single
/// worker did during that wave, measured as the delta folded in at the
/// wave boundary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardMetrics {
    /// Worker index.
    pub worker: usize,
    /// Queries this worker executed in the epoch (its own share plus any
    /// it stole).
    pub queries: u64,
    /// Queries executed from batches stolen off peers' deques (zero under
    /// `--fixed-shard`).
    pub stolen: u64,
    /// Successful steals (batches taken off a peer's deque).
    pub steals: u64,
    /// Steal probes issued, successful or not; `steals / steal_attempts`
    /// measures contention.
    pub steal_attempts: u64,
    /// Unconditional verdicts this worker published to the epoch's
    /// publication log while the epoch was still running.
    pub published: u64,
    /// Verdicts this worker drained from peers' publications mid-epoch.
    pub drained: u64,
    /// Microseconds spent executing queries (only collected when metrics
    /// are enabled).
    pub busy_us: u64,
    /// Microseconds spent probing for work with an empty deque.
    pub idle_us: u64,
    /// Newly learned unconditional `(shape, node)` pairs merged from this
    /// shard at the boundary.
    pub promoted: u64,
    /// Budget steps the shard spent during the wave.
    pub budget_steps: u64,
    /// Derivative-rule applications during the wave.
    pub derivative_steps: u64,
}

/// One wave (fixed-shard) or epoch (work-stealing) of
/// [`Engine::type_all_par`](crate::Engine::type_all_par): dispatch sizes,
/// wall-clock, and the per-shard merge record.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WaveMetrics {
    /// Queries in the wave's window.
    pub queries: u64,
    /// Window queries answered by a verdict memoised *before* the
    /// parallel run started (schema preloading, a previous `type_all*`, a
    /// surviving revalidation memo). Disjoint from
    /// [`merged_answered`](WaveMetrics::merged_answered).
    pub memo_answered: u64,
    /// Window queries answered by a verdict another worker proved earlier
    /// in *this* run and the coordinator already merged — skipped, not
    /// re-dispatched.
    pub merged_answered: u64,
    /// Queries actually dispatched to workers.
    pub dispatched: u64,
    /// Successful steals across all workers in the epoch (zero under
    /// `--fixed-shard`).
    pub steals: u64,
    /// Steal probes across all workers in the epoch.
    pub steal_attempts: u64,
    /// Verdicts published to the epoch's shared log across all workers.
    pub published: u64,
    /// Promotion-log entries re-seeded into worker snapshots before
    /// dispatch (sum over workers).
    pub reseeded_pairs: u64,
    /// Wall-clock for the wave (dispatch through merge), microseconds.
    pub elapsed_us: u64,
    /// Per-worker deltas for the wave.
    pub shards: Vec<ShardMetrics>,
}

/// The engine's observability counters; see the module docs for the
/// collection and merge discipline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Stable (assumption-free) profile-cache behaviour. A hit here means
    /// the triple's satisfaction profile was a persistent fact.
    pub profile_stable: CacheMetrics,
    /// Assumption-carrying profile-cache behaviour (per-run entries whose
    /// bits were computed under open coinductive assumptions).
    pub profile_assumption: CacheMetrics,
    /// `(expression, triple-class)` derivative-memo behaviour — the
    /// `--no-dfa` baseline HashMap. Not consulted when
    /// `EngineConfig::no_deriv_memo` is set, nor when the lazy DFA is
    /// active (the default; see [`Metrics::dfa_table`]).
    pub deriv_memo: CacheMetrics,
    /// Dense DFA transition-table behaviour (the default derivative
    /// cache; see [`crate::dfa`]). A miss is exactly one lazy table fill.
    pub dfa_table: CacheMetrics,
    /// DFA expression states interned, summed over shapes.
    pub dfa_states: u64,
    /// Per-shape DFA sizes, indexed by `ShapeId` (gauges, merged by max).
    pub per_shape_dfa: Vec<DfaShapeMetrics>,
    /// `HeadIndex` consultations during profile computation.
    pub head_index_queries: u64,
    /// Candidate arcs the `HeadIndex` returned, summed over queries; the
    /// average `candidates/queries` measures index selectivity against a
    /// full arc scan.
    pub head_index_candidates: u64,
    /// Largest expression-arena size observed by any query's meter.
    pub arena_high_water: usize,
    /// Budget steps charged across all queries.
    pub budget_steps: u64,
    /// Memoised pairs dropped by
    /// [`revalidate`](crate::Engine::revalidate)'s invalidation closure,
    /// summed over revalidations.
    pub delta_invalidated: u64,
    /// Pairs re-evaluated on the dirty frontier during revalidations.
    pub delta_retyped: u64,
    /// Pairs answered from the surviving memo during revalidations.
    pub delta_reused: u64,
    /// Per-shape attribution, indexed by `ShapeId`.
    pub per_shape: Vec<ShapeMetrics>,
    /// Wave records; non-empty only after a parallel
    /// [`type_all_par`](crate::Engine::type_all_par) run.
    pub waves: Vec<WaveMetrics>,
}

impl Metrics {
    /// An empty metrics block with per-shape slots for `shapes` shapes.
    pub fn new(shapes: usize) -> Self {
        Metrics {
            per_shape: vec![ShapeMetrics::default(); shapes],
            per_shape_dfa: vec![DfaShapeMetrics::default(); shapes],
            ..Metrics::default()
        }
    }

    /// Total profile-cache lookups (both flavours). Each triple
    /// profiling consults the stable table first and the
    /// assumption-carrying table only on a stable miss, so stable lookups
    /// count every profiling and assumption lookups only the fall-through.
    pub fn profile_lookups(&self) -> u64 {
        self.profile_stable.lookups + self.profile_assumption.lookups
    }

    /// Profiles computed fresh (misses of both cache layers).
    pub fn profiles_computed(&self) -> u64 {
        self.profile_assumption.misses
    }

    /// Folds in the delta another collector accumulated between the
    /// `prev` and `now` snapshots — the wave-boundary merge primitive.
    /// Monotone counters add the difference; high-water marks take the
    /// max of the *absolute* value (a high-water mark is not a rate).
    pub fn absorb_delta(&mut self, prev: &Metrics, now: &Metrics) {
        self.profile_stable
            .absorb_delta(&prev.profile_stable, &now.profile_stable);
        self.profile_assumption
            .absorb_delta(&prev.profile_assumption, &now.profile_assumption);
        self.deriv_memo
            .absorb_delta(&prev.deriv_memo, &now.deriv_memo);
        self.dfa_table.absorb_delta(&prev.dfa_table, &now.dfa_table);
        self.dfa_states += now.dfa_states - prev.dfa_states;
        if self.per_shape_dfa.len() < now.per_shape_dfa.len() {
            self.per_shape_dfa
                .resize(now.per_shape_dfa.len(), DfaShapeMetrics::default());
        }
        for (i, slot) in self.per_shape_dfa.iter_mut().enumerate() {
            if let Some(n) = now.per_shape_dfa.get(i) {
                slot.absorb_max(n);
            }
        }
        self.head_index_queries += now.head_index_queries - prev.head_index_queries;
        self.head_index_candidates += now.head_index_candidates - prev.head_index_candidates;
        self.arena_high_water = self.arena_high_water.max(now.arena_high_water);
        self.budget_steps += now.budget_steps - prev.budget_steps;
        self.delta_invalidated += now.delta_invalidated - prev.delta_invalidated;
        self.delta_retyped += now.delta_retyped - prev.delta_retyped;
        self.delta_reused += now.delta_reused - prev.delta_reused;
        if self.per_shape.len() < now.per_shape.len() {
            self.per_shape
                .resize(now.per_shape.len(), ShapeMetrics::default());
        }
        for (i, slot) in self.per_shape.iter_mut().enumerate() {
            let zero = ShapeMetrics::default();
            let p = prev.per_shape.get(i).unwrap_or(&zero);
            let n = now.per_shape.get(i).unwrap_or(&zero);
            slot.absorb_delta(p, n);
        }
    }

    /// The metrics block as a JSON object (the `metrics` member of the
    /// `--report json` document — schema documented in `DESIGN.md`).
    /// `labels(i)` names shape `i` for the per-shape rows.
    pub fn to_json(&self, labels: &dyn Fn(usize) -> String) -> serde_json::Value {
        use serde_json::Value;
        let per_shape: Vec<Value> = self
            .per_shape
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let dfa = self.per_shape_dfa.get(i).copied().unwrap_or_default();
                serde_json::json!({
                    "shape": labels(i),
                    "checks": s.checks,
                    "conforms": s.conforms,
                    "fails": s.fails,
                    "derivative_steps": s.derivative_steps,
                    "sorbe_checks": s.sorbe_checks,
                    "profiles_computed": s.profiles_computed,
                    "dfa_states": dfa.states,
                    "dfa_classes": dfa.classes,
                })
            })
            .collect();
        let waves: Vec<Value> = self
            .waves
            .iter()
            .map(|w| {
                let shards: Vec<Value> = w
                    .shards
                    .iter()
                    .map(|s| {
                        serde_json::json!({
                            "worker": s.worker,
                            "queries": s.queries,
                            "stolen": s.stolen,
                            "steals": s.steals,
                            "steal_attempts": s.steal_attempts,
                            "published": s.published,
                            "drained": s.drained,
                            "busy_us": s.busy_us,
                            "idle_us": s.idle_us,
                            "promoted": s.promoted,
                            "budget_steps": s.budget_steps,
                            "derivative_steps": s.derivative_steps,
                        })
                    })
                    .collect();
                serde_json::json!({
                    "queries": w.queries,
                    "memo_answered": w.memo_answered,
                    "merged_answered": w.merged_answered,
                    "dispatched": w.dispatched,
                    "steals": w.steals,
                    "steal_attempts": w.steal_attempts,
                    "published": w.published,
                    "reseeded_pairs": w.reseeded_pairs,
                    "elapsed_us": w.elapsed_us,
                    "shards": Value::Array(shards),
                })
            })
            .collect();
        serde_json::json!({
            "profile_stable": self.profile_stable.to_json(),
            "profile_assumption": self.profile_assumption.to_json(),
            "deriv_memo": self.deriv_memo.to_json(),
            "dfa_table": self.dfa_table.to_json(),
            "dfa_states": self.dfa_states,
            "head_index": {
                "queries": self.head_index_queries,
                "candidates": self.head_index_candidates,
            },
            "arena_high_water": self.arena_high_water,
            "budget_steps": self.budget_steps,
            "delta": {
                "invalidated": self.delta_invalidated,
                "retyped": self.delta_retyped,
                "reused": self.delta_reused,
            },
            "per_shape": Value::Array(per_shape),
            "waves": Value::Array(waves),
        })
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "profile-stable={}/{} profile-assume={}/{} deriv-memo={}/{} \
             dfa-table={}/{} dfa-states={} \
             head-index={}q/{}c arena-hwm={} budget-steps={}",
            self.profile_stable.hits,
            self.profile_stable.lookups,
            self.profile_assumption.hits,
            self.profile_assumption.lookups,
            self.deriv_memo.hits,
            self.deriv_memo.lookups,
            self.dfa_table.hits,
            self.dfa_table.lookups,
            self.dfa_states,
            self.head_index_queries,
            self.head_index_candidates,
            self.arena_high_water,
            self.budget_steps,
        )?;
        if !self.waves.is_empty() {
            write!(f, " waves={}", self.waves.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_invariant_and_ratio() {
        let c = CacheMetrics {
            lookups: 10,
            hits: 7,
            misses: 3,
        };
        assert_eq!(c.lookups, c.hits + c.misses);
        assert!((c.hit_ratio() - 0.7).abs() < 1e-12);
        assert_eq!(CacheMetrics::default().hit_ratio(), 0.0);
    }

    #[test]
    fn absorb_delta_adds_counters_and_maxes_high_water() {
        let mut total = Metrics::new(2);
        let prev = Metrics {
            deriv_memo: CacheMetrics {
                lookups: 5,
                hits: 4,
                misses: 1,
            },
            budget_steps: 100,
            arena_high_water: 10,
            per_shape: vec![
                ShapeMetrics {
                    checks: 1,
                    ..ShapeMetrics::default()
                },
                ShapeMetrics::default(),
            ],
            ..Metrics::default()
        };
        let now = Metrics {
            deriv_memo: CacheMetrics {
                lookups: 9,
                hits: 6,
                misses: 3,
            },
            budget_steps: 150,
            arena_high_water: 40,
            per_shape: vec![
                ShapeMetrics {
                    checks: 3,
                    ..ShapeMetrics::default()
                },
                ShapeMetrics {
                    checks: 2,
                    ..ShapeMetrics::default()
                },
            ],
            ..Metrics::default()
        };
        total.absorb_delta(&prev, &now);
        assert_eq!(total.deriv_memo.lookups, 4);
        assert_eq!(total.deriv_memo.hits, 2);
        assert_eq!(total.deriv_memo.misses, 2);
        assert_eq!(total.budget_steps, 50);
        assert_eq!(total.arena_high_water, 40);
        assert_eq!(total.per_shape[0].checks, 2);
        assert_eq!(total.per_shape[1].checks, 2);
        // Absorbing the same delta window twice would double-count; the
        // engine's wave loop advances `prev` to `now` after every merge.
        total.absorb_delta(&now, &now);
        assert_eq!(total.budget_steps, 50);
    }

    #[test]
    fn display_is_compact() {
        let m = Metrics::new(1);
        let s = m.to_string();
        assert!(s.contains("deriv-memo=0/0"), "{s}");
        assert!(!s.contains("waves"), "{s}");
    }
}

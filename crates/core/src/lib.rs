#![warn(missing_docs)]
//! # shapex
//!
//! RDF validation with regular-expression derivatives — a Rust
//! implementation of *"Towards an RDF Validation Language Based on Regular
//! Expression Derivatives"* (EDBT/ICDT 2015 workshops).
//!
//! The validator checks RDF nodes against *Regular Shape Expressions* by
//! consuming the node's neighbourhood one triple at a time and taking the
//! Brzozowski-style derivative of the expression at each step — no graph
//! decomposition, no backtracking (contrast with the
//! [`shapex-backtrack`](https://example.org) baseline crate).
//!
//! ```
//! use shapex::{Engine, validate};
//!
//! let report = validate(
//!     r#"
//!     PREFIX foaf: <http://xmlns.com/foaf/0.1/>
//!     PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
//!     <Person> {
//!       foaf:age xsd:integer
//!       , foaf:name xsd:string+
//!       , foaf:knows @<Person>*
//!     }
//!     "#,
//!     r#"
//!     @prefix : <http://example.org/> .
//!     @prefix foaf: <http://xmlns.com/foaf/0.1/> .
//!     :john foaf:age 23; foaf:name "John"; foaf:knows :bob .
//!     :bob foaf:age 34; foaf:name "Bob", "Robert" .
//!     :mary foaf:age 50, 65 .
//!     "#,
//! ).unwrap();
//!
//! assert!(report.conforms("http://example.org/john", "Person"));
//! assert!(report.conforms("http://example.org/bob", "Person"));
//! assert!(!report.conforms("http://example.org/mary", "Person"));
//! ```

// Compile the README's Rust code blocks as doctests so the quick-start
// examples cannot rot out of sync with the API.
#[cfg(doctest)]
#[doc = include_str!("../../../README.md")]
pub struct ReadmeDoctests;

pub mod arena;
pub mod budget;
pub mod calculus;
pub mod compile;
pub mod dfa;
pub mod engine;
pub mod metrics;
pub mod report;
pub mod result;
pub mod sched;
pub mod sorbe;
pub mod validate;

pub use arena::{ArcId, ExprId, ExprPool, Node, Simplify, EMPTY, EPSILON, UNBOUNDED};
pub use budget::{Budget, BudgetMeter, Exhaustion, Resource, RunGovernor};
pub use calculus::{
    containment, emptiness, prune_empty_branches, schema_diff, SchemaDiff, Verdict,
};
pub use compile::{CompiledSchema, ShapeId, SorbeSpec};
pub use dfa::{ShapeDfa, Transition};
pub use engine::{
    Closure, Engine, EngineConfig, EngineError, InvalidationPlan, MapOutcome, Trace, TraceStep,
};
pub use metrics::{
    CacheMetrics, DfaShapeMetrics, Metrics, ShapeMetrics, ShardMetrics, WaveMetrics,
};
pub use result::{Failure, FailureKind, MatchResult, Outcome, Stats, Typing};
pub use sched::{Executor, ExecutorCounters};
pub use validate::{default_jobs, validate, validate_par, validate_with_budget, Report};

// Re-export the substrate crates so downstream users need a single
// dependency.
pub use shapex_rdf as rdf;
pub use shapex_rdf::failpoint;
pub use shapex_shex as shex;

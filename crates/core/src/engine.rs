//! The derivative-based validation engine (paper §6–§8).
//!
//! Matching a node consumes its neighbourhood one triple at a time
//! (`e ≃ t ⊕ ts ⇔ ∂t(e) ≃ ts`, §7), so there is no graph decomposition and
//! no backtracking. The two ingredients beyond the calculus itself:
//!
//! * **Triple classes.** `∂t` only depends on *which arc constraints* `t`
//!   satisfies, so triples are mapped to satisfaction-profile ids first and
//!   derivatives are memoised per `(expression, profile)` — the
//!   Owens–Reppy–Turon character-class idea transplanted to triples.
//! * **Typing context `Γ`.** Shape references (§8 *Arcref*) recurse through
//!   the internal `check_inner`; a reference back to an in-progress
//!   `(node, shape)` pair succeeds on a coinductive assumption (`Γ{n→l}`
//!   in Fig. 3). Results proved under assumptions are tracked as
//!   *conditional*; if an assumption later fails, tainted results are
//!   purged and the query re-runs — converging on the greatest-fixpoint
//!   typing (sound because shape references are never negated, so
//!   matching is monotone in the assumption set).

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use rustc_hash::{FxHashMap, FxHashSet};
use shapex_rdf::delta::GraphDelta;
use shapex_rdf::graph::Graph;
use shapex_rdf::pool::{TermId, TermPool};
use shapex_shex::ast::ShapeLabel;
use shapex_shex::schema::{Schema, SchemaError};
use shapex_shex::shapemap::ShapeMap;

use crate::arena::{ArcId, ExprId, Node, Simplify, EMPTY, EPSILON, UNBOUNDED};
use crate::budget::{Budget, BudgetMeter, Exhaustion, Resource, RunGovernor};
use crate::compile::{CompiledObject, CompiledPredicates, CompiledSchema, ShapeId};
use crate::dfa::{ShapeDfa, Transition};
use crate::metrics::{Metrics, ShardMetrics, WaveMetrics};
use crate::result::{Failure, FailureKind, MatchResult, Outcome, Stats, Typing};
use crate::sched::{self, Batch, BatchQueue, Executor, PubLog, WorkerCounters};

/// Whether a shape must account for the node's entire neighbourhood.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Closure {
    /// The paper's semantics: `Σg_n ∈ S_n[[e]]` — every outgoing triple
    /// must be consumed by the expression.
    #[default]
    Closed,
    /// ShEx-style: only triples whose predicate is mentioned by the shape
    /// participate; others are ignored.
    Open,
}

/// Engine configuration; the non-default settings exist for the E9
/// ablation benchmarks.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineConfig {
    /// Which simplification rules the expression arena applies.
    pub simplify: Simplify,
    /// Closed (paper) vs open (ShEx) neighbourhood semantics.
    pub closure: Closure,
    /// Disable the `(expression, triple-class)` derivative memo. This
    /// disables the lazy DFA too — the transition table *is* the
    /// derivative memo in dense clothing.
    pub no_deriv_memo: bool,
    /// Fall back from the dense lazy-DFA transition tables to the
    /// `(expression, profile)` HashMap derivative memo (see
    /// [`crate::dfa`]). The two paths are byte-identical in results,
    /// step counts, and budget behaviour; this flag exists for the
    /// differential tests and the `BENCH_dfa` baseline.
    pub no_dfa: bool,
    /// Disable the SORBE counting fast path (§8 future work; see
    /// [`crate::sorbe`]), forcing the general derivative algorithm.
    pub no_sorbe: bool,
    /// Per-query resource limits (see [`crate::budget`]). The default,
    /// [`Budget::UNLIMITED`], governs nothing.
    pub budget: Budget,
    /// Collect fine-grained observability counters (see
    /// [`crate::metrics`]). Off by default: when disabled the engine
    /// allocates no metrics state and instrumentation sites reduce to a
    /// single `Option` discriminant test.
    pub metrics: bool,
    /// Record a triple-dependency index during typing so that
    /// [`Engine::revalidate`] can re-check only the `(node, shape)` pairs
    /// a [`GraphDelta`] actually disturbs. Off by default: recording
    /// costs a few hash inserts per evaluated pair, and without it
    /// `revalidate` falls back to [`Engine::reset`] + a full re-typing.
    pub incremental: bool,
    /// Rewrite each compiled shape after compilation, dropping alternation
    /// branches whose language is provably empty (see
    /// [`crate::calculus::prune_empty_branches`]). Off by default; the
    /// rewrite preserves the language exactly (verdicts, failures, and
    /// typings are byte-identical), only derivative work on dead branches
    /// disappears.
    pub prune: bool,
    /// Use the legacy fixed-shard wave scheduler for
    /// [`Engine::type_all_par`] instead of the work-stealing epoch
    /// scheduler (see [`crate::sched`] and DESIGN.md §5g). The two paths
    /// produce byte-identical typings; this flag exists as the baseline
    /// arm of `BENCH_parallel.json` and for the differential tests —
    /// surfaced as `--fixed-shard` on the CLI, mirroring `--no-dfa`.
    pub fixed_shard: bool,
}

/// A validation error at the API boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The queried label has no definition in the schema.
    UnknownShape(String),
    /// The schema failed well-formedness checks at compile time.
    Schema(SchemaError),
    /// A [`Engine::revalidate`] call whose delta does not match the graph:
    /// a triple the delta claims to have added is absent, or one it claims
    /// to have removed (and not re-added) is still present. This means the
    /// delta was never applied — or was applied to a different graph — and
    /// revalidating against it would serve answers from a stale dependency
    /// index.
    StaleDelta {
        /// Human-readable description of the first mismatch found.
        detail: String,
    },
    /// A resource budget tripped before the check completed (see
    /// [`crate::budget`]). Exhaustion is *not* non-conformance: the
    /// question is unanswered, and re-running with a larger budget may
    /// answer it either way.
    ResourceExhausted {
        /// The resource that ran out.
        resource: Resource,
        /// Units spent when the budget tripped.
        spent: u64,
        /// The configured limit.
        limit: u64,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownShape(l) => write!(f, "unknown shape <{l}>"),
            EngineError::Schema(e) => e.fmt(f),
            EngineError::StaleDelta { detail } => {
                write!(f, "delta does not match graph (was it applied?): {detail}")
            }
            EngineError::ResourceExhausted {
                resource,
                spent,
                limit,
            } => write!(f, "{resource} budget exhausted ({spent}/{limit})"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<SchemaError> for EngineError {
    fn from(e: SchemaError) -> Self {
        EngineError::Schema(e)
    }
}

impl From<Exhaustion> for EngineError {
    fn from(e: Exhaustion) -> Self {
        EngineError::ResourceExhausted {
            resource: e.resource,
            spent: e.spent,
            limit: e.limit,
        }
    }
}

/// Outcome of one shape-map association (see [`Engine::validate_map`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MapOutcome {
    /// Index into the shape map's association list.
    pub index: usize,
    /// Whether the node conforms to the shape.
    pub conforms: bool,
    /// Whether the result matches the association's stated expectation
    /// (`@!` associations expect non-conformance). Always `false` for an
    /// exhausted check: the expectation was neither met nor refuted.
    pub as_expected: bool,
    /// The failure explanation, when the node does not conform.
    pub failure: Option<Failure>,
    /// Present when the check exhausted its budget instead of completing;
    /// `conforms` is `false` but the node was *not* proven non-conforming.
    pub exhaustion: Option<Exhaustion>,
}

/// One step of a §7 derivative trace: the consumed triple and the
/// expression state around it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// The consumed triple's subject.
    pub subject: TermId,
    /// The consumed triple's predicate.
    pub predicate: TermId,
    /// The consumed triple's object.
    pub object: TermId,
    /// Whether the triple was consumed through an inverse arc.
    pub inverse: bool,
    /// Rendered expression before `∂t`.
    pub before: String,
    /// Rendered expression after `∂t`.
    pub after: String,
}

/// A full derivative trace (see [`Engine::trace`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Per-triple derivative steps, stopping early once the state is `∅`.
    pub steps: Vec<TraceStep>,
    /// The residual expression after all consumed triples.
    pub residual: String,
    /// `ν(residual)`.
    pub nullable: bool,
    /// The overall verdict (`residual ≠ ∅ ∧ ν`).
    pub matched: bool,
}

impl Trace {
    /// Renders the trace in the paper's `e ≃ {…} ⇔ ∂t(e) ≃ {…}` style.
    pub fn render(&self, pool: &TermPool) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for step in &self.steps {
            let dir = if step.inverse { "^" } else { "" };
            let _ = writeln!(
                out,
                "∂{dir}⟨{} {} {}⟩:\n    {}\n  → {}",
                pool.term(step.subject),
                pool.term(step.predicate),
                pool.term(step.object),
                step.before,
                step.after
            );
        }
        let _ = writeln!(
            out,
            "ν({}) = {} ⇒ {}",
            self.residual,
            self.nullable,
            if self.matched {
                "MATCHES"
            } else {
                "does NOT match"
            }
        );
        out
    }
}

/// Interned satisfaction-profile id (a triple class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ProfileId(u32);

type Pair = (ShapeId, TermId);

/// Triple key `(shape, predicate, other-end, inverse?)` for the per-run
/// profile cache; the value carries the assumptions used when computing it.
type TripleKey = (ShapeId, TermId, TermId, bool);

#[derive(Debug, Clone)]
enum MemoState {
    Proven,
    Failed,
    /// True under these coinductive assumptions.
    Conditional(BTreeSet<Pair>),
}

/// The triple-dependency index behind [`Engine::revalidate`], recorded
/// during typing when [`EngineConfig::incremental`] is on.
///
/// Together the three maps over-approximate "which `(node, shape)` answers
/// could a triple change disturb": `touched_out`/`touched_in` tie each
/// node's neighbourhood reads to the pairs that performed them, and
/// `rdeps` records the §8 typing-context edges — for every consumed
/// `(shape, node)` answer, the pairs whose own derivation consumed it
/// (whether by memo hit, coinductive assumption, or fresh evaluation).
/// Entries are never removed between runs (a purged pair simply re-records
/// on re-evaluation), so stale edges can only cause *over*-invalidation —
/// sound, never stale results.
#[derive(Debug, Default)]
struct TripleDeps {
    /// node → pairs whose evaluation read the node's outgoing
    /// neighbourhood (recorded even when that neighbourhood was empty, so
    /// a node's *first* triple still invalidates its old answers).
    touched_out: FxHashMap<TermId, FxHashSet<Pair>>,
    /// node → pairs whose evaluation read the node's incoming arcs
    /// (recorded only for shapes with inverse arcs — no other shape can
    /// observe an object-side change).
    touched_in: FxHashMap<TermId, FxHashSet<Pair>>,
    /// consumed pair → consuming pairs: the reverse shape-reference edges
    /// the invalidation closure walks.
    rdeps: FxHashMap<Pair, FxHashSet<Pair>>,
}

impl TripleDeps {
    fn clear(&mut self) {
        self.touched_out.clear();
        self.touched_in.clear();
        self.rdeps.clear();
    }

    #[cfg(test)]
    fn is_empty(&self) -> bool {
        self.touched_out.is_empty() && self.touched_in.is_empty() && self.rdeps.is_empty()
    }

    /// Unions another index into this one (parallel-worker merge).
    fn absorb(&mut self, other: TripleDeps) {
        for (node, pairs) in other.touched_out {
            self.touched_out.entry(node).or_default().extend(pairs);
        }
        for (node, pairs) in other.touched_in {
            self.touched_in.entry(node).or_default().extend(pairs);
        }
        for (pair, parents) in other.rdeps {
            self.rdeps.entry(pair).or_default().extend(parents);
        }
    }
}

/// A precomputed invalidation closure for
/// [`Engine::revalidate_par_planned`]: the memoised `(shape, node)` pairs a
/// [`GraphDelta`] can disturb, closed over the reverse shape-reference
/// edges.
///
/// Produced by [`Engine::plan_invalidation`], which reads only the
/// engine's dependency index and the delta — never the graph — so the
/// plan is valid whether it is computed before, after, or *concurrently
/// with* applying the delta to the graph. The server's `/delta` path uses
/// that freedom to overlap dependency-closure computation with the graph
/// mutation itself.
#[derive(Debug, Default)]
pub struct InvalidationPlan {
    dirty: FxHashSet<Pair>,
}

impl InvalidationPlan {
    /// Number of `(shape, node)` pairs the plan will purge.
    pub fn len(&self) -> usize {
        self.dirty.len()
    }

    /// True when the delta cannot disturb any memoised answer.
    pub fn is_empty(&self) -> bool {
        self.dirty.is_empty()
    }
}

/// The validator. Holds the compiled schema, the expression arena, and all
/// memo tables; reusable across many [`Engine::check`] calls over the same
/// graph/pool.
#[derive(Debug)]
pub struct Engine {
    schema: CompiledSchema,
    config: EngineConfig,
    /// `(shape, node)` results, persistent across checks.
    memo: FxHashMap<Pair, MemoState>,
    /// Value-constraint satisfaction per `(arc, object term)` — term
    /// semantics never change, so this survives re-runs.
    value_sat: FxHashMap<(ArcId, TermId), bool>,
    /// Triple → profile for entries established with *no* open assumptions:
    /// stable facts about the graph, persistent across queries and gfp
    /// reruns (they only reference `Proven`/`Failed` memo states, which are
    /// never purged). Cleared by [`Engine::reset`] — a stale entry against
    /// a changed graph would silently mis-profile.
    profile_stable: FxHashMap<TripleKey, ProfileId>,
    /// Per-run: triple → profile computed *under assumptions* (+ the
    /// assumptions used); discarded every rerun because a purged
    /// assumption invalidates the cached bits.
    profile_by_triple: FxHashMap<TripleKey, (ProfileId, Box<[Pair]>)>,
    /// Interned profile bitsets (masked to the shape's
    /// [`class_mask`](crate::compile::CompiledShape::class_mask)).
    /// Persistent: an interned `ProfileId`'s meaning (its bitset) never
    /// changes until [`Engine::reset`].
    profile_ids: FxHashMap<(ShapeId, Box<[u64]>), ProfileId>,
    profile_bits: Vec<Box<[u64]>>,
    /// `--no-dfa` derivative memo, keyed by interned profile. `∂` is a
    /// pure function of `(expression, profile bits)`, so this persists
    /// across runs — but **must** be cleared together with the profile
    /// tables on [`Engine::reset`]: profile ids restart from 0 after a
    /// reset, and a surviving `(ExprId, ProfileId)` entry would alias a
    /// different class. Deliberately still SipHash-keyed: it is the
    /// pre-DFA baseline the `BENCH_dfa` comparison measures against.
    deriv_memo: HashMap<(ExprId, ProfileId), ExprId>,
    /// Per-shape lazy DFAs (the default derivative cache; see
    /// [`crate::dfa`]). Subject to the same reset discipline as
    /// `deriv_memo`: classes are numbered per profile-table generation.
    dfas: Vec<ShapeDfa>,
    /// `ProfileId → owning shape` (profiles are interned per shape).
    profile_shape: Vec<ShapeId>,
    /// `ProfileId → shape-local alphabet-class id` — the dense column
    /// index the DFA table uses in place of the profile key.
    class_local: Vec<u32>,
    /// Filled transition cells across all shape DFAs, mirrored here so
    /// the budget's arena accounting is O(1) (see `cache_units`).
    dfa_filled: usize,
    /// Pairs whose memo state is `Conditional` — kept so the purge and
    /// promotion passes touch only them, not the whole memo (which would
    /// make every query O(|memo|)).
    conditional: HashSet<Pair>,
    in_progress: HashSet<Pair>,
    failures: HashMap<Pair, Failure>,
    stats: Stats,
    /// Per-query budget meter, reset by each top-level `gfp_run`/trace so
    /// every node in a batch gets the full budget (per-node fault
    /// isolation) while reruns of the same query share one allowance.
    meter: BudgetMeter,
    /// Whole-run cooperative governor, installed on parallel workers so
    /// `--timeout-ms` bounds wall-clock for the entire `type_all_par` run
    /// (per-query limits stay with each meter).
    governor: Option<Arc<RunGovernor>>,
    /// Observability counters; allocated only when
    /// [`EngineConfig::metrics`] is set (zero-cost when disabled).
    metrics: Option<Box<Metrics>>,
    /// Triple-dependency index for [`Engine::revalidate`]; populated only
    /// when [`EngineConfig::incremental`] is set.
    deps: TripleDeps,
    /// The stack of pairs currently being evaluated, so dependency
    /// recording knows which pair is consuming a nested answer. Always
    /// empty between queries (frames pop even on budget exhaustion).
    dep_stack: Vec<Pair>,
    /// The `(shape, predicate, inverse)` heads whose candidate arcs
    /// include a shape reference — the only stable-profile keys that can
    /// embed a node-dependent answer. `Some(heads)` enumerates them
    /// (empty for a reference-free schema, where stable profiles are
    /// term-pure and never purged); `None` means a wildcard-predicate
    /// reference arc exists and invalidation must fall back to a full
    /// table scan.
    ref_heads: Option<Vec<(ShapeId, TermId, bool)>>,
    /// Shared thread pool for parallel typing, installed by the server so
    /// request-level and intra-request parallelism draw from one pool
    /// (see [`Engine::set_executor`]). `None` means [`Engine::type_all_par`]
    /// spins up a transient pool per call.
    executor: Option<Arc<Executor>>,
    /// Publication buffer for the work-stealing scheduler: when `Some`,
    /// every pair that becomes unconditional (`Proven`/`Failed` insert,
    /// or promotion of a conditional) is recorded here so the worker loop
    /// can publish it to its peers between queries. `None` (the default)
    /// keeps the hot path to a single discriminant test.
    publish: Option<Vec<Pair>>,
}

impl Engine {
    /// Compiles a schema for validation, interning its terms into `terms`.
    pub fn compile(
        schema: &Schema,
        terms: &mut TermPool,
        config: EngineConfig,
    ) -> Result<Engine, EngineError> {
        shapex_rdf::failpoint::hit("engine-compile");
        let mut compiled = CompiledSchema::compile(schema, terms, config.simplify)?;
        if config.prune {
            crate::calculus::prune_empty_branches(&mut compiled);
        }
        let compiled = compiled;
        let metrics = config
            .metrics
            .then(|| Box::new(Metrics::new(compiled.shapes.len())));
        let dfas = vec![ShapeDfa::new(); compiled.shapes.len()];
        let mut ref_heads = Some(Vec::new());
        for arc in &compiled.arcs {
            if !matches!(arc.object, CompiledObject::Ref(_)) {
                continue;
            }
            match (&arc.predicates, &mut ref_heads) {
                (CompiledPredicates::Ids(ids), Some(heads)) => {
                    heads.extend(ids.iter().map(|&p| (arc.shape, p, arc.inverse)));
                }
                _ => {
                    ref_heads = None;
                    break;
                }
            }
        }
        if let Some(heads) = &mut ref_heads {
            heads.sort_unstable();
            heads.dedup();
        }
        Ok(Engine {
            schema: compiled,
            config,
            memo: FxHashMap::default(),
            value_sat: FxHashMap::default(),
            profile_stable: FxHashMap::default(),
            profile_by_triple: FxHashMap::default(),
            profile_ids: FxHashMap::default(),
            profile_bits: Vec::new(),
            deriv_memo: HashMap::new(),
            dfas,
            profile_shape: Vec::new(),
            class_local: Vec::new(),
            dfa_filled: 0,
            conditional: HashSet::new(),
            in_progress: HashSet::new(),
            failures: HashMap::new(),
            stats: Stats::default(),
            meter: BudgetMeter::default(),
            governor: None,
            metrics,
            deps: TripleDeps::default(),
            dep_stack: Vec::new(),
            ref_heads,
            executor: None,
            publish: None,
        })
    }

    /// Installs a shared [`Executor`] for parallel typing: subsequent
    /// [`Engine::type_all_par`] / [`Engine::revalidate_par`] calls fan
    /// their workers out on this pool instead of spawning a transient
    /// one. The server installs its request executor here, so one pool
    /// serves both request-level and intra-request parallelism.
    pub fn set_executor(&mut self, executor: Arc<Executor>) {
        self.executor = Some(executor);
    }

    /// Convenience compile with the default configuration.
    pub fn new(schema: &Schema, terms: &mut TermPool) -> Result<Engine, EngineError> {
        Engine::compile(schema, terms, EngineConfig::default())
    }

    /// The compiled schema this engine validates against.
    pub fn schema(&self) -> &CompiledSchema {
        &self.schema
    }

    /// Resolves a shape label to its compiled id.
    pub fn shape_id(&self, label: &ShapeLabel) -> Option<ShapeId> {
        self.schema.shape_id(label)
    }

    /// The label of a compiled shape.
    pub fn label_of(&self, shape: ShapeId) -> &ShapeLabel {
        &self.schema.shape(shape).label
    }

    /// Counters accumulated since construction (or [`Engine::reset`]).
    pub fn stats(&self) -> Stats {
        let mut s = self.stats;
        s.expr_pool_size = self.schema.pool.len();
        s.peak_arena_nodes = s.peak_arena_nodes.max(self.schema.pool.len());
        s
    }

    /// The fine-grained observability counters, when collection is
    /// enabled via [`EngineConfig::metrics`]. `None` otherwise.
    pub fn metrics(&self) -> Option<&Metrics> {
        self.metrics.as_deref()
    }

    /// Runs one instrumentation closure iff metrics collection is on.
    #[inline]
    fn metric(&mut self, f: impl FnOnce(&mut Metrics)) {
        if let Some(m) = &mut self.metrics {
            f(m);
        }
    }

    /// The budget every subsequent query runs under (also settable at
    /// compile time via [`EngineConfig::budget`]).
    pub fn set_budget(&mut self, budget: Budget) {
        self.config.budget = budget;
    }

    /// The currently configured budget.
    pub fn budget(&self) -> Budget {
        self.config.budget
    }

    /// Clears all memoised state (the compiled schema is kept), making the
    /// engine safe to reuse against a different (or mutated) graph.
    ///
    /// This must cover the *persistent* caches too, not just the
    /// `(node, shape)` memo: `profile_stable` embeds reference-arc answers
    /// computed on the old graph, and both derivative caches — the
    /// `--no-dfa` memo *and* the DFA tables with their class maps — are
    /// keyed by profile/class ids whose numbering restarts once the
    /// profile tables are cleared. A survivor of any of them would
    /// silently alias a different triple class on the next run.
    pub fn reset(&mut self) {
        self.memo.clear();
        self.conditional.clear();
        self.value_sat.clear();
        self.profile_stable.clear();
        self.profile_ids.clear();
        self.profile_bits.clear();
        self.deriv_memo.clear();
        for dfa in &mut self.dfas {
            *dfa = ShapeDfa::new();
        }
        self.profile_shape.clear();
        self.class_local.clear();
        self.dfa_filled = 0;
        self.begin_run();
        self.failures.clear();
        self.deps.clear();
        self.dep_stack.clear();
        self.stats = Stats::default();
        if let Some(m) = &mut self.metrics {
            **m = Metrics::new(self.schema.shapes.len());
        }
    }

    /// Checks `node` against the shape named `label` (paper §8:
    /// `Γ ⊢ label ≃s node`).
    ///
    /// ```
    /// use shapex::Engine;
    /// let schema = shapex_shex::shexc::parse(
    ///     "PREFIX e: <http://e/>\n<S> { e:p [1 2]+ }").unwrap();
    /// let mut ds = shapex_rdf::turtle::parse(
    ///     "@prefix e: <http://e/> . e:n e:p 1, 2 .").unwrap();
    /// let mut engine = Engine::new(&schema, &mut ds.pool).unwrap();
    /// let n = ds.iri("http://e/n").unwrap();
    /// assert!(engine.check(&ds.graph, &ds.pool, n, &"S".into()).unwrap().matched);
    /// ```
    pub fn check(
        &mut self,
        graph: &Graph,
        terms: &TermPool,
        node: TermId,
        label: &ShapeLabel,
    ) -> Result<MatchResult, EngineError> {
        let shape = self
            .schema
            .shape_id(label)
            .ok_or_else(|| EngineError::UnknownShape(label.as_str().to_string()))?;
        match self.check_id(graph, terms, node, shape) {
            Outcome::Exhausted(e) => Err(e.into()),
            outcome => Ok(MatchResult {
                matched: outcome.matched(),
                failure: outcome.into_failure(),
            }),
        }
    }

    /// Checks `node` against a shape by id, driving the greatest-fixpoint
    /// loop to completion.
    ///
    /// Recursion through shape references is as deep as the data's
    /// reference chains (a 10⁵-link `knows`-chain recurses 10⁵ frames), so
    /// on recursive schemas an uncached check runs on a worker thread with
    /// a large stack; memoised answers and non-recursive schemas stay on
    /// the caller's stack.
    pub fn check_id(
        &mut self,
        graph: &Graph,
        terms: &TermPool,
        node: TermId,
        shape: ShapeId,
    ) -> Outcome {
        if let Some(answer) = self.memoised_answer(node, shape) {
            return answer;
        }
        if !self.schema.has_recursion {
            return self.gfp_run(graph, terms, node, shape);
        }
        self.on_big_stack(|engine| engine.gfp_run(graph, terms, node, shape))
    }

    /// Checks many `(node, shape)` pairs, amortising the large-stack
    /// worker (needed for data-deep reference recursion) over the whole
    /// batch — prefer this over a `check_id` loop when validating fleets
    /// of nodes against a recursive schema.
    pub fn check_many(
        &mut self,
        graph: &Graph,
        terms: &TermPool,
        queries: &[(TermId, ShapeId)],
    ) -> Vec<Outcome> {
        let all_memoised = queries
            .iter()
            .all(|&(node, shape)| self.memoised_answer(node, shape).is_some());
        if !self.schema.has_recursion || all_memoised {
            return queries
                .iter()
                .map(|&(node, shape)| match self.memoised_answer(node, shape) {
                    Some(answer) => answer,
                    None => self.gfp_run(graph, terms, node, shape),
                })
                .collect();
        }
        self.on_big_stack(|engine| {
            queries
                .iter()
                .map(|&(node, shape)| match engine.memoised_answer(node, shape) {
                    Some(answer) => answer,
                    None => engine.gfp_run(graph, terms, node, shape),
                })
                .collect()
        })
    }

    /// The fully-memoised answer for a pair, if any. Exhausted checks are
    /// never memoised — they stay retryable under a larger budget.
    fn memoised_answer(&self, node: TermId, shape: ShapeId) -> Option<Outcome> {
        match self.memo.get(&(shape, node)) {
            Some(MemoState::Proven) => Some(Outcome::Conforms),
            Some(MemoState::Failed) => {
                Some(Outcome::Fails(self.failures.get(&(shape, node)).cloned()))
            }
            _ => None,
        }
    }

    /// Runs `f` on a worker thread with a large (lazily committed) stack:
    /// comfortably ~10⁵ levels of reference recursion in debug builds.
    fn on_big_stack<R: Send>(&mut self, f: impl FnOnce(&mut Engine) -> R + Send) -> R {
        const WORKER_STACK: usize = 512 << 20;
        std::thread::scope(|scope| {
            std::thread::Builder::new()
                .name("shapex-validate".into())
                .stack_size(WORKER_STACK)
                .spawn_scoped(scope, || f(self))
                .expect("spawn validation worker")
                .join()
                .expect("validation worker panicked")
        })
    }

    /// The greatest-fixpoint driver (see the module docs): run, purge
    /// tainted conditional results, re-run until purge-free, promote.
    ///
    /// One budget meter covers the whole query *including* gfp reruns —
    /// restarts are part of the same question's cost. On exhaustion the
    /// query aborts: unpromoted conditional results are dropped (they are
    /// only sound after a purge-free complete run) while `Proven`/`Failed`
    /// entries stay (they were established without open assumptions), and
    /// the pair itself is not memoised, so it can be retried under a
    /// larger budget.
    fn gfp_run(
        &mut self,
        graph: &Graph,
        terms: &TermPool,
        node: TermId,
        shape: ShapeId,
    ) -> Outcome {
        shapex_rdf::failpoint::hit("typing-wave");
        // Query boundary: the run-wide deadline is checked here even when
        // individual queries are too small to reach an amortised poll.
        if let Some(governor) = &self.governor {
            if let Err(exhaustion) = governor.poll_deadline() {
                self.stats.exhausted_checks += 1;
                return Outcome::Exhausted(exhaustion);
            }
        }
        self.meter = self.fresh_meter();
        self.meter.set_arena_baseline(self.arena_units());
        loop {
            self.begin_run();
            let mut deps = BTreeSet::new();
            match self.check_inner(graph, terms, node, shape, &mut deps) {
                Ok(ok) => {
                    if self.purge_tainted() == 0 {
                        self.promote_conditionals();
                        self.fold_meter();
                        return if ok {
                            Outcome::Conforms
                        } else {
                            Outcome::Fails(self.failures.get(&(shape, node)).cloned())
                        };
                    }
                    self.stats.gfp_reruns += 1;
                }
                Err(exhaustion) => {
                    self.in_progress.clear();
                    // Frames pop their own dep_stack entries even on the
                    // error path; the clear is belt-and-braces so a bug
                    // there can't mis-attribute the next query's deps.
                    debug_assert!(self.dep_stack.is_empty());
                    self.dep_stack.clear();
                    for pair in self.conditional.drain() {
                        self.memo.remove(&pair);
                    }
                    self.stats.exhausted_checks += 1;
                    self.fold_meter();
                    return Outcome::Exhausted(exhaustion);
                }
            }
        }
    }

    /// A per-query meter, wired to the whole-run governor when one is
    /// installed (parallel workers).
    fn fresh_meter(&self) -> BudgetMeter {
        match &self.governor {
            Some(g) => self.config.budget.meter_shared(Arc::clone(g)),
            None => self.config.budget.meter(),
        }
    }

    /// Folds the finished query's meter into the persistent stats and
    /// settles the query's tail steps with the shared governor (a tripped
    /// run-wide deadline is irrelevant for an already-finished query).
    fn fold_meter(&mut self) {
        let _ = self.meter.flush_shared();
        self.stats.budget_steps += self.meter.steps_spent();
        self.stats.max_depth_reached = self.stats.max_depth_reached.max(self.meter.peak_depth());
        self.stats.peak_arena_nodes = self.stats.peak_arena_nodes.max(self.meter.peak_arena());
        if let Some(m) = &mut self.metrics {
            m.budget_steps += self.meter.steps_spent();
            m.arena_high_water = m.arena_high_water.max(self.meter.peak_arena());
        }
    }

    /// Whether the dense lazy-DFA derivative cache is active. The DFA
    /// *is* the derivative memo, so `no_deriv_memo` disables it too.
    #[inline]
    fn use_dfa(&self) -> bool {
        !self.config.no_dfa && !self.config.no_deriv_memo
    }

    /// Memoised-derivative entries held by the active cache. Both caches
    /// fill at exactly the same `(expression, class)` points, so this
    /// count — and therefore the budget's arena accounting — is
    /// identical between the DFA and `--no-dfa` paths at every step.
    #[inline]
    fn cache_units(&self) -> usize {
        if self.use_dfa() {
            self.dfa_filled
        } else {
            self.deriv_memo.len()
        }
    }

    /// The units `max_arena_nodes` governs: hash-consed expression nodes
    /// plus memoised derivative transitions (DFA table growth counts
    /// against the arena budget — the table is arena-shaped memory that
    /// grows with the same pathological inputs).
    #[inline]
    fn arena_units(&self) -> usize {
        self.schema.pool.len() + self.cache_units()
    }

    /// `ν(e)`, answered from the shape's DFA state table when the state
    /// is interned (one flat load), falling back to the arena's
    /// precomputed table.
    #[inline]
    fn nullable_of(&self, shape: ShapeId, e: ExprId) -> bool {
        if self.use_dfa() {
            if let Some(n) = self.dfas[shape.index()].nullable_of(e) {
                debug_assert_eq!(n, self.schema.pool.nullable(e));
                return n;
            }
        }
        self.schema.pool.nullable(e)
    }

    /// Per-shape lazy-DFA sizes: `(label, states, classes, filled
    /// transitions)` — the summary surfaced by `BENCH_dfa.json`.
    pub fn dfa_summary(&self) -> Vec<(String, usize, usize, usize)> {
        self.schema
            .shapes
            .iter()
            .zip(&self.dfas)
            .map(|(sh, d)| {
                (
                    sh.label.as_str().to_string(),
                    d.states(),
                    d.classes(),
                    d.filled(),
                )
            })
            .collect()
    }

    /// Validates every association of a shape map, returning per-entry
    /// outcomes: `(association index, conforms, meets expectation)`.
    /// Unknown shapes yield an error; focus nodes absent from the graph
    /// are checked against the empty neighbourhood.
    pub fn validate_map(
        &mut self,
        graph: &Graph,
        terms: &mut TermPool,
        map: &ShapeMap,
    ) -> Result<Vec<MapOutcome>, EngineError> {
        let mut queries = Vec::with_capacity(map.len());
        for assoc in map.iter() {
            let shape = self
                .schema
                .shape_id(&assoc.shape)
                .ok_or_else(|| EngineError::UnknownShape(assoc.shape.as_str().to_string()))?;
            queries.push((terms.intern(assoc.node.clone()), shape));
        }
        let results = self.check_many(graph, terms, &queries);
        Ok(map
            .iter()
            .zip(results)
            .enumerate()
            .map(|(index, (assoc, result))| match result {
                Outcome::Exhausted(e) => MapOutcome {
                    index,
                    conforms: false,
                    as_expected: false,
                    failure: None,
                    exhaustion: Some(e),
                },
                outcome => MapOutcome {
                    index,
                    conforms: outcome.matched(),
                    as_expected: outcome.matched() == assoc.expected,
                    failure: outcome.into_failure(),
                    exhaustion: None,
                },
            })
            .collect())
    }

    /// Computes the shape typing of every subject in the graph against
    /// every shape in the schema — the paper's Example 2 workflow.
    ///
    /// Under a budget this is the paper's *total* typing weakened to a
    /// **partial typing**: each `(node, shape)` query gets the full budget,
    /// and a query that exhausts it is recorded in
    /// [`Typing::exhausted`] instead of poisoning the batch — every other
    /// pair's `Conforms`/`Fails` answer is unaffected.
    pub fn type_all(&mut self, graph: &Graph, terms: &TermPool) -> Typing {
        let queries: Vec<(TermId, ShapeId)> = graph
            .subjects()
            .flat_map(|node| (0..self.schema.shapes.len()).map(move |i| (node, ShapeId(i as u32))))
            .collect();
        let results = self.check_many(graph, terms, &queries);
        let mut typing = Typing::new();
        for ((node, shape), result) in queries.into_iter().zip(results) {
            match result {
                Outcome::Conforms => typing.add(node, shape),
                Outcome::Fails(_) => {}
                Outcome::Exhausted(e) => typing.add_exhausted(node, shape, e),
            }
        }
        typing
    }

    /// How many queries each worker takes per wave under the legacy
    /// fixed-shard path ([`EngineConfig::fixed_shard`]). Small enough
    /// that promoted answers circulate quickly on recursive schemas (a
    /// worker benefits from pairs its peers proved last wave), large
    /// enough to amortise dispatch and the merge.
    const WAVE_CHUNK: usize = 64;

    /// Queries per worker per scheduler *epoch* on the default
    /// work-stealing path. Much larger than [`Engine::WAVE_CHUNK`]:
    /// verdicts circulate continuously through the epoch publication log,
    /// so the merge barrier no longer needs to be frequent — it only
    /// settles counters, DFA fills, and the coordinator memo.
    const EPOCH_CHUNK: usize = 256;

    /// Queries per work-stealing batch — the steal granularity. Small
    /// enough that a hub-heavy shard can be picked apart by idle peers,
    /// large enough that the deque CAS and publication-drain probes stay
    /// off the per-query path.
    const STEAL_BATCH: usize = 16;

    /// Parallel [`Engine::type_all`]: the same `subjects × shapes` query
    /// list, partitioned into per-worker shards run on
    /// [`std::thread::scope`] workers.
    ///
    /// Soundness follows the paper's greatest-fixpoint semantics: each
    /// `(node, shape)` answer is a property of the graph alone, so workers
    /// may compute them in any interleaving. Each worker owns a *private*
    /// memo / profile / derivative-memo shard seeded with a read-only
    /// snapshot of already **promoted unconditional** answers
    /// (`Proven`/`Failed`); conditional hypothesis state never crosses
    /// threads. After each wave the workers' new unconditional results are
    /// merged into this engine's memo and re-seeded to every worker. The
    /// resulting [`Typing`] is deterministic and identical to the
    /// sequential [`Engine::type_all`] (under a budget, *which* pair trips
    /// first may differ — see `Typing::exhausted`).
    ///
    /// `jobs <= 1` (and trivially small runs) take the exact sequential
    /// path. The configured deadline, if any, additionally bounds
    /// wall-clock for the whole run via a shared [`RunGovernor`].
    pub fn type_all_par(&mut self, graph: &Graph, terms: &TermPool, jobs: usize) -> Typing {
        let queries: Vec<(TermId, ShapeId)> = graph
            .subjects()
            .flat_map(|node| (0..self.schema.shapes.len()).map(move |i| (node, ShapeId(i as u32))))
            .collect();
        let jobs = jobs.max(1);
        if jobs == 1 || queries.len() < 2 * jobs {
            return self.type_all(graph, terms);
        }
        let governor = RunGovernor::new(self.config.budget.deadline);
        // Expression ids are comparable across engines only within the
        // fork-time pool prefix: every worker's arena is a clone of this
        // one, so ids below `fork_len` mean the same node everywhere,
        // while later ids diverge per worker. DFA transition sharing is
        // restricted to that prefix.
        let fork_len = self.schema.pool.len();
        let mut workers: Vec<Engine> = (0..jobs).map(|_| self.fork_worker(&governor)).collect();
        // Promotion log: pairs newly merged into `self.memo` since the
        // workers were forked; `synced[w]` is worker w's high-water mark.
        let mut log: Vec<Pair> = Vec::new();
        let mut synced = vec![0usize; jobs];
        // DFA transition log, mirroring the memo promotion protocol:
        // prefix-valid transitions merged from worker fill logs, named as
        // `(shape, coordinator class id, src, dst)` and re-seeded to the
        // other workers at the next boundary (class ids are translated
        // through their masked bitsets, which are engine-independent).
        let mut dfa_log: Vec<(ShapeId, u32, ExprId, ExprId)> = Vec::new();
        let mut dfa_synced = vec![0usize; jobs];
        let mut results: Vec<Option<Outcome>> = vec![None; queries.len()];
        let has_recursion = self.schema.has_recursion;
        // Wave-boundary merge discipline: every worker counter is folded
        // into this engine exactly once, as the delta accumulated since
        // the previous boundary. `prev_stats`/`prev_metrics` are the
        // per-worker snapshots the last boundary advanced to; re-seeding
        // the promotion log never touches them, and workers left idle by
        // a short wave contribute an empty delta instead of being lost.
        let mut prev_stats: Vec<Stats> = vec![Stats::default(); jobs];
        let mut prev_metrics: Vec<Metrics> = if self.metrics.is_some() {
            vec![Metrics::new(self.schema.shapes.len()); jobs]
        } else {
            Vec::new()
        };
        // Scheduler selection (DESIGN.md §5g): work-stealing epochs by
        // default, the legacy fixed-shard wave loop behind
        // `EngineConfig::fixed_shard` (the benchmark baseline). Workers
        // run on a shared executor when one is installed (the server's
        // request pool), else on a transient pool for this call — either
        // way threads are reused across every epoch of the run.
        let stealing = !self.config.fixed_shard;
        let shared_exec = self.executor.clone();
        let transient_exec;
        let exec: &Executor = match &shared_exec {
            Some(e) => e.as_ref(),
            None => {
                transient_exec =
                    Executor::new(jobs, has_recursion.then_some(512 << 20), "shapex-par");
                &transient_exec
            }
        };
        // The calling thread may execute worker closures itself only when
        // its stack is known to be safe for them: pool threads carry the
        // big lazily-committed stack; a foreign caller joins in only for
        // recursion-free schemas.
        let participate = !has_recursion || exec.on_pool_thread();
        // Epoch publication log: unconditional verdicts stream between
        // workers mid-epoch; each worker's mark survives across epochs.
        let publog: PubLog<(Pair, Option<Failure>, bool)> = PubLog::new();
        let mut pub_marks = vec![0usize; jobs];
        // Pairs promoted *during this run*, to split "answered from the
        // pre-run warm memo" from "skipped because an earlier epoch
        // already merged the answer" in the wave metrics.
        let mut run_promoted: FxHashSet<Pair> = FxHashSet::default();
        let window = jobs
            * if stealing {
                Self::EPOCH_CHUNK
            } else {
                Self::WAVE_CHUNK
            };

        let mut next = 0;
        while next < queries.len() {
            let wave_end = (next + window).min(queries.len());
            // Answers already known are free; the commit sequencer below
            // records them straight into their query slot.
            let mut pending: Vec<usize> = Vec::new();
            let mut memo_answered = 0u64;
            let mut merged_answered = 0u64;
            for qi in next..wave_end {
                let (node, shape) = queries[qi];
                match self.memoised_answer(node, shape) {
                    Some(answer) => {
                        if run_promoted.contains(&(shape, node)) {
                            merged_answered += 1;
                        } else {
                            memo_answered += 1;
                        }
                        results[qi] = Some(answer);
                    }
                    None => pending.push(qi),
                }
            }
            let wave_queries = (wave_end - next) as u64;
            next = wave_end;
            if pending.is_empty() {
                self.metric(|m| {
                    m.waves.push(WaveMetrics {
                        queries: wave_queries,
                        memo_answered,
                        merged_answered,
                        ..WaveMetrics::default()
                    })
                });
                continue;
            }
            let wave_start = self.metrics.is_some().then(std::time::Instant::now);
            // Re-seed each worker's snapshot with pairs promoted since it
            // last synced (merge results from its peers).
            let mut reseeded_pairs = 0u64;
            for (worker, mark) in workers.iter_mut().zip(synced.iter_mut()) {
                for &pair in &log[*mark..] {
                    if let Some(state) = self.memo.get(&pair) {
                        worker.memo.insert(pair, state.clone());
                    }
                    if let Some(f) = self.failures.get(&pair) {
                        worker.failures.insert(pair, f.clone());
                    }
                    reseeded_pairs += 1;
                }
                *mark = log.len();
            }
            // Re-seed derivative transitions learned by peers: the worker
            // interns the class by its bits and the states by their
            // (prefix-shared) expression ids, then fills the cell without
            // logging it — a seed echoed back would bounce forever.
            if self.use_dfa() {
                for (worker, mark) in workers.iter_mut().zip(dfa_synced.iter_mut()) {
                    for &(shape, class, src, dst) in &dfa_log[*mark..] {
                        let bits = self.dfas[shape.index()].class_bits(class);
                        let wd = &mut worker.dfas[shape.index()];
                        let (wc, _) = wd.intern_class(bits);
                        let ws = wd.intern_state(src, self.schema.pool.nullable(src)).0;
                        let wdst = wd.intern_state(dst, self.schema.pool.nullable(dst)).0;
                        if wd.seed(ws, wc, wdst) {
                            worker.dfa_filled += 1;
                        }
                    }
                    *mark = dfa_log.len();
                }
            }
            // Contiguous shares preserve the sequential visit order within
            // each worker (memo locality on reference chains); under
            // stealing each share is further cut into batches so idle
            // peers can take a loaded worker's tail.
            let per = pending.len().div_ceil(jobs);
            let timed = self.metrics.is_some();
            let mut outs: Vec<Vec<(usize, Outcome)>> = (0..jobs).map(|_| Vec::new()).collect();
            let mut counters = vec![WorkerCounters::default(); jobs];
            if stealing {
                let deques: Vec<BatchQueue> = (0..jobs)
                    .map(|w| {
                        let lo = (w * per).min(pending.len());
                        let hi = ((w + 1) * per).min(pending.len());
                        let batches: Vec<Batch> = (lo..hi)
                            .step_by(Self::STEAL_BATCH)
                            .map(|s| Batch {
                                start: s as u32,
                                len: Self::STEAL_BATCH.min(hi - s) as u32,
                            })
                            .collect();
                        BatchQueue::new(&batches)
                    })
                    .collect();
                let deques = &deques;
                let publog = &publog;
                let pending = &pending[..];
                let queries = &queries[..];
                let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = workers
                    .iter_mut()
                    .zip(outs.iter_mut())
                    .zip(counters.iter_mut())
                    .zip(pub_marks.iter_mut())
                    .enumerate()
                    .map(|(w, (((worker, out), ctr), mark))| {
                        let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                            worker.steal_loop(
                                graph, terms, w, jobs, queries, pending, deques, publog, mark, out,
                                ctr, timed,
                            );
                        });
                        task
                    })
                    .collect();
                exec.run_tasks(tasks, participate);
            } else {
                let chunks: Vec<&[usize]> = pending.chunks(per).collect();
                let queries = &queries[..];
                let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = workers
                    .iter_mut()
                    .zip(outs.iter_mut())
                    .zip(counters.iter_mut())
                    .zip(&chunks)
                    .map(|(((worker, out), ctr), chunk)| {
                        let task: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                            worker.run_shard(graph, terms, queries, chunk, out, ctr, timed);
                        });
                        task
                    })
                    .collect();
                exec.run_tasks(tasks, participate);
            }
            // Deterministic commit sequencer: whatever order workers
            // finished in, verdicts land in their query-index slot and the
            // final typing is assembled in query order below.
            for wave_results in &mut outs {
                for (qi, outcome) in wave_results.drain(..) {
                    results[qi] = Some(outcome);
                }
            }
            // Wave boundary: merge every shard exactly once — promoted
            // unconditional answers into the memo, DFA fill logs into the
            // shared tables, counter deltas into the run totals.
            let log_mark = log.len();
            let mut shards: Vec<ShardMetrics> = Vec::new();
            for w in 0..workers.len() {
                if self.use_dfa() {
                    let drained: Vec<Vec<Transition>> =
                        workers[w].dfas.iter_mut().map(ShapeDfa::take_log).collect();
                    for (si, entries) in drained.iter().enumerate() {
                        for t in entries {
                            // Only transitions wholly inside the shared
                            // pool prefix are meaningful engine-wide.
                            if t.src.index() >= fork_len || t.dst.index() >= fork_len {
                                continue;
                            }
                            let bits = workers[w].dfas[si].class_bits(t.class);
                            let my = &mut self.dfas[si];
                            let (c, _) = my.intern_class(bits);
                            let src = my.intern_state(t.src, self.schema.pool.nullable(t.src)).0;
                            let dst = my.intern_state(t.dst, self.schema.pool.nullable(t.dst)).0;
                            if my.seed(src, c, dst) {
                                self.dfa_filled += 1;
                                dfa_log.push((ShapeId(si as u32), c, t.src, t.dst));
                            }
                        }
                    }
                }
                let worker = &workers[w];
                let promoted = self.absorb_worker(worker, &mut log);
                let now = worker.stats;
                let prev = &mut prev_stats[w];
                if self.metrics.is_some() {
                    let c = &counters[w];
                    shards.push(ShardMetrics {
                        worker: w,
                        queries: c.executed,
                        stolen: c.stolen,
                        steals: c.steals,
                        steal_attempts: c.steal_attempts,
                        published: c.published,
                        drained: c.drained,
                        busy_us: c.busy_us,
                        idle_us: c.idle_us,
                        promoted: promoted as u64,
                        budget_steps: now.budget_steps - prev.budget_steps,
                        derivative_steps: now.derivative_steps - prev.derivative_steps,
                    });
                }
                self.stats.absorb_delta(prev, &now);
                self.stats.peak_arena_nodes =
                    self.stats.peak_arena_nodes.max(worker.schema.pool.len());
                *prev = now;
            }
            // Everything the epoch merged is "merged", not "warm memo",
            // for subsequent windows' accounting.
            run_promoted.extend(log[log_mark..].iter().copied());
            if let Some(m) = &mut self.metrics {
                for (w, worker) in workers.iter().enumerate() {
                    if let Some(wm) = worker.metrics.as_deref() {
                        m.absorb_delta(&prev_metrics[w], wm);
                        prev_metrics[w] = wm.clone();
                    }
                }
                m.waves.push(WaveMetrics {
                    queries: wave_queries,
                    memo_answered,
                    merged_answered,
                    dispatched: pending.len() as u64,
                    reseeded_pairs,
                    steals: counters.iter().map(|c| c.steals).sum(),
                    steal_attempts: counters.iter().map(|c| c.steal_attempts).sum(),
                    published: counters.iter().map(|c| c.published).sum(),
                    elapsed_us: wave_start
                        .map_or(0, |t| t.elapsed().as_micros().min(u64::MAX as u128) as u64),
                    shards,
                });
            }
        }
        // Fold the workers' dependency recordings into the shared index so
        // a later `revalidate` sees edges for pairs proven on any shard.
        if self.config.incremental {
            for worker in &mut workers {
                let worker_deps = std::mem::take(&mut worker.deps);
                self.deps.absorb(worker_deps);
            }
        }
        let mut typing = Typing::new();
        for (&(node, shape), result) in queries.iter().zip(results) {
            match result.expect("every query answered") {
                Outcome::Conforms => typing.add(node, shape),
                Outcome::Fails(_) => {}
                Outcome::Exhausted(e) => typing.add_exhausted(node, shape, e),
            }
        }
        typing
    }

    /// The fixed-shard worker body: one contiguous chunk of pending
    /// queries, run in order (the legacy wave scheduler's inner loop).
    #[allow(clippy::too_many_arguments)]
    fn run_shard(
        &mut self,
        graph: &Graph,
        terms: &TermPool,
        queries: &[(TermId, ShapeId)],
        chunk: &[usize],
        out: &mut Vec<(usize, Outcome)>,
        ctr: &mut WorkerCounters,
        timed: bool,
    ) {
        let start = timed.then(std::time::Instant::now);
        for &qi in chunk {
            let (node, shape) = queries[qi];
            let outcome = match self.memoised_answer(node, shape) {
                Some(answer) => answer,
                None => self.gfp_run(graph, terms, node, shape),
            };
            out.push((qi, outcome));
            ctr.executed += 1;
        }
        if let Some(t) = start {
            ctr.busy_us += t.elapsed().as_micros().min(u64::MAX as u128) as u64;
        }
    }

    /// The work-stealing worker body for one epoch (DESIGN.md §5g).
    ///
    /// Worker `w` drains its own deque front-to-back (sequential order,
    /// memo locality); when dry it probes peers in the deterministic
    /// [`sched::steal_victim`] sequence and takes batches off their
    /// *backs* — the work the owner would reach last. Before each batch
    /// it merges every verdict its peers have published since its last
    /// drain (`or_insert`: a local answer is never overwritten), and
    /// after each query it publishes its own newly unconditional pairs.
    /// The loop ends only when every deque is empty, so each pending
    /// query is executed exactly once by exactly one worker.
    #[allow(clippy::too_many_arguments)]
    fn steal_loop(
        &mut self,
        graph: &Graph,
        terms: &TermPool,
        w: usize,
        jobs: usize,
        queries: &[(TermId, ShapeId)],
        pending: &[usize],
        deques: &[BatchQueue],
        publog: &PubLog<(Pair, Option<Failure>, bool)>,
        mark: &mut usize,
        out: &mut Vec<(usize, Outcome)>,
        ctr: &mut WorkerCounters,
        timed: bool,
    ) {
        self.publish = Some(Vec::new());
        loop {
            let (batch, stolen) = match deques[w].pop_front() {
                Some(b) => (b, false),
                None => {
                    let idle_start = timed.then(std::time::Instant::now);
                    let mut got = None;
                    'steal: loop {
                        for attempt in 0..(2 * jobs as u64) {
                            let victim = sched::steal_victim(w, jobs, ctr.executed, attempt);
                            ctr.steal_attempts += 1;
                            if let Some(b) = deques[victim].steal_back() {
                                got = Some(b);
                                break 'steal;
                            }
                        }
                        if deques.iter().all(|d| d.remaining() == 0) {
                            break 'steal;
                        }
                        std::thread::yield_now();
                    }
                    if let Some(t) = idle_start {
                        ctr.idle_us += t.elapsed().as_micros().min(u64::MAX as u128) as u64;
                    }
                    match got {
                        Some(b) => {
                            ctr.steals += 1;
                            (b, true)
                        }
                        None => break,
                    }
                }
            };
            // Merge peers' published verdicts before starting the batch:
            // free answers for everything that follows.
            ctr.drained += publog.drain_from(mark, |(pair, failure, proven)| {
                self.memo.entry(*pair).or_insert(if *proven {
                    MemoState::Proven
                } else {
                    MemoState::Failed
                });
                if let Some(f) = failure {
                    self.failures.entry(*pair).or_insert_with(|| f.clone());
                }
            }) as u64;
            let busy_start = timed.then(std::time::Instant::now);
            for i in batch.start..batch.start + batch.len {
                let qi = pending[i as usize];
                let (node, shape) = queries[qi];
                let outcome = match self.memoised_answer(node, shape) {
                    Some(answer) => answer,
                    None => self.gfp_run(graph, terms, node, shape),
                };
                out.push((qi, outcome));
                ctr.executed += 1;
                if stolen {
                    ctr.stolen += 1;
                }
                self.flush_published(publog, ctr);
            }
            if let Some(t) = busy_start {
                ctr.busy_us += t.elapsed().as_micros().min(u64::MAX as u128) as u64;
            }
        }
        self.publish = None;
    }

    /// Publishes every verdict buffered since the last flush. Buffered
    /// pairs are re-read from the memo at flush time: a pair whose query
    /// later exhausted is still publishable (unconditional inserts are
    /// never rolled back), anything not unconditional is skipped.
    fn flush_published(
        &mut self,
        publog: &PubLog<(Pair, Option<Failure>, bool)>,
        ctr: &mut WorkerCounters,
    ) {
        let buf = match &mut self.publish {
            Some(buf) if !buf.is_empty() => std::mem::take(buf),
            _ => return,
        };
        let entries: Vec<(Pair, Option<Failure>, bool)> = buf
            .iter()
            .filter_map(|&pair| match self.memo.get(&pair) {
                Some(MemoState::Proven) => Some((pair, None, true)),
                Some(MemoState::Failed) => Some((pair, self.failures.get(&pair).cloned(), false)),
                _ => None,
            })
            .collect();
        ctr.published += publog.publish(entries) as u64;
    }

    /// Re-types the graph after a [`GraphDelta`] was applied to it,
    /// re-evaluating only the `(node, shape)` pairs the delta can disturb
    /// and answering everything else from the persistent memo — the
    /// resulting [`Typing`] is identical to a from-scratch
    /// [`Engine::type_all`] over the mutated graph.
    ///
    /// Requires [`EngineConfig::incremental`] (otherwise this degrades to
    /// [`Engine::reset`] plus a full re-typing). Call it with the
    /// *post-delta* graph; the delta tells the engine which triples
    /// changed. If the graph contradicts the delta — an added triple is
    /// absent, or a removed (and not re-added) triple is still present —
    /// the delta was never applied (or was applied to a different graph)
    /// and the call fails with [`EngineError::StaleDelta`] instead of
    /// serving answers from a stale dependency index. Applying the same
    /// delta twice is set-idempotent and therefore *not* detectable here.
    ///
    /// ```
    /// use shapex::{Engine, EngineConfig};
    /// use shapex::rdf::{delta, turtle};
    ///
    /// let schema = shapex::shex::shexc::parse(
    ///     "PREFIX e: <http://e/>\n<S> { e:p [1 2]+ }").unwrap();
    /// let mut ds = turtle::parse(
    ///     "@prefix e: <http://e/> . e:a e:p 1 . e:b e:p 3 .").unwrap();
    /// let mut engine = Engine::compile(&schema, &mut ds.pool, EngineConfig {
    ///     incremental: true,
    ///     ..EngineConfig::default()
    /// }).unwrap();
    /// let typing = engine.type_all(&ds.graph, &ds.pool);
    /// let b = ds.iri("http://e/b").unwrap();
    /// assert_eq!(typing.shapes_of(b).count(), 0);
    ///
    /// // Swap b's offending triple for a conforming one: only b's pair
    /// // is re-evaluated, a's answer is served from the memo.
    /// let d = delta::parse(
    ///     "@prefix e: <http://e/> .\n- e:b e:p 3 .\n+ e:b e:p 2 .\n",
    ///     &mut ds.pool).unwrap();
    /// ds.apply_delta(&d);
    /// let typing = engine.revalidate(&ds.graph, &ds.pool, &d).unwrap();
    /// assert_eq!(typing.shapes_of(b).count(), 1);
    /// assert_eq!(engine.stats().retyped_pairs, 1);
    /// assert_eq!(engine.stats().reused_pairs, 1);
    /// ```
    pub fn revalidate(
        &mut self,
        graph: &Graph,
        terms: &TermPool,
        delta: &GraphDelta,
    ) -> Result<Typing, EngineError> {
        self.revalidate_par(graph, terms, delta, 1)
    }

    /// [`Engine::revalidate`] with an explicit worker count: the dirty
    /// frontier is re-typed through [`Engine::type_all_par`]. With
    /// `jobs > 1` the invalidation plan (dependency-closure walk) is
    /// computed concurrently with the delta-applied check — the first
    /// stage of the pipelined revalidation path.
    pub fn revalidate_par(
        &mut self,
        graph: &Graph,
        terms: &TermPool,
        delta: &GraphDelta,
        jobs: usize,
    ) -> Result<Typing, EngineError> {
        if !self.config.incremental {
            self.check_delta_applied(graph, terms, delta)?;
            // No dependency index was recorded: the only sound move is to
            // drop every cache keyed against the old graph and start over.
            self.reset();
            return Ok(self.type_all_par(graph, terms, jobs));
        }
        let plan = if jobs > 1 {
            // The planner reads only the dependency index + delta; the
            // applied-check reads only the graph + delta. Disjoint reads,
            // so the two legs overlap safely.
            let this: &Engine = self;
            std::thread::scope(|s| {
                let planner = s.spawn(|| this.plan_invalidation(delta));
                let checked = this.check_delta_applied(graph, terms, delta);
                let plan = planner.join().expect("invalidation planner panicked");
                checked.map(|()| plan)
            })?
        } else {
            self.check_delta_applied(graph, terms, delta)?;
            self.plan_invalidation(delta)
        };
        Ok(self.revalidate_apply(graph, terms, plan, jobs))
    }

    /// [`Engine::revalidate_par`] with a caller-supplied
    /// [`InvalidationPlan`], for callers that computed the plan while the
    /// delta was still being applied to the graph (the server's `/delta`
    /// endpoint overlaps [`Engine::plan_invalidation`] with the dataset
    /// mutation). The delta-applied check still runs against the
    /// post-delta graph.
    pub fn revalidate_par_planned(
        &mut self,
        graph: &Graph,
        terms: &TermPool,
        delta: &GraphDelta,
        plan: InvalidationPlan,
        jobs: usize,
    ) -> Result<Typing, EngineError> {
        self.check_delta_applied(graph, terms, delta)?;
        if !self.config.incremental {
            self.reset();
            return Ok(self.type_all_par(graph, terms, jobs));
        }
        Ok(self.revalidate_apply(graph, terms, plan, jobs))
    }

    /// Purges the planned pairs, records reuse accounting, and re-types.
    fn revalidate_apply(
        &mut self,
        graph: &Graph,
        terms: &TermPool,
        plan: InvalidationPlan,
        jobs: usize,
    ) -> Typing {
        let invalidated = self.apply_invalidation(plan);
        // Reuse accounting over the post-delta query list, taken before
        // the typing run repopulates the memo.
        let mut reused = 0u64;
        let mut retyped = 0u64;
        for node in graph.subjects() {
            for i in 0..self.schema.shapes.len() {
                if self.memoised_answer(node, ShapeId(i as u32)).is_some() {
                    reused += 1;
                } else {
                    retyped += 1;
                }
            }
        }
        self.stats.invalidated_pairs += invalidated;
        self.stats.reused_pairs += reused;
        self.stats.retyped_pairs += retyped;
        self.metric(|m| {
            m.delta_invalidated += invalidated;
            m.delta_reused += reused;
            m.delta_retyped += retyped;
        });
        self.type_all_par(graph, terms, jobs)
    }

    /// Seeds this engine's verdict memo from an engine that validated the
    /// *same graph and term pool* against a different schema, for the
    /// shapes named in `reusable` — the schema-delta counterpart of
    /// [`Engine::revalidate`]'s graph-delta reuse.
    ///
    /// Only unconditional verdicts move: `Proven`/`Failed` memo entries
    /// (with their failure diagnostics) plus the triple-dependency edges
    /// that lie entirely within the reusable set, remapped to this
    /// schema's shape ids. `Conditional` states are never copied — they
    /// embed coinductive assumptions local to the old run. Engine-local
    /// caches (profiles, derivative memos, DFA tables) stay cold; they are
    /// keyed by schema-local ids and rebuild on demand.
    ///
    /// Soundness rests on the caller's guarantee that every shape in
    /// `reusable` accepts the same language in both schemas *and* only
    /// references shapes that are themselves reusable — exactly what
    /// [`crate::calculus::SchemaDiff::reusable`] certifies (its `affected`
    /// closure walks reverse references). Returns the number of
    /// transplanted `(node, shape)` verdicts.
    pub fn transplant_verdicts(&mut self, old: &Engine, reusable: &[ShapeLabel]) -> usize {
        let mut remap: FxHashMap<ShapeId, ShapeId> = FxHashMap::default();
        for label in reusable {
            if let (Some(o), Some(n)) = (old.schema.shape_id(label), self.schema.shape_id(label)) {
                remap.insert(o, n);
            }
        }
        let mut moved = 0usize;
        for (&(shape, node), state) in &old.memo {
            let Some(&new_shape) = remap.get(&shape) else {
                continue;
            };
            match state {
                MemoState::Proven => {
                    self.memo.insert((new_shape, node), MemoState::Proven);
                }
                MemoState::Failed => {
                    self.memo.insert((new_shape, node), MemoState::Failed);
                    if let Some(f) = old.failures.get(&(shape, node)) {
                        self.failures.insert((new_shape, node), f.clone());
                    }
                }
                MemoState::Conditional(_) => continue,
            }
            moved += 1;
        }
        // Dependency edges survive only when both endpoints are reusable,
        // so a later *graph*-delta revalidation can still invalidate the
        // transplanted answers. Edges into affected shapes are dropped;
        // those pairs re-record when they are re-evaluated.
        if self.config.incremental {
            let remap_pair = |(s, n): Pair| remap.get(&s).map(|&ns| (ns, n));
            for (&node, pairs) in &old.deps.touched_out {
                let mapped: Vec<Pair> = pairs.iter().copied().filter_map(remap_pair).collect();
                if !mapped.is_empty() {
                    self.deps
                        .touched_out
                        .entry(node)
                        .or_default()
                        .extend(mapped);
                }
            }
            for (&node, pairs) in &old.deps.touched_in {
                let mapped: Vec<Pair> = pairs.iter().copied().filter_map(remap_pair).collect();
                if !mapped.is_empty() {
                    self.deps.touched_in.entry(node).or_default().extend(mapped);
                }
            }
            for (&pair, parents) in &old.deps.rdeps {
                let Some(p) = remap_pair(pair) else { continue };
                let mapped: Vec<Pair> = parents.iter().copied().filter_map(remap_pair).collect();
                if !mapped.is_empty() {
                    self.deps.rdeps.entry(p).or_default().extend(mapped);
                }
            }
        }
        self.stats.reused_pairs += moved as u64;
        moved
    }

    /// Cheap sanity check that `delta` was actually applied to `graph`:
    /// every added triple must be present, and every removed triple that
    /// the delta does not also re-add must be absent. O(|delta|) contains
    /// probes.
    fn check_delta_applied(
        &self,
        graph: &Graph,
        terms: &TermPool,
        delta: &GraphDelta,
    ) -> Result<(), EngineError> {
        let describe = |t: &shapex_rdf::Triple| {
            format!(
                "{} {} {}",
                terms.term(t.subject),
                terms.term(t.predicate),
                terms.term(t.object)
            )
        };
        for t in &delta.added {
            if !graph.contains(t) {
                return Err(EngineError::StaleDelta {
                    detail: format!("added triple missing from graph: {} .", describe(t)),
                });
            }
        }
        for t in &delta.removed {
            if delta.added.contains(t) {
                // Removed then re-added: net effect is presence, checked above.
                continue;
            }
            if graph.contains(t) {
                return Err(EngineError::StaleDelta {
                    detail: format!("removed triple still in graph: {} .", describe(t)),
                });
            }
        }
        Ok(())
    }

    /// Computes the set of memoised answers the delta can reach: the
    /// pairs that read a changed node's neighbourhood, closed
    /// transitively over the reverse shape-reference edges. Read-only —
    /// consults the dependency index and the delta, never the graph — so
    /// it can run concurrently with the delta being applied to the graph.
    /// Requires [`EngineConfig::incremental`] (without it the index is
    /// empty and the plan is trivially empty — callers on that path reset
    /// instead).
    pub fn plan_invalidation(&self, delta: &GraphDelta) -> InvalidationPlan {
        let mut dirty: FxHashSet<Pair> = FxHashSet::default();
        let mut work: Vec<Pair> = Vec::new();
        {
            let mut seed = |pairs: Option<&FxHashSet<Pair>>| {
                if let Some(pairs) = pairs {
                    for &p in pairs {
                        if dirty.insert(p) {
                            work.push(p);
                        }
                    }
                }
            };
            // A triple change is visible to pairs that read its subject's
            // outgoing arcs or its object's incoming arcs. Delta files
            // group triples by subject, so skipping adjacent repeats
            // collapses most probes; `touched_in` is populated only by
            // shapes with inverse arcs, so it is usually empty and the
            // object probes vanish entirely.
            let probe_objects = !self.deps.touched_in.is_empty();
            let mut last_subject = None;
            for t in delta.removed.iter().chain(delta.added.iter()) {
                if last_subject != Some(t.subject) {
                    last_subject = Some(t.subject);
                    seed(self.deps.touched_out.get(&t.subject));
                }
                if probe_objects {
                    seed(self.deps.touched_in.get(&t.object));
                }
            }
        }
        while let Some(pair) = work.pop() {
            if let Some(parents) = self.deps.rdeps.get(&pair) {
                for &q in parents {
                    if dirty.insert(q) {
                        work.push(q);
                    }
                }
            }
        }
        InvalidationPlan { dirty }
    }

    /// Purges every pair in the plan — memo, conditional residue, failure
    /// diagnostics — plus the stable profile entries whose other-end node
    /// had a pair invalidated, then opens a fresh run. Returns how many
    /// memoised answers were actually dropped.
    fn apply_invalidation(&mut self, plan: InvalidationPlan) -> u64 {
        let dirty = plan.dirty;
        let mut purged = 0u64;
        let mut dirty_nodes: FxHashSet<TermId> = FxHashSet::default();
        for &(shape, node) in &dirty {
            if self.memo.remove(&(shape, node)).is_some() {
                purged += 1;
            }
            self.conditional.remove(&(shape, node));
            self.failures.remove(&(shape, node));
            dirty_nodes.insert(node);
        }
        // Stable profile entries embed reference-arc answers about their
        // other-end node; any of those answers being dirty taints the
        // cached bits. Everything else the profile depends on (value
        // constraints) is term-pure and survives — so only keys at a
        // reference-capable head need purging, and those are removable
        // directly per dirty node instead of scanning the whole table.
        match &self.ref_heads {
            Some(heads) if heads.is_empty() => {}
            Some(heads) => {
                for &node in &dirty_nodes {
                    for &(shape, pred, inverse) in heads {
                        self.profile_stable.remove(&(shape, pred, node, inverse));
                    }
                }
            }
            None => {
                self.profile_stable
                    .retain(|&(_, _, other, _), _| !dirty_nodes.contains(&other));
            }
        }
        self.begin_run();
        purged
    }

    /// A worker engine for [`Engine::type_all_par`]: private copy of the
    /// compiled schema and arena, seeded with the unconditional slice of
    /// this engine's memo. Profile tables start empty — profile ids are
    /// interned per engine and must not be shared. DFA tables are forked
    /// as a snapshot of the coordinator's: class/state ids stay private,
    /// but already-filled transitions carry over, and fresh fills are
    /// logged so the wave-boundary merge can promote them engine-wide.
    fn fork_worker(&self, governor: &Arc<RunGovernor>) -> Engine {
        Engine {
            schema: self.schema.clone(),
            config: self.config,
            memo: self
                .memo
                .iter()
                .filter(|(_, state)| matches!(state, MemoState::Proven | MemoState::Failed))
                .map(|(&pair, state)| (pair, state.clone()))
                .collect(),
            value_sat: self.value_sat.clone(),
            profile_stable: FxHashMap::default(),
            profile_by_triple: FxHashMap::default(),
            profile_ids: FxHashMap::default(),
            profile_bits: Vec::new(),
            profile_shape: Vec::new(),
            class_local: Vec::new(),
            dfas: self.dfas.iter().map(ShapeDfa::fork).collect(),
            dfa_filled: self.dfa_filled,
            deriv_memo: HashMap::new(),
            conditional: HashSet::new(),
            in_progress: HashSet::new(),
            failures: self.failures.clone(),
            stats: Stats::default(),
            meter: BudgetMeter::default(),
            governor: Some(Arc::clone(governor)),
            metrics: self
                .config
                .metrics
                .then(|| Box::new(Metrics::new(self.schema.shapes.len()))),
            deps: TripleDeps::default(),
            dep_stack: Vec::new(),
            ref_heads: self.ref_heads.clone(),
            executor: None,
            publish: None,
        }
    }

    /// Merges a worker's *unconditional* results back into this engine's
    /// memo, recording newly learned pairs in `log` (the re-seed queue).
    /// Conditional state never leaves a worker; between queries a worker
    /// holds none anyway (the gfp driver promotes or drops it). Returns
    /// how many previously unknown pairs were merged.
    fn absorb_worker(&mut self, worker: &Engine, log: &mut Vec<Pair>) -> usize {
        let mut promoted = 0;
        for (&pair, state) in &worker.memo {
            if !matches!(state, MemoState::Proven | MemoState::Failed) {
                continue;
            }
            if self.memo.contains_key(&pair) {
                continue;
            }
            self.memo.insert(pair, state.clone());
            if let Some(f) = worker.failures.get(&pair) {
                self.failures.insert(pair, f.clone());
            }
            log.push(pair);
            promoted += 1;
        }
        for (&key, &sat) in &worker.value_sat {
            self.value_sat.entry(key).or_insert(sat);
        }
        promoted
    }

    /// Discards run-scoped state before a (re)run: only the
    /// assumption-carrying profile entries and the in-progress set. The
    /// stable profile table, the interned profile ids, and the derivative
    /// memo survive — they reference nothing purgeable.
    fn begin_run(&mut self) {
        self.profile_by_triple.clear();
        self.in_progress.clear();
    }

    /// Removes conditional results whose assumptions failed (or were
    /// themselves purged). Returns how many entries were removed.
    fn purge_tainted(&mut self) -> usize {
        let mut removed = 0;
        loop {
            let tainted: Vec<Pair> = self
                .conditional
                .iter()
                .filter(|pair| {
                    let Some(MemoState::Conditional(deps)) = self.memo.get(pair) else {
                        return false;
                    };
                    deps.iter().any(|d| {
                        !matches!(
                            self.memo.get(d),
                            Some(MemoState::Proven) | Some(MemoState::Conditional(_))
                        )
                    })
                })
                .copied()
                .collect();
            if tainted.is_empty() {
                return removed;
            }
            removed += tainted.len();
            for pair in tainted {
                self.memo.remove(&pair);
                self.conditional.remove(&pair);
            }
        }
    }

    /// After a purge-free run, surviving conditional results form cycles of
    /// mutually-true assumptions — exactly the greatest fixpoint — so they
    /// are promoted to unconditional truths.
    fn promote_conditionals(&mut self) {
        for pair in self.conditional.drain() {
            if let Some(state) = self.memo.get_mut(&pair) {
                *state = MemoState::Proven;
                if let Some(buf) = &mut self.publish {
                    buf.push(pair);
                }
            }
        }
    }

    /// The typing relation: true iff `node` has shape `shape` given the
    /// current memo/assumption state. Records assumptions used in `deps`.
    ///
    /// Budgeting: memo hits and coinductive assumptions are free; an actual
    /// evaluation charges one step and one recursion level. On exhaustion
    /// the error propagates straight to [`Engine::gfp_run`], which owns the
    /// cleanup — `in_progress` entries left behind here are cleared there.
    fn check_inner(
        &mut self,
        graph: &Graph,
        terms: &TermPool,
        node: TermId,
        shape: ShapeId,
        deps: &mut BTreeSet<Pair>,
    ) -> Result<bool, Exhaustion> {
        let pair = (shape, node);
        if self.config.incremental {
            // Reverse reference edge: whoever is evaluating right now is
            // consuming this pair's answer — recorded before any of the
            // early returns below, so memo hits and coinductive
            // assumptions leave the same edge as a fresh evaluation.
            if let Some(&parent) = self.dep_stack.last() {
                if parent != pair {
                    self.deps.rdeps.entry(pair).or_default().insert(parent);
                }
            }
        }
        match self.memo.get(&pair) {
            Some(MemoState::Proven) => return Ok(true),
            Some(MemoState::Failed) => return Ok(false),
            Some(MemoState::Conditional(d)) => {
                deps.extend(d.iter().copied());
                return Ok(true);
            }
            None => {}
        }
        if self.in_progress.contains(&pair) {
            // Γ{n→l}: the coinductive assumption (Fig. 3).
            deps.insert(pair);
            return Ok(true);
        }
        self.in_progress.insert(pair);
        self.stats.node_checks += 1;
        self.meter.step()?;
        self.meter.enter_depth()?;
        let steps_before = self.stats.derivative_steps;
        if self.config.incremental {
            // Neighbourhood read: this evaluation is about to consume the
            // node's outgoing arcs (and, for inverse-capable shapes, its
            // incoming arcs) — any triple change at either end must
            // invalidate this pair.
            self.deps.touched_out.entry(node).or_default().insert(pair);
            if self.schema.shape(shape).has_inverse {
                self.deps.touched_in.entry(node).or_default().insert(pair);
            }
            self.dep_stack.push(pair);
        }
        let mut local = BTreeSet::new();
        let result = self.match_neighbourhood(graph, terms, node, shape, &mut local);
        if self.config.incremental {
            self.dep_stack.pop();
        }
        self.meter.exit_depth();
        let ok = result?;
        let steps_after = self.stats.derivative_steps;
        self.metric(|m| {
            if let Some(sm) = m.per_shape.get_mut(shape.0 as usize) {
                sm.checks += 1;
                // Inclusive attribution: nested reference checks count
                // against the referencing shape too (and against their own).
                sm.derivative_steps += steps_after - steps_before;
                if ok {
                    sm.conforms += 1;
                } else {
                    sm.fails += 1;
                }
            }
        });
        self.in_progress.remove(&pair);
        // A self-dependency is discharged by this very completion.
        local.remove(&pair);
        if ok {
            if local.is_empty() {
                self.memo.insert(pair, MemoState::Proven);
                if let Some(buf) = &mut self.publish {
                    buf.push(pair);
                }
            } else {
                deps.extend(local.iter().copied());
                self.conditional.insert(pair);
                self.memo.insert(pair, MemoState::Conditional(local));
            }
            Ok(true)
        } else {
            // Failure is sound unconditionally: assumptions only make
            // matching more permissive (monotonicity).
            self.memo.insert(pair, MemoState::Failed);
            if let Some(buf) = &mut self.publish {
                buf.push(pair);
            }
            Ok(false)
        }
    }

    /// `Σg_n ∈ S_n[[δ(shape)]]` by iterated derivatives (§7).
    fn match_neighbourhood(
        &mut self,
        graph: &Graph,
        terms: &TermPool,
        node: TermId,
        shape: ShapeId,
        deps: &mut BTreeSet<Pair>,
    ) -> Result<bool, Exhaustion> {
        let (expr0, sorbe) = {
            let sh = self.schema.shape(shape);
            (
                sh.expr,
                if self.config.no_sorbe {
                    None
                } else {
                    sh.sorbe.clone()
                },
            )
        };
        let triples = self.gather_triples(graph, node, shape);

        if let Some(spec) = sorbe {
            return self.match_sorbe(graph, terms, node, shape, &spec, &triples, deps);
        }

        let mut e = expr0;
        for (p, other, inverse, ts, to) in triples {
            let pid = self.profile(graph, terms, shape, p, other, inverse, deps)?;
            let before = e;
            e = self.deriv(e, pid)?;
            if e == EMPTY {
                self.failures.insert(
                    (shape, node),
                    Failure {
                        kind: FailureKind::UnexpectedTriple {
                            subject: ts,
                            predicate: p,
                            object: to,
                        },
                        expectation: self.schema.render_expr(before),
                    },
                );
                return Ok(false);
            }
        }
        if self.nullable_of(shape, e) {
            Ok(true)
        } else {
            self.failures.insert(
                (shape, node),
                Failure {
                    kind: FailureKind::MissingRequired,
                    expectation: self.schema.render_expr(e),
                },
            );
            Ok(false)
        }
    }

    /// Gathers the triples a shape must account for at `node`:
    /// `(pred, other-end, inverse, subject, object)` — the last two are
    /// the original triple ends, kept for error reporting.
    fn gather_triples(
        &self,
        graph: &Graph,
        node: TermId,
        shape: ShapeId,
    ) -> Vec<(TermId, TermId, bool, TermId, TermId)> {
        let sh = self.schema.shape(shape);
        let mut triples = Vec::new();
        for &(p, o) in graph.neighbourhood(node) {
            let relevant = match (self.config.closure, &sh.forward_predicates) {
                (Closure::Closed, _) => true,
                (Closure::Open, None) => true, // wildcard: everything relevant
                (Closure::Open, Some(preds)) => preds.binary_search(&p).is_ok(),
            };
            if relevant {
                triples.push((p, o, false, node, o));
            }
        }
        if sh.has_inverse {
            // Inverse neighbourhoods are always scoped to the mentioned
            // predicates — a node is not responsible for arbitrary
            // incoming triples.
            for &(s, p) in graph.incoming(node) {
                let relevant = match &sh.inverse_predicates {
                    None => true,
                    Some(preds) => preds.binary_search(&p).is_ok(),
                };
                if relevant {
                    triples.push((p, s, true, s, node));
                }
            }
        }
        triples
    }

    /// Produces the paper's §7 derivative trace for `node` against
    /// `label`: the expression state before and after consuming each
    /// triple (Examples 9, 11, 12), always via the general derivative
    /// algorithm (the fast path has no intermediate states to show).
    /// Shape references are resolved with the full typing machinery.
    pub fn trace(
        &mut self,
        graph: &Graph,
        terms: &TermPool,
        node: TermId,
        label: &ShapeLabel,
    ) -> Result<Trace, EngineError> {
        let shape = self
            .schema
            .shape_id(label)
            .ok_or_else(|| EngineError::UnknownShape(label.as_str().to_string()))?;
        if self.schema.has_recursion {
            // Reference chains recurse with the data's depth; use the
            // large-stack worker like check_id does.
            return self
                .on_big_stack(|engine| engine.trace_inner(graph, terms, node, shape))
                .map_err(EngineError::from);
        }
        self.trace_inner(graph, terms, node, shape)
            .map_err(EngineError::from)
    }

    fn trace_inner(
        &mut self,
        graph: &Graph,
        terms: &TermPool,
        node: TermId,
        shape: ShapeId,
    ) -> Result<Trace, Exhaustion> {
        self.meter = self.fresh_meter();
        self.meter.set_arena_baseline(self.arena_units());
        self.begin_run();
        let result = self.trace_loop(graph, terms, node, shape);
        if result.is_err() {
            self.in_progress.clear();
            for pair in self.conditional.drain() {
                self.memo.remove(&pair);
            }
            self.stats.exhausted_checks += 1;
        }
        self.fold_meter();
        result
    }

    fn trace_loop(
        &mut self,
        graph: &Graph,
        terms: &TermPool,
        node: TermId,
        shape: ShapeId,
    ) -> Result<Trace, Exhaustion> {
        let mut steps = Vec::new();
        let mut e = self.schema.shape(shape).expr;
        let mut deps = BTreeSet::new();
        for (p, other, inverse, ts, to) in self.gather_triples(graph, node, shape) {
            let before = self.schema.render_expr(e);
            let pid = self.profile(graph, terms, shape, p, other, inverse, &mut deps)?;
            e = self.deriv(e, pid)?;
            steps.push(TraceStep {
                subject: ts,
                predicate: p,
                object: to,
                inverse,
                before,
                after: self.schema.render_expr(e),
            });
            if e == EMPTY {
                break;
            }
        }
        let nullable = self.schema.pool.nullable(e);
        Ok(Trace {
            steps,
            residual: self.schema.render_expr(e),
            nullable,
            matched: e != EMPTY && nullable,
        })
    }

    /// The SORBE counting fast path (§8 future work, [`crate::sorbe`]):
    /// each triple belongs to at most one conjunct (heads are disjoint),
    /// so matching is bucket-count-and-check — no derivatives.
    #[allow(clippy::too_many_arguments)]
    fn match_sorbe(
        &mut self,
        graph: &Graph,
        terms: &TermPool,
        node: TermId,
        shape: ShapeId,
        spec: &[crate::compile::SorbeSpec],
        triples: &[(TermId, TermId, bool, TermId, TermId)],
        deps: &mut BTreeSet<Pair>,
    ) -> Result<bool, Exhaustion> {
        self.stats.sorbe_checks += 1;
        self.metric(|m| {
            if let Some(sm) = m.per_shape.get_mut(shape.0 as usize) {
                sm.sorbe_checks += 1;
            }
        });
        let mut counts = vec![0u32; spec.len()];
        for &(p, other, inverse, ts, to) in triples {
            // One step per triple: the fast path's unit of work.
            self.meter.step()?;
            let owner = spec.iter().position(|s| {
                let arc = self.schema.arc(s.arc);
                arc.inverse == inverse && arc.predicates.contains(p)
            });
            let Some(i) = owner else {
                // Closed semantics: a triple no conjunct accounts for.
                self.failures.insert(
                    (shape, node),
                    Failure {
                        kind: FailureKind::UnexpectedTriple {
                            subject: ts,
                            predicate: p,
                            object: to,
                        },
                        expectation: self.schema.render_expr(self.schema.shape(shape).expr),
                    },
                );
                return Ok(false);
            };
            let arc_id = spec[i].arc;
            if !self.arc_object_sat(graph, terms, arc_id, other, deps)? {
                self.failures.insert(
                    (shape, node),
                    Failure {
                        kind: FailureKind::UnexpectedTriple {
                            subject: ts,
                            predicate: p,
                            object: to,
                        },
                        expectation: self.schema.arc(arc_id).display.clone(),
                    },
                );
                return Ok(false);
            }
            counts[i] += 1;
        }
        for (s, &count) in spec.iter().zip(&counts) {
            if count < s.min || count > s.max {
                self.failures.insert(
                    (shape, node),
                    Failure {
                        kind: FailureKind::Cardinality {
                            arc: self.schema.arc(s.arc).display.clone(),
                            found: count,
                            min: s.min,
                            max: (s.max != UNBOUNDED).then_some(s.max),
                        },
                        expectation: self.schema.arc(s.arc).display.clone(),
                    },
                );
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Evaluates one arc's object condition against a term, memoising
    /// value constraints and routing shape references through the typing
    /// context.
    fn arc_object_sat(
        &mut self,
        graph: &Graph,
        terms: &TermPool,
        arc_id: ArcId,
        other: TermId,
        deps: &mut BTreeSet<Pair>,
    ) -> Result<bool, Exhaustion> {
        let target = {
            let arc = self.schema.arc(arc_id);
            match &arc.object {
                CompiledObject::Value(_) => None,
                CompiledObject::Ref(t) => Some(*t),
            }
        };
        match target {
            None => {
                if let Some(&cached) = self.value_sat.get(&(arc_id, other)) {
                    return Ok(cached);
                }
                let v = {
                    let CompiledObject::Value(c) = &self.schema.arc(arc_id).object else {
                        unreachable!("checked above");
                    };
                    c.matches(terms.term(other))
                };
                self.value_sat.insert((arc_id, other), v);
                Ok(v)
            }
            Some(target) => self.check_inner(graph, terms, other, target, deps),
        }
    }

    /// Maps a triple to its satisfaction-profile id (triple class) for
    /// `shape`, evaluating arc constraints as needed.
    #[allow(clippy::too_many_arguments)]
    fn profile(
        &mut self,
        graph: &Graph,
        terms: &TermPool,
        shape: ShapeId,
        pred: TermId,
        other: TermId,
        inverse: bool,
        deps: &mut BTreeSet<Pair>,
    ) -> Result<ProfileId, Exhaustion> {
        let key = (shape, pred, other, inverse);
        // A cached profile short-circuits the reference checks its
        // computation performed, so on *hits* the rdeps edges check_inner
        // would have recorded must be re-derived (they are a pure function
        // of the key). On a miss the evaluation below reaches check_inner
        // itself, which records them — no double bookkeeping, and flat
        // shapes (no reference arcs) skip the whole affair.
        let record_refs = self.config.incremental && self.schema.shape(shape).has_refs;
        self.metric(|m| m.profile_stable.lookups += 1);
        if let Some(&pid) = self.profile_stable.get(&key) {
            self.metric(|m| m.profile_stable.hits += 1);
            if record_refs {
                self.record_profile_ref_edges(shape, pred, other, inverse);
            }
            return Ok(pid);
        }
        // The assumption-carrying table is consulted only on a stable
        // miss, so its lookups count the stable fall-through exactly.
        self.metric(|m| {
            m.profile_stable.misses += 1;
            m.profile_assumption.lookups += 1;
        });
        if let Some((pid, cached_deps)) = self.profile_by_triple.get(&key) {
            let pid = *pid;
            deps.extend(cached_deps.iter().copied());
            self.metric(|m| m.profile_assumption.hits += 1);
            if record_refs {
                self.record_profile_ref_edges(shape, pred, other, inverse);
            }
            return Ok(pid);
        }
        self.metric(|m| m.profile_assumption.misses += 1);
        self.meter.step()?;
        // Only arcs whose head covers `(pred, inverse)` can set a bit —
        // the compile-time head index hands us exactly those instead of a
        // scan over every arc of the shape.
        let (n_arcs, candidates) = {
            let sh = self.schema.shape(shape);
            (
                sh.arcs.len(),
                sh.head_index
                    .candidates(pred, inverse)
                    .collect::<Vec<ArcId>>(),
            )
        };
        self.metric(|m| {
            m.head_index_queries += 1;
            m.head_index_candidates += candidates.len() as u64;
            if let Some(sm) = m.per_shape.get_mut(shape.0 as usize) {
                sm.profiles_computed += 1;
            }
        });
        let mut bits = vec![0u64; n_arcs.div_ceil(64)];
        let mut used: Vec<Pair> = Vec::new();
        for arc_id in candidates {
            let bit = self.schema.arc(arc_id).bit;
            let mut arc_deps = BTreeSet::new();
            let sat = self.arc_object_sat(graph, terms, arc_id, other, &mut arc_deps)?;
            used.extend(arc_deps.iter().copied());
            deps.extend(arc_deps);
            if sat {
                bits[(bit / 64) as usize] |= 1u64 << (bit % 64);
            }
        }
        // Mask to the shape's alphabet classes: bits of arcs the compiled
        // expression cannot reach are invisible to every derivative, so
        // profiles differing only there are the same triple class. Both
        // the DFA and `--no-dfa` paths intern masked bits — masking is a
        // property of the class model, not of the lookup structure.
        for (b, m) in bits
            .iter_mut()
            .zip(self.schema.shape(shape).class_mask.iter())
        {
            *b &= m;
        }
        let bits: Box<[u64]> = bits.into();
        let next = ProfileId(self.profile_bits.len() as u32);
        let stats = &mut self.stats;
        let profile_bits = &mut self.profile_bits;
        let pid = *self
            .profile_ids
            .entry((shape, bits.clone()))
            .or_insert_with(|| {
                profile_bits.push(bits);
                stats.triple_classes += 1;
                next
            });
        if pid == next {
            // Freshly interned: record the pid's shape and its dense
            // class id for the DFA layer (ids below `next` already have
            // their slots).
            self.profile_shape.push(shape);
            let class = if self.use_dfa() {
                let masked = &self.profile_bits[pid.0 as usize];
                let (c, fresh_class) = self.dfas[shape.index()].intern_class(masked);
                if fresh_class {
                    let classes = self.dfas[shape.index()].classes() as u64;
                    self.metric(|m| {
                        if let Some(d) = m.per_shape_dfa.get_mut(shape.0 as usize) {
                            d.classes = d.classes.max(classes);
                        }
                    });
                }
                c
            } else {
                0
            };
            self.class_local.push(class);
        }
        if used.is_empty() {
            // No open assumptions touched: a stable fact about the graph,
            // reusable by every later query and rerun.
            self.profile_stable.insert(key, pid);
        } else {
            used.sort();
            used.dedup();
            self.profile_by_triple.insert(key, (pid, used.into()));
        }
        Ok(pid)
    }

    /// Records the reverse reference edges a profile lookup implies: the
    /// currently evaluating pair consumed `(target, other)` for every
    /// reference arc whose head covers `(pred, inverse)`. Needed because
    /// profile cache hits (stable or assumption-carrying) skip the
    /// `check_inner` calls that would otherwise record these edges.
    fn record_profile_ref_edges(
        &mut self,
        shape: ShapeId,
        pred: TermId,
        other: TermId,
        inverse: bool,
    ) {
        let Some(&parent) = self.dep_stack.last() else {
            return;
        };
        // Disjoint field borrows: the schema is read while the dependency
        // index is written, so no intermediate collection is needed.
        let schema = &self.schema;
        let rdeps = &mut self.deps.rdeps;
        for arc_id in schema.shape(shape).head_index.candidates(pred, inverse) {
            if let CompiledObject::Ref(t) = &schema.arc(arc_id).object {
                let rp = (*t, other);
                if rp != parent {
                    rdeps.entry(rp).or_default().insert(parent);
                }
            }
        }
    }

    fn profile_bit(&self, pid: ProfileId, bit: u32) -> bool {
        let words = &self.profile_bits[pid.0 as usize];
        words[(bit / 64) as usize] & (1u64 << (bit % 64)) != 0
    }

    /// Interns `e` as a dense state of `shape`'s DFA, wiring the state
    /// metrics. Returns the state id.
    fn dfa_state(&mut self, shape: ShapeId, e: ExprId) -> u32 {
        let nullable = self.schema.pool.nullable(e);
        let (s, fresh) = self.dfas[shape.index()].intern_state(e, nullable);
        if fresh {
            let states = self.dfas[shape.index()].states() as u64;
            self.metric(|m| {
                m.dfa_states += 1;
                if let Some(d) = m.per_shape_dfa.get_mut(shape.0 as usize) {
                    d.states = d.states.max(states);
                }
            });
        }
        s
    }

    /// `∂t(e)` with `t` abstracted to its triple class (§6 rules).
    ///
    /// Budgeting: one step per rule application (cache hits are free),
    /// and the arena cap is checked after the interleaving rule — the one
    /// rule whose `∂t(e1)‖e2 | ∂t(e2)‖e1` expansion can blow up the pool.
    ///
    /// The memoisation structure is chosen by configuration — the dense
    /// lazy-DFA table by default, the `(expression, profile)` HashMap
    /// under `--no-dfa`, nothing under `no_deriv_memo` — but hits and
    /// fills land at exactly the same `(e, pid)` points in all modes, so
    /// step counts and budget behaviour never diverge between them.
    fn deriv(&mut self, e: ExprId, pid: ProfileId) -> Result<ExprId, Exhaustion> {
        // Where to record the computed transition, resolved by the probe.
        enum Slot {
            Uncached,
            Memo,
            Dfa(ShapeId, u32, u32),
        }
        let slot = if self.config.no_deriv_memo {
            Slot::Uncached
        } else if self.config.no_dfa {
            self.metric(|m| m.deriv_memo.lookups += 1);
            if let Some(&d) = self.deriv_memo.get(&(e, pid)) {
                self.stats.deriv_memo_hits += 1;
                self.metric(|m| m.deriv_memo.hits += 1);
                return Ok(d);
            }
            self.metric(|m| m.deriv_memo.misses += 1);
            Slot::Memo
        } else {
            let shape = self.profile_shape[pid.0 as usize];
            let class = self.class_local[pid.0 as usize];
            let src = self.dfa_state(shape, e);
            self.metric(|m| m.dfa_table.lookups += 1);
            if let Some(d) = self.dfas[shape.index()].target(src, class) {
                self.stats.deriv_memo_hits += 1;
                self.metric(|m| m.dfa_table.hits += 1);
                return Ok(d);
            }
            self.metric(|m| m.dfa_table.misses += 1);
            Slot::Dfa(shape, src, class)
        };
        self.stats.derivative_steps += 1;
        self.meter.step()?;
        let d = match self.schema.pool.node(e) {
            // ∂t(∅) = ∅, ∂t(ε) = ∅
            Node::Empty | Node::Epsilon => EMPTY,
            // ∂t(vp→vo) = ε if the triple satisfies the arc, else ∅
            Node::Arc(a) => {
                let bit = self.schema.arc(a).bit;
                if self.profile_bit(pid, bit) {
                    EPSILON
                } else {
                    EMPTY
                }
            }
            // ∂t(e*) = ∂t(e) ‖ e*
            Node::Star(inner) => {
                let di = self.deriv(inner, pid)?;
                self.schema.pool.and(di, e)
            }
            // ∂t(e{m,n}) = ∂t(e) ‖ e{m⊖1, n−1} — the counter rule that
            // avoids the exponential §4 expansion.
            Node::Repeat(inner, m, n) => {
                if n == 0 {
                    EMPTY // only reachable with simplification disabled
                } else {
                    let di = self.deriv(inner, pid)?;
                    let n1 = if n == UNBOUNDED { UNBOUNDED } else { n - 1 };
                    let rest = self.schema.pool.repeat(inner, m.saturating_sub(1), n1);
                    self.schema.pool.and(di, rest)
                }
            }
            // ∂t(e1 ‖ e2) = ∂t(e1) ‖ e2 | ∂t(e2) ‖ e1
            Node::And(a, b) => {
                let da = self.deriv(a, pid)?;
                let db = self.deriv(b, pid)?;
                let left = self.schema.pool.and(da, b);
                let right = self.schema.pool.and(db, a);
                let d = self.schema.pool.or(left, right);
                let units = self.arena_units();
                self.meter.check_arena(units)?;
                d
            }
            // ∂t(e1 | e2) = ∂t(e1) | ∂t(e2)
            Node::Or(a, b) => {
                let da = self.deriv(a, pid)?;
                let db = self.deriv(b, pid)?;
                self.schema.pool.or(da, db)
            }
        };
        match slot {
            Slot::Uncached => {}
            Slot::Memo => {
                self.deriv_memo.insert((e, pid), d);
            }
            Slot::Dfa(shape, src, class) => {
                shapex_rdf::failpoint::hit("dfa-fill");
                let dst = self.dfa_state(shape, d);
                if self.dfas[shape.index()].record(src, class, dst) {
                    self.dfa_filled += 1;
                }
            }
        }
        Ok(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapex_rdf::graph::Dataset;
    use shapex_rdf::turtle;
    use shapex_shex::shexc;

    fn setup(schema_src: &str, data_src: &str) -> (Engine, Dataset) {
        let schema = shexc::parse(schema_src).unwrap();
        let mut ds = turtle::parse(data_src).unwrap();
        let engine = Engine::new(&schema, &mut ds.pool).unwrap();
        (engine, ds)
    }

    fn check(engine: &mut Engine, ds: &Dataset, node: &str, shape: &str) -> bool {
        let node = ds.iri(node).expect("node exists");
        engine
            .check(&ds.graph, &ds.pool, node, &shape.into())
            .unwrap()
            .matched
    }

    const EX5_SCHEMA: &str = "PREFIX e: <http://e/>\n<S> { e:a [1], e:b [1 2]* }";

    #[test]
    fn paper_example_11_accepts() {
        // e = a→1 ‖ b→{1,2}*  matches {⟨n,a,1⟩, ⟨n,b,1⟩, ⟨n,b,2⟩}
        let (mut engine, ds) = setup(EX5_SCHEMA, "@prefix e: <http://e/> . e:n e:a 1; e:b 1, 2 .");
        assert!(check(&mut engine, &ds, "http://e/n", "S"));
    }

    #[test]
    fn paper_example_12_rejects() {
        // {⟨n,a,1⟩, ⟨n,a,2⟩, ⟨n,b,1⟩}: second a-triple not allowed
        let (mut engine, ds) = setup(EX5_SCHEMA, "@prefix e: <http://e/> . e:n e:a 1, 2; e:b 1 .");
        let node = ds.iri("http://e/n").unwrap();
        let r = engine
            .check(&ds.graph, &ds.pool, node, &"S".into())
            .unwrap();
        assert!(!r.matched);
        let failure = r.failure.expect("failure explanation");
        // ⟨n,a,2⟩ is the triple the derivative rejects
        assert!(matches!(failure.kind, FailureKind::UnexpectedTriple { .. }));
        let msg = failure.render(&ds.pool);
        assert!(msg.contains("\"2\""), "{msg}");
    }

    #[test]
    fn empty_star_accepts_empty_neighbourhood() {
        let (mut engine, mut ds) = setup(
            "PREFIX e: <http://e/>\n<S> { e:b [1 2]* }",
            "@prefix e: <http://e/> . e:other e:x 1 .",
        );
        // A node with no triples at all: ν(b→{1,2}*) = true.
        let n = ds.pool.intern_iri("http://e/lonely");
        let r = engine.check(&ds.graph, &ds.pool, n, &"S".into()).unwrap();
        assert!(r.matched);
    }

    #[test]
    fn missing_required_arc_reports() {
        // EX5_SCHEMA is SORBE, so the counting fast path reports the
        // missing arc as a cardinality violation.
        let (mut engine, ds) = setup(
            EX5_SCHEMA,
            "@prefix e: <http://e/> . e:n e:b 1 .", // a→1 missing
        );
        let node = ds.iri("http://e/n").unwrap();
        let r = engine
            .check(&ds.graph, &ds.pool, node, &"S".into())
            .unwrap();
        assert!(!r.matched);
        let failure = r.failure.unwrap();
        assert!(
            matches!(
                failure.kind,
                FailureKind::Cardinality {
                    found: 0,
                    min: 1,
                    ..
                }
            ),
            "{failure:?}"
        );
        assert!(failure.expectation.contains("a→"));
    }

    #[test]
    fn missing_required_arc_reports_general_path() {
        // With the fast path disabled, the derivative engine reports the
        // residual non-nullable expectation instead.
        let schema = shexc::parse(EX5_SCHEMA).unwrap();
        let mut ds = turtle::parse("@prefix e: <http://e/> . e:n e:b 1 .").unwrap();
        let mut engine = Engine::compile(
            &schema,
            &mut ds.pool,
            EngineConfig {
                no_sorbe: true,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let node = ds.iri("http://e/n").unwrap();
        let r = engine
            .check(&ds.graph, &ds.pool, node, &"S".into())
            .unwrap();
        assert!(!r.matched);
        let failure = r.failure.unwrap();
        assert!(matches!(failure.kind, FailureKind::MissingRequired));
        assert!(failure.expectation.contains("a→"));
    }

    const PERSON_SCHEMA: &str = r#"
        PREFIX foaf: <http://xmlns.com/foaf/0.1/>
        PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
        <Person> {
          foaf:age xsd:integer
          , foaf:name xsd:string+
          , foaf:knows @<Person>*
        }
    "#;

    const PERSON_DATA: &str = r#"
        @prefix : <http://example.org/> .
        @prefix foaf: <http://xmlns.com/foaf/0.1/> .
        :john foaf:age 23;
              foaf:name "John";
              foaf:knows :bob .
        :bob foaf:age 34;
             foaf:name "Bob", "Robert" .
        :mary foaf:age 50, 65 .
    "#;

    #[test]
    fn paper_example_2_typing() {
        let (mut engine, ds) = setup(PERSON_SCHEMA, PERSON_DATA);
        assert!(check(&mut engine, &ds, "http://example.org/john", "Person"));
        assert!(check(&mut engine, &ds, "http://example.org/bob", "Person"));
        assert!(!check(
            &mut engine,
            &ds,
            "http://example.org/mary",
            "Person"
        ));
    }

    #[test]
    fn type_all_matches_example_2() {
        let (mut engine, ds) = setup(PERSON_SCHEMA, PERSON_DATA);
        let typing = engine.type_all(&ds.graph, &ds.pool);
        let person = engine.shape_id(&"Person".into()).unwrap();
        let john = ds.iri("http://example.org/john").unwrap();
        let bob = ds.iri("http://example.org/bob").unwrap();
        let mary = ds.iri("http://example.org/mary").unwrap();
        assert!(typing.has(john, person));
        assert!(typing.has(bob, person));
        assert!(!typing.has(mary, person));
        assert_eq!(typing.len(), 2);
    }

    #[test]
    fn recursive_cycle_validates_coinductively() {
        // a knows b, b knows a — both Persons under gfp semantics.
        let (mut engine, ds) = setup(
            PERSON_SCHEMA,
            r#"
            @prefix : <http://example.org/> .
            @prefix foaf: <http://xmlns.com/foaf/0.1/> .
            :a foaf:age 1; foaf:name "A"; foaf:knows :b .
            :b foaf:age 2; foaf:name "B"; foaf:knows :a .
            "#,
        );
        assert!(check(&mut engine, &ds, "http://example.org/a", "Person"));
        assert!(check(&mut engine, &ds, "http://example.org/b", "Person"));
    }

    #[test]
    fn broken_link_in_cycle_fails_both() {
        // a knows b, b knows c, c is not a person (no name) and c knows a.
        let (mut engine, ds) = setup(
            PERSON_SCHEMA,
            r#"
            @prefix : <http://example.org/> .
            @prefix foaf: <http://xmlns.com/foaf/0.1/> .
            :a foaf:age 1; foaf:name "A"; foaf:knows :b .
            :b foaf:age 2; foaf:name "B"; foaf:knows :c .
            :c foaf:age 3; foaf:knows :a .
            "#,
        );
        assert!(!check(&mut engine, &ds, "http://example.org/c", "Person"));
        assert!(!check(&mut engine, &ds, "http://example.org/b", "Person"));
        assert!(!check(&mut engine, &ds, "http://example.org/a", "Person"));
    }

    #[test]
    fn gfp_rerun_on_failed_assumption() {
        // Query :a first, so the assumption (:a, Person) is used by the
        // nested checks before :c's failure is discovered.
        let (mut engine, ds) = setup(
            PERSON_SCHEMA,
            r#"
            @prefix : <http://example.org/> .
            @prefix foaf: <http://xmlns.com/foaf/0.1/> .
            :a foaf:age 1; foaf:name "A"; foaf:knows :b .
            :b foaf:age 2; foaf:name "B"; foaf:knows :a, :c .
            :c foaf:age 3; foaf:knows :a .
            "#,
        );
        assert!(!check(&mut engine, &ds, "http://example.org/a", "Person"));
        // And the memoised verdicts stay consistent when re-queried.
        assert!(!check(&mut engine, &ds, "http://example.org/b", "Person"));
        assert!(!check(&mut engine, &ds, "http://example.org/c", "Person"));
    }

    #[test]
    fn self_loop_person() {
        let (mut engine, ds) = setup(
            PERSON_SCHEMA,
            r#"
            @prefix : <http://example.org/> .
            @prefix foaf: <http://xmlns.com/foaf/0.1/> .
            :n foaf:age 1; foaf:name "N"; foaf:knows :n .
            "#,
        );
        assert!(check(&mut engine, &ds, "http://example.org/n", "Person"));
    }

    #[test]
    fn cardinality_bounds_enforced() {
        let (mut engine, ds) = setup(
            "PREFIX e: <http://e/>\n<S> { e:p .{2,3} }",
            r#"
            @prefix e: <http://e/> .
            e:one e:p 1 .
            e:two e:p 1, 2 .
            e:three e:p 1, 2, 3 .
            e:four e:p 1, 2, 3, 4 .
            "#,
        );
        assert!(!check(&mut engine, &ds, "http://e/one", "S"));
        assert!(check(&mut engine, &ds, "http://e/two", "S"));
        assert!(check(&mut engine, &ds, "http://e/three", "S"));
        assert!(!check(&mut engine, &ds, "http://e/four", "S"));
    }

    #[test]
    fn repeat_zero_zero_behaves_as_epsilon_on_every_path() {
        // e{0,0} ≡ ε: nullable, and a triple matching that arc is a
        // *closed*-shape violation, not a consumable arc — identically on
        // the SORBE fast path, the general derivative path, and with
        // simplification disabled (where Repeat(e,0,0) survives interning).
        for (name, config) in [
            ("sorbe", EngineConfig::default()),
            (
                "general",
                EngineConfig {
                    no_sorbe: true,
                    ..EngineConfig::default()
                },
            ),
            (
                "no-simplify",
                EngineConfig {
                    no_sorbe: true,
                    simplify: Simplify::none(),
                    ..EngineConfig::default()
                },
            ),
        ] {
            let schema =
                shexc::parse("PREFIX e: <http://e/>\n<S> { e:q [1], e:p .{0,0} }").unwrap();
            let mut ds =
                turtle::parse("@prefix e: <http://e/> . e:ok e:q 1 . e:bad e:q 1; e:p 5 .")
                    .unwrap();
            let mut engine = Engine::compile(&schema, &mut ds.pool, config).unwrap();
            let ok = ds.iri("http://e/ok").unwrap();
            let bad = ds.iri("http://e/bad").unwrap();
            assert!(
                engine
                    .check(&ds.graph, &ds.pool, ok, &"S".into())
                    .unwrap()
                    .matched,
                "{name}: zero occurrences of p{{0,0}} must satisfy"
            );
            assert!(
                !engine
                    .check(&ds.graph, &ds.pool, bad, &"S".into())
                    .unwrap()
                    .matched,
                "{name}: a p-triple must violate p{{0,0}}"
            );
        }
    }

    #[test]
    fn repeat_zero_one_is_optional() {
        let (mut engine, ds) = setup(
            "PREFIX e: <http://e/>\n<S> { e:q [1], e:p .{0,1} }",
            "@prefix e: <http://e/> . e:none e:q 1 . e:one e:q 1; e:p 5 .\n\
             e:two e:q 1; e:p 5, 6 .",
        );
        assert!(check(&mut engine, &ds, "http://e/none", "S"));
        assert!(check(&mut engine, &ds, "http://e/one", "S"));
        assert!(!check(&mut engine, &ds, "http://e/two", "S"));
    }

    #[test]
    fn inverted_bounds_rejected_at_compile() {
        // {1,0} never reaches the arena's repeat() (whose debug_assert
        // would panic): programmatic schemas are rejected with a clear
        // error at compile time, mirroring the ShExC parse-time check.
        use shapex_shex::ast::{ArcConstraint, ShapeExpr};
        use shapex_shex::constraint::NodeConstraint;
        let schema = Schema::from_rules([(
            ShapeLabel::new("S"),
            ShapeExpr::Repeat(
                Box::new(ShapeExpr::arc(ArcConstraint::value(
                    "http://e/p",
                    NodeConstraint::Any,
                ))),
                1,
                Some(0),
            ),
        )])
        .unwrap();
        let mut terms = TermPool::new();
        let err = Engine::new(&schema, &mut terms).unwrap_err();
        let EngineError::Schema(SchemaError::InvalidBounds { min: 1, max: 0, .. }) = err else {
            panic!("expected InvalidBounds, got {err:?}");
        };
        assert!(err.to_string().contains("{1,0}"), "{err}");
    }

    #[test]
    fn closed_semantics_rejects_extra_triples() {
        let (mut engine, ds) = setup(
            "PREFIX e: <http://e/>\n<S> { e:a [1] }",
            "@prefix e: <http://e/> . e:n e:a 1; e:other 2 .",
        );
        assert!(!check(&mut engine, &ds, "http://e/n", "S"));
    }

    #[test]
    fn open_semantics_ignores_unmentioned_predicates() {
        let schema = shexc::parse("PREFIX e: <http://e/>\n<S> { e:a [1] }").unwrap();
        let mut ds = turtle::parse("@prefix e: <http://e/> . e:n e:a 1; e:other 2 .").unwrap();
        let mut engine = Engine::compile(
            &schema,
            &mut ds.pool,
            EngineConfig {
                closure: Closure::Open,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let n = ds.iri("http://e/n").unwrap();
        assert!(
            engine
                .check(&ds.graph, &ds.pool, n, &"S".into())
                .unwrap()
                .matched
        );
    }

    #[test]
    fn inverse_arc_extension() {
        // Every Department must be pointed at by ≥1 worksIn triple.
        let (mut engine, ds) = setup(
            "PREFIX e: <http://e/>\n<Dept> { e:name LITERAL, ^e:worksIn IRI+ }",
            r#"
            @prefix e: <http://e/> .
            e:sales e:name "Sales" .
            e:ghost e:name "Ghost" .
            e:alice e:worksIn e:sales .
            e:bob e:worksIn e:sales .
            "#,
        );
        assert!(check(&mut engine, &ds, "http://e/sales", "Dept"));
        assert!(!check(&mut engine, &ds, "http://e/ghost", "Dept"));
    }

    #[test]
    fn or_alternatives() {
        let (mut engine, ds) = setup(
            "PREFIX e: <http://e/>\n<S> { e:a [1] | e:b [2] }",
            r#"
            @prefix e: <http://e/> .
            e:x e:a 1 .
            e:y e:b 2 .
            e:z e:a 1; e:b 2 .
            "#,
        );
        assert!(check(&mut engine, &ds, "http://e/x", "S"));
        assert!(check(&mut engine, &ds, "http://e/y", "S"));
        // Or is exclusive over the whole neighbourhood under closed
        // semantics: z has both triples, neither alternative consumes both.
        assert!(!check(&mut engine, &ds, "http://e/z", "S"));
    }

    #[test]
    fn unknown_shape_is_an_error() {
        let (mut engine, ds) = setup(EX5_SCHEMA, "@prefix e: <http://e/> . e:n e:a 1 .");
        let n = ds.iri("http://e/n").unwrap();
        let err = engine
            .check(&ds.graph, &ds.pool, n, &"Nope".into())
            .unwrap_err();
        assert_eq!(err, EngineError::UnknownShape("Nope".into()));
    }

    #[test]
    fn memoisation_reuses_results() {
        let (mut engine, ds) = setup(PERSON_SCHEMA, PERSON_DATA);
        check(&mut engine, &ds, "http://example.org/john", "Person");
        let checks_before = engine.stats().node_checks;
        // Second query is fully memoised.
        check(&mut engine, &ds, "http://example.org/john", "Person");
        assert_eq!(engine.stats().node_checks, checks_before);
    }

    #[test]
    fn stats_count_sorbe_checks() {
        // EX5_SCHEMA qualifies for the SORBE fast path: no derivatives.
        let (mut engine, ds) = setup(EX5_SCHEMA, "@prefix e: <http://e/> . e:n e:a 1; e:b 1 .");
        check(&mut engine, &ds, "http://e/n", "S");
        let stats = engine.stats();
        assert_eq!(stats.derivative_steps, 0);
        assert!(stats.sorbe_checks > 0);
    }

    #[test]
    fn stats_count_derivative_steps() {
        // A shape with alternatives is not SORBE: the general engine runs.
        let (mut engine, ds) = setup(
            "PREFIX e: <http://e/>\n<S> { e:a [1] | e:b [1 2]* }",
            "@prefix e: <http://e/> . e:n e:b 1 .",
        );
        check(&mut engine, &ds, "http://e/n", "S");
        let stats = engine.stats();
        assert!(stats.derivative_steps > 0);
        assert!(stats.expr_pool_size > 2);
        assert!(stats.triple_classes >= 1);
        assert_eq!(stats.sorbe_checks, 0);
    }

    #[test]
    fn reset_clears_state() {
        let (mut engine, ds) = setup(EX5_SCHEMA, "@prefix e: <http://e/> . e:n e:a 1 .");
        check(&mut engine, &ds, "http://e/n", "S");
        engine.reset();
        assert_eq!(engine.stats().derivative_steps, 0);
        // Still works after reset ({⟨n,a,1⟩} ∈ S_n[[e]], paper Example 7).
        assert!(check(&mut engine, &ds, "http://e/n", "S"));
    }

    #[test]
    fn reset_clears_stale_memos_across_graph_change() {
        // Regression: deriv_memo / profile_stable persist across queries
        // for performance, so reset() MUST clear them. Validate against one
        // graph, extend the dataset so the same (shape, pred, object) key
        // now profiles differently, reset, and re-validate: a stale
        // derivative or stable-profile entry would replay the old verdict.
        let schema = shexc::parse(
            // An Or keeps the shape off the SORBE fast path so the
            // derivative memo is actually exercised.
            "PREFIX e: <http://e/>\n<S> { e:p @<T> | e:p @<T> }\n<T> { e:q [1]* }",
        )
        .unwrap();
        let mut ds = turtle::parse("@prefix e: <http://e/> . e:n e:p e:t . e:t e:q 1 .").unwrap();
        let mut engine = Engine::new(&schema, &mut ds.pool).unwrap();
        let n = ds.iri("http://e/n").unwrap();
        assert!(
            engine
                .check(&ds.graph, &ds.pool, n, &"S".into())
                .unwrap()
                .matched,
            "t conforms to <T>, so n conforms to <S>"
        );
        // Extend the graph: t gains e:q 2, which [1]* rejects — t no
        // longer conforms to <T>, so n must now fail <S>.
        turtle::parse_into("@prefix e: <http://e/> . e:t e:q 2 .", &mut ds).unwrap();
        engine.reset();
        assert!(
            !engine
                .check(&ds.graph, &ds.pool, n, &"S".into())
                .unwrap()
                .matched,
            "stale memo state survived reset()"
        );
    }

    #[test]
    fn reset_clears_dfa_tables_across_graph_change() {
        // Regression companion to the memo test above: with the lazy DFA
        // active (the default), reset() must also drop the per-shape
        // class maps and transition tables — a stale transition keyed by
        // a recycled profile id would replay the old graph's derivative.
        let schema =
            shexc::parse("PREFIX e: <http://e/>\n<S> { e:p @<T> | e:p @<T> }\n<T> { e:q [1]* }")
                .unwrap();
        let mut ds = turtle::parse("@prefix e: <http://e/> . e:n e:p e:t . e:t e:q 1 .").unwrap();
        let mut engine = Engine::new(&schema, &mut ds.pool).unwrap();
        let n = ds.iri("http://e/n").unwrap();
        assert!(
            engine
                .check(&ds.graph, &ds.pool, n, &"S".into())
                .unwrap()
                .matched
        );
        assert!(
            engine
                .dfa_summary()
                .iter()
                .any(|(_, s, c, f)| *s > 0 && *c > 0 && *f > 0),
            "the derivative run should have populated some shape's DFA: {:?}",
            engine.dfa_summary()
        );
        turtle::parse_into("@prefix e: <http://e/> . e:t e:q 2 .", &mut ds).unwrap();
        engine.reset();
        assert!(
            engine
                .dfa_summary()
                .iter()
                .all(|(_, s, c, f)| *s == 0 && *c == 0 && *f == 0),
            "reset() must clear DFA states, classes, and tables: {:?}",
            engine.dfa_summary()
        );
        assert!(
            !engine
                .check(&ds.graph, &ds.pool, n, &"S".into())
                .unwrap()
                .matched,
            "stale DFA transition survived reset()"
        );
    }

    fn setup_incremental(schema_src: &str, data_src: &str) -> (Engine, Dataset) {
        let schema = shexc::parse(schema_src).unwrap();
        let mut ds = turtle::parse(data_src).unwrap();
        let engine = Engine::compile(
            &schema,
            &mut ds.pool,
            EngineConfig {
                incremental: true,
                ..EngineConfig::default()
            },
        )
        .unwrap();
        (engine, ds)
    }

    /// A fresh engine's from-scratch typing over the dataset's current
    /// graph — the ground truth incremental revalidation must reproduce.
    fn scratch_typing(schema_src: &str, ds: &mut Dataset) -> Typing {
        let schema = shexc::parse(schema_src).unwrap();
        let mut engine = Engine::new(&schema, &mut ds.pool).unwrap();
        engine.type_all(&ds.graph, &ds.pool)
    }

    const MARY_FIX_DELTA: &str = "@prefix foaf: <http://xmlns.com/foaf/0.1/> .\n\
        @prefix : <http://example.org/> .\n\
        - :mary foaf:age 65 .\n\
        + :mary foaf:name \"Mary\" .\n";

    #[test]
    fn reset_clears_dependency_index() {
        // Companion to the stale-memo reset regressions above: the
        // incremental dependency index and the dirty-tracking stack are
        // caches keyed against the old graph too.
        let (mut engine, ds) = setup_incremental(PERSON_SCHEMA, PERSON_DATA);
        engine.type_all(&ds.graph, &ds.pool);
        assert!(
            !engine.deps.is_empty(),
            "incremental typing must record dependencies"
        );
        assert!(
            engine.dep_stack.is_empty(),
            "the dep stack must drain between queries"
        );
        engine.reset();
        assert!(
            engine.deps.is_empty(),
            "reset() must clear the dependency index"
        );
        assert!(engine.dep_stack.is_empty());
        assert_eq!(engine.stats().invalidated_pairs, 0);
    }

    #[test]
    fn revalidate_agrees_with_scratch_on_recursive_schema() {
        let (mut engine, mut ds) = setup_incremental(PERSON_SCHEMA, PERSON_DATA);
        let before = engine.type_all(&ds.graph, &ds.pool);
        let mary = ds.iri("http://example.org/mary").unwrap();
        let john = ds.iri("http://example.org/john").unwrap();
        assert_eq!(before.shapes_of(mary).count(), 0);
        assert_eq!(before.shapes_of(john).count(), 1);

        let d = shapex_rdf::delta::parse(MARY_FIX_DELTA, &mut ds.pool).unwrap();
        ds.apply_delta(&d);
        let incremental = engine.revalidate(&ds.graph, &ds.pool, &d).unwrap();
        assert_eq!(incremental, scratch_typing(PERSON_SCHEMA, &mut ds));
        assert_eq!(incremental.shapes_of(mary).count(), 1);

        let stats = engine.stats();
        assert!(stats.invalidated_pairs >= 1, "{stats:?}");
        assert!(stats.retyped_pairs >= 1, "{stats:?}");
        assert!(
            stats.reused_pairs >= 1,
            "john and bob should be served from the memo: {stats:?}"
        );
    }

    #[test]
    fn revalidate_propagates_through_shared_profile_hits() {
        // n1 and n2 both reference t through an identical (pred, other)
        // triple, so n2's profile is served from the stable cache without
        // re-running the reference check. The dependency edge to (T, t)
        // must be re-derived on that hit: a delta at t has to dirty BOTH
        // referrers, not just the one that computed the profile.
        let (mut engine, mut ds) = setup_incremental(
            // The Or keeps the shape off the SORBE fast path, forcing the
            // profile/derivative machinery.
            "PREFIX e: <http://e/>\n<S> { e:p @<T> | e:p @<T> }\n<T> { e:q [1]* }",
            "@prefix e: <http://e/> . e:n1 e:p e:t . e:n2 e:p e:t . e:t e:q 1 .",
        );
        let before = engine.type_all(&ds.graph, &ds.pool);
        let n1 = ds.iri("http://e/n1").unwrap();
        let n2 = ds.iri("http://e/n2").unwrap();
        assert_eq!(before.shapes_of(n1).count(), 1);
        assert_eq!(before.shapes_of(n2).count(), 1);

        // t gains e:q 2, which [1]* rejects: t stops conforming to <T>,
        // so n1 AND n2 must stop conforming to <S>.
        let d = shapex_rdf::delta::parse("@prefix e: <http://e/> .\n+ e:t e:q 2 .\n", &mut ds.pool)
            .unwrap();
        ds.apply_delta(&d);
        let incremental = engine.revalidate(&ds.graph, &ds.pool, &d).unwrap();
        assert_eq!(incremental.shapes_of(n1).count(), 0);
        assert_eq!(
            incremental.shapes_of(n2).count(),
            0,
            "the stable-profile hit's reference dependency was not re-derived"
        );
        assert_eq!(
            incremental,
            scratch_typing(
                "PREFIX e: <http://e/>\n<S> { e:p @<T> | e:p @<T> }\n<T> { e:q [1]* }",
                &mut ds
            )
        );
    }

    #[test]
    fn revalidate_par_agrees_with_scratch() {
        let (mut engine, mut ds) = setup_incremental(PERSON_SCHEMA, PERSON_DATA);
        engine.type_all_par(&ds.graph, &ds.pool, 4);
        let d = shapex_rdf::delta::parse(MARY_FIX_DELTA, &mut ds.pool).unwrap();
        ds.apply_delta(&d);
        let incremental = engine.revalidate_par(&ds.graph, &ds.pool, &d, 4).unwrap();
        assert_eq!(incremental, scratch_typing(PERSON_SCHEMA, &mut ds));
    }

    #[test]
    fn empty_delta_retypes_nothing() {
        let (mut engine, ds) = setup_incremental(PERSON_SCHEMA, PERSON_DATA);
        let before = engine.type_all(&ds.graph, &ds.pool);
        let node_checks = engine.stats().node_checks;
        let after = engine
            .revalidate(&ds.graph, &ds.pool, &GraphDelta::new())
            .unwrap();
        assert_eq!(before, after);
        let stats = engine.stats();
        assert_eq!(stats.invalidated_pairs, 0);
        assert_eq!(stats.retyped_pairs, 0);
        assert_eq!(stats.reused_pairs, 3, "john, bob, mary × <Person>");
        assert_eq!(
            stats.node_checks, node_checks,
            "an empty delta must not re-evaluate anything"
        );
    }

    #[test]
    fn revalidate_without_incremental_resets_and_recomputes() {
        let (mut engine, mut ds) = setup(PERSON_SCHEMA, PERSON_DATA);
        engine.type_all(&ds.graph, &ds.pool);
        let d = shapex_rdf::delta::parse(MARY_FIX_DELTA, &mut ds.pool).unwrap();
        ds.apply_delta(&d);
        let typing = engine.revalidate(&ds.graph, &ds.pool, &d).unwrap();
        assert_eq!(typing, scratch_typing(PERSON_SCHEMA, &mut ds));
        let stats = engine.stats();
        assert_eq!(
            (
                stats.invalidated_pairs,
                stats.retyped_pairs,
                stats.reused_pairs
            ),
            (0, 0, 0),
            "the fallback path is a plain reset + full re-typing"
        );
    }

    #[test]
    fn revalidate_handles_subject_additions_and_removals() {
        let (mut engine, mut ds) = setup_incremental(PERSON_SCHEMA, PERSON_DATA);
        engine.type_all(&ds.graph, &ds.pool);
        // Remove every triple of mary (she vanishes from the typing
        // universe) and introduce a brand-new conforming subject.
        let d = shapex_rdf::delta::parse(
            "@prefix foaf: <http://xmlns.com/foaf/0.1/> .\n\
             @prefix : <http://example.org/> .\n\
             - :mary foaf:age 50 .\n\
             - :mary foaf:age 65 .\n\
             + :new foaf:age 1 .\n\
             + :new foaf:name \"New\" .\n",
            &mut ds.pool,
        )
        .unwrap();
        ds.apply_delta(&d);
        let incremental = engine.revalidate(&ds.graph, &ds.pool, &d).unwrap();
        assert_eq!(incremental, scratch_typing(PERSON_SCHEMA, &mut ds));
        let new = ds.iri("http://example.org/new").unwrap();
        let mary = ds.iri("http://example.org/mary").unwrap();
        assert_eq!(incremental.shapes_of(new).count(), 1);
        assert_eq!(incremental.shapes_of(mary).count(), 0);
    }

    #[test]
    fn alphabet_classes_refine_overlapping_predicate_sets() {
        // Two arcs share the predicate e:p but differ on the object
        // constraint. Triples satisfying both arcs must land in one
        // class; triples satisfying only the unconstrained arc in
        // another — the class partition refines by satisfaction, not by
        // predicate.
        let schema = shexc::parse("PREFIX e: <http://e/>\n<S> { e:p . , e:p [1 2] }").unwrap();
        let mut ds =
            turtle::parse("@prefix e: <http://e/> . e:n e:p 1, 2 . e:n e:p \"x\" .").unwrap();
        let mut engine = Engine::compile(
            &schema,
            &mut ds.pool,
            EngineConfig {
                no_sorbe: true, // keep the counting fast path out of the way
                ..EngineConfig::default()
            },
        )
        .unwrap();
        let n = ds.iri("http://e/n").unwrap();
        engine.check(&ds.graph, &ds.pool, n, &"S".into()).unwrap();
        let (_, states, classes, filled) = engine.dfa_summary().remove(0);
        assert_eq!(
            classes, 2,
            "1 and 2 satisfy both arcs (one class); \"x\" only the wildcard arc (second class)"
        );
        assert!(
            states >= 2,
            "initial expression plus at least one derivative"
        );
        assert!(filled >= 1, "at least one transition computed");
    }

    #[test]
    fn dfa_and_memo_paths_agree_exactly() {
        // The dense table is a drop-in for the HashMap memo: verdicts AND
        // step/hit counters must be identical, because fills and hits
        // land at the same (expression, profile) points in both modes.
        let schema = shexc::parse(
            "PREFIX e: <http://e/>\n<S> { e:p @<T> | e:p @<T> }\n<T> { e:q [1]*, e:r . ? }",
        )
        .unwrap();
        let data = "@prefix e: <http://e/> . e:n e:p e:t . e:t e:q 1, 1 . e:t e:r e:n .";
        let run = |no_dfa: bool| {
            let mut ds = turtle::parse(data).unwrap();
            let mut engine = Engine::compile(
                &schema,
                &mut ds.pool,
                EngineConfig {
                    no_dfa,
                    no_sorbe: true,
                    ..EngineConfig::default()
                },
            )
            .unwrap();
            let n = ds.iri("http://e/n").unwrap();
            let matched = engine
                .check(&ds.graph, &ds.pool, n, &"S".into())
                .unwrap()
                .matched;
            (matched, engine.stats())
        };
        let (dfa_matched, dfa_stats) = run(false);
        let (memo_matched, memo_stats) = run(true);
        assert_eq!(dfa_matched, memo_matched);
        assert_eq!(
            dfa_stats.derivative_steps, memo_stats.derivative_steps,
            "table fills must coincide with memo misses"
        );
        assert_eq!(
            dfa_stats.deriv_memo_hits, memo_stats.deriv_memo_hits,
            "table hits must coincide with memo hits"
        );
    }

    #[test]
    fn type_all_par_matches_sequential_on_person_data() {
        let (mut seq, ds) = setup(PERSON_SCHEMA, PERSON_DATA);
        let sequential = seq.type_all(&ds.graph, &ds.pool);
        for jobs in [2, 4, 8] {
            let schema = shexc::parse(PERSON_SCHEMA).unwrap();
            let mut ds2 = turtle::parse(PERSON_DATA).unwrap();
            let mut par = Engine::new(&schema, &mut ds2.pool).unwrap();
            let parallel = par.type_all_par(&ds2.graph, &ds2.pool, jobs);
            assert_eq!(sequential, parallel, "jobs={jobs}");
        }
    }

    #[test]
    fn type_all_par_jobs_1_is_sequential() {
        let (mut a, ds) = setup(PERSON_SCHEMA, PERSON_DATA);
        let (mut b, _) = setup(PERSON_SCHEMA, PERSON_DATA);
        assert_eq!(
            a.type_all(&ds.graph, &ds.pool),
            b.type_all_par(&ds.graph, &ds.pool, 1)
        );
    }

    #[test]
    fn type_all_par_recursive_network() {
        // A cyclic knows-network: coinductive answers must merge across
        // waves without leaking conditional state between workers.
        let w = shapex_workloads::person_network(
            300,
            shapex_workloads::Topology::Random { degree: 2 },
            0.2,
            11,
        );
        let schema = shexc::parse(&w.schema).unwrap();
        let mut ds = w.dataset;
        let mut seq = Engine::new(&schema, &mut ds.pool).unwrap();
        let sequential = seq.type_all(&ds.graph, &ds.pool);
        let mut par = Engine::new(&schema, &mut ds.pool).unwrap();
        let parallel = par.type_all_par(&ds.graph, &ds.pool, 4);
        assert_eq!(sequential, parallel);
        // And the parallel engine's merged memo answers follow-up queries.
        let first = ds.iri(&w.focus[0]).unwrap();
        let person = par.shape_id(&ShapeLabel::new("Person")).unwrap();
        assert_eq!(
            par.check_id(&ds.graph, &ds.pool, first, person).matched(),
            sequential.has(first, person)
        );
    }

    #[test]
    fn type_all_par_shared_deadline_bounds_whole_run() {
        // A zero deadline through the shared governor: every pair either
        // exhausts or answers from trivial work; the run terminates fast
        // and reports exhaustion rather than hanging.
        let w = shapex_workloads::person_network(200, shapex_workloads::Topology::Chain, 0.0, 3);
        let schema = shexc::parse(&w.schema).unwrap();
        let mut ds = w.dataset;
        let mut engine = Engine::new(&schema, &mut ds.pool).unwrap();
        engine.set_budget(Budget::UNLIMITED.with_deadline(std::time::Duration::ZERO));
        let typing = engine.type_all_par(&ds.graph, &ds.pool, 4);
        assert!(typing.is_partial(), "zero deadline must exhaust something");
    }

    #[test]
    fn ablation_configs_agree_on_results() {
        for config in [
            EngineConfig::default(),
            EngineConfig {
                no_deriv_memo: true,
                ..EngineConfig::default()
            },
            EngineConfig {
                simplify: Simplify {
                    identities: true,
                    or_dedup: false,
                },
                ..EngineConfig::default()
            },
        ] {
            let schema = shexc::parse(PERSON_SCHEMA).unwrap();
            let mut ds = turtle::parse(PERSON_DATA).unwrap();
            let mut engine = Engine::compile(&schema, &mut ds.pool, config).unwrap();
            let person = "Person".into();
            let john = ds.iri("http://example.org/john").unwrap();
            let mary = ds.iri("http://example.org/mary").unwrap();
            assert!(
                engine
                    .check(&ds.graph, &ds.pool, john, &person)
                    .unwrap()
                    .matched
            );
            assert!(
                !engine
                    .check(&ds.graph, &ds.pool, mary, &person)
                    .unwrap()
                    .matched
            );
        }
    }

    #[test]
    fn example_10_balanced_expression() {
        // e = (a→{1,2} | b→{1,2})* requires equal counts is wrong — the
        // paper's point is only that derivatives may *grow*; the expression
        // accepts any mix of a/b arcs with values in {1,2}.
        let (mut engine, ds) = setup(
            "PREFIX e: <http://e/>\n<S> { (e:a [1 2] | e:b [1 2])* }",
            r#"
            @prefix e: <http://e/> .
            e:n e:a 1, 2; e:b 1, 2 .
            e:m e:a 1; e:c 9 .
            "#,
        );
        assert!(check(&mut engine, &ds, "http://e/n", "S"));
        assert!(!check(&mut engine, &ds, "http://e/m", "S"));
    }

    #[test]
    fn literal_object_can_match_empty_shape() {
        // A shape with only optional arcs is satisfied by literals (their
        // neighbourhood is empty).
        let (mut engine, ds) = setup(
            "PREFIX e: <http://e/>\n<S> { e:p @<T> }\n<T> { e:q .* }",
            "@prefix e: <http://e/> . e:n e:p 42 .",
        );
        assert!(check(&mut engine, &ds, "http://e/n", "S"));
    }

    #[test]
    fn wildcard_predicate_arc() {
        let (mut engine, ds) = setup(
            "PREFIX e: <http://e/>\n<S> { . LITERAL+ }",
            r#"
            @prefix e: <http://e/> .
            e:x e:p 1; e:q "s" .
            e:y e:p e:z .
            "#,
        );
        assert!(check(&mut engine, &ds, "http://e/x", "S"));
        assert!(!check(&mut engine, &ds, "http://e/y", "S"));
    }

    #[test]
    fn validate_map_outcomes() {
        let (mut engine, mut ds) = setup(PERSON_SCHEMA, PERSON_DATA);
        let map = shapex_shex::shapemap::parse(
            "<http://example.org/john>@<Person>,\n\
             <http://example.org/mary>@!<Person>,\n\
             <http://example.org/mary>@<Person>,\n\
             <http://example.org/unknown>@!<Person>",
        )
        .unwrap();
        let outcomes = engine.validate_map(&ds.graph, &mut ds.pool, &map).unwrap();
        assert_eq!(outcomes.len(), 4);
        assert!(outcomes[0].conforms && outcomes[0].as_expected);
        assert!(!outcomes[1].conforms && outcomes[1].as_expected);
        assert!(!outcomes[2].conforms && !outcomes[2].as_expected);
        assert!(outcomes[2].failure.is_some());
        // Unknown node: empty neighbourhood fails the Person shape.
        assert!(!outcomes[3].conforms && outcomes[3].as_expected);
    }

    #[test]
    fn validate_map_unknown_shape_errors() {
        let (mut engine, mut ds) = setup(PERSON_SCHEMA, PERSON_DATA);
        let map = shapex_shex::shapemap::parse("<http://e/x>@<Nope>").unwrap();
        assert!(matches!(
            engine.validate_map(&ds.graph, &mut ds.pool, &map),
            Err(EngineError::UnknownShape(_))
        ));
    }

    #[test]
    fn blank_node_focus() {
        let (mut engine, ds) = setup(
            "PREFIX e: <http://e/>\n<S> { e:p [1] }",
            "@prefix e: <http://e/> . _:b e:p 1 .",
        );
        let node = ds.node(&shapex_rdf::Term::blank("b")).unwrap();
        assert!(
            engine
                .check(&ds.graph, &ds.pool, node, &"S".into())
                .unwrap()
                .matched
        );
    }

    #[test]
    fn literal_focus_node_against_empty_shape() {
        let (mut engine, mut ds) = setup(
            "PREFIX e: <http://e/>\n<E> { }\n<R> { e:p . }",
            "@prefix e: <http://e/> . e:x e:p 1 .",
        );
        let lit = ds
            .pool
            .intern(shapex_rdf::Term::Literal(shapex_rdf::Literal::integer(1)));
        // A literal has no outgoing triples: matches ε, fails required arcs.
        assert!(
            engine
                .check(&ds.graph, &ds.pool, lit, &"E".into())
                .unwrap()
                .matched
        );
        assert!(
            !engine
                .check(&ds.graph, &ds.pool, lit, &"R".into())
                .unwrap()
                .matched
        );
    }

    #[test]
    fn deep_recursion_chain() {
        // A 20000-link knows-chain: far beyond the default test-thread
        // stack — exercises the large-stack validation worker.
        let w = shapex_workloads::person_network(20_000, shapex_workloads::Topology::Chain, 0.0, 7);
        let schema = shexc::parse(&w.schema).unwrap();
        let mut ds = w.dataset;
        let mut engine = Engine::new(&schema, &mut ds.pool).unwrap();
        let first = ds.iri(&w.focus[0]).unwrap();
        assert!(
            engine
                .check(&ds.graph, &ds.pool, first, &ShapeLabel::new("Person"))
                .unwrap()
                .matched
        );
    }

    #[test]
    fn multiple_shapes_per_node() {
        let (mut engine, ds) = setup(
            "PREFIX e: <http://e/>\n<HasP> { e:p ., e:q .* }\n<HasQ> { e:q ., e:p .* }",
            "@prefix e: <http://e/> . e:x e:p 1; e:q 2 .",
        );
        let typing = engine.type_all(&ds.graph, &ds.pool);
        let x = ds.iri("http://e/x").unwrap();
        assert_eq!(typing.shapes_of(x).count(), 2);
    }

    #[test]
    fn sorbe_and_general_disagreement_guard_on_duplicate_values() {
        // A SORBE shape whose value constraint rejects one of two triples:
        // both paths must fail identically.
        let schema = shexc::parse("PREFIX e: <http://e/>\n<S> { e:p [1 2]{2} }").unwrap();
        let mut ds = turtle::parse("@prefix e: <http://e/> . e:n e:p 1, 3 .").unwrap();
        for no_sorbe in [false, true] {
            let mut engine = Engine::compile(
                &schema,
                &mut ds.pool,
                EngineConfig {
                    no_sorbe,
                    ..EngineConfig::default()
                },
            )
            .unwrap();
            let n = ds.iri("http://e/n").unwrap();
            assert!(
                !engine
                    .check(&ds.graph, &ds.pool, n, &"S".into())
                    .unwrap()
                    .matched
            );
        }
    }

    #[test]
    fn trace_reproduces_example_11() {
        // a→[1] ‖ b→.* over {⟨n,a,1⟩, ⟨n,b,1⟩, ⟨n,b,2⟩}: three steps,
        // residual nullable, matches.
        let (mut engine, ds) = setup(EX5_SCHEMA, "@prefix e: <http://e/> . e:n e:a 1; e:b 1, 2 .");
        let node = ds.iri("http://e/n").unwrap();
        let trace = engine
            .trace(&ds.graph, &ds.pool, node, &"S".into())
            .unwrap();
        assert_eq!(trace.steps.len(), 3);
        assert!(trace.matched);
        assert!(trace.nullable);
        // The first consumed triple is the a-arc (insertion order), and the
        // state drops the consumed obligation.
        assert!(trace.steps[0].before.contains("a→"), "{:?}", trace.steps[0]);
        let rendered = trace.render(&ds.pool);
        assert!(rendered.contains("MATCHES"), "{rendered}");
    }

    #[test]
    fn trace_reproduces_example_12() {
        // {⟨n,a,1⟩, ⟨n,a,2⟩, ⟨n,b,1⟩}: the second a-triple derives ∅ and
        // the trace stops early.
        let (mut engine, ds) = setup(EX5_SCHEMA, "@prefix e: <http://e/> . e:n e:a 1, 2; e:b 1 .");
        let node = ds.iri("http://e/n").unwrap();
        let trace = engine
            .trace(&ds.graph, &ds.pool, node, &"S".into())
            .unwrap();
        assert!(!trace.matched);
        assert_eq!(trace.residual, "∅");
        assert!(trace.steps.len() < 3, "stops at the failing triple");
        assert_eq!(trace.steps.last().unwrap().after, "∅");
    }

    #[test]
    fn trace_on_deep_recursive_chain() {
        // The trace path must use the large-stack worker too.
        let w = shapex_workloads::person_network(5_000, shapex_workloads::Topology::Chain, 0.0, 3);
        let schema = shexc::parse(&w.schema).unwrap();
        let mut ds = w.dataset;
        let mut engine = Engine::new(&schema, &mut ds.pool).unwrap();
        let first = ds.iri(&w.focus[0]).unwrap();
        let trace = engine
            .trace(&ds.graph, &ds.pool, first, &ShapeLabel::new("Person"))
            .unwrap();
        assert!(trace.matched);
        assert_eq!(trace.steps.len(), 3); // age, name, knows
    }

    #[test]
    fn trace_agrees_with_check() {
        let (mut engine, ds) = setup(PERSON_SCHEMA, PERSON_DATA);
        for node in ["john", "bob", "mary"] {
            let id = ds.iri(&format!("http://example.org/{node}")).unwrap();
            let checked = engine
                .check(&ds.graph, &ds.pool, id, &"Person".into())
                .unwrap()
                .matched;
            let traced = engine
                .trace(&ds.graph, &ds.pool, id, &"Person".into())
                .unwrap()
                .matched;
            assert_eq!(checked, traced, "{node}");
        }
    }

    /// Fig. 4, rule *Arctype*: a value-set arc matches a triple whose
    /// object is in the set, producing no typing obligations.
    #[test]
    fn rule_arctype() {
        let (mut engine, ds) = setup(
            "PREFIX e: <http://e/>\n<S> { e:p [1 2] }",
            "@prefix e: <http://e/> . e:ok e:p 2 . e:bad e:p 3 .",
        );
        assert!(check(&mut engine, &ds, "http://e/ok", "S"));
        assert!(!check(&mut engine, &ds, "http://e/bad", "S"));
    }

    /// Fig. 4, rule *Arcref*: `vp→l` matches ⟨s,p,o⟩ when o has shape l —
    /// the typing obligation `Γ ⊢ l ≃s o`.
    #[test]
    fn rule_arcref() {
        let (mut engine, ds) = setup(
            "PREFIX e: <http://e/>\n<S> { e:p @<T> }\n<T> { e:q [1] }",
            "@prefix e: <http://e/> . e:ok e:p e:t . e:t e:q 1 .\n\
             e:bad e:p e:u . e:u e:q 2 .",
        );
        assert!(check(&mut engine, &ds, "http://e/ok", "S"));
        assert!(!check(&mut engine, &ds, "http://e/bad", "S"));
    }

    /// Fig. 3, rule *MatchShape*: `Γ{n→l} ⊢ δ(l) ≃ Σg_n` — the assumption
    /// added for n itself is what lets a self-referential node close.
    #[test]
    fn rule_matchshape_assumption() {
        let (mut engine, ds) = setup(
            "PREFIX e: <http://e/>\n<S> { e:self @<S> }",
            "@prefix e: <http://e/> . e:n e:self e:n .",
        );
        // n's only triple points at n itself; only Γ{n→S} makes it hold.
        assert!(check(&mut engine, &ds, "http://e/n", "S"));
    }
}

//! The schema calculus: exact emptiness, pairwise shape containment, and
//! schema-to-schema diffing over the compiled expression pool.
//!
//! The validation engine answers "does *this node* conform to *this
//! shape*?"; the calculus answers questions about the shapes themselves:
//!
//! * [`emptiness`] — which shapes have a provably empty language (no graph
//!   conforms), by a greatest fixpoint over the pool with the tri-state
//!   node-constraint checker ([`shapex_shex::sat`]) at the leaves;
//! * [`containment`] — is every neighbourhood accepted by shape `A` also
//!   accepted by shape `B`, decided by a product construction over the
//!   two shapes' derivative automata (Staworko & Wieczorek show this
//!   product decides containment of shape expression schemas; bag
//!   languages of shape expressions are permutation-closed, so the
//!   word-level product is enough);
//! * [`schema_diff`] — given an old and an edited schema, which shapes'
//!   *languages* actually changed (containment both ways), and which
//!   shapes are transitively affected through references — the input to
//!   schema-delta revalidation;
//! * [`prune_empty_branches`] — a post-compile rewrite dropping `|`
//!   branches whose language is proven empty (`e | ∅ ≡ e`).
//!
//! ## The letter alphabet
//!
//! A derivative step consumes one triple, and all the engine ever reads
//! from the triple is its *satisfaction profile* — the set of arcs it can
//! satisfy. The product therefore runs over joint letters: for every
//! triple head `(predicate, direction)` mentioned by either shape (plus
//! one *fresh* predicate per direction standing for everything
//! unmentioned), and every subset `S` of the arcs matching that head, a
//! letter "some triple fires exactly the arcs in `S`". A letter is kept
//! only if it is realizable:
//!
//! * value-object arcs contribute their constraint positively when fired
//!   and negated when matching-but-unfired; the conjunction goes to
//!   [`shapex_shex::sat::conj_sat`]. `Unsat` letters are discarded
//!   (proven unrealizable), `Sat` letters are **exact** (a concrete
//!   witness term exists), `Unknown` letters are kept but **inexact**;
//! * reference-object arcs are treated *symbolically*: `@<X>` is an
//!   uninterpreted predicate on the object keyed by the label name, so
//!   two arcs referencing the same label must fire together, while arcs
//!   referencing different labels may fire independently. Containment is
//!   therefore decided modulo reference names — exactly the congruence
//!   [`schema_diff`] needs, where a changed referenced shape marks its
//!   referrers affected through the closure anyway.
//!
//! ## Verdict honesty
//!
//! [`Verdict::NotContained`] is only reported when a violating product
//! state is reachable through exact letters alone; a violation that needs
//! an inexact letter downgrades to [`Verdict::Undetermined`], as does an
//! arc-subset overflow (more than [`MAX_LETTER_ARCS`] arcs sharing one
//! head). Every transition and every candidate subset charges the
//! [`Budget`] meter, so pathological products return
//! [`Verdict::Exhausted`] instead of hanging.

use std::collections::hash_map::Entry;
use std::collections::{BTreeSet, HashMap, VecDeque};

use shapex_rdf::pool::{TermId, TermPool};
use shapex_shex::constraint::NodeConstraint;
use shapex_shex::sat::{conj_sat, constraint_sat, Sat3};
use shapex_shex::schema::{Schema, SchemaError};
use shapex_shex::ShapeLabel;

use crate::arena::{ArcId, ExprId, ExprPool, Node, Simplify, EMPTY, EPSILON, UNBOUNDED};
use crate::budget::{Budget, BudgetMeter, Exhaustion};
use crate::compile::{CompiledObject, CompiledSchema, CompiledShape, ShapeId};
use crate::engine::Closure;

/// Cap on arcs sharing one `(predicate, direction)` head across both
/// shapes of a containment query: `2^n` subsets are enumerated per head.
/// Overflowing heads are skipped and the query can no longer prove
/// containment (only refute it), so the verdict degrades to
/// [`Verdict::Undetermined`] rather than silently dropping letters.
pub const MAX_LETTER_ARCS: usize = 12;

/// Result of a containment query `A ⊆ B`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Every neighbourhood accepted by `A` is accepted by `B`, proven by
    /// exhausting the reachable product states.
    Contained,
    /// A distinguishing neighbourhood exists, reachable through exact
    /// (witness-backed) letters only.
    NotContained,
    /// Neither proven: a potential violation sits behind a letter whose
    /// realizability is unknown, or a head overflowed the subset cap.
    Undetermined,
    /// A resource budget tripped before the product was exhausted.
    Exhausted(Exhaustion),
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Verdict::Contained => write!(f, "contained"),
            Verdict::NotContained => write!(f, "not-contained"),
            Verdict::Undetermined => write!(f, "undetermined"),
            Verdict::Exhausted(e) => write!(f, "exhausted: {e}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Emptiness
// ---------------------------------------------------------------------------

/// Per-shape language emptiness for a compiled schema, indexed by
/// [`ShapeId`]: `Sat3::Unsat` means the shape's language is provably
/// empty, `Sat3::Sat` that a conforming neighbourhood provably exists,
/// `Sat3::Unknown` that the node-constraint checker could not decide.
///
/// Computed as a *greatest* fixpoint — every shape starts satisfiable and
/// verdicts only descend — matching the engine's coinductive typing:
/// `<A> { e:p @<A> }` is satisfiable via a cyclic graph, so recursion
/// through references must not default to empty.
pub fn emptiness(cs: &CompiledSchema) -> Vec<Sat3> {
    let mut state = vec![Sat3::Sat; cs.shapes.len()];
    let mut constraint_memo: HashMap<ArcId, Sat3> = HashMap::new();
    loop {
        let mut memo = HashMap::new();
        let next: Vec<Sat3> = cs
            .shapes
            .iter()
            .map(|s| expr_sat3(cs, s.expr, &state, &mut constraint_memo, &mut memo))
            .collect();
        if next == state {
            return state;
        }
        state = next;
    }
}

/// Emptiness verdict for one pool expression under a fixed per-shape
/// assumption vector. `memo` is per-iteration (it bakes in `state`);
/// `constraint_memo` persists (constraint verdicts are state-free).
fn expr_sat3(
    cs: &CompiledSchema,
    e: ExprId,
    state: &[Sat3],
    constraint_memo: &mut HashMap<ArcId, Sat3>,
    memo: &mut HashMap<ExprId, Sat3>,
) -> Sat3 {
    if let Some(&v) = memo.get(&e) {
        return v;
    }
    let v = match cs.pool.node(e) {
        Node::Empty => Sat3::Unsat,
        // ε, e*, and e{0,n} all accept the empty neighbourhood.
        Node::Epsilon | Node::Star(_) => Sat3::Sat,
        Node::Arc(a) => match &cs.arc(a).object {
            CompiledObject::Value(c) => *constraint_memo
                .entry(a)
                .or_insert_with(|| constraint_sat(c)),
            CompiledObject::Ref(s) => state[s.index()],
        },
        Node::Repeat(i, m, n) => {
            if n < m {
                // Only representable with simplification disabled.
                Sat3::Unsat
            } else if m == 0 {
                Sat3::Sat
            } else {
                expr_sat3(cs, i, state, constraint_memo, memo)
            }
        }
        Node::And(a, b) => expr_sat3(cs, a, state, constraint_memo, memo).min(expr_sat3(
            cs,
            b,
            state,
            constraint_memo,
            memo,
        )),
        Node::Or(a, b) => expr_sat3(cs, a, state, constraint_memo, memo).max(expr_sat3(
            cs,
            b,
            state,
            constraint_memo,
            memo,
        )),
    };
    memo.insert(e, v);
    v
}

// ---------------------------------------------------------------------------
// Pruning
// ---------------------------------------------------------------------------

/// Rewrites every shape expression, dropping `|` branches whose language
/// is *proven* empty (`e | ∅ ≡ e`); returns the number of branches
/// dropped. Languages are preserved exactly — `Unknown` branches are kept
/// — so typing results are unaffected; only the state space the engine
/// explores shrinks. Alphabet-class masks are recomputed afterwards since
/// pruning can make arcs unreachable from the final expression.
pub fn prune_empty_branches(cs: &mut CompiledSchema) -> usize {
    let state = emptiness(cs);
    // Verdicts for every original pool node reachable from a shape root.
    let mut constraint_memo = HashMap::new();
    let mut verdicts = HashMap::new();
    for i in 0..cs.shapes.len() {
        expr_sat3(
            cs,
            cs.shapes[i].expr,
            &state,
            &mut constraint_memo,
            &mut verdicts,
        );
    }
    let mut dropped = 0;
    let mut memo = HashMap::new();
    for i in 0..cs.shapes.len() {
        let root = cs.shapes[i].expr;
        let rewritten = rewrite_pruned(&mut cs.pool, root, &verdicts, &mut memo, &mut dropped);
        cs.shapes[i].expr = rewritten;
    }
    if dropped > 0 {
        for i in 0..cs.shapes.len() {
            cs.shapes[i].class_mask = crate::compile::reachable_arc_bits(
                &cs.pool,
                &cs.arcs,
                cs.shapes[i].expr,
                cs.shapes[i].arcs.len(),
            );
        }
    }
    dropped
}

fn rewrite_pruned(
    pool: &mut ExprPool,
    e: ExprId,
    verdicts: &HashMap<ExprId, Sat3>,
    memo: &mut HashMap<ExprId, ExprId>,
    dropped: &mut usize,
) -> ExprId {
    if let Some(&r) = memo.get(&e) {
        return r;
    }
    let r = match pool.node(e) {
        Node::Empty | Node::Epsilon | Node::Arc(_) => e,
        Node::Star(i) => {
            let ri = rewrite_pruned(pool, i, verdicts, memo, dropped);
            pool.star(ri)
        }
        Node::Repeat(i, m, n) => {
            if n < m {
                // Un-normalised empty-language repeat (simplification
                // off): not representable through the smart constructor;
                // leave untouched.
                e
            } else {
                let ri = rewrite_pruned(pool, i, verdicts, memo, dropped);
                pool.repeat(ri, m, n)
            }
        }
        Node::And(a, b) => {
            let ra = rewrite_pruned(pool, a, verdicts, memo, dropped);
            let rb = rewrite_pruned(pool, b, verdicts, memo, dropped);
            pool.and(ra, rb)
        }
        Node::Or(a, b) => {
            let dead_a = verdicts.get(&a) == Some(&Sat3::Unsat);
            let dead_b = verdicts.get(&b) == Some(&Sat3::Unsat);
            match (dead_a, dead_b) {
                (true, true) => {
                    *dropped += 2;
                    EMPTY
                }
                (true, false) => {
                    *dropped += 1;
                    rewrite_pruned(pool, b, verdicts, memo, dropped)
                }
                (false, true) => {
                    *dropped += 1;
                    rewrite_pruned(pool, a, verdicts, memo, dropped)
                }
                (false, false) => {
                    let ra = rewrite_pruned(pool, a, verdicts, memo, dropped);
                    let rb = rewrite_pruned(pool, b, verdicts, memo, dropped);
                    pool.or(ra, rb)
                }
            }
        }
    };
    memo.insert(e, r);
    r
}

// ---------------------------------------------------------------------------
// Containment
// ---------------------------------------------------------------------------

/// One joint letter of the product alphabet: a class of triples firing
/// exactly `fire_a` in shape `A` and `fire_b` in shape `B`. A side that
/// is irrelevant for the letter's head (open semantics filters the
/// predicate out, or an inverse head on a shape with no inverse arcs)
/// keeps its state unchanged instead of deriving.
struct Letter {
    fire_a: Vec<ArcId>,
    fire_b: Vec<ArcId>,
    relevant_a: bool,
    relevant_b: bool,
    /// Backed by a concrete witness term (`conj_sat == Sat`)?
    exact: bool,
}

/// One arc matching the current head, tagged with its side and the facts
/// realizability needs.
struct MatchingArc<'a> {
    is_a: bool,
    id: ArcId,
    /// `Some(constraint)` for value objects.
    value: Option<&'a NodeConstraint>,
    /// `Some(label name)` for reference objects — the uninterpreted
    /// symbol identity.
    symbol: Option<&'a str>,
}

/// Decides `A ⊆ B` over the shapes' neighbourhood languages.
///
/// Both schemas must have been compiled against the **same** [`TermPool`]
/// (so predicate [`TermId`]s are comparable); `a` and `b` may be the same
/// schema. Reference arcs are compared symbolically by label name — see
/// the module docs for what that means for verdict honesty. The `closure`
/// mode must match how the shapes will be validated: open semantics
/// ignores triples whose predicate a shape does not mention, which makes
/// strictly more pairs contained.
pub fn containment(
    a: &CompiledSchema,
    a_id: ShapeId,
    b: &CompiledSchema,
    b_id: ShapeId,
    closure: Closure,
    budget: &Budget,
) -> Verdict {
    let mut meter = budget.meter();
    // Derivatives intern new expressions; work on clones so the compiled
    // schemas stay read-only (and `a` may alias `b`).
    let mut pool_a = a.pool.clone();
    let mut pool_b = b.pool.clone();
    meter.set_arena_baseline(pool_a.len() + pool_b.len());
    let (letters, overflow) = match build_letters(a, a_id, b, b_id, closure, &mut meter) {
        Ok(l) => l,
        Err(e) => return Verdict::Exhausted(e),
    };

    // States are kept in ACI-canonical form (see [`canon`]) so the
    // product closes: derivatives reassociate `And`/`Or` chains freely,
    // and without the quotient the visited set never saturates.
    let mut canon_a: HashMap<ExprId, ExprId> = HashMap::new();
    let mut canon_b: HashMap<ExprId, ExprId> = HashMap::new();
    let start = (
        canon(&mut pool_a, a.shape(a_id).expr, &mut canon_a),
        canon(&mut pool_b, b.shape(b_id).expr, &mut canon_b),
    );
    // Visited product states; the payload records whether the state is
    // known reachable through exact letters alone (upgrades re-enqueue).
    let mut visited: HashMap<(ExprId, ExprId), bool> = HashMap::new();
    visited.insert(start, true);
    let mut work = VecDeque::new();
    work.push_back((start.0, start.1, true));
    let mut inexact_violation = false;
    // Structural derivative memos, one per (letter, side): sub-expressions
    // are shared across states, so these hit often.
    let mut memo_a: Vec<HashMap<ExprId, ExprId>> =
        (0..letters.len()).map(|_| HashMap::new()).collect();
    let mut memo_b: Vec<HashMap<ExprId, ExprId>> =
        (0..letters.len()).map(|_| HashMap::new()).collect();

    while let Some((sa, sb, exact)) = work.pop_front() {
        if pool_a.nullable(sa) && !pool_b.nullable(sb) {
            if exact {
                return Verdict::NotContained;
            }
            inexact_violation = true;
        }
        if sa == EMPTY {
            // A's residual language is empty: no extension is accepted by
            // A, so no violation is reachable from here.
            continue;
        }
        for (i, letter) in letters.iter().enumerate() {
            if let Err(e) = meter.step() {
                return Verdict::Exhausted(e);
            }
            let na = if letter.relevant_a {
                let d = deriv_by_letter(&mut pool_a, &letter.fire_a, sa, &mut memo_a[i]);
                canon(&mut pool_a, d, &mut canon_a)
            } else {
                sa
            };
            let nb = if letter.relevant_b {
                let d = deriv_by_letter(&mut pool_b, &letter.fire_b, sb, &mut memo_b[i]);
                canon(&mut pool_b, d, &mut canon_b)
            } else {
                sb
            };
            if let Err(e) = meter.check_arena(pool_a.len() + pool_b.len()) {
                return Verdict::Exhausted(e);
            }
            let next_exact = exact && letter.exact;
            match visited.entry((na, nb)) {
                Entry::Vacant(v) => {
                    v.insert(next_exact);
                    work.push_back((na, nb, next_exact));
                }
                Entry::Occupied(mut o) => {
                    if next_exact && !*o.get() {
                        o.insert(true);
                        work.push_back((na, nb, true));
                    }
                }
            }
        }
    }
    if inexact_violation || overflow {
        Verdict::Undetermined
    } else {
        Verdict::Contained
    }
}

/// ACI-canonical form of `e`: `And`/`Or` chains are flattened, operands
/// sorted by id (and deduplicated for `Or` — union is idempotent;
/// interleave is not), then re-folded deterministically. Brzozowski's
/// finiteness theorem only holds modulo associativity, commutativity, and
/// idempotence; the arena's binary smart constructors keep too little of
/// that, so the containment product keys its states by this canonical
/// form — without it, reassociated `Or`/`And` shapes proliferate and the
/// BFS never closes. Every rewrite here is a language identity, so the
/// canonical state accepts exactly what the original did.
/// Iterative post-order (explicit work stack, not recursion): derivative
/// chains grow linearly with product depth, deep enough to overflow the
/// call stack on adversarial shapes.
fn canon(pool: &mut ExprPool, root: ExprId, memo: &mut HashMap<ExprId, ExprId>) -> ExprId {
    let mut stack = vec![(root, false)];
    while let Some((e, ready)) = stack.pop() {
        if memo.contains_key(&e) {
            continue;
        }
        if !ready {
            stack.push((e, true));
            match pool.node(e) {
                Node::Empty | Node::Epsilon | Node::Arc(_) => {}
                Node::Star(x) | Node::Repeat(x, _, _) => stack.push((x, false)),
                Node::And(a, b) | Node::Or(a, b) => {
                    stack.push((a, false));
                    stack.push((b, false));
                }
            }
            continue;
        }
        let c = match pool.node(e) {
            Node::Empty | Node::Epsilon | Node::Arc(_) => e,
            Node::Star(x) => {
                let cx = memo[&x];
                pool.star(cx)
            }
            Node::Repeat(x, m, n) => {
                let cx = memo[&x];
                pool.repeat(cx, m, n)
            }
            Node::And(a, b) => {
                let (ca, cb) = (memo[&a], memo[&b]);
                let mut leaves = Vec::new();
                flatten(pool, ca, true, &mut leaves);
                flatten(pool, cb, true, &mut leaves);
                leaves.sort_unstable();
                fold(pool, &leaves, true)
            }
            Node::Or(a, b) => {
                let (ca, cb) = (memo[&a], memo[&b]);
                let mut leaves = Vec::new();
                flatten(pool, ca, false, &mut leaves);
                flatten(pool, cb, false, &mut leaves);
                leaves.sort_unstable();
                leaves.dedup();
                fold(pool, &leaves, false)
            }
        };
        memo.insert(e, c);
    }
    memo[&root]
}

/// Collects the operand leaves of an `And` (or `Or`) chain, left to right.
fn flatten(pool: &ExprPool, e: ExprId, and: bool, out: &mut Vec<ExprId>) {
    let mut stack = vec![e];
    while let Some(e) = stack.pop() {
        match pool.node(e) {
            Node::And(a, b) if and => {
                stack.push(b);
                stack.push(a);
            }
            Node::Or(a, b) if !and => {
                stack.push(b);
                stack.push(a);
            }
            _ => out.push(e),
        }
    }
}

/// Re-folds sorted leaves through the smart constructors.
fn fold(pool: &mut ExprPool, leaves: &[ExprId], and: bool) -> ExprId {
    let mut it = leaves.iter().copied();
    let Some(first) = it.next() else {
        return if and { EPSILON } else { EMPTY };
    };
    it.fold(first, |acc, x| {
        if and {
            pool.and(acc, x)
        } else {
            pool.or(acc, x)
        }
    })
}

/// `∂t(e)` where the triple `t` fires exactly the arcs in `fired` — the
/// engine's §6 rules with the satisfaction profile replaced by an
/// explicit arc set.
fn deriv_by_letter(
    pool: &mut ExprPool,
    fired: &[ArcId],
    root: ExprId,
    memo: &mut HashMap<ExprId, ExprId>,
) -> ExprId {
    // Iterative post-order, like `canon`: derivative chains get too deep
    // for the call stack.
    let mut stack = vec![(root, false)];
    while let Some((e, ready)) = stack.pop() {
        if memo.contains_key(&e) {
            continue;
        }
        if !ready {
            stack.push((e, true));
            match pool.node(e) {
                Node::Empty | Node::Epsilon | Node::Arc(_) => {}
                Node::Star(x) => stack.push((x, false)),
                Node::Repeat(x, _, n) => {
                    if n != 0 {
                        stack.push((x, false));
                    }
                }
                Node::And(a, b) | Node::Or(a, b) => {
                    stack.push((a, false));
                    stack.push((b, false));
                }
            }
            continue;
        }
        let d = match pool.node(e) {
            Node::Empty | Node::Epsilon => EMPTY,
            Node::Arc(a) => {
                if fired.contains(&a) {
                    EPSILON
                } else {
                    EMPTY
                }
            }
            Node::Star(inner) => {
                let di = memo[&inner];
                pool.and(di, e)
            }
            Node::Repeat(inner, m, n) => {
                if n == 0 {
                    EMPTY // only reachable with simplification disabled
                } else {
                    let di = memo[&inner];
                    let n1 = if n == UNBOUNDED { UNBOUNDED } else { n - 1 };
                    let rest = pool.repeat(inner, m.saturating_sub(1), n1);
                    pool.and(di, rest)
                }
            }
            Node::And(a, b) => {
                let (da, db) = (memo[&a], memo[&b]);
                let left = pool.and(da, b);
                let right = pool.and(db, a);
                pool.or(left, right)
            }
            Node::Or(a, b) => {
                let (da, db) = (memo[&a], memo[&b]);
                pool.or(da, db)
            }
        };
        memo.insert(e, d);
    }
    memo[&root]
}

/// Enumerates the joint letter alphabet for a containment query. Returns
/// the deduplicated letters and whether any head overflowed
/// [`MAX_LETTER_ARCS`] (degrading `Contained` to `Undetermined`).
fn build_letters(
    a: &CompiledSchema,
    a_id: ShapeId,
    b: &CompiledSchema,
    b_id: ShapeId,
    closure: Closure,
    meter: &mut BudgetMeter,
) -> Result<(Vec<Letter>, bool), Exhaustion> {
    let sa = a.shape(a_id);
    let sb = b.shape(b_id);
    let mut overflow = false;
    // Dedup by transition effect: two heads producing the same fire sets
    // and relevance drive the product identically; keep the more exact.
    let mut dedup: HashMap<(Vec<ArcId>, Vec<ArcId>, bool, bool), bool> = HashMap::new();

    for inverse in [false, true] {
        // Candidate heads: every explicit predicate either side mentions
        // in this direction, plus one fresh predicate (`None`) standing
        // for all unmentioned ones (infinitely many IRIs exist, so a
        // fresh head is always realizable).
        let mut heads: BTreeSet<Option<TermId>> = BTreeSet::new();
        heads.insert(None);
        for (cs, shape) in [(a, sa), (b, sb)] {
            for &arc_id in &shape.arcs {
                let arc = cs.arc(arc_id);
                if arc.inverse != inverse {
                    continue;
                }
                if let crate::compile::CompiledPredicates::Ids(ids) = &arc.predicates {
                    heads.extend(ids.iter().map(|&p| Some(p)));
                }
            }
        }
        for head in heads {
            let rel_a = head_relevant(sa, closure, head, inverse);
            let rel_b = head_relevant(sb, closure, head, inverse);
            if !rel_a && !rel_b {
                continue;
            }
            let mut matching: Vec<MatchingArc<'_>> = Vec::new();
            if rel_a {
                collect_matching(a, sa, head, inverse, true, &mut matching);
            }
            if rel_b {
                collect_matching(b, sb, head, inverse, false, &mut matching);
            }
            if matching.len() > MAX_LETTER_ARCS {
                overflow = true;
                continue;
            }
            for mask in 0u32..(1u32 << matching.len()) {
                meter.step()?;
                let Some(exact) = realizable(&matching, mask) else {
                    continue;
                };
                let mut fire_a = Vec::new();
                let mut fire_b = Vec::new();
                for (i, ma) in matching.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        if ma.is_a {
                            fire_a.push(ma.id);
                        } else {
                            fire_b.push(ma.id);
                        }
                    }
                }
                let ex = dedup.entry((fire_a, fire_b, rel_a, rel_b)).or_insert(false);
                *ex = *ex || exact;
            }
        }
    }
    let letters = dedup
        .into_iter()
        .map(|((fire_a, fire_b, relevant_a, relevant_b), exact)| Letter {
            fire_a,
            fire_b,
            relevant_a,
            relevant_b,
            exact,
        })
        .collect();
    Ok((letters, overflow))
}

/// Can some triple fire exactly the arcs selected by `mask`? Returns
/// `None` when provably unrealizable, `Some(exact)` otherwise — `exact`
/// when a concrete witness term exists, inexact when the constraint
/// checker returned `Unknown`.
fn realizable(matching: &[MatchingArc<'_>], mask: u32) -> Option<bool> {
    // Reference arcs naming the same label are the same uninterpreted
    // symbol: they must fire together.
    let mut symbols: HashMap<&str, bool> = HashMap::new();
    for (i, ma) in matching.iter().enumerate() {
        let fired = mask & (1 << i) != 0;
        if let Some(sym) = ma.symbol {
            match symbols.entry(sym) {
                Entry::Vacant(v) => {
                    v.insert(fired);
                }
                Entry::Occupied(o) => {
                    if *o.get() != fired {
                        return None;
                    }
                }
            }
        }
    }
    // Value constraints: fired positively, matching-but-unfired negated.
    let mut negs: Vec<NodeConstraint> = Vec::new();
    let mut pos: Vec<&NodeConstraint> = Vec::new();
    for (i, ma) in matching.iter().enumerate() {
        let Some(c) = ma.value else { continue };
        if mask & (1 << i) != 0 {
            pos.push(c);
        } else {
            negs.push(NodeConstraint::Not(Box::new(c.clone())));
        }
    }
    let conj: Vec<&NodeConstraint> = pos.into_iter().chain(negs.iter()).collect();
    match conj_sat(&conj) {
        Sat3::Unsat => None,
        Sat3::Sat => Some(true),
        Sat3::Unknown => Some(false),
    }
}

/// Does a triple with this head participate in the shape's neighbourhood
/// at all? Mirrors the engine's `gather_triples` relevance rules: under
/// closed semantics every forward triple counts; under open semantics
/// only mentioned predicates do; inverse triples are always scoped to the
/// mentioned inverse predicates.
fn head_relevant(
    shape: &CompiledShape,
    closure: Closure,
    head: Option<TermId>,
    inverse: bool,
) -> bool {
    if inverse {
        if !shape.has_inverse {
            return false;
        }
        match (&shape.inverse_predicates, head) {
            (None, _) => true,
            (Some(preds), Some(p)) => preds.binary_search(&p).is_ok(),
            (Some(_), None) => false,
        }
    } else {
        match closure {
            Closure::Closed => true,
            Closure::Open => match (&shape.forward_predicates, head) {
                (None, _) => true,
                (Some(preds), Some(p)) => preds.binary_search(&p).is_ok(),
                (Some(_), None) => false,
            },
        }
    }
}

fn collect_matching<'a>(
    cs: &'a CompiledSchema,
    shape: &CompiledShape,
    head: Option<TermId>,
    inverse: bool,
    is_a: bool,
    out: &mut Vec<MatchingArc<'a>>,
) {
    for &arc_id in &shape.arcs {
        let arc = cs.arc(arc_id);
        if arc.inverse != inverse {
            continue;
        }
        let matches = match head {
            Some(p) => arc.predicates.contains(p),
            // Fresh predicate: only wildcard arcs can cover it.
            None => matches!(arc.predicates, crate::compile::CompiledPredicates::Any),
        };
        if !matches {
            continue;
        }
        let (value, symbol) = match &arc.object {
            CompiledObject::Value(c) => (Some(c), None),
            CompiledObject::Ref(s) => (None, Some(cs.shape(*s).label.as_str())),
        };
        out.push(MatchingArc {
            is_a,
            id: arc_id,
            value,
            symbol,
        });
    }
}

// ---------------------------------------------------------------------------
// Schema diff
// ---------------------------------------------------------------------------

/// The language-level difference between an old and an edited schema —
/// the input to schema-delta revalidation. All label vectors follow the
/// new schema's declaration order (`removed` follows the old schema's).
#[derive(Debug, Clone, Default)]
pub struct SchemaDiff {
    /// Labels in both schemas whose languages provably coincide.
    pub unchanged: Vec<ShapeLabel>,
    /// Labels in both schemas whose languages differ — or could not be
    /// proven equal (undetermined/exhausted verdicts count as changed;
    /// the diff is conservative by construction).
    pub changed: Vec<ShapeLabel>,
    /// Labels only the new schema defines.
    pub added: Vec<ShapeLabel>,
    /// Labels only the old schema defines.
    pub removed: Vec<ShapeLabel>,
    /// New-schema labels whose verdicts may differ from the old run:
    /// `changed ∪ added`, closed transitively over reverse references
    /// (a shape referencing an affected shape is affected).
    pub affected: Vec<ShapeLabel>,
    /// New-schema labels *not* affected: their old verdicts — including
    /// every `(node, shape)` memo entry — remain valid and can seed the
    /// new engine.
    pub reusable: Vec<ShapeLabel>,
    /// The first budget trip, if any containment query exhausted (its
    /// pair is conservatively reported as changed).
    pub exhausted: Option<Exhaustion>,
}

/// Compares two schemas shape-by-shape at the *language* level: a shape
/// counts as unchanged only when containment holds in **both** directions
/// (old ⊆ new and new ⊆ old). Textually rewritten but language-equal
/// shapes (reordered groups, `e | ∅`, `e{1,1}`) therefore stay
/// unchanged, while a widened cardinality is caught even when the text
/// diff is one character. Both schemas are compiled into one fresh
/// [`TermPool`] so predicates align; `budget` governs each of the
/// `2 × |common|` containment products individually.
pub fn schema_diff(
    old: &Schema,
    new: &Schema,
    simplify: Simplify,
    closure: Closure,
    budget: &Budget,
) -> Result<SchemaDiff, SchemaError> {
    let mut terms = TermPool::new();
    let old_cs = CompiledSchema::compile(old, &mut terms, simplify)?;
    let new_cs = CompiledSchema::compile(new, &mut terms, simplify)?;

    let mut diff = SchemaDiff::default();
    let mut affected: BTreeSet<&ShapeLabel> = BTreeSet::new();
    for label in new.labels() {
        let new_id = new_cs.shape_id(label).expect("indexed");
        let Some(old_id) = old_cs.shape_id(label) else {
            diff.added.push(label.clone());
            affected.insert(label);
            continue;
        };
        let fwd = containment(&old_cs, old_id, &new_cs, new_id, closure, budget);
        let bwd = containment(&new_cs, new_id, &old_cs, old_id, closure, budget);
        for v in [fwd, bwd] {
            if let Verdict::Exhausted(e) = v {
                diff.exhausted.get_or_insert(e);
            }
        }
        if fwd == Verdict::Contained && bwd == Verdict::Contained {
            diff.unchanged.push(label.clone());
        } else {
            diff.changed.push(label.clone());
            affected.insert(label);
        }
    }
    for label in old.labels() {
        if new_cs.shape_id(label).is_none() {
            diff.removed.push(label.clone());
        }
    }
    // Reverse-reference closure over the new schema: anything that can
    // reach an affected shape revalidates too.
    loop {
        let mut grew = false;
        for (label, expr) in new.iter() {
            if affected.contains(label) {
                continue;
            }
            if expr.references().iter().any(|r| affected.contains(r)) {
                affected.insert(label);
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    for label in new.labels() {
        if affected.contains(label) {
            diff.affected.push(label.clone());
        } else {
            diff.reusable.push(label.clone());
        }
    }
    Ok(diff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapex_shex::ast::{ArcConstraint, ShapeExpr};
    use shapex_shex::shexc;

    fn compile(src: &str) -> CompiledSchema {
        let schema = shexc::parse(src).unwrap();
        let mut terms = TermPool::new();
        CompiledSchema::compile(&schema, &mut terms, Simplify::default()).unwrap()
    }

    fn contain(cs: &CompiledSchema, a: &str, b: &str) -> Verdict {
        containment(
            cs,
            cs.shape_id(&a.into()).unwrap(),
            cs,
            cs.shape_id(&b.into()).unwrap(),
            Closure::Closed,
            &Budget::UNLIMITED,
        )
    }

    #[test]
    fn emptiness_trivial_and_dead() {
        let schema = Schema::from_rules([
            (
                ShapeLabel::new("Alive"),
                ShapeExpr::arc(ArcConstraint::value("http://e/p", NodeConstraint::Any)),
            ),
            (ShapeLabel::new("Dead"), ShapeExpr::Empty),
            (
                ShapeLabel::new("DeadRef"),
                ShapeExpr::arc(ArcConstraint::reference("http://e/p", "Dead")),
            ),
        ])
        .unwrap();
        let mut terms = TermPool::new();
        let cs = CompiledSchema::compile(&schema, &mut terms, Simplify::default()).unwrap();
        let e = emptiness(&cs);
        assert_eq!(e[0], Sat3::Sat);
        assert_eq!(e[1], Sat3::Unsat);
        assert_eq!(e[2], Sat3::Unsat);
    }

    #[test]
    fn emptiness_recursion_is_coinductive() {
        let cs = compile("PREFIX e: <http://e/>\n<A> { e:p @<A> }");
        assert_eq!(emptiness(&cs)[0], Sat3::Sat);
    }

    #[test]
    fn containment_optional_widens() {
        let cs = compile("PREFIX e: <http://e/>\n<A> { e:p . }\n<B> { e:p .? }");
        assert_eq!(contain(&cs, "A", "B"), Verdict::Contained);
        assert_eq!(contain(&cs, "B", "A"), Verdict::NotContained);
    }

    #[test]
    fn containment_is_reflexive() {
        let cs = compile("PREFIX e: <http://e/>\n<A> { e:p [1 2], e:q @<A>* }");
        assert_eq!(contain(&cs, "A", "A"), Verdict::Contained);
    }

    #[test]
    fn containment_value_sets() {
        let cs = compile("PREFIX e: <http://e/>\n<A> { e:p [1] }\n<B> { e:p [1 2] }");
        assert_eq!(contain(&cs, "A", "B"), Verdict::Contained);
        assert_eq!(contain(&cs, "B", "A"), Verdict::NotContained);
    }

    #[test]
    fn containment_numeric_facets() {
        let cs = compile(
            "PREFIX e: <http://e/>\nPREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n\
             <A> { e:p xsd:integer MININCLUSIVE 5 }\n\
             <B> { e:p xsd:integer MININCLUSIVE 3 }",
        );
        assert_eq!(contain(&cs, "A", "B"), Verdict::Contained);
        assert_eq!(contain(&cs, "B", "A"), Verdict::NotContained);
    }

    #[test]
    fn containment_cardinality() {
        let cs = compile("PREFIX e: <http://e/>\n<A> { e:p .{1,2} }\n<B> { e:p .{1,3} }");
        assert_eq!(contain(&cs, "A", "B"), Verdict::Contained);
        assert_eq!(contain(&cs, "B", "A"), Verdict::NotContained);
    }

    #[test]
    fn containment_fresh_predicate_distinguishes() {
        // B's wildcard arc accepts any predicate; A's named arc does not.
        let cs = compile("PREFIX e: <http://e/>\n<A> { e:p . }\n<B> { . . }");
        assert_eq!(contain(&cs, "A", "B"), Verdict::Contained);
        assert_eq!(contain(&cs, "B", "A"), Verdict::NotContained);
    }

    #[test]
    fn containment_refs_are_symbolic() {
        let cs = compile(
            "PREFIX e: <http://e/>\n<A> { e:p @<X> }\n<B> { e:p @<X> }\n\
             <C> { e:p @<Y> }\n<X> { e:q . }\n<Y> { e:q . }",
        );
        // Same label symbol: equal languages.
        assert_eq!(contain(&cs, "A", "B"), Verdict::Contained);
        // Different label symbols are independent — distinguishable.
        assert_eq!(contain(&cs, "A", "C"), Verdict::NotContained);
    }

    #[test]
    fn containment_interleave_order_irrelevant() {
        let cs = compile("PREFIX e: <http://e/>\n<A> { e:p ., e:q . }\n<B> { e:q ., e:p . }");
        assert_eq!(contain(&cs, "A", "B"), Verdict::Contained);
        assert_eq!(contain(&cs, "B", "A"), Verdict::Contained);
    }

    #[test]
    fn containment_open_ignores_unmentioned_predicates() {
        // Closed: B must consume e:q triples it has no arc for — A ⊄ B.
        // Open: B never sees e:q triples, and both accept any e:p graph.
        let cs = compile("PREFIX e: <http://e/>\n<A> { e:p ., e:q .? }\n<B> { e:p . }");
        assert_eq!(contain(&cs, "A", "B"), Verdict::NotContained);
        let open = containment(
            &cs,
            cs.shape_id(&"A".into()).unwrap(),
            &cs,
            cs.shape_id(&"B".into()).unwrap(),
            Closure::Open,
            &Budget::UNLIMITED,
        );
        assert_eq!(open, Verdict::Contained);
    }

    #[test]
    fn containment_respects_budget() {
        // A ⊆ B genuinely holds, so no early violation can short-circuit
        // the search — the product has hundreds of states and must trip
        // the step budget instead of completing.
        let cs = compile("PREFIX e: <http://e/>\n<A> { e:p .{1,400} }\n<B> { e:p .* }");
        let v = containment(
            &cs,
            cs.shape_id(&"A".into()).unwrap(),
            &cs,
            cs.shape_id(&"B".into()).unwrap(),
            Closure::Closed,
            &Budget::steps(50),
        );
        assert!(matches!(v, Verdict::Exhausted(_)), "{v:?}");
    }

    #[test]
    fn containment_pattern_unknown_degrades_not_contained() {
        // A PATTERN whose emptiness interplay the checker cannot decide
        // yields inexact letters; violations through them must come back
        // Undetermined, never NotContained.
        let cs = compile(
            "PREFIX e: <http://e/>\n\
             <A> { e:p PATTERN \"a*\" MINLENGTH 99999 }\n<B> { e:p [1] }",
        );
        let v = contain(&cs, "A", "B");
        assert_ne!(v, Verdict::Contained, "{v:?}");
    }

    #[test]
    fn prune_drops_empty_or_branch() {
        let schema = Schema::from_rules([(
            ShapeLabel::new("A"),
            ShapeExpr::or(
                ShapeExpr::arc(ArcConstraint::value("http://e/p", NodeConstraint::Any)),
                ShapeExpr::arc(ArcConstraint::value(
                    "http://e/q",
                    NodeConstraint::ValueSet(vec![]),
                )),
            ),
        )])
        .unwrap();
        let mut terms = TermPool::new();
        let mut cs = CompiledSchema::compile(&schema, &mut terms, Simplify::default()).unwrap();
        let before = cs.shapes[0].expr;
        assert_eq!(prune_empty_branches(&mut cs), 1);
        let after = cs.shapes[0].expr;
        assert_ne!(before, after);
        // Only the live arc remains reachable.
        assert!(matches!(cs.pool.node(after), Node::Arc(_)));
        let q_bit = cs
            .arcs
            .iter()
            .find(|a| a.display.contains('q'))
            .unwrap()
            .bit;
        assert_eq!(cs.shapes[0].class_mask[0] & (1u64 << q_bit), 0);
    }

    #[test]
    fn prune_keeps_satisfiable_branches() {
        let mut cs = compile("PREFIX e: <http://e/>\n<A> { e:p . | e:q . }");
        let before = cs.shapes[0].expr;
        assert_eq!(prune_empty_branches(&mut cs), 0);
        assert_eq!(cs.shapes[0].expr, before);
    }

    #[test]
    fn schema_diff_classifies_shapes() {
        let old = shexc::parse(
            "PREFIX e: <http://e/>\n<A> { e:p . }\n<B> { e:q . }\n<C> { e:r @<B> }\n<Gone> { e:s . }",
        )
        .unwrap();
        let new = shexc::parse(
            "PREFIX e: <http://e/>\n<A> { e:p . }\n<B> { e:q .? }\n<C> { e:r @<B> }\n<New> { e:t . }",
        )
        .unwrap();
        let diff = schema_diff(
            &old,
            &new,
            Simplify::default(),
            Closure::Closed,
            &Budget::UNLIMITED,
        )
        .unwrap();
        let names = |v: &[ShapeLabel]| v.iter().map(|l| l.as_str().to_string()).collect::<Vec<_>>();
        assert_eq!(names(&diff.changed), ["B"]);
        assert_eq!(names(&diff.unchanged), ["A", "C"]);
        assert_eq!(names(&diff.added), ["New"]);
        assert_eq!(names(&diff.removed), ["Gone"]);
        // C references the changed B, so it revalidates despite identical text.
        assert_eq!(names(&diff.affected), ["B", "C", "New"]);
        assert_eq!(names(&diff.reusable), ["A"]);
        assert!(diff.exhausted.is_none());
    }

    #[test]
    fn schema_diff_sees_through_textual_rewrites() {
        // Reordered conjuncts and an `| ∅`-style no-op: language-equal.
        let old = shexc::parse("PREFIX e: <http://e/>\n<A> { e:p ., e:q . }").unwrap();
        let new = shexc::parse("PREFIX e: <http://e/>\n<A> { e:q ., e:p .{1,1} }").unwrap();
        let diff = schema_diff(
            &old,
            &new,
            Simplify::default(),
            Closure::Closed,
            &Budget::UNLIMITED,
        )
        .unwrap();
        assert!(diff.changed.is_empty(), "{:?}", diff.changed);
        assert_eq!(diff.reusable.len(), 1);
    }

    #[test]
    fn verdict_displays() {
        assert_eq!(Verdict::Contained.to_string(), "contained");
        assert_eq!(Verdict::NotContained.to_string(), "not-contained");
        assert_eq!(Verdict::Undetermined.to_string(), "undetermined");
    }
}

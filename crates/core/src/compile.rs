//! Compilation of a [`Schema`] into the engine's internal form: interned
//! predicates, arc tables, and hash-consed expressions.

use std::collections::HashMap;

use shapex_rdf::pool::{TermId, TermPool};
use shapex_shex::ast::{ObjectConstraint, PredicateSet, ShapeExpr, ShapeLabel};
use shapex_shex::constraint::NodeConstraint;
use shapex_shex::display::constraint_to_shexc;
use shapex_shex::schema::{Schema, SchemaError};

use crate::arena::{ArcId, ExprId, ExprPool, Node, Simplify, UNBOUNDED};
use crate::sorbe;

/// Index of a shape in a [`CompiledSchema`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShapeId(pub u32);

impl ShapeId {
    /// The raw index into the shape table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A compiled predicate set: interned ids for fast membership.
#[derive(Debug, Clone)]
pub enum CompiledPredicates {
    /// Wildcard: any predicate.
    Any,
    /// Sorted term ids.
    Ids(Vec<TermId>),
}

impl CompiledPredicates {
    /// Membership test `p ∈ vp` on interned ids.
    pub fn contains(&self, p: TermId) -> bool {
        match self {
            CompiledPredicates::Any => true,
            CompiledPredicates::Ids(ids) => ids.binary_search(&p).is_ok(),
        }
    }
}

/// A compiled object constraint.
#[derive(Debug, Clone)]
pub enum CompiledObject {
    /// Evaluated against the object term (memoised per `(arc, term)`).
    Value(NodeConstraint),
    /// Requires the object to conform to the referenced shape — the §8
    /// *Arcref* rule; evaluation goes through the typing context.
    Ref(ShapeId),
}

/// A compiled arc constraint `vp → vo`.
#[derive(Debug, Clone)]
pub struct CompiledArc {
    /// The predicate set `vp`.
    pub predicates: CompiledPredicates,
    /// The object condition `vo`.
    pub object: CompiledObject,
    /// Matches incoming triples when set (§10 inverse arcs).
    pub inverse: bool,
    /// Owning shape.
    pub shape: ShapeId,
    /// Bit position within the owning shape's satisfaction profiles.
    pub bit: u32,
    /// Human-readable form for diagnostics, e.g. `foaf:age xsd:integer`.
    pub display: String,
}

/// A SORBE conjunct resolved to a compiled arc (see [`crate::sorbe`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SorbeSpec {
    /// The conjunct's arc.
    pub arc: ArcId,
    /// Minimum occurrences.
    pub min: u32,
    /// `UNBOUNDED` for `{m,}`.
    pub max: u32,
}

/// Per-shape map from a triple's head `(predicate, direction)` to the arcs
/// whose predicate set covers it, precomputed once at compile time. Profile
/// construction consults this instead of scanning every arc of the shape per
/// triple; it is read-only after compilation and therefore safely shared (by
/// clone) across parallel workers.
///
/// Layout: a sorted key column plus one contiguous arc array holding every
/// bucket back to back. A lookup is a single binary search over `keys`
/// followed by a slice of `explicit` — no hashing, no per-bucket allocation,
/// and clones are three `memcpy`s instead of a `HashMap` rebuild.
#[derive(Debug, Clone, Default)]
pub struct HeadIndex {
    /// Distinct `(predicate, direction)` heads, sorted.
    keys: Vec<(TermId, bool)>,
    /// `offsets[i]..offsets[i + 1]` bounds key `i`'s bucket in `explicit`.
    offsets: Vec<u32>,
    /// All buckets concatenated, each in bit order.
    explicit: Vec<ArcId>,
    wildcard_fwd: Vec<ArcId>,
    wildcard_inv: Vec<ArcId>,
}

impl HeadIndex {
    fn build(arcs: &[ArcId], table: &[CompiledArc]) -> HeadIndex {
        let mut idx = HeadIndex::default();
        // Arcs arrive in bit order, so pairs are pushed in bit order per
        // key; the stable sort below groups keys without reordering a
        // bucket's interior.
        let mut pairs: Vec<((TermId, bool), ArcId)> = Vec::new();
        for &id in arcs {
            let arc = &table[id.index()];
            match &arc.predicates {
                CompiledPredicates::Any => {
                    if arc.inverse {
                        idx.wildcard_inv.push(id);
                    } else {
                        idx.wildcard_fwd.push(id);
                    }
                }
                CompiledPredicates::Ids(ids) => {
                    for &p in ids {
                        pairs.push(((p, arc.inverse), id));
                    }
                }
            }
        }
        pairs.sort_by_key(|&(key, _)| key);
        for (key, id) in pairs {
            if idx.keys.last() != Some(&key) {
                idx.keys.push(key);
                idx.offsets.push(idx.explicit.len() as u32);
            }
            idx.explicit.push(id);
        }
        idx.offsets.push(idx.explicit.len() as u32);
        idx
    }

    /// Arcs that can match a triple with head `(pred, inverse)`, in bit
    /// order within each bucket (explicit predicates first, then wildcard
    /// arcs of the same direction).
    pub fn candidates(&self, pred: TermId, inverse: bool) -> impl Iterator<Item = ArcId> + '_ {
        let wild = if inverse {
            &self.wildcard_inv
        } else {
            &self.wildcard_fwd
        };
        let bucket = match self.keys.binary_search(&(pred, inverse)) {
            Ok(i) => &self.explicit[self.offsets[i] as usize..self.offsets[i + 1] as usize],
            Err(_) => &[],
        };
        bucket.iter().chain(wild.iter()).copied()
    }
}

/// A compiled shape `λ ↦ e`.
#[derive(Debug, Clone)]
pub struct CompiledShape {
    /// The shape's label `λ`.
    pub label: ShapeLabel,
    /// The compiled expression `δ(λ)`.
    pub expr: ExprId,
    /// `Some` when the shape is in the SORBE subset (§8 future work):
    /// validated by linear counting instead of derivatives.
    pub sorbe: Option<Vec<SorbeSpec>>,
    /// This shape's arcs, in bit order.
    pub arcs: Vec<ArcId>,
    /// Predicates mentioned by forward arcs; `None` if a forward wildcard
    /// predicate occurs (every predicate is relevant then).
    pub forward_predicates: Option<Vec<TermId>>,
    /// Predicates mentioned by inverse arcs; `None` for an inverse
    /// wildcard.
    pub inverse_predicates: Option<Vec<TermId>>,
    /// Whether any arc is inverse (controls incoming-triple gathering).
    pub has_inverse: bool,
    /// Whether any arc's object is a shape reference (`@<T>`). Lets the
    /// incremental dependency recorder skip reference-edge bookkeeping
    /// entirely for flat shapes.
    pub has_refs: bool,
    /// Precomputed `(predicate, direction) → candidate arcs` lookup.
    pub head_index: HeadIndex,
    /// Alphabet-class mask: the arc bits *reachable from the compiled
    /// expression*. Simplification can erase arcs (`e{0,0} = ε`), leaving
    /// bits no derivative can observe; satisfaction profiles are masked
    /// with this before interning so triples differing only on
    /// unobservable bits share one derivative class (see [`crate::dfa`]).
    pub class_mask: Box<[u64]>,
}

/// The compiled schema: arcs + shapes + the expression arena.
///
/// `Clone` is deliberate: parallel `type_all` workers each take a private
/// copy (arcs/shapes/index are read-only; the pool diverges per worker as
/// derivatives intern new expressions).
#[derive(Debug, Clone)]
pub struct CompiledSchema {
    /// Every arc constraint across all shapes.
    pub arcs: Vec<CompiledArc>,
    /// The compiled shapes, in declaration order.
    pub shapes: Vec<CompiledShape>,
    index: HashMap<ShapeLabel, ShapeId>,
    /// The shared expression arena.
    pub pool: ExprPool,
    /// Whether any shape can reach itself through references — recursion
    /// depth then depends on the *data*, so uncached checks run on a
    /// dedicated large-stack worker.
    pub has_recursion: bool,
}

impl CompiledSchema {
    /// Compiles `schema`, interning every predicate IRI into `terms`.
    /// Fails if the schema has undefined references.
    pub fn compile(
        schema: &Schema,
        terms: &mut TermPool,
        simplify: Simplify,
    ) -> Result<CompiledSchema, SchemaError> {
        schema.check_references()?;
        schema.check_bounds()?;
        let mut index = HashMap::new();
        for (i, label) in schema.labels().enumerate() {
            index.insert(label.clone(), ShapeId(i as u32));
        }
        let has_recursion = schema.labels().any(|l| schema.is_recursive(l));
        let mut out = CompiledSchema {
            arcs: Vec::new(),
            shapes: Vec::new(),
            index,
            pool: ExprPool::new(simplify),
            has_recursion,
        };
        for (label, expr) in schema.iter() {
            let shape_id = ShapeId(out.shapes.len() as u32);
            let mut ctx = ShapeCtx {
                shape: shape_id,
                arcs: Vec::new(),
                forward: Some(Vec::new()),
                inverse: Some(Vec::new()),
                has_inverse: false,
            };
            let compiled = out.compile_expr(expr, terms, &mut ctx);
            let sorbe = sorbe::classify(expr).map(|conjuncts| {
                conjuncts
                    .iter()
                    .map(|c| SorbeSpec {
                        arc: ctx.arcs[c.arc_pos],
                        min: c.min,
                        max: c.max,
                    })
                    .collect()
            });
            let head_index = HeadIndex::build(&ctx.arcs, &out.arcs);
            let class_mask = reachable_arc_bits(&out.pool, &out.arcs, compiled, ctx.arcs.len());
            let has_refs = ctx
                .arcs
                .iter()
                .any(|&a| matches!(out.arcs[a.index()].object, CompiledObject::Ref(_)));
            out.shapes.push(CompiledShape {
                label: label.clone(),
                expr: compiled,
                sorbe,
                head_index,
                class_mask,
                arcs: ctx.arcs,
                forward_predicates: ctx.forward.map(|mut v| {
                    v.sort();
                    v.dedup();
                    v
                }),
                inverse_predicates: ctx.inverse.map(|mut v| {
                    v.sort();
                    v.dedup();
                    v
                }),
                has_inverse: ctx.has_inverse,
                has_refs,
            });
        }
        Ok(out)
    }

    /// Resolves a label to its id.
    pub fn shape_id(&self, label: &ShapeLabel) -> Option<ShapeId> {
        self.index.get(label).copied()
    }

    /// The shape behind an id.
    pub fn shape(&self, id: ShapeId) -> &CompiledShape {
        &self.shapes[id.index()]
    }

    /// The arc behind an id.
    pub fn arc(&self, id: ArcId) -> &CompiledArc {
        &self.arcs[id.index()]
    }

    /// Renders an expression state for diagnostics.
    pub fn render_expr(&self, e: ExprId) -> String {
        self.pool
            .render(e, &|arc| self.arcs[arc.index()].display.clone())
    }

    fn compile_expr(
        &mut self,
        expr: &ShapeExpr,
        terms: &mut TermPool,
        ctx: &mut ShapeCtx,
    ) -> ExprId {
        match expr {
            ShapeExpr::Empty => crate::arena::EMPTY,
            ShapeExpr::Epsilon => crate::arena::EPSILON,
            ShapeExpr::Arc(arc) => {
                let id = ArcId(self.arcs.len() as u32);
                let predicates = match &arc.predicates {
                    PredicateSet::Any => {
                        let slot = if arc.inverse {
                            &mut ctx.inverse
                        } else {
                            &mut ctx.forward
                        };
                        *slot = None;
                        CompiledPredicates::Any
                    }
                    PredicateSet::Iris(iris) => {
                        let mut ids: Vec<TermId> =
                            iris.iter().map(|i| terms.intern_iri(i)).collect();
                        ids.sort();
                        ids.dedup();
                        let slot = if arc.inverse {
                            &mut ctx.inverse
                        } else {
                            &mut ctx.forward
                        };
                        if let Some(v) = slot.as_mut() {
                            v.extend(ids.iter().copied());
                        }
                        CompiledPredicates::Ids(ids)
                    }
                };
                if arc.inverse {
                    ctx.has_inverse = true;
                }
                let object = match &arc.object {
                    ObjectConstraint::Value(c) => CompiledObject::Value(c.clone()),
                    ObjectConstraint::Ref(l) => CompiledObject::Ref(
                        self.index
                            .get(l)
                            .copied()
                            .expect("checked by check_references"),
                    ),
                };
                let display = arc_display(arc);
                let bit = ctx.arcs.len() as u32;
                ctx.arcs.push(id);
                self.arcs.push(CompiledArc {
                    predicates,
                    object,
                    inverse: arc.inverse,
                    shape: ctx.shape,
                    bit,
                    display,
                });
                self.pool.arc(id)
            }
            ShapeExpr::Star(e) => {
                let inner = self.compile_expr(e, terms, ctx);
                self.pool.star(inner)
            }
            // E+ = E ‖ E* (§4)
            ShapeExpr::Plus(e) => {
                let inner = self.compile_expr(e, terms, ctx);
                let star = self.pool.star(inner);
                self.pool.and(inner, star)
            }
            // E? = E | ε (§4)
            ShapeExpr::Opt(e) => {
                let inner = self.compile_expr(e, terms, ctx);
                self.pool.or(inner, crate::arena::EPSILON)
            }
            ShapeExpr::Repeat(e, m, n) => {
                let inner = self.compile_expr(e, terms, ctx);
                self.pool.repeat(inner, *m, n.unwrap_or(UNBOUNDED))
            }
            ShapeExpr::And(a, b) => {
                let ca = self.compile_expr(a, terms, ctx);
                let cb = self.compile_expr(b, terms, ctx);
                self.pool.and(ca, cb)
            }
            ShapeExpr::Or(a, b) => {
                let ca = self.compile_expr(a, terms, ctx);
                let cb = self.compile_expr(b, terms, ctx);
                self.pool.or(ca, cb)
            }
        }
    }
}

/// Collects the shape-local arc bits reachable from `expr` — the shape's
/// compile-time alphabet-class mask. Arcs erased by simplification
/// (`e{0,0} = ε`, annihilated branches) are compiled into the arc table
/// but unreachable from the final expression, so no derivative can read
/// their profile bit; masking them out merges otherwise-identical triple
/// classes.
pub(crate) fn reachable_arc_bits(
    pool: &ExprPool,
    arcs: &[CompiledArc],
    expr: ExprId,
    n_bits: usize,
) -> Box<[u64]> {
    let mut mask = vec![0u64; n_bits.div_ceil(64)];
    let mut seen = vec![false; pool.len()];
    let mut stack = vec![expr];
    while let Some(e) = stack.pop() {
        if std::mem::replace(&mut seen[e.index()], true) {
            continue;
        }
        match pool.node(e) {
            Node::Empty | Node::Epsilon => {}
            Node::Arc(a) => {
                let bit = arcs[a.index()].bit;
                mask[(bit / 64) as usize] |= 1u64 << (bit % 64);
            }
            Node::Star(i) | Node::Repeat(i, _, _) => stack.push(i),
            Node::And(a, b) | Node::Or(a, b) => {
                stack.push(a);
                stack.push(b);
            }
        }
    }
    mask.into()
}

struct ShapeCtx {
    shape: ShapeId,
    arcs: Vec<ArcId>,
    forward: Option<Vec<TermId>>,
    inverse: Option<Vec<TermId>>,
    has_inverse: bool,
}

fn arc_display(arc: &shapex_shex::ast::ArcConstraint) -> String {
    let inv = if arc.inverse { "^" } else { "" };
    let pred = match &arc.predicates {
        PredicateSet::Any => ".".to_string(),
        PredicateSet::Iris(iris) if iris.len() == 1 => short_iri(&iris[0]),
        PredicateSet::Iris(iris) => {
            let parts: Vec<_> = iris.iter().map(|i| short_iri(i)).collect();
            format!("({})", parts.join(" "))
        }
    };
    let obj = match &arc.object {
        ObjectConstraint::Ref(l) => format!("@{l}"),
        ObjectConstraint::Value(c) => constraint_display(c),
    };
    format!("{inv}{pred}→{obj}")
}

fn constraint_display(c: &NodeConstraint) -> String {
    match c {
        NodeConstraint::Datatype(dt) => short_iri(dt),
        other => shorten_literals(&constraint_to_shexc(other)),
    }
}

/// Compacts `"N"^^<…XMLSchema#integer>` (and decimal/double) to bare `N`
/// in diagnostic strings — the paper's `b→{1,2}` notation.
fn shorten_literals(s: &str) -> String {
    let mut out = s.to_string();
    for dt in [
        "http://www.w3.org/2001/XMLSchema#integer",
        "http://www.w3.org/2001/XMLSchema#decimal",
        "http://www.w3.org/2001/XMLSchema#double",
    ] {
        let suffix = format!("^^<{dt}>");
        while let Some(pos) = out.find(&suffix) {
            // Find the opening quote of the literal just before `pos`.
            let Some(open) = out[..pos.saturating_sub(1)].rfind('"') else {
                break;
            };
            let lexical = out[open + 1..pos - 1].to_string();
            out.replace_range(open..pos + suffix.len(), &lexical);
        }
    }
    out
}

/// Shortens an IRI to its local name for diagnostics.
fn short_iri(iri: &str) -> String {
    match iri.rfind(['#', '/']) {
        Some(i) if i + 1 < iri.len() => iri[i + 1..].to_string(),
        _ => iri.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::Node;
    use shapex_shex::shexc;

    fn compile(src: &str) -> (CompiledSchema, TermPool) {
        let schema = shexc::parse(src).unwrap();
        let mut terms = TermPool::new();
        let c = CompiledSchema::compile(&schema, &mut terms, Simplify::default()).unwrap();
        (c, terms)
    }

    #[test]
    fn example_1_compiles() {
        let (c, terms) = compile(
            r#"
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
            <Person> {
              foaf:age xsd:integer
              , foaf:name xsd:string+
              , foaf:knows @<Person>*
            }
            "#,
        );
        assert_eq!(c.shapes.len(), 1);
        assert_eq!(c.arcs.len(), 3);
        let person = c.shape_id(&"Person".into()).unwrap();
        let shape = c.shape(person);
        assert_eq!(shape.arcs.len(), 3);
        // All three foaf predicates interned and recorded as relevant.
        let fwd = shape.forward_predicates.as_ref().unwrap();
        assert_eq!(fwd.len(), 3);
        assert!(terms
            .get(&shapex_rdf::Term::iri(shapex_rdf::vocab::foaf::AGE))
            .is_some());
        // knows arc is a self-reference
        let knows = c.arcs.iter().find(|a| a.display.contains("knows")).unwrap();
        assert!(matches!(knows.object, CompiledObject::Ref(s) if s == person));
        assert!(!shape.has_inverse);
    }

    #[test]
    fn plus_desugars_in_pool() {
        let (c, _) = compile("PREFIX e: <http://e/>\n<S> { e:p .+ }");
        let s = c.shape(ShapeId(0));
        // e+ = e ‖ e*
        let Node::And(a, b) = c.pool.node(s.expr) else {
            panic!("expected And");
        };
        let (arc, star) = if matches!(c.pool.node(a), Node::Arc(_)) {
            (a, b)
        } else {
            (b, a)
        };
        assert!(matches!(c.pool.node(arc), Node::Arc(_)));
        assert!(matches!(c.pool.node(star), Node::Star(_)));
    }

    #[test]
    fn opt_desugars_to_or_epsilon() {
        let (c, _) = compile("PREFIX e: <http://e/>\n<S> { e:p .? }");
        let s = c.shape(ShapeId(0));
        let Node::Or(a, b) = c.pool.node(s.expr) else {
            panic!("expected Or");
        };
        assert!(a == crate::arena::EPSILON || b == crate::arena::EPSILON);
    }

    #[test]
    fn repeat_stays_native() {
        let (c, _) = compile("PREFIX e: <http://e/>\n<S> { e:p .{2,5} }");
        let s = c.shape(ShapeId(0));
        assert!(matches!(c.pool.node(s.expr), Node::Repeat(_, 2, 5)));
    }

    #[test]
    fn wildcard_predicate_clears_relevance() {
        let (c, _) = compile("PREFIX e: <http://e/>\n<S> { e:p ., . IRI }");
        let s = c.shape(ShapeId(0));
        assert!(s.forward_predicates.is_none());
    }

    #[test]
    fn inverse_arcs_tracked() {
        let (c, _) = compile("PREFIX e: <http://e/>\n<S> { ^e:member IRI, e:name . }");
        let s = c.shape(ShapeId(0));
        assert!(s.has_inverse);
        assert_eq!(s.inverse_predicates.as_ref().unwrap().len(), 1);
        assert_eq!(s.forward_predicates.as_ref().unwrap().len(), 1);
    }

    #[test]
    fn undefined_reference_fails_compilation() {
        let schema = shexc::parse("PREFIX e: <http://e/>\n<S> { e:p @<Missing> }").unwrap();
        let mut terms = TermPool::new();
        assert!(CompiledSchema::compile(&schema, &mut terms, Simplify::default()).is_err());
    }

    #[test]
    fn arc_bits_are_shape_local() {
        let (c, _) = compile("PREFIX e: <http://e/>\n<A> { e:p ., e:q . }\n<B> { e:r . }");
        assert_eq!(c.arc(ArcId(0)).bit, 0);
        assert_eq!(c.arc(ArcId(1)).bit, 1);
        // B's first arc restarts at bit 0
        assert_eq!(c.arc(ArcId(2)).bit, 0);
        assert_eq!(c.arc(ArcId(2)).shape, ShapeId(1));
    }

    #[test]
    fn display_is_informative() {
        let (c, _) = compile(
            "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\nPREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n<S> { foaf:age xsd:integer }",
        );
        assert_eq!(c.arc(ArcId(0)).display, "age→integer");
    }

    #[test]
    fn render_expr_uses_paper_notation() {
        let (c, _) = compile("PREFIX e: <http://e/>\n<S> { e:a [1], e:b [1 2]* }");
        let rendered = c.render_expr(c.shape(ShapeId(0)).expr);
        assert!(rendered.contains('‖'), "{rendered}");
        // Integer value sets render bare, like the paper's b→{1,2}.
        assert!(rendered.contains("b→[1 2]"), "{rendered}");
    }

    #[test]
    fn head_index_matches_hashmap_reference() {
        // Differential check: the binary-search HeadIndex must return the
        // same candidate arcs, in the same order, as a straightforward
        // HashMap-of-buckets build over every head the shape mentions —
        // including heads covered by value-set predicates, wildcards of
        // both directions, and predicates nothing matches.
        let (c, mut terms) = compile(
            r#"
            PREFIX e: <http://e/>
            <S> {
              e:p [1 2]
              , (e:p . | e:q .)
              , ^e:q IRI
              , . .
              , ^. .
              , e:r @<T>*
            }
            <T> { e:q . }
            "#,
        );
        for shape in &c.shapes {
            // Reference build, mirroring the pre-flattening implementation.
            let mut by_pred: HashMap<(TermId, bool), Vec<ArcId>> = HashMap::new();
            let mut wild_fwd = Vec::new();
            let mut wild_inv = Vec::new();
            for &id in &shape.arcs {
                let arc = c.arc(id);
                match &arc.predicates {
                    CompiledPredicates::Any => {
                        if arc.inverse {
                            wild_inv.push(id);
                        } else {
                            wild_fwd.push(id);
                        }
                    }
                    CompiledPredicates::Ids(ids) => {
                        for &p in ids {
                            by_pred.entry((p, arc.inverse)).or_default().push(id);
                        }
                    }
                }
            }
            let mut heads: Vec<(TermId, bool)> = by_pred.keys().copied().collect();
            // Probe an unmentioned predicate too — both sides must agree
            // on the wildcard-only fallback.
            let unmentioned = terms.intern_iri("http://e/unmentioned");
            heads.push((unmentioned, false));
            heads.push((unmentioned, true));
            for (p, inv) in heads {
                let expected: Vec<ArcId> = by_pred
                    .get(&(p, inv))
                    .map(|v| v.as_slice())
                    .unwrap_or(&[])
                    .iter()
                    .chain(if inv { &wild_inv } else { &wild_fwd })
                    .copied()
                    .collect();
                let got: Vec<ArcId> = shape.head_index.candidates(p, inv).collect();
                assert_eq!(got, expected, "head ({p:?}, inverse={inv})");
            }
        }
    }

    #[test]
    fn class_mask_covers_reachable_arcs_only() {
        // `e:p .{0,0}` simplifies to ε, so its arc constraint is compiled
        // (and still owns a profile bit) but is unreachable from the shape
        // expression — the alphabet-class mask must drop that bit while
        // keeping `e:q`'s, so triples differing only on `e:p` fall into
        // the same derivative class.
        let (c, _) = compile("PREFIX e: <http://e/>\n<S> { e:p .{0,0}, e:q . }");
        assert_eq!(c.arcs.len(), 2, "both arcs compile");
        let shape = c.shape(ShapeId(0));
        let q_bit = c.arcs.iter().find(|a| a.display.contains('q')).unwrap().bit;
        let p_bit = c.arcs.iter().find(|a| a.display.contains('p')).unwrap().bit;
        assert_eq!(shape.class_mask.len(), 1);
        assert_eq!(shape.class_mask[0], 1u64 << q_bit);
        assert_eq!(shape.class_mask[0] & (1u64 << p_bit), 0);
    }
}

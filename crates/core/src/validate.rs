//! One-call convenience API: parse a ShExC schema and a Turtle document,
//! compute the full shape typing, and answer conformance queries by name.

use shapex_rdf::graph::Dataset;
use shapex_rdf::term::Term;
use shapex_rdf::turtle;
use shapex_shex::ast::ShapeLabel;
use shapex_shex::shexc;

use crate::budget::{Budget, Exhaustion};
use crate::engine::{Engine, EngineConfig, EngineError};
use crate::result::Typing;

/// Everything [`validate`] produces: the parsed dataset, the engine (with
/// its memoised state), and the full typing.
pub struct Report {
    /// The parsed data graph and its term pool.
    pub dataset: Dataset,
    /// The engine, with all memoised state from the typing run.
    pub engine: Engine,
    /// The full node-to-shape typing — possibly partial under a budget
    /// (see [`Report::is_partial`]).
    pub typing: Typing,
}

impl Report {
    /// True when at least one `(node, shape)` query exhausted its budget:
    /// the typing under-approximates the total one.
    pub fn is_partial(&self) -> bool {
        self.typing.is_partial()
    }

    /// The `(node IRI, shape label, exhaustion)` triples for every query
    /// that tripped its budget.
    pub fn exhausted(&self) -> Vec<(String, String, Exhaustion)> {
        self.typing
            .exhausted
            .iter()
            .map(|&(node, shape, e)| {
                (
                    self.dataset.pool.term(node).to_string(),
                    self.engine.label_of(shape).as_str().to_string(),
                    e,
                )
            })
            .collect()
    }
    /// Does the node (given as an IRI string) conform to the named shape?
    pub fn conforms(&self, node_iri: &str, shape: &str) -> bool {
        let Some(node) = self.dataset.iri(node_iri) else {
            return false;
        };
        let Some(shape) = self.engine.shape_id(&ShapeLabel::new(shape)) else {
            return false;
        };
        self.typing.has(node, shape)
    }

    /// The shapes a node conforms to, as label strings.
    pub fn shapes_of(&self, node_iri: &str) -> Vec<String> {
        let Some(node) = self.dataset.iri(node_iri) else {
            return Vec::new();
        };
        self.typing
            .shapes_of(node)
            .map(|s| self.engine.label_of(s).as_str().to_string())
            .collect()
    }

    /// Renders the full typing, one `node → <Shape>` line per entry.
    pub fn render_typing(&self) -> String {
        self.typing
            .render(&self.dataset.pool, &|s| self.engine.label_of(s).clone())
    }

    /// Why did this node fail this shape? Empty if it conforms or was
    /// never checked.
    pub fn explain(&mut self, node_iri: &str, shape: &str) -> Option<String> {
        let node = self.dataset.iri(node_iri)?;
        let result = self
            .engine
            .check(
                &self.dataset.graph,
                &self.dataset.pool,
                node,
                &ShapeLabel::new(shape),
            )
            .ok()?;
        result.failure.map(|f| f.render(&self.dataset.pool))
    }
}

/// Errors from the convenience API: parsing either input, or validation
/// setup.
#[derive(Debug)]
pub enum ValidateError {
    /// The ShExC schema failed to parse.
    SchemaSyntax(shapex_rdf::parser::ParseError),
    /// The Turtle data failed to parse.
    DataSyntax(shapex_rdf::parser::ParseError),
    /// Schema compilation or validation failed.
    Engine(EngineError),
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidateError::SchemaSyntax(e) => write!(f, "schema: {e}"),
            ValidateError::DataSyntax(e) => write!(f, "data: {e}"),
            ValidateError::Engine(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ValidateError {}

/// Parses `schema_shexc` and `data_turtle`, validates every subject node
/// against every shape, and returns the [`Report`].
///
/// Runs on all available cores via [`Engine::type_all_par`]; the typing is
/// identical to the sequential engine's (the parallel run is
/// deterministic). Use [`validate_par`] to pin the worker count.
///
/// ```
/// let report = shapex::validate(
///     r#"PREFIX foaf: <http://xmlns.com/foaf/0.1/>
///        PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
///        <Person> { foaf:age xsd:integer, foaf:name xsd:string+ }"#,
///     r#"@prefix : <http://example.org/> .
///        @prefix foaf: <http://xmlns.com/foaf/0.1/> .
///        :john foaf:age 23; foaf:name "John" .
///        :mary foaf:age 50, 65 ."#,
/// ).unwrap();
/// assert!(report.conforms("http://example.org/john", "Person"));
/// assert!(!report.conforms("http://example.org/mary", "Person"));
/// ```
pub fn validate(schema_shexc: &str, data_turtle: &str) -> Result<Report, ValidateError> {
    validate_par(schema_shexc, data_turtle, Budget::UNLIMITED, default_jobs())
}

/// The default worker count for parallel validation: available hardware
/// parallelism, 1 when it cannot be determined.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// [`validate`] under per-query resource limits. Queries that trip the
/// budget are listed in the report (see [`Report::exhausted`]) instead of
/// failing the run — every other pair still gets its definitive answer.
/// Runs sequentially so budget semantics (including any per-query
/// deadline) match the single-threaded engine exactly.
pub fn validate_with_budget(
    schema_shexc: &str,
    data_turtle: &str,
    budget: Budget,
) -> Result<Report, ValidateError> {
    validate_par(schema_shexc, data_turtle, budget, 1)
}

/// [`validate`] with an explicit budget *and* worker count. `jobs = 1` is
/// the exact sequential path; with more workers the budget's deadline
/// additionally bounds wall-clock for the whole run (see
/// [`Engine::type_all_par`]).
///
/// ```
/// use shapex::Budget;
///
/// let schema = "PREFIX e: <http://e/>\n<S> { e:p [1 2]+ }";
/// let data = "@prefix e: <http://e/> . e:a e:p 1 . e:b e:p 3 .";
/// // Two workers, 10k derivative steps per (node, shape) query: the
/// // typing is byte-identical to the sequential, unbudgeted one here.
/// let report = shapex::validate_par(
///     schema, data, Budget::UNLIMITED.with_max_steps(10_000), 2).unwrap();
/// assert!(!report.is_partial());
/// assert!(report.conforms("http://e/a", "S"));
/// assert!(!report.conforms("http://e/b", "S"));
/// ```
pub fn validate_par(
    schema_shexc: &str,
    data_turtle: &str,
    budget: Budget,
    jobs: usize,
) -> Result<Report, ValidateError> {
    let schema = shexc::parse(schema_shexc).map_err(ValidateError::SchemaSyntax)?;
    let mut dataset = turtle::parse(data_turtle).map_err(ValidateError::DataSyntax)?;
    let config = EngineConfig {
        budget,
        ..EngineConfig::default()
    };
    let mut engine =
        Engine::compile(&schema, &mut dataset.pool, config).map_err(ValidateError::Engine)?;
    let typing = engine.type_all_par(&dataset.graph, &dataset.pool, jobs);
    Ok(Report {
        dataset,
        engine,
        typing,
    })
}

/// Checks a single `(node, shape)` pair without computing the full typing.
pub fn check_node(
    schema_shexc: &str,
    data_turtle: &str,
    node_iri: &str,
    shape: &str,
) -> Result<bool, ValidateError> {
    let schema = shexc::parse(schema_shexc).map_err(ValidateError::SchemaSyntax)?;
    let mut dataset = turtle::parse(data_turtle).map_err(ValidateError::DataSyntax)?;
    let mut engine = Engine::new(&schema, &mut dataset.pool).map_err(ValidateError::Engine)?;
    let node = dataset.pool.intern(Term::iri(node_iri));
    Ok(engine
        .check(&dataset.graph, &dataset.pool, node, &ShapeLabel::new(shape))
        .map_err(ValidateError::Engine)?
        .matched)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCHEMA: &str = r#"
        PREFIX foaf: <http://xmlns.com/foaf/0.1/>
        PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
        <Person> { foaf:age xsd:integer, foaf:name xsd:string+ }
    "#;
    const DATA: &str = r#"
        @prefix : <http://example.org/> .
        @prefix foaf: <http://xmlns.com/foaf/0.1/> .
        :john foaf:age 23; foaf:name "John" .
        :mary foaf:age 50, 65 .
    "#;

    #[test]
    fn report_conformance() {
        let report = validate(SCHEMA, DATA).unwrap();
        assert!(report.conforms("http://example.org/john", "Person"));
        assert!(!report.conforms("http://example.org/mary", "Person"));
        assert!(!report.conforms("http://example.org/nobody", "Person"));
        assert!(!report.conforms("http://example.org/john", "NoShape"));
    }

    #[test]
    fn shapes_of_lists_labels() {
        let report = validate(SCHEMA, DATA).unwrap();
        assert_eq!(
            report.shapes_of("http://example.org/john"),
            vec!["Person".to_string()]
        );
        assert!(report.shapes_of("http://example.org/mary").is_empty());
    }

    #[test]
    fn render_typing_lines() {
        let report = validate(SCHEMA, DATA).unwrap();
        let rendered = report.render_typing();
        assert!(rendered.contains("john"));
        assert!(!rendered.contains("mary"));
    }

    #[test]
    fn explain_failure() {
        let mut report = validate(SCHEMA, DATA).unwrap();
        let why = report
            .explain("http://example.org/mary", "Person")
            .expect("mary fails");
        assert!(
            why.contains("does not match") || why.contains("missing") || why.contains("must occur"),
            "{why}"
        );
        assert!(report
            .explain("http://example.org/john", "Person")
            .is_none());
    }

    #[test]
    fn check_node_single() {
        assert!(check_node(SCHEMA, DATA, "http://example.org/john", "Person").unwrap());
        assert!(!check_node(SCHEMA, DATA, "http://example.org/mary", "Person").unwrap());
    }

    #[test]
    fn syntax_errors_surface() {
        assert!(matches!(
            validate("<S> { junk", DATA),
            Err(ValidateError::SchemaSyntax(_))
        ));
        assert!(matches!(
            validate(SCHEMA, "not turtle at all ::"),
            Err(ValidateError::DataSyntax(_))
        ));
    }
}

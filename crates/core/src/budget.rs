//! Resource governance for validation (the robustness counterpart to §6–§8).
//!
//! The derivative engine removes the backtracking baseline's exponential
//! *decomposition*, but the formalism keeps intrinsic worst cases: `‖`
//! derivatives can explode the expression arena, shape references walk
//! cyclic data arbitrarily deep, and `type_all` is node × shape with no
//! ceiling. A [`Budget`] bounds each axis; a [`BudgetMeter`] is charged as
//! the engines run and trips with a structured [`Exhaustion`] instead of a
//! hang or OOM. Checks are amortised counter compares — the wall-clock
//! deadline is polled every [`DEADLINE_POLL_INTERVAL`] steps, never per
//! step — so `Budget::UNLIMITED` (the default) is behaviourally and
//! performance-wise identical to an ungoverned run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often (in steps) the deadline is polled. A power of two so the
/// check compiles to a mask test.
pub const DEADLINE_POLL_INTERVAL: u64 = 4096;

/// The governed resource axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// Engine work steps (derivative rule applications, matcher
    /// decompositions, per-triple counting work, node checks).
    Steps,
    /// Hash-consed expression-arena nodes (schema pool size).
    ArenaNodes,
    /// Nested `(node, shape)` check depth through shape references.
    Depth,
    /// Wall-clock deadline, in milliseconds.
    WallClock,
}

impl std::fmt::Display for Resource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Resource::Steps => write!(f, "steps"),
            Resource::ArenaNodes => write!(f, "arena-nodes"),
            Resource::Depth => write!(f, "depth"),
            Resource::WallClock => write!(f, "wall-clock-ms"),
        }
    }
}

/// A tripped budget: which resource ran out, how much was spent, and the
/// configured limit. `spent <= limit` always holds — the meter trips *at*
/// the limit, not past it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exhaustion {
    /// The resource that ran out.
    pub resource: Resource,
    /// Units spent when the meter tripped (milliseconds for
    /// [`Resource::WallClock`]).
    pub spent: u64,
    /// The configured limit in the same units.
    pub limit: u64,
}

impl Exhaustion {
    /// The record as a JSON object (used by `--report json` documents).
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "resource": self.resource.to_string(),
            "spent": self.spent,
            "limit": self.limit,
        })
    }
}

impl std::fmt::Display for Exhaustion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} budget exhausted ({}/{})",
            self.resource, self.spent, self.limit
        )
    }
}

/// Per-query resource limits. All axes are optional; the default
/// ([`Budget::UNLIMITED`]) governs nothing and preserves ungoverned
/// behaviour exactly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Maximum engine work steps per query.
    pub max_steps: Option<u64>,
    /// Maximum expression-arena *growth* per query (hash-consed nodes
    /// added beyond the arena's size when the query began). Growth, not
    /// absolute size: the arena persists across queries, so an absolute
    /// cap would let one pathological node poison every later query.
    ///
    /// The charged units are pool nodes *plus* memoised derivative
    /// transitions — lazy-DFA table fills, or `HashMap` memo entries
    /// under `--no-dfa`; the two coincide cell-for-cell, so the cap
    /// trips at the same point in either mode.
    pub max_arena_nodes: Option<usize>,
    /// Maximum `(node, shape)` recursion depth through shape references.
    pub max_depth: Option<u32>,
    /// Wall-clock deadline per query.
    pub deadline: Option<Duration>,
}

impl Budget {
    /// No limits — the default.
    pub const UNLIMITED: Budget = Budget {
        max_steps: None,
        max_arena_nodes: None,
        max_depth: None,
        deadline: None,
    };

    /// A budget capping only work steps.
    pub fn steps(max_steps: u64) -> Budget {
        Budget {
            max_steps: Some(max_steps),
            ..Budget::UNLIMITED
        }
    }

    /// Sets the step limit.
    pub fn with_max_steps(mut self, max_steps: u64) -> Budget {
        self.max_steps = Some(max_steps);
        self
    }

    /// Sets the arena-size limit.
    pub fn with_max_arena_nodes(mut self, max_arena_nodes: usize) -> Budget {
        self.max_arena_nodes = Some(max_arena_nodes);
        self
    }

    /// Sets the recursion-depth limit.
    pub fn with_max_depth(mut self, max_depth: u32) -> Budget {
        self.max_depth = Some(max_depth);
        self
    }

    /// Sets the wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Budget {
        self.deadline = Some(deadline);
        self
    }

    /// True when no axis is governed.
    pub fn is_unlimited(&self) -> bool {
        *self == Budget::UNLIMITED
    }

    /// Starts a fresh meter for one query.
    pub fn meter(&self) -> BudgetMeter {
        BudgetMeter {
            steps: 0,
            step_limit: self.max_steps.unwrap_or(u64::MAX),
            depth: 0,
            peak_depth: 0,
            depth_limit: self.max_depth.unwrap_or(u32::MAX),
            arena_limit: self.max_arena_nodes.unwrap_or(usize::MAX),
            arena_baseline: 0,
            peak_arena: 0,
            deadline: self.deadline,
            started: None,
            shared: None,
            flushed: 0,
        }
    }

    /// Starts a fresh per-query meter that additionally reports to (and is
    /// governed by) a whole-run [`RunGovernor`] shared across workers.
    pub fn meter_shared(&self, governor: Arc<RunGovernor>) -> BudgetMeter {
        let mut m = self.meter();
        m.shared = Some(governor);
        m
    }
}

/// Whole-run cooperative governor for parallel validation.
///
/// Per-query limits (steps, depth, arena growth, per-query deadline) stay
/// with each worker's own [`BudgetMeter`] — that preserves per-node fault
/// isolation. The governor adds the *run-wide* axes that must be shared for
/// `--timeout-ms` to bound wall-clock of the whole run: a shared start
/// instant + deadline, and a shared atomic step counter aggregated from
/// every worker. Workers report amortised — a meter flushes its local step
/// delta every [`DEADLINE_POLL_INTERVAL`] steps — so the shared counter is
/// never contended per step.
#[derive(Debug)]
pub struct RunGovernor {
    steps: AtomicU64,
    deadline: Option<Duration>,
    started: Instant,
}

impl RunGovernor {
    /// Starts a governor for one run; the wall clock starts now.
    pub fn new(deadline: Option<Duration>) -> Arc<RunGovernor> {
        Arc::new(RunGovernor {
            steps: AtomicU64::new(0),
            deadline,
            started: Instant::now(),
        })
    }

    /// Credits a worker's local step delta to the shared counter and checks
    /// the run-wide deadline.
    pub fn charge(&self, steps: u64) -> Result<(), Exhaustion> {
        self.steps.fetch_add(steps, Ordering::Relaxed);
        self.poll_deadline()
    }

    /// Checks the run-wide deadline without charging steps.
    pub fn poll_deadline(&self) -> Result<(), Exhaustion> {
        let Some(deadline) = self.deadline else {
            return Ok(());
        };
        if self.started.elapsed() >= deadline {
            let limit = deadline.as_millis().min(u64::MAX as u128) as u64;
            return Err(Exhaustion {
                resource: Resource::WallClock,
                spent: limit,
                limit,
            });
        }
        Ok(())
    }

    /// Total steps credited by all workers so far.
    pub fn steps_spent(&self) -> u64 {
        self.steps.load(Ordering::Relaxed)
    }
}

/// Run-time spend tracking for one query. Created by [`Budget::meter`];
/// charged by the engines; trips with an [`Exhaustion`].
#[derive(Debug, Clone)]
pub struct BudgetMeter {
    steps: u64,
    step_limit: u64,
    depth: u32,
    peak_depth: u32,
    depth_limit: u32,
    arena_limit: usize,
    arena_baseline: usize,
    peak_arena: usize,
    deadline: Option<Duration>,
    /// Captured lazily on the first deadline poll so unlimited budgets
    /// never touch the clock.
    started: Option<Instant>,
    /// Optional whole-run governor shared across parallel workers.
    shared: Option<Arc<RunGovernor>>,
    /// Steps already credited to `shared` (flushes are deltas).
    flushed: u64,
}

impl Default for BudgetMeter {
    fn default() -> Self {
        Budget::UNLIMITED.meter()
    }
}

impl BudgetMeter {
    /// Charges one work step; amortised deadline poll.
    #[inline]
    pub fn step(&mut self) -> Result<(), Exhaustion> {
        self.steps += 1;
        if self.steps >= self.step_limit {
            return Err(Exhaustion {
                resource: Resource::Steps,
                spent: self.step_limit,
                limit: self.step_limit,
            });
        }
        if (self.deadline.is_some() || self.shared.is_some())
            && self.steps.is_multiple_of(DEADLINE_POLL_INTERVAL)
        {
            self.poll_deadline()?;
            self.flush_shared()?;
        }
        Ok(())
    }

    /// Credits any unreported local steps to the shared [`RunGovernor`]
    /// and checks the run-wide deadline. No-op without a governor;
    /// normally amortised via [`BudgetMeter::step`], but callers should
    /// flush once more when a query finishes so the run-wide count stays
    /// honest.
    pub fn flush_shared(&mut self) -> Result<(), Exhaustion> {
        let Some(shared) = &self.shared else {
            return Ok(());
        };
        let delta = self.steps - self.flushed;
        self.flushed = self.steps;
        shared.charge(delta)
    }

    /// Checks the wall-clock deadline now (normally amortised via
    /// [`BudgetMeter::step`]).
    pub fn poll_deadline(&mut self) -> Result<(), Exhaustion> {
        let Some(deadline) = self.deadline else {
            return Ok(());
        };
        let started = *self.started.get_or_insert_with(Instant::now);
        if started.elapsed() >= deadline {
            let limit = deadline.as_millis().min(u64::MAX as u128) as u64;
            return Err(Exhaustion {
                resource: Resource::WallClock,
                spent: limit,
                limit,
            });
        }
        Ok(())
    }

    /// Enters one level of `(node, shape)` recursion.
    #[inline]
    pub fn enter_depth(&mut self) -> Result<(), Exhaustion> {
        if self.depth >= self.depth_limit {
            return Err(Exhaustion {
                resource: Resource::Depth,
                spent: self.depth_limit as u64,
                limit: self.depth_limit as u64,
            });
        }
        self.depth += 1;
        self.peak_depth = self.peak_depth.max(self.depth);
        Ok(())
    }

    /// Leaves one level of recursion.
    #[inline]
    pub fn exit_depth(&mut self) {
        self.depth = self.depth.saturating_sub(1);
    }

    /// Records the arena units at query start (pool nodes plus memoised
    /// derivative transitions); [`BudgetMeter::check_arena`] measures
    /// growth relative to it.
    pub fn set_arena_baseline(&mut self, arena_nodes: usize) {
        self.arena_baseline = arena_nodes;
        self.peak_arena = self.peak_arena.max(arena_nodes);
    }

    /// Checks the expression arena's growth this query against its cap.
    #[inline]
    pub fn check_arena(&mut self, arena_nodes: usize) -> Result<(), Exhaustion> {
        self.peak_arena = self.peak_arena.max(arena_nodes);
        let grown = arena_nodes.saturating_sub(self.arena_baseline);
        if grown >= self.arena_limit {
            return Err(Exhaustion {
                resource: Resource::ArenaNodes,
                spent: self.arena_limit as u64,
                limit: self.arena_limit as u64,
            });
        }
        Ok(())
    }

    /// Steps charged so far.
    pub fn steps_spent(&self) -> u64 {
        self.steps
    }

    /// Deepest recursion reached.
    pub fn peak_depth(&self) -> u32 {
        self.peak_depth
    }

    /// Largest arena size observed by [`BudgetMeter::check_arena`].
    pub fn peak_arena(&self) -> usize {
        self.peak_arena
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let mut m = Budget::UNLIMITED.meter();
        for _ in 0..100_000 {
            m.step().unwrap();
        }
        m.enter_depth().unwrap();
        m.check_arena(usize::MAX - 1).unwrap();
        assert_eq!(m.steps_spent(), 100_000);
    }

    #[test]
    fn steps_trip_at_limit() {
        let mut m = Budget::steps(10).meter();
        for _ in 0..9 {
            m.step().unwrap();
        }
        let e = m.step().unwrap_err();
        assert_eq!(e.resource, Resource::Steps);
        assert_eq!(e.spent, 10);
        assert_eq!(e.limit, 10);
        assert!(e.spent <= e.limit);
    }

    #[test]
    fn depth_trips_and_recovers() {
        let mut m = Budget::UNLIMITED.with_max_depth(2).meter();
        m.enter_depth().unwrap();
        m.enter_depth().unwrap();
        let e = m.enter_depth().unwrap_err();
        assert_eq!(e.resource, Resource::Depth);
        assert_eq!(e.limit, 2);
        m.exit_depth();
        m.enter_depth().unwrap();
        assert_eq!(m.peak_depth(), 2);
    }

    #[test]
    fn arena_trips() {
        let mut m = Budget::UNLIMITED.with_max_arena_nodes(100).meter();
        m.check_arena(99).unwrap();
        let e = m.check_arena(100).unwrap_err();
        assert_eq!(e.resource, Resource::ArenaNodes);
        assert_eq!(m.peak_arena(), 100);
    }

    #[test]
    fn arena_limit_is_growth_from_baseline() {
        // A pool pre-grown to 500 nodes must not count against a later
        // query's growth cap of 100.
        let mut m = Budget::UNLIMITED.with_max_arena_nodes(100).meter();
        m.set_arena_baseline(500);
        m.check_arena(599).unwrap();
        let e = m.check_arena(600).unwrap_err();
        assert_eq!(e.resource, Resource::ArenaNodes);
        assert_eq!(m.peak_arena(), 600);
    }

    #[test]
    fn zero_deadline_trips_on_poll() {
        let mut m = Budget::UNLIMITED.with_deadline(Duration::ZERO).meter();
        // First poll captures the start instant; elapsed >= 0 trips at once.
        let e = m.poll_deadline().unwrap_err();
        assert_eq!(e.resource, Resource::WallClock);
    }

    #[test]
    fn deadline_polled_through_steps() {
        let mut m = Budget::UNLIMITED.with_deadline(Duration::ZERO).meter();
        let mut tripped = None;
        for i in 0..2 * DEADLINE_POLL_INTERVAL {
            if let Err(e) = m.step() {
                tripped = Some((i, e));
                break;
            }
        }
        let (at, e) = tripped.expect("deadline should trip within one poll interval");
        assert_eq!(e.resource, Resource::WallClock);
        assert!(at < DEADLINE_POLL_INTERVAL);
    }

    #[test]
    fn governor_aggregates_worker_steps() {
        let g = RunGovernor::new(None);
        let mut a = Budget::UNLIMITED.meter_shared(g.clone());
        let mut b = Budget::UNLIMITED.meter_shared(g.clone());
        for _ in 0..10 {
            a.step().unwrap();
        }
        for _ in 0..7 {
            b.step().unwrap();
        }
        a.flush_shared().unwrap();
        b.flush_shared().unwrap();
        assert_eq!(g.steps_spent(), 17);
        // A second flush with no new steps credits nothing.
        a.flush_shared().unwrap();
        assert_eq!(g.steps_spent(), 17);
    }

    #[test]
    fn governor_deadline_trips_every_meter() {
        let g = RunGovernor::new(Some(Duration::ZERO));
        let e = g.poll_deadline().unwrap_err();
        assert_eq!(e.resource, Resource::WallClock);
        // An unlimited per-query budget still trips through the shared
        // governor on the amortised boundary.
        let mut m = Budget::UNLIMITED.meter_shared(g);
        let mut tripped = None;
        for i in 0..2 * DEADLINE_POLL_INTERVAL {
            if let Err(e) = m.step() {
                tripped = Some((i, e));
                break;
            }
        }
        let (at, e) = tripped.expect("shared deadline should trip within one poll interval");
        assert_eq!(e.resource, Resource::WallClock);
        assert!(at < DEADLINE_POLL_INTERVAL);
    }

    #[test]
    fn display_formats() {
        let e = Exhaustion {
            resource: Resource::Steps,
            spent: 10,
            limit: 10,
        };
        assert_eq!(e.to_string(), "steps budget exhausted (10/10)");
        assert_eq!(Resource::WallClock.to_string(), "wall-clock-ms");
    }

    #[test]
    fn builders_compose() {
        let b = Budget::steps(5)
            .with_max_depth(3)
            .with_max_arena_nodes(1000)
            .with_deadline(Duration::from_millis(50));
        assert_eq!(b.max_steps, Some(5));
        assert_eq!(b.max_depth, Some(3));
        assert_eq!(b.max_arena_nodes, Some(1000));
        assert!(!b.is_unlimited());
        assert!(Budget::default().is_unlimited());
    }
}

//! Work-stealing scheduler primitives for parallel typing and the server
//! request executor (DESIGN.md §5g).
//!
//! Three pieces, all deliberately small and `std`-only:
//!
//! * [`BatchQueue`] — a per-worker, Chase-Lev-style two-ended queue over
//!   *batches* of `(node, shape)` query indices. The owner pops from the
//!   front (preserving the sequential visit order, which the memo tables
//!   like), thieves take from the back (the work the owner would reach
//!   last). Batches are fixed at construction — epochs never push — so
//!   both ends can be implemented as a single packed-`u64` CAS with no
//!   `unsafe` and no owner/thief double-take race on the last element.
//! * [`PubLog`] — the epoch publication log: workers append unconditional
//!   verdicts continuously as they prove them, and every worker drains the
//!   entries it has not yet seen at each batch boundary. This replaces the
//!   old wave barrier as the channel through which answers circulate; the
//!   *commit* of verdicts into the typing stays with the coordinator's
//!   query-order sequencer, so publication order never affects output.
//! * [`Executor`] — a shared thread pool with two-priority request queues
//!   plus scoped fan-out ([`Executor::run_tasks`]) for intra-request
//!   parallelism. Scope tasks are always preferred over queued requests:
//!   work that has already been admitted (and is burning a request budget)
//!   outranks work that has not — the server's budget-aware priority rule.
//!
//! Determinism: victim selection uses a [`splitmix64`] sequence seeded
//! from `(worker, tasks-executed, attempt)` — no clocks, no global RNG —
//! so a given interleaving opportunity set always probes victims in the
//! same order. The *outcome* never depends on scheduling anyway (each
//! `(node, shape)` verdict is a property of the graph alone); the
//! deterministic probe order just keeps runs reproducible enough to
//! debug.

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::Duration;

/// Locks a mutex, tolerating poison: a panicking scope task must not turn
/// every subsequent lock into a second panic (the server's quarantine
/// path depends on the first panic propagating cleanly).
fn lock_ignore_poison<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// `splitmix64` — the classic 64-bit finalizer; a pure function of its
/// seed, used for deterministic victim selection.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One contiguous batch of pending-query indices: `start .. start + len`
/// into the epoch's pending vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Batch {
    /// First pending index in the batch.
    pub start: u32,
    /// Number of queries in the batch.
    pub len: u32,
}

/// A per-worker two-ended batch queue (see the module docs). All batches
/// are present at construction; `pop_front` serves the owner in order,
/// `steal_back` serves thieves from the far end. Both ends race through
/// one compare-exchange on a packed `(front, back)` word, so the
/// single-remaining-batch case is settled by the CAS itself.
#[derive(Debug)]
pub struct BatchQueue {
    slots: Box<[u64]>,
    /// `front << 32 | back`: live range is `front .. back`.
    bounds: AtomicU64,
}

#[inline]
fn pack_batch(b: Batch) -> u64 {
    (b.start as u64) << 32 | b.len as u64
}

#[inline]
fn unpack_batch(v: u64) -> Batch {
    Batch {
        start: (v >> 32) as u32,
        len: v as u32,
    }
}

impl BatchQueue {
    /// Builds the queue over a fixed batch list.
    pub fn new(batches: &[Batch]) -> BatchQueue {
        assert!(batches.len() <= u32::MAX as usize);
        BatchQueue {
            slots: batches.iter().map(|&b| pack_batch(b)).collect(),
            bounds: AtomicU64::new(batches.len() as u64),
        }
    }

    /// Remaining batches (racy snapshot).
    pub fn remaining(&self) -> usize {
        let bounds = self.bounds.load(Ordering::Acquire);
        ((bounds as u32) - (bounds >> 32) as u32) as usize
    }

    #[inline]
    fn take(&self, from_front: bool) -> Option<Batch> {
        let mut bounds = self.bounds.load(Ordering::Acquire);
        loop {
            let (front, back) = ((bounds >> 32) as u32, bounds as u32);
            if front >= back {
                return None;
            }
            let (slot, next) = if from_front {
                (front, ((front as u64 + 1) << 32) | back as u64)
            } else {
                ((back - 1), ((front as u64) << 32) | (back as u64 - 1))
            };
            match self.bounds.compare_exchange_weak(
                bounds,
                next,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                // The slot array is immutable, so winning the CAS is the
                // whole ownership transfer.
                Ok(_) => return Some(unpack_batch(self.slots[slot as usize])),
                Err(actual) => bounds = actual,
            }
        }
    }

    /// Owner end: the next batch in sequential order.
    pub fn pop_front(&self) -> Option<Batch> {
        self.take(true)
    }

    /// Thief end: the batch the owner would reach last.
    pub fn steal_back(&self) -> Option<Batch> {
        self.take(false)
    }
}

/// The epoch publication log. `T` is the verdict record (the engine uses
/// `((ShapeId, TermId), Option<Failure>, bool)`); workers append with
/// [`PubLog::publish`] and read everything since their private mark with
/// [`PubLog::drain_from`]. The atomic length is a cheap "anything new?"
/// probe so the drain path takes the lock only when there is.
#[derive(Debug, Default)]
pub struct PubLog<T> {
    len: AtomicUsize,
    entries: Mutex<Vec<T>>,
}

impl<T: Clone> PubLog<T> {
    /// An empty log.
    pub fn new() -> PubLog<T> {
        PubLog {
            len: AtomicUsize::new(0),
            entries: Mutex::new(Vec::new()),
        }
    }

    /// Entries published so far (racy snapshot).
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Whether nothing has been published yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a block of entries.
    pub fn publish(&self, items: impl IntoIterator<Item = T>) -> usize {
        let mut entries = lock_ignore_poison(&self.entries);
        let before = entries.len();
        entries.extend(items);
        let published = entries.len() - before;
        self.len.store(entries.len(), Ordering::Release);
        published
    }

    /// Feeds every entry published since `*mark` to `f` and advances the
    /// mark. Returns how many entries were drained.
    pub fn drain_from(&self, mark: &mut usize, mut f: impl FnMut(&T)) -> usize {
        if self.len() <= *mark {
            return 0;
        }
        let entries = lock_ignore_poison(&self.entries);
        let drained = entries.len() - *mark;
        for entry in &entries[*mark..] {
            f(entry);
        }
        *mark = entries.len();
        drained
    }
}

/// Per-worker scheduler counters for one epoch, folded into
/// [`ShardMetrics`](crate::metrics::ShardMetrics) at the epoch boundary.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerCounters {
    /// Queries this worker executed.
    pub executed: u64,
    /// Of those, queries from batches stolen off a peer's queue.
    pub stolen: u64,
    /// Batches stolen.
    pub steals: u64,
    /// Steal probes issued (successful or not).
    pub steal_attempts: u64,
    /// Verdicts this worker appended to the publication log.
    pub published: u64,
    /// Publication-log entries this worker drained from peers.
    pub drained: u64,
    /// Wall-clock spent executing queries, µs.
    pub busy_us: u64,
    /// Wall-clock spent looking for work without finding any, µs.
    pub idle_us: u64,
}

/// Picks a steal victim for `worker` (of `jobs` workers, `jobs >= 2`):
/// a deterministic pseudo-random peer, seeded from the worker's task
/// count and the attempt number. Never returns `worker` itself.
#[inline]
pub fn steal_victim(worker: usize, jobs: usize, executed: u64, attempt: u64) -> usize {
    let seed = splitmix64(
        (worker as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(executed)
            .wrapping_add(attempt << 17),
    );
    // Map into the other `jobs - 1` workers, skipping self.
    let pick = (seed % (jobs as u64 - 1)) as usize;
    if pick >= worker {
        pick + 1
    } else {
        pick
    }
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A scoped fan-out registered with the executor: the caller's tasks plus
/// the bookkeeping to wait for (and propagate panics from) all of them.
#[derive(Default)]
struct ScopeInner {
    tasks: VecDeque<Job>,
    /// Tasks not yet *finished* (queued or running).
    remaining: usize,
    /// The first panic payload any task produced.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

#[derive(Default)]
struct Scope {
    inner: Mutex<ScopeInner>,
    done: Condvar,
}

impl Scope {
    /// Runs one task under the scope's completion protocol.
    fn run_one(&self, task: Job) {
        let result = panic::catch_unwind(AssertUnwindSafe(task));
        let mut inner = lock_ignore_poison(&self.inner);
        if let Err(payload) = result {
            inner.panic.get_or_insert(payload);
        }
        inner.remaining -= 1;
        if inner.remaining == 0 {
            self.done.notify_all();
        }
    }

    /// Pops a queued task, if any.
    fn next_task(&self) -> Option<Job> {
        lock_ignore_poison(&self.inner).tasks.pop_front()
    }
}

struct ExecState {
    high: VecDeque<Job>,
    normal: VecDeque<Job>,
    /// Active scoped fan-outs; drained before either request queue.
    scopes: Vec<Arc<Scope>>,
}

struct ExecInner {
    state: Mutex<ExecState>,
    work: Condvar,
    shutdown: AtomicBool,
    /// Unique executor identity, for the `on_pool_thread` check.
    id: u64,
    /// Jobs completed off the request queues.
    pub jobs_executed: AtomicU64,
    /// Scope tasks completed by pool threads (caller-run tasks are not
    /// counted here — they never occupied a pool thread).
    pub scope_tasks_executed: AtomicU64,
}

thread_local! {
    /// The executor id of the pool this thread belongs to, if any.
    static POOL_OF: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

static NEXT_EXECUTOR_ID: AtomicU64 = AtomicU64::new(1);

/// Snapshot of the executor's lifetime counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecutorCounters {
    /// Request jobs completed.
    pub jobs_executed: u64,
    /// Scope (intra-request) tasks completed on pool threads.
    pub scope_tasks_executed: u64,
    /// Request jobs currently queued (both priorities).
    pub queued: u64,
}

/// A shared thread pool serving two kinds of work (see the module docs):
/// fire-and-forget request jobs ([`Executor::submit`], two priorities,
/// bounded admission via [`Executor::try_submit`]) and scoped fan-outs
/// ([`Executor::run_tasks`]) that block the caller until every task has
/// finished. Scope tasks always win over queued request jobs.
pub struct Executor {
    inner: Arc<ExecInner>,
    threads: usize,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("threads", &self.threads)
            .field("id", &self.inner.id)
            .finish()
    }
}

impl Executor {
    /// Spawns a pool of `threads` workers. `stack_size` applies to each
    /// pool thread (the engine passes its big lazily-committed stack when
    /// the schema recurses; the server always does, since it cannot know
    /// its schemas up front).
    pub fn new(threads: usize, stack_size: Option<usize>, name: &str) -> Executor {
        let threads = threads.max(1);
        let inner = Arc::new(ExecInner {
            state: Mutex::new(ExecState {
                high: VecDeque::new(),
                normal: VecDeque::new(),
                scopes: Vec::new(),
            }),
            work: Condvar::new(),
            shutdown: AtomicBool::new(false),
            id: NEXT_EXECUTOR_ID.fetch_add(1, Ordering::Relaxed),
            jobs_executed: AtomicU64::new(0),
            scope_tasks_executed: AtomicU64::new(0),
        });
        let handles = (0..threads)
            .map(|i| {
                let inner = Arc::clone(&inner);
                let mut builder = std::thread::Builder::new().name(format!("{name}-{i}"));
                if let Some(stack) = stack_size {
                    builder = builder.stack_size(stack);
                }
                builder
                    .spawn(move || pool_thread(inner))
                    .expect("spawn executor thread")
            })
            .collect();
        Executor {
            inner,
            threads,
            handles: Mutex::new(handles),
        }
    }

    /// Pool size.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether the calling thread is one of this executor's pool threads.
    /// `run_tasks` callers on a pool thread participate in their own
    /// scope's work (they already have a pool-sized stack, and parking
    /// them could starve the pool); foreign callers only participate when
    /// the task is stack-safe for them.
    pub fn on_pool_thread(&self) -> bool {
        POOL_OF.with(|cell| cell.get() == self.inner.id)
    }

    /// Enqueues a fire-and-forget job. High-priority jobs (the server's
    /// cheap introspection endpoints) jump the normal queue.
    pub fn submit(&self, high_priority: bool, job: Job) {
        let mut state = lock_ignore_poison(&self.inner.state);
        if high_priority {
            state.high.push_back(job);
        } else {
            state.normal.push_back(job);
        }
        drop(state);
        self.inner.work.notify_one();
    }

    /// Bounded admission: enqueues unless `cap` jobs are already queued
    /// at that priority, returning the job to the caller on refusal (the
    /// server turns that into `503` + `Retry-After`).
    pub fn try_submit(&self, high_priority: bool, cap: usize, job: Job) -> Result<(), Job> {
        {
            let mut state = lock_ignore_poison(&self.inner.state);
            let queue = if high_priority {
                &mut state.high
            } else {
                &mut state.normal
            };
            if queue.len() >= cap {
                return Err(job);
            }
            queue.push_back(job);
        }
        self.inner.work.notify_one();
        Ok(())
    }

    /// Request jobs currently queued (both priorities).
    pub fn queued(&self) -> usize {
        let state = lock_ignore_poison(&self.inner.state);
        state.high.len() + state.normal.len()
    }

    /// Lifetime counters.
    pub fn counters(&self) -> ExecutorCounters {
        ExecutorCounters {
            jobs_executed: self.inner.jobs_executed.load(Ordering::Relaxed),
            scope_tasks_executed: self.inner.scope_tasks_executed.load(Ordering::Relaxed),
            queued: self.queued() as u64,
        }
    }

    /// Runs a batch of borrowed tasks to completion on the pool,
    /// returning only when every task has finished. If any task panicked,
    /// the first payload is re-raised on the caller *after* all tasks are
    /// done — the borrow of caller state never outlives the call, which
    /// is what makes the lifetime erasure below sound.
    ///
    /// `caller_participates` lets the calling thread execute tasks from
    /// its own scope while it waits (pool-thread callers should always
    /// pass `true` — see [`Executor::on_pool_thread`]).
    pub fn run_tasks<'scope>(
        &self,
        tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>,
        caller_participates: bool,
    ) {
        if tasks.is_empty() {
            return;
        }
        // A shut-down pool cannot make progress; degrade to inline
        // execution rather than deadlocking the caller.
        let caller_participates = caller_participates || self.inner.shutdown.load(Ordering::SeqCst);
        let scope = Arc::new(Scope::default());
        {
            let mut inner = lock_ignore_poison(&scope.inner);
            inner.remaining = tasks.len();
            // SAFETY: each task borrows for `'scope`, which outlives this
            // call; the function does not return until `remaining == 0`,
            // i.e. every task (including panicked ones) has fully
            // finished, and `Scope::next_task` can hand out no task after
            // that point because the queue is drained before `remaining`
            // reaches zero. So no task, and no borrow inside one, is ever
            // used after `'scope` ends.
            inner.tasks = tasks
                .into_iter()
                .map(|t| unsafe {
                    std::mem::transmute::<
                        Box<dyn FnOnce() + Send + 'scope>,
                        Box<dyn FnOnce() + Send + 'static>,
                    >(t)
                })
                .collect();
        }
        {
            let mut state = lock_ignore_poison(&self.inner.state);
            state.scopes.push(Arc::clone(&scope));
        }
        self.inner.work.notify_all();

        if caller_participates {
            while let Some(task) = scope.next_task() {
                scope.run_one(task);
            }
        }
        // Wait for in-flight tasks (and, for a non-participating caller,
        // queued ones picked up by the pool). The timeout guards against
        // missed wakeups; `remaining` is the ground truth.
        let mut inner = lock_ignore_poison(&scope.inner);
        while inner.remaining > 0 {
            let (next, _) = scope
                .done
                .wait_timeout(inner, Duration::from_millis(50))
                .unwrap_or_else(|e| e.into_inner());
            inner = next;
        }
        let payload = inner.panic.take();
        drop(inner);
        {
            let mut state = lock_ignore_poison(&self.inner.state);
            state.scopes.retain(|s| !Arc::ptr_eq(s, &scope));
        }
        if let Some(payload) = payload {
            panic::resume_unwind(payload);
        }
    }

    /// Signals shutdown and joins the pool. Already-queued jobs and
    /// active scopes are drained first — pool threads only exit once both
    /// request queues and every scope are empty. Idempotent.
    pub fn shutdown_and_join(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.work.notify_all();
        let mut handles = lock_ignore_poison(&self.handles);
        for handle in handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shutdown_and_join();
    }
}

fn pool_thread(inner: Arc<ExecInner>) {
    POOL_OF.with(|cell| cell.set(inner.id));
    loop {
        // Pick work: scope tasks first, then the request queues.
        let mut picked_scope: Option<(Arc<Scope>, Job)> = None;
        let mut picked_job: Option<Job> = None;
        {
            let mut state = lock_ignore_poison(&inner.state);
            'pick: loop {
                for scope in &state.scopes {
                    if let Some(task) = scope.next_task() {
                        picked_scope = Some((Arc::clone(scope), task));
                        break 'pick;
                    }
                }
                if let Some(job) = state.high.pop_front() {
                    picked_job = Some(job);
                    break 'pick;
                }
                if let Some(job) = state.normal.pop_front() {
                    picked_job = Some(job);
                    break 'pick;
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let (next, _) = inner
                    .work
                    .wait_timeout(state, Duration::from_millis(50))
                    .unwrap_or_else(|e| e.into_inner());
                state = next;
            }
        }
        if let Some((scope, task)) = picked_scope {
            scope.run_one(task);
            inner.scope_tasks_executed.fetch_add(1, Ordering::Relaxed);
        } else if let Some(job) = picked_job {
            let _ = panic::catch_unwind(AssertUnwindSafe(job));
            inner.jobs_executed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_queue_two_ended_order() {
        let batches: Vec<Batch> = (0..5)
            .map(|i| Batch {
                start: i * 10,
                len: 10,
            })
            .collect();
        let q = BatchQueue::new(&batches);
        assert_eq!(q.remaining(), 5);
        assert_eq!(q.pop_front().unwrap().start, 0);
        assert_eq!(q.steal_back().unwrap().start, 40);
        assert_eq!(q.pop_front().unwrap().start, 10);
        assert_eq!(q.steal_back().unwrap().start, 30);
        // Last batch: whoever wins the CAS gets it, exactly once.
        assert_eq!(q.pop_front().unwrap().start, 20);
        assert!(q.pop_front().is_none());
        assert!(q.steal_back().is_none());
        assert_eq!(q.remaining(), 0);
    }

    #[test]
    fn batch_queue_concurrent_takes_each_batch_once() {
        let batches: Vec<Batch> = (0..997).map(|i| Batch { start: i, len: 1 }).collect();
        let q = BatchQueue::new(&batches);
        let seen: Vec<AtomicUsize> = (0..997).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|s| {
            for t in 0..4 {
                let q = &q;
                let seen = &seen;
                s.spawn(move || loop {
                    let b = if t == 0 {
                        q.pop_front()
                    } else {
                        q.steal_back()
                    };
                    match b {
                        Some(b) => {
                            seen[b.start as usize].fetch_add(1, Ordering::Relaxed);
                        }
                        None => break,
                    }
                });
            }
        });
        for (i, c) in seen.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "batch {i} taken != once");
        }
    }

    #[test]
    fn publog_drains_only_new_entries() {
        let log: PubLog<u32> = PubLog::new();
        let mut mark = 0;
        assert_eq!(log.drain_from(&mut mark, |_| unreachable!()), 0);
        log.publish([1, 2, 3]);
        let mut seen = Vec::new();
        assert_eq!(log.drain_from(&mut mark, |&e| seen.push(e)), 3);
        assert_eq!(seen, [1, 2, 3]);
        log.publish([4]);
        assert_eq!(log.drain_from(&mut mark, |&e| seen.push(e)), 1);
        assert_eq!(seen, [1, 2, 3, 4]);
        assert_eq!(log.drain_from(&mut mark, |_| unreachable!()), 0);
        assert_eq!(log.len(), 4);
    }

    #[test]
    fn steal_victim_is_deterministic_and_never_self() {
        for jobs in 2..6 {
            for worker in 0..jobs {
                for attempt in 0..32u64 {
                    let v = steal_victim(worker, jobs, 7, attempt);
                    assert_ne!(v, worker);
                    assert!(v < jobs);
                    assert_eq!(v, steal_victim(worker, jobs, 7, attempt));
                }
            }
        }
    }

    #[test]
    fn run_tasks_executes_borrowed_tasks() {
        let exec = Executor::new(3, None, "sched-test");
        let mut out = vec![0u64; 8];
        let tasks: Vec<Box<dyn FnOnce() + Send>> = out
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| {
                let task: Box<dyn FnOnce() + Send> = Box::new(move || *slot = i as u64 + 1);
                task
            })
            .collect();
        exec.run_tasks(tasks, true);
        assert_eq!(out, (1..=8).collect::<Vec<_>>());
        assert!(exec.counters().scope_tasks_executed <= 8);
    }

    #[test]
    fn run_tasks_propagates_first_panic_after_all_tasks_finish() {
        let exec = Executor::new(2, None, "sched-panic");
        let done = AtomicUsize::new(0);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..6)
                .map(|i| {
                    let done = &done;
                    let task: Box<dyn FnOnce() + Send> = Box::new(move || {
                        if i == 2 {
                            panic!("boom");
                        }
                        done.fetch_add(1, Ordering::Relaxed);
                    });
                    task
                })
                .collect();
            exec.run_tasks(tasks, true);
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
        assert_eq!(
            done.load(Ordering::Relaxed),
            5,
            "non-panicking tasks all ran"
        );
        // The pool survives a panicking scope task.
        let mut flag = false;
        exec.run_tasks(vec![Box::new(|| flag = true)], true);
        assert!(flag);
    }

    #[test]
    fn submit_and_bounded_admission() {
        let exec = Executor::new(1, None, "sched-admit");
        // Saturate the single thread so queue depth is observable.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        exec.submit(
            false,
            Box::new(move || {
                let (lock, cv) = &*g;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            }),
        );
        // Wait for the blocker to be picked up off the queue.
        for _ in 0..200 {
            if exec.queued() == 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(exec.try_submit(false, 1, Box::new(|| {})).is_ok());
        let refused = exec.try_submit(false, 1, Box::new(|| {}));
        assert!(refused.is_err(), "cap reached: admission must refuse");
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        exec.shutdown_and_join();
        assert_eq!(exec.counters().jobs_executed, 2);
        assert_eq!(exec.queued(), 0);
    }

    #[test]
    fn run_tasks_on_shut_down_pool_degrades_to_inline() {
        let exec = Executor::new(1, None, "sched-down");
        exec.shutdown_and_join();
        let mut ran = false;
        exec.run_tasks(vec![Box::new(|| ran = true)], false);
        assert!(ran, "inline fallback must still run the task");
    }
}

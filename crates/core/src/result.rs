//! Validation results: per-node match outcomes with failure explanations,
//! whole-graph shape typings, and engine statistics.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

use shapex_rdf::pool::{TermId, TermPool};
use shapex_shex::ast::ShapeLabel;

use crate::budget::Exhaustion;
use crate::compile::ShapeId;

/// Why a node failed to match a shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// Consuming this triple drove the expression to `∅` — the triple is
    /// not allowed by (the remainder of) the shape. For inverse arcs the
    /// stored triple is `⟨other, p, node⟩`.
    UnexpectedTriple {
        /// The triple's subject.
        subject: TermId,
        /// The triple's predicate.
        predicate: TermId,
        /// The triple's object.
        object: TermId,
    },
    /// All triples consumed but the residual expression is not nullable —
    /// required arcs are missing.
    MissingRequired,
    /// (SORBE fast path) an arc's triple count fell outside its interval.
    Cardinality {
        /// Rendered arc constraint, e.g. `name→string`.
        arc: String,
        /// How many triples matched the arc.
        found: u32,
        /// The arc's minimum.
        min: u32,
        /// `None` for an unbounded maximum.
        max: Option<u32>,
    },
}

/// A failure explanation: what went wrong and the expression state at that
/// point (in the paper's notation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// What went wrong.
    pub kind: FailureKind,
    /// The expression state *before* the failing step, rendered.
    pub expectation: String,
}

impl Failure {
    /// Renders the failure with terms resolved against `pool`.
    pub fn render(&self, pool: &TermPool) -> String {
        match &self.kind {
            FailureKind::UnexpectedTriple {
                subject,
                predicate,
                object,
            } => format!(
                "triple {} {} {} does not match remaining expectation {}",
                pool.term(*subject),
                pool.term(*predicate),
                pool.term(*object),
                self.expectation
            ),
            FailureKind::MissingRequired => format!(
                "node is missing required arcs; remaining expectation {} does not accept the empty graph",
                self.expectation
            ),
            FailureKind::Cardinality {
                arc,
                found,
                min,
                max,
            } => {
                let bounds = match max {
                    Some(max) => format!("between {min} and {max}"),
                    None => format!("at least {min}"),
                };
                format!("arc {arc} occurs {found} times but must occur {bounds}")
            }
        }
    }
}

/// Tri-state answer to one `(node, shape)` question under a budget.
///
/// `Conforms` and `Fails` are definitive — the fixpoint completed. An
/// `Exhausted` query gave no answer at all: the budget tripped mid-run, so
/// the pair is neither typed nor refuted, and retrying under a larger
/// budget may yield either definitive outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// The node conforms to the shape.
    Conforms,
    /// The node does not conform; carries the explanation when one was
    /// identified.
    Fails(Option<Failure>),
    /// The budget tripped before an answer was reached.
    Exhausted(Exhaustion),
}

impl Outcome {
    /// True only for a definitive [`Outcome::Conforms`].
    pub fn matched(&self) -> bool {
        matches!(self, Outcome::Conforms)
    }

    /// True when the budget tripped.
    pub fn is_exhausted(&self) -> bool {
        matches!(self, Outcome::Exhausted(_))
    }

    /// The failure explanation, if this is a failing outcome with one.
    pub fn failure(&self) -> Option<&Failure> {
        match self {
            Outcome::Fails(f) => f.as_ref(),
            _ => None,
        }
    }

    /// Consumes the outcome, yielding the failure explanation if any.
    pub fn into_failure(self) -> Option<Failure> {
        match self {
            Outcome::Fails(f) => f,
            _ => None,
        }
    }

    /// The exhaustion record, if the budget tripped.
    pub fn exhaustion(&self) -> Option<Exhaustion> {
        match self {
            Outcome::Exhausted(e) => Some(*e),
            _ => None,
        }
    }
}

/// Result of checking one node against one shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchResult {
    /// Whether the node conforms to the shape.
    pub matched: bool,
    /// Present when `matched == false` and a cause was identified.
    pub failure: Option<Failure>,
}

impl MatchResult {
    /// A conforming result.
    pub fn success() -> Self {
        MatchResult {
            matched: true,
            failure: None,
        }
    }

    /// A non-conforming result with its explanation.
    pub fn failure(failure: Failure) -> Self {
        MatchResult {
            matched: false,
            failure: Some(failure),
        }
    }
}

/// A shape typing `τ`: which `(node, shape)` pairs hold (paper §8). This is
/// the greatest-fixpoint typing restricted to the pairs actually queried.
///
/// Under a budget this may be a **partial** typing: pairs whose query
/// exhausted its budget are listed in [`Typing::exhausted`] — they are
/// neither typed nor refuted. [`Typing::is_partial`] distinguishes the two
/// regimes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Typing {
    map: HashMap<TermId, BTreeSet<ShapeId>>,
    /// `(node, shape)` queries that tripped the budget, with what tripped.
    pub exhausted: Vec<(TermId, ShapeId, Exhaustion)>,
}

impl Typing {
    /// An empty typing.
    pub fn new() -> Self {
        Typing::default()
    }

    /// Records that `node` has `shape`.
    pub fn add(&mut self, node: TermId, shape: ShapeId) {
        self.map.entry(node).or_default().insert(shape);
    }

    /// Records that the `(node, shape)` query tripped its budget.
    pub fn add_exhausted(&mut self, node: TermId, shape: ShapeId, exhaustion: Exhaustion) {
        self.exhausted.push((node, shape, exhaustion));
    }

    /// True when at least one query exhausted its budget — the typing is a
    /// sound under-approximation of the total one.
    pub fn is_partial(&self) -> bool {
        !self.exhausted.is_empty()
    }

    /// Does the typing contain `(node, shape)`?
    pub fn has(&self, node: TermId, shape: ShapeId) -> bool {
        self.map.get(&node).is_some_and(|s| s.contains(&shape))
    }

    /// Shapes recorded for `node`.
    pub fn shapes_of(&self, node: TermId) -> impl Iterator<Item = ShapeId> + '_ {
        self.map.get(&node).into_iter().flatten().copied()
    }

    /// Nodes with at least one recorded shape.
    pub fn nodes(&self) -> impl Iterator<Item = TermId> + '_ {
        self.map.keys().copied()
    }

    /// Total number of `(node, shape)` entries.
    pub fn len(&self) -> usize {
        self.map.values().map(BTreeSet::len).sum()
    }

    /// True when no pair is recorded.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Converts the typing into a (result) shape map: one positive
    /// association per recorded `(node, shape)` pair, sorted by rendering.
    pub fn to_shape_map(
        &self,
        pool: &TermPool,
        labels: &dyn Fn(ShapeId) -> ShapeLabel,
    ) -> shapex_shex::shapemap::ShapeMap {
        let mut associations: Vec<shapex_shex::shapemap::Association> = self
            .map
            .iter()
            .flat_map(|(node, shapes)| {
                shapes.iter().map(|s| shapex_shex::shapemap::Association {
                    node: pool.term(*node).clone(),
                    shape: labels(*s),
                    expected: true,
                })
            })
            .collect();
        associations.sort_by_key(|a| (a.node.to_string(), a.shape.as_str().to_string()));
        shapex_shex::shapemap::ShapeMap { associations }
    }

    /// Renders the typing as sorted `node → <Shape>` lines.
    pub fn render(&self, pool: &TermPool, labels: &dyn Fn(ShapeId) -> ShapeLabel) -> String {
        let mut lines: Vec<String> = Vec::new();
        for (node, shapes) in &self.map {
            for s in shapes {
                lines.push(format!("{} → {}", pool.term(*node), labels(*s)));
            }
        }
        lines.sort();
        lines.join("\n")
    }
}

/// Counters exposed for the benchmark harness and the E9 ablations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Stats {
    /// Individual derivative-rule applications (`∂` node visits).
    pub derivative_steps: u64,
    /// Hits in the `(expression, triple-class)` derivative memo.
    pub deriv_memo_hits: u64,
    /// Distinct triple classes (satisfaction profiles) interned.
    pub triple_classes: u64,
    /// `(node, shape)` checks actually evaluated (memo misses).
    pub node_checks: u64,
    /// Greatest-fixpoint restarts triggered by failed coinductive
    /// assumptions.
    pub gfp_reruns: u64,
    /// Node checks answered by the SORBE counting fast path.
    pub sorbe_checks: u64,
    /// Expression-arena size at last measurement.
    pub expr_pool_size: usize,
    /// Budget steps charged across all queries.
    pub budget_steps: u64,
    /// Largest expression-arena size any query's meter observed.
    pub peak_arena_nodes: usize,
    /// Deepest `(node, shape)` recursion any query reached.
    pub max_depth_reached: u32,
    /// Queries aborted by budget exhaustion.
    pub exhausted_checks: u64,
    /// Memoised `(node, shape)` answers dropped by
    /// [`revalidate`](crate::Engine::revalidate)'s invalidation closure.
    pub invalidated_pairs: u64,
    /// Pairs the dirty-frontier re-typing had to re-evaluate.
    pub retyped_pairs: u64,
    /// Pairs answered straight from the surviving memo during a
    /// revalidation.
    pub reused_pairs: u64,
}

impl Stats {
    /// Folds another engine's counters into this one — used when parallel
    /// workers' stats are aggregated into the parent engine. Monotone
    /// counters add; high-water marks take the max. `triple_classes` (and
    /// the pool-size measures) become an over-count across workers, since
    /// each worker interns its own class/arena tables.
    pub fn absorb(&mut self, other: &Stats) {
        self.derivative_steps += other.derivative_steps;
        self.deriv_memo_hits += other.deriv_memo_hits;
        self.triple_classes += other.triple_classes;
        self.node_checks += other.node_checks;
        self.gfp_reruns += other.gfp_reruns;
        self.sorbe_checks += other.sorbe_checks;
        self.budget_steps += other.budget_steps;
        self.exhausted_checks += other.exhausted_checks;
        self.invalidated_pairs += other.invalidated_pairs;
        self.retyped_pairs += other.retyped_pairs;
        self.reused_pairs += other.reused_pairs;
        self.expr_pool_size = self.expr_pool_size.max(other.expr_pool_size);
        self.peak_arena_nodes = self.peak_arena_nodes.max(other.peak_arena_nodes);
        self.max_depth_reached = self.max_depth_reached.max(other.max_depth_reached);
    }

    /// Folds in the delta a worker accumulated between the `prev` and
    /// `now` snapshots — the wave-boundary merge primitive of
    /// [`type_all_par`](crate::Engine::type_all_par). Monotone counters
    /// add the difference; high-water marks take the max of the absolute
    /// value (they are levels, not rates). Calling this once per wave
    /// with an advancing `prev` counts every increment exactly once.
    pub fn absorb_delta(&mut self, prev: &Stats, now: &Stats) {
        self.derivative_steps += now.derivative_steps - prev.derivative_steps;
        self.deriv_memo_hits += now.deriv_memo_hits - prev.deriv_memo_hits;
        self.triple_classes += now.triple_classes - prev.triple_classes;
        self.node_checks += now.node_checks - prev.node_checks;
        self.gfp_reruns += now.gfp_reruns - prev.gfp_reruns;
        self.sorbe_checks += now.sorbe_checks - prev.sorbe_checks;
        self.budget_steps += now.budget_steps - prev.budget_steps;
        self.exhausted_checks += now.exhausted_checks - prev.exhausted_checks;
        self.invalidated_pairs += now.invalidated_pairs - prev.invalidated_pairs;
        self.retyped_pairs += now.retyped_pairs - prev.retyped_pairs;
        self.reused_pairs += now.reused_pairs - prev.reused_pairs;
        self.expr_pool_size = self.expr_pool_size.max(now.expr_pool_size);
        self.peak_arena_nodes = self.peak_arena_nodes.max(now.peak_arena_nodes);
        self.max_depth_reached = self.max_depth_reached.max(now.max_depth_reached);
    }

    /// The counters as a JSON object (the `stats` member of the
    /// `--report json` document — schema documented in `DESIGN.md`).
    pub fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "derivative_steps": self.derivative_steps,
            "deriv_memo_hits": self.deriv_memo_hits,
            "triple_classes": self.triple_classes,
            "node_checks": self.node_checks,
            "gfp_reruns": self.gfp_reruns,
            "sorbe_checks": self.sorbe_checks,
            "expr_pool_size": self.expr_pool_size,
            "budget_steps": self.budget_steps,
            "peak_arena_nodes": self.peak_arena_nodes,
            "max_depth_reached": self.max_depth_reached as u64,
            "exhausted_checks": self.exhausted_checks,
            "invalidated_pairs": self.invalidated_pairs,
            "retyped_pairs": self.retyped_pairs,
            "reused_pairs": self.reused_pairs,
        })
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "∂-steps={} memo-hits={} classes={} checks={} sorbe={} reruns={} pool={}",
            self.derivative_steps,
            self.deriv_memo_hits,
            self.triple_classes,
            self.node_checks,
            self.sorbe_checks,
            self.gfp_reruns,
            self.expr_pool_size
        )?;
        if self.budget_steps > 0 || self.exhausted_checks > 0 {
            write!(
                f,
                " budget-steps={} peak-arena={} max-depth={} exhausted={}",
                self.budget_steps,
                self.peak_arena_nodes,
                self.max_depth_reached,
                self.exhausted_checks
            )?;
        }
        if self.invalidated_pairs > 0 || self.retyped_pairs > 0 || self.reused_pairs > 0 {
            write!(
                f,
                " invalidated={} retyped={} reused={}",
                self.invalidated_pairs, self.retyped_pairs, self.reused_pairs
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typing_add_and_query() {
        let mut pool = TermPool::new();
        let n = pool.intern_iri("http://e/n");
        let m = pool.intern_iri("http://e/m");
        let mut t = Typing::new();
        t.add(n, ShapeId(0));
        t.add(n, ShapeId(1));
        t.add(n, ShapeId(0)); // duplicate ignored
        assert!(t.has(n, ShapeId(0)));
        assert!(t.has(n, ShapeId(1)));
        assert!(!t.has(m, ShapeId(0)));
        assert_eq!(t.len(), 2);
        assert_eq!(t.shapes_of(n).count(), 2);
        assert_eq!(t.shapes_of(m).count(), 0);
    }

    #[test]
    fn typing_render_sorted() {
        let mut pool = TermPool::new();
        let n = pool.intern_iri("http://e/b");
        let m = pool.intern_iri("http://e/a");
        let mut t = Typing::new();
        t.add(n, ShapeId(0));
        t.add(m, ShapeId(0));
        let s = t.render(&pool, &|_| ShapeLabel::new("S"));
        let lines: Vec<_> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("/a"));
    }

    #[test]
    fn typing_to_shape_map() {
        let mut pool = TermPool::new();
        let n = pool.intern_iri("http://e/n");
        let mut t = Typing::new();
        t.add(n, ShapeId(0));
        let map = t.to_shape_map(&pool, &|_| ShapeLabel::new("S"));
        assert_eq!(map.len(), 1);
        assert!(map.associations[0].expected);
        assert_eq!(map.associations[0].shape.as_str(), "S");
    }

    #[test]
    fn failure_render_unexpected() {
        let mut pool = TermPool::new();
        let s = pool.intern_iri("http://e/s");
        let p = pool.intern_iri("http://e/p");
        let o = pool.intern_iri("http://e/o");
        let f = Failure {
            kind: FailureKind::UnexpectedTriple {
                subject: s,
                predicate: p,
                object: o,
            },
            expectation: "a→1".to_string(),
        };
        let msg = f.render(&pool);
        assert!(msg.contains("<http://e/p>"));
        assert!(msg.contains("a→1"));
    }

    #[test]
    fn failure_render_missing() {
        let pool = TermPool::new();
        let f = Failure {
            kind: FailureKind::MissingRequired,
            expectation: "b→{1,2}".to_string(),
        };
        assert!(f.render(&pool).contains("missing required"));
    }

    #[test]
    fn stats_display() {
        let s = Stats {
            derivative_steps: 10,
            ..Stats::default()
        };
        assert!(s.to_string().contains("∂-steps=10"));
        assert!(!s.to_string().contains("budget-steps"));
        let governed = Stats {
            budget_steps: 7,
            exhausted_checks: 1,
            ..Stats::default()
        };
        assert!(governed.to_string().contains("budget-steps=7"));
        assert!(governed.to_string().contains("exhausted=1"));
    }

    #[test]
    fn outcome_accessors() {
        use crate::budget::{Budget, Resource};
        assert!(Outcome::Conforms.matched());
        assert!(!Outcome::Fails(None).matched());
        let e = Budget::steps(1).meter().step().unwrap_err();
        let o = Outcome::Exhausted(e);
        assert!(o.is_exhausted());
        assert!(!o.matched());
        assert_eq!(o.exhaustion().unwrap().resource, Resource::Steps);
        assert!(o.failure().is_none());
        let f = Failure {
            kind: FailureKind::MissingRequired,
            expectation: "x".into(),
        };
        let fails = Outcome::Fails(Some(f.clone()));
        assert_eq!(fails.failure(), Some(&f));
        assert_eq!(fails.into_failure(), Some(f));
    }

    #[test]
    fn typing_partial_tracking() {
        use crate::budget::Budget;
        let mut pool = TermPool::new();
        let n = pool.intern_iri("http://e/n");
        let mut t = Typing::new();
        assert!(!t.is_partial());
        let e = Budget::steps(1).meter().step().unwrap_err();
        t.add_exhausted(n, ShapeId(0), e);
        assert!(t.is_partial());
        assert_eq!(t.exhausted.len(), 1);
        assert!(!t.has(n, ShapeId(0)));
    }
}

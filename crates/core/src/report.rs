//! JSON report documents for validation runs.
//!
//! The document schema is documented in `DESIGN.md` (§ Observability) and
//! held stable by the CLI tests and the CI smoke step. It lives in the
//! core crate — not the CLI — because byte-identical reports are the
//! contract between every front end: `shapex validate --report json` and
//! the resident server's `/validate` endpoint assemble their documents
//! through these same builders, which is what lets the CI smoke job diff
//! one against the other byte for byte.
//!
//! Stats, metrics, and exhaustion blocks come from the engine types' own
//! `to_json` methods; this module assembles the document around them.

use serde_json::{json, Map, Value};

use shapex_rdf::graph::Graph;
use shapex_rdf::pool::TermPool;

use crate::budget::Exhaustion;
use crate::compile::ShapeId;
use crate::engine::{Engine, Trace};
use crate::metrics::Metrics;
use crate::result::{Stats, Typing};

/// Serializes a report document: pretty-printed, trailing newline.
pub fn render(v: &Value) -> String {
    let mut s = serde_json::to_string_pretty(v).expect("report values contain no NaN");
    s.push('\n');
    s
}

/// One `(node, shape)` verdict row.
pub fn result_json(
    node: &str,
    shape: &str,
    verdict: &str,
    failure: Option<String>,
    exhaustion: Option<&Exhaustion>,
) -> Value {
    let mut m = Map::new();
    m.insert("node".to_string(), Value::from(node));
    m.insert("shape".to_string(), Value::from(shape));
    m.insert("verdict".to_string(), Value::from(verdict));
    if let Some(f) = failure {
        m.insert("failure".to_string(), Value::from(f));
    }
    if let Some(e) = exhaustion {
        m.insert("exhaustion".to_string(), exhaustion_json(e));
    }
    Value::Object(m)
}

/// The `exhaustion` block of a row or document.
pub fn exhaustion_json(e: &Exhaustion) -> Value {
    e.to_json()
}

/// The `stats` block.
pub fn stats_json(s: &Stats) -> Value {
    s.to_json()
}

/// The `metrics` block; `labels(i)` names shape `i` for per-shape rows.
pub fn metrics_json(m: &Metrics, labels: &dyn Fn(usize) -> String) -> Value {
    m.to_json(labels)
}

/// A §7 derivative trace as structured steps.
pub fn trace_json(t: &Trace, pool: &TermPool) -> Value {
    let steps: Vec<Value> = t
        .steps
        .iter()
        .map(|s| {
            json!({
                "subject": pool.term(s.subject).to_string(),
                "predicate": pool.term(s.predicate).to_string(),
                "object": pool.term(s.object).to_string(),
                "inverse": s.inverse,
                "before": s.before.as_str(),
                "after": s.after.as_str(),
            })
        })
        .collect();
    json!({
        "steps": Value::Array(steps),
        "residual": t.residual.as_str(),
        "nullable": t.nullable,
        "matched": t.matched,
    })
}

/// The top-level document skeleton shared by every `validate` mode.
pub struct ReportDoc {
    root: Map<String, Value>,
    results: Vec<Value>,
    exhausted: Vec<Value>,
}

impl ReportDoc {
    /// A fresh skeleton for the given mode/engine pair.
    pub fn new(mode: &str, engine: &str) -> Self {
        let mut root = Map::new();
        root.insert("tool".to_string(), Value::from("shapex"));
        root.insert("mode".to_string(), Value::from(mode));
        root.insert("engine".to_string(), Value::from(engine));
        ReportDoc {
            root,
            results: Vec::new(),
            exhausted: Vec::new(),
        }
    }

    /// Sets a top-level key.
    pub fn set(&mut self, key: &str, value: Value) {
        self.root.insert(key.to_string(), value);
    }

    /// Appends one verdict row (see [`result_json`]).
    pub fn push_result(&mut self, row: Value) {
        self.results.push(row);
    }

    /// Appends one row to the document-level `exhausted` array.
    pub fn push_exhausted(&mut self, node: &str, shape: &str, e: &Exhaustion) {
        let mut m = Map::new();
        m.insert("node".to_string(), Value::from(node));
        m.insert("shape".to_string(), Value::from(shape));
        m.insert("exhaustion".to_string(), exhaustion_json(e));
        self.exhausted.push(Value::Object(m));
    }

    /// Seals the document. `conforms` is the run's overall verdict; it is
    /// `null` when any check exhausted (the honest answer is "unknown").
    pub fn finish(mut self, conforms: Option<bool>) -> Value {
        self.root.insert(
            "conforms".to_string(),
            conforms.map_or(Value::Null, Value::from),
        );
        self.root
            .insert("results".to_string(), Value::Array(self.results));
        self.root
            .insert("exhausted".to_string(), Value::Array(self.exhausted));
        Value::Object(self.root)
    }
}

/// Fills a report document with the per-`(node, shape)` rows of a full
/// typing: `conforms` rows straight from the typing, `exhausted` rows (plus
/// the document's exhaustion block) for unanswered pairs, and `fails` rows
/// with a recomputed failure trace for everything else. Shared by the plain
/// full-typing report, both halves of the `--delta` before/after report,
/// and the server's `/validate` endpoint.
pub fn push_typing_rows(
    doc: &mut ReportDoc,
    engine: &mut Engine,
    graph: &Graph,
    pool: &TermPool,
    typing: &Typing,
) {
    let exhausted: std::collections::HashMap<_, _> = typing
        .exhausted
        .iter()
        .map(|&(n, s, e)| ((n, s), e))
        .collect();
    for node in graph.subjects().collect::<Vec<_>>() {
        for i in 0..engine.schema().shapes.len() {
            let shape = ShapeId(i as u32);
            let node_name = pool.term(node).to_string();
            let shape_name = engine.label_of(shape).as_str().to_string();
            if typing.has(node, shape) {
                doc.push_result(result_json(&node_name, &shape_name, "conforms", None, None));
            } else if let Some(e) = exhausted.get(&(node, shape)) {
                doc.push_result(result_json(
                    &node_name,
                    &shape_name,
                    "exhausted",
                    None,
                    Some(e),
                ));
                doc.push_exhausted(&node_name, &shape_name, e);
            } else {
                let failure = engine
                    .check_id(graph, pool, node, shape)
                    .into_failure()
                    .map(|f| f.render(pool));
                doc.push_result(result_json(&node_name, &shape_name, "fails", failure, None));
            }
        }
    }
}

/// Seals a derivative-engine report document: attaches the run stats, the
/// metrics block, and the lenient skip count, then serializes it.
pub fn finish_engine_doc(
    mut doc: ReportDoc,
    engine: &Engine,
    skipped: usize,
    conforms: Option<bool>,
) -> String {
    if skipped > 0 {
        doc.set("lenient_skipped", Value::from(skipped));
    }
    doc.set("stats", stats_json(&engine.stats()));
    if let Some(m) = engine.metrics() {
        let labels = |i: usize| engine.label_of(ShapeId(i as u32)).as_str().to_string();
        doc.set("metrics", metrics_json(m, &labels));
    }
    render(&doc.finish(conforms))
}

//! The decomposition-based matcher and its greatest-fixpoint typing driver.

use std::collections::HashMap;

use shapex::budget::{Budget, BudgetMeter, Exhaustion};
use shapex_rdf::graph::Graph;
use shapex_rdf::pool::{TermId, TermPool};
use shapex_rdf::term::Term;
use shapex_shex::ast::{ObjectConstraint, PredicateSet, ShapeExpr, ShapeLabel};
use shapex_shex::schema::{Schema, SchemaError};

/// Baseline configuration.
#[derive(Debug, Clone, Copy)]
pub struct BtConfig {
    /// Per-node resource limits (shared [`shapex::budget::Budget`] type).
    /// The matcher is exponential, so the default caps rule applications
    /// at 50M rather than hang; arena limits are meaningless here (no
    /// expression arena) and are ignored.
    pub budget: Budget,
}

impl Default for BtConfig {
    fn default() -> Self {
        BtConfig {
            budget: Budget::steps(50_000_000),
        }
    }
}

/// Baseline errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BtError {
    /// A resource budget was exhausted — the exponential blow-up the paper
    /// warns about, reported instead of hanging.
    ResourceExhausted(Exhaustion),
    /// Neighbourhoods beyond 64 triples exceed the decomposition bitmask.
    /// (By then the 2⁶⁴ decompositions are unreachable anyway.)
    NeighbourhoodTooLarge(usize),
    /// The schema failed well-formedness checks.
    Schema(SchemaError),
    /// The queried label has no definition.
    UnknownShape(String),
}

impl std::fmt::Display for BtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BtError::ResourceExhausted(e) => write!(f, "backtracking {e}"),
            BtError::NeighbourhoodTooLarge(n) => {
                write!(f, "neighbourhood of {n} triples exceeds 64-triple limit")
            }
            BtError::Schema(e) => e.fmt(f),
            BtError::UnknownShape(l) => write!(f, "unknown shape <{l}>"),
        }
    }
}

impl std::error::Error for BtError {}

impl From<SchemaError> for BtError {
    fn from(e: SchemaError) -> Self {
        BtError::Schema(e)
    }
}

impl From<Exhaustion> for BtError {
    fn from(e: Exhaustion) -> Self {
        BtError::ResourceExhausted(e)
    }
}

/// Counters for the E1/E2 comparisons. Mirrors the derivative engine's
/// [`shapex::Stats`]/[`shapex::Metrics`] counters where the two engines
/// share a concept, so engine-agreement harnesses can compare like with
/// like.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BtStats {
    /// Inference-rule applications (one per `matches` invocation).
    pub rule_applications: u64,
    /// Decomposition pairs `(g1, g2)` tried by the And/Star rules.
    pub decompositions: u64,
    /// Greatest-fixpoint iterations performed.
    pub gfp_iterations: u64,
    /// `(node, shape)` evaluations performed (mirrors the derivative
    /// engine's `node_checks`).
    pub node_checks: u64,
    /// Budget steps charged across all per-node meters (mirrors
    /// `budget_steps`; equals `rule_applications` unless a meter trips
    /// mid-check).
    pub budget_steps: u64,
    /// Evaluations abandoned because a per-node budget tripped (mirrors
    /// `exhausted_checks`).
    pub exhausted_checks: u64,
}

/// An expression with arcs replaced by indexes into a satisfaction matrix,
/// desugared to the paper's §4 core operators.
#[derive(Debug, Clone)]
enum BtExpr {
    Empty,
    Epsilon,
    Arc(usize),
    Star(Box<BtExpr>),
    And(Box<BtExpr>, Box<BtExpr>),
    Or(Box<BtExpr>, Box<BtExpr>),
}

/// One compiled arc: predicate test + object test.
struct BtArc {
    predicates: PredicateSet,
    object: ObjectConstraint,
    inverse: bool,
}

struct BtShape {
    expr: BtExpr,
    arcs: Vec<BtArc>,
    has_inverse: bool,
    inverse_predicates: Vec<Box<str>>,
}

/// The greatest-fixpoint typing table: `(shape index, node) → conforms`.
pub type TypingTable = HashMap<(usize, TermId), bool>;

/// Pairs whose budget tripped while the table was computed.
pub type ExhaustedPairs = HashMap<(usize, TermId), Exhaustion>;

/// The backtracking validator (paper Fig. 1 / Fig. 4).
pub struct BacktrackValidator {
    shapes: Vec<BtShape>,
    index: HashMap<ShapeLabel, usize>,
    config: BtConfig,
    stats: std::cell::Cell<BtStats>,
}

impl BacktrackValidator {
    /// Builds a validator with the default budget.
    pub fn new(schema: &Schema) -> Result<Self, BtError> {
        BacktrackValidator::with_config(schema, BtConfig::default())
    }

    /// Builds a validator with an explicit configuration.
    pub fn with_config(schema: &Schema, config: BtConfig) -> Result<Self, BtError> {
        schema.check_references()?;
        let mut shapes = Vec::new();
        let mut index = HashMap::new();
        for (label, expr) in schema.iter() {
            let mut arcs = Vec::new();
            let compiled = compile(&expr.desugared(), &mut arcs);
            let has_inverse = arcs.iter().any(|a| a.inverse);
            let inverse_predicates = arcs
                .iter()
                .filter(|a| a.inverse)
                .flat_map(|a| match &a.predicates {
                    PredicateSet::Any => Vec::new(),
                    PredicateSet::Iris(iris) => iris.clone(),
                })
                .collect();
            index.insert(label.clone(), shapes.len());
            shapes.push(BtShape {
                expr: compiled,
                arcs,
                has_inverse,
                inverse_predicates,
            });
        }
        Ok(BacktrackValidator {
            shapes,
            index,
            config,
            stats: std::cell::Cell::new(BtStats::default()),
        })
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> BtStats {
        self.stats.get()
    }

    /// Zeroes the counters.
    pub fn reset_stats(&self) {
        self.stats.set(BtStats::default());
    }

    /// Checks one node against one shape. Recursion is resolved through
    /// the full greatest-fixpoint typing (the reference semantics).
    pub fn check(
        &self,
        graph: &Graph,
        terms: &TermPool,
        node: TermId,
        label: &ShapeLabel,
    ) -> Result<bool, BtError> {
        let shape = *self
            .index
            .get(label)
            .ok_or_else(|| BtError::UnknownShape(label.as_str().to_string()))?;
        let (typing, exhausted) = self.typing_table(graph, terms)?;
        // Exhaustion surfaces only for the pair actually asked about —
        // other pairs keep their (under-approximated) answers.
        if let Some(&e) = exhausted.get(&(shape, node)) {
            return Err(BtError::ResourceExhausted(e));
        }
        match typing.get(&(shape, node)) {
            Some(&v) => Ok(v),
            // Node not in the graph at all: match against the empty
            // neighbourhood.
            None => self.match_node(graph, terms, node, shape, &typing),
        }
    }

    /// The greatest-fixpoint typing over every node occurring in the graph
    /// and every shape (paper §8 semantics, computed by iterated removal).
    ///
    /// Per-pair fault isolation: a pair whose [`crate::BtConfig`] budget
    /// trips is *removed* from the typing — sound, since dropping an
    /// assumption only under-approximates a greatest fixpoint — and
    /// reported in the second component instead of aborting the table.
    pub fn typing_table(
        &self,
        graph: &Graph,
        terms: &TermPool,
    ) -> Result<(TypingTable, ExhaustedPairs), BtError> {
        // Every term occurring in the graph can be asked for a shape.
        let mut nodes: Vec<TermId> = Vec::new();
        for t in graph.triples() {
            nodes.push(t.subject);
            nodes.push(t.object);
        }
        nodes.sort();
        nodes.dedup();

        let mut table: HashMap<(usize, TermId), bool> = HashMap::new();
        for s in 0..self.shapes.len() {
            for &n in &nodes {
                table.insert((s, n), true);
            }
        }
        let mut exhausted: HashMap<(usize, TermId), Exhaustion> = HashMap::new();
        loop {
            let mut st = self.stats.get();
            st.gfp_iterations += 1;
            self.stats.set(st);
            let mut changed = false;
            for s in 0..self.shapes.len() {
                for &n in &nodes {
                    if !table[&(s, n)] {
                        continue;
                    }
                    let keep = match self.match_node(graph, terms, n, s, &table) {
                        Ok(v) => v,
                        Err(BtError::ResourceExhausted(e)) => {
                            exhausted.insert((s, n), e);
                            false
                        }
                        Err(other) => return Err(other),
                    };
                    if !keep {
                        table.insert((s, n), false);
                        changed = true;
                    }
                }
            }
            if !changed {
                return Ok((table, exhausted));
            }
        }
    }

    /// `Σg_n ≃ δ(shape)` with references answered from `oracle`.
    fn match_node(
        &self,
        graph: &Graph,
        terms: &TermPool,
        node: TermId,
        shape: usize,
        oracle: &HashMap<(usize, TermId), bool>,
    ) -> Result<bool, BtError> {
        let sh = &self.shapes[shape];
        // Closed forward semantics; inverse triples scoped to mentioned
        // predicates (matching the derivative engine).
        let mut triples: Vec<(TermId, TermId, bool)> = graph
            .neighbourhood(node)
            .iter()
            .map(|&(p, o)| (p, o, false))
            .collect();
        if sh.has_inverse {
            for &(s, p) in graph.incoming(node) {
                let pred_iri = iri_text(terms.term(p));
                if sh.inverse_predicates.iter().any(|i| Some(&**i) == pred_iri) {
                    triples.push((p, s, true));
                }
            }
        }
        if triples.len() > 64 {
            return Err(BtError::NeighbourhoodTooLarge(triples.len()));
        }
        // Satisfaction matrix: sat[triple][arc].
        let sat: Vec<Vec<bool>> = triples
            .iter()
            .map(|&(p, other, inv)| {
                sh.arcs
                    .iter()
                    .map(|arc| self.arc_satisfied(terms, arc, p, other, inv, oracle))
                    .collect()
            })
            .collect();
        let full: u64 = if triples.is_empty() {
            0
        } else {
            u64::MAX >> (64 - triples.len())
        };
        // Each node gets the full budget (per-node fault isolation,
        // matching the derivative engine's per-query meter).
        let mut meter = self.config.budget.meter();
        let mut ctx = MatchCtx {
            sat: &sat,
            steps: 0,
            decompositions: 0,
            meter: &mut meter,
        };
        let result = matches(&sh.expr, full, &mut ctx);
        let mut st = self.stats.get();
        st.rule_applications += ctx.steps;
        st.decompositions += ctx.decompositions;
        st.node_checks += 1;
        st.budget_steps += meter.steps_spent();
        if result.is_err() {
            st.exhausted_checks += 1;
        }
        self.stats.set(st);
        result.map_err(BtError::from)
    }

    fn arc_satisfied(
        &self,
        terms: &TermPool,
        arc: &BtArc,
        pred: TermId,
        other: TermId,
        inverse: bool,
        oracle: &HashMap<(usize, TermId), bool>,
    ) -> bool {
        if arc.inverse != inverse {
            return false;
        }
        let pred_ok = match &arc.predicates {
            PredicateSet::Any => true,
            PredicateSet::Iris(_) => match iri_text(terms.term(pred)) {
                Some(iri) => arc.predicates.contains(iri),
                None => false,
            },
        };
        if !pred_ok {
            return false;
        }
        match &arc.object {
            ObjectConstraint::Value(c) => c.matches(terms.term(other)),
            ObjectConstraint::Ref(l) => {
                let target = self.index[l];
                // Nodes outside the oracle (not in the graph) have empty
                // neighbourhoods; match δ(l) against the empty bag.
                oracle.get(&(target, other)).copied().unwrap_or_else(|| {
                    let sh = &self.shapes[target];
                    let mut meter = self.config.budget.meter();
                    let mut ctx = MatchCtx {
                        sat: &[],
                        steps: 0,
                        decompositions: 0,
                        meter: &mut meter,
                    };
                    let out = matches(&sh.expr, 0, &mut ctx).unwrap_or(false);
                    let mut st = self.stats.get();
                    st.rule_applications += ctx.steps;
                    st.budget_steps += meter.steps_spent();
                    self.stats.set(st);
                    out
                })
            }
        }
    }
}

fn iri_text(term: &Term) -> Option<&str> {
    term.as_iri().map(|i| i.as_str())
}

/// Compiles a desugared [`ShapeExpr`] (core operators only) to [`BtExpr`],
/// collecting arcs.
fn compile(expr: &ShapeExpr, arcs: &mut Vec<BtArc>) -> BtExpr {
    match expr {
        ShapeExpr::Empty => BtExpr::Empty,
        ShapeExpr::Epsilon => BtExpr::Epsilon,
        ShapeExpr::Arc(arc) => {
            let idx = arcs.len();
            arcs.push(BtArc {
                predicates: arc.predicates.clone(),
                object: arc.object.clone(),
                inverse: arc.inverse,
            });
            BtExpr::Arc(idx)
        }
        ShapeExpr::Star(e) => BtExpr::Star(Box::new(compile(e, arcs))),
        ShapeExpr::And(a, b) => BtExpr::And(Box::new(compile(a, arcs)), Box::new(compile(b, arcs))),
        ShapeExpr::Or(a, b) => BtExpr::Or(Box::new(compile(a, arcs)), Box::new(compile(b, arcs))),
        // `desugared()` removes these.
        ShapeExpr::Plus(_) | ShapeExpr::Opt(_) | ShapeExpr::Repeat(_, _, _) => {
            unreachable!("expression must be desugared before compilation")
        }
    }
}

struct MatchCtx<'a> {
    sat: &'a [Vec<bool>],
    steps: u64,
    decompositions: u64,
    meter: &'a mut BudgetMeter,
}

/// The Fig. 1 rules. `mask` selects the sub-bag of the neighbourhood being
/// matched; the And/Star rules enumerate its decompositions. Charges one
/// budget step and one recursion level per rule application.
fn matches(e: &BtExpr, mask: u64, ctx: &mut MatchCtx<'_>) -> Result<bool, Exhaustion> {
    ctx.steps += 1;
    ctx.meter.step()?;
    ctx.meter.enter_depth()?;
    let result = matches_inner(e, mask, ctx);
    ctx.meter.exit_depth();
    result
}

fn matches_inner(e: &BtExpr, mask: u64, ctx: &mut MatchCtx<'_>) -> Result<bool, Exhaustion> {
    match e {
        BtExpr::Empty => Ok(false),
        // Empty: ε ≃ {}
        BtExpr::Epsilon => Ok(mask == 0),
        // Arc: vp→vo ≃ {⟨s,p,o⟩}
        BtExpr::Arc(idx) => {
            Ok(mask.count_ones() == 1 && ctx.sat[mask.trailing_zeros() as usize][*idx])
        }
        // Or1/Or2
        BtExpr::Or(a, b) => Ok(matches(a, mask, ctx)? || matches(b, mask, ctx)?),
        // And: enumerate every decomposition g = g1 ⊕ g2 (Example 3)
        BtExpr::And(a, b) => {
            let mut g1 = mask;
            loop {
                ctx.decompositions += 1;
                if matches(a, g1, ctx)? && matches(b, mask & !g1, ctx)? {
                    return Ok(true);
                }
                if g1 == 0 {
                    return Ok(false);
                }
                g1 = (g1 - 1) & mask;
            }
        }
        // Star1/Star2; g1 must be non-empty for termination
        BtExpr::Star(r) => {
            if mask == 0 {
                return Ok(true);
            }
            let mut g1 = mask;
            loop {
                if g1 != 0 {
                    ctx.decompositions += 1;
                    if matches(r, g1, ctx)? && matches(e, mask & !g1, ctx)? {
                        return Ok(true);
                    }
                }
                if g1 == 0 {
                    return Ok(false);
                }
                g1 = (g1 - 1) & mask;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapex_rdf::graph::Dataset;
    use shapex_rdf::turtle;
    use shapex_shex::shexc;

    fn setup(schema_src: &str, data_src: &str) -> (BacktrackValidator, Dataset) {
        let schema = shexc::parse(schema_src).unwrap();
        let ds = turtle::parse(data_src).unwrap();
        (BacktrackValidator::new(&schema).unwrap(), ds)
    }

    fn check(v: &BacktrackValidator, ds: &Dataset, node: &str, shape: &str) -> bool {
        let node = ds.iri(node).expect("node exists");
        v.check(&ds.graph, &ds.pool, node, &shape.into()).unwrap()
    }

    const EX5_SCHEMA: &str = "PREFIX e: <http://e/>\n<S> { e:a [1], e:b [1 2]* }";

    #[test]
    fn paper_example_8_matches() {
        // Fig. 2: a→1 ‖ b→{1,2}* ≃ {⟨n,a,1⟩, ⟨n,b,1⟩, ⟨n,b,2⟩}
        let (v, ds) = setup(EX5_SCHEMA, "@prefix e: <http://e/> . e:n e:a 1; e:b 1, 2 .");
        assert!(check(&v, &ds, "http://e/n", "S"));
        // The decomposition counter reflects Fig. 2's exponential search.
        assert!(v.stats().decompositions > 0);
    }

    #[test]
    fn paper_example_12_rejects() {
        let (v, ds) = setup(EX5_SCHEMA, "@prefix e: <http://e/> . e:n e:a 1, 2; e:b 1 .");
        assert!(!check(&v, &ds, "http://e/n", "S"));
    }

    #[test]
    fn example_2_typing() {
        let (v, ds) = setup(
            r#"
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
            <Person> { foaf:age xsd:integer, foaf:name xsd:string+, foaf:knows @<Person>* }
            "#,
            r#"
            @prefix : <http://example.org/> .
            @prefix foaf: <http://xmlns.com/foaf/0.1/> .
            :john foaf:age 23; foaf:name "John"; foaf:knows :bob .
            :bob foaf:age 34; foaf:name "Bob", "Robert" .
            :mary foaf:age 50, 65 .
            "#,
        );
        assert!(check(&v, &ds, "http://example.org/john", "Person"));
        assert!(check(&v, &ds, "http://example.org/bob", "Person"));
        assert!(!check(&v, &ds, "http://example.org/mary", "Person"));
    }

    #[test]
    fn recursive_cycle_gfp() {
        let (v, ds) = setup(
            r#"
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
            <Person> { foaf:age xsd:integer, foaf:name xsd:string+, foaf:knows @<Person>* }
            "#,
            r#"
            @prefix : <http://example.org/> .
            @prefix foaf: <http://xmlns.com/foaf/0.1/> .
            :a foaf:age 1; foaf:name "A"; foaf:knows :b .
            :b foaf:age 2; foaf:name "B"; foaf:knows :a .
            :c foaf:age 3; foaf:knows :a .
            "#,
        );
        assert!(check(&v, &ds, "http://example.org/a", "Person"));
        assert!(check(&v, &ds, "http://example.org/b", "Person"));
        assert!(!check(&v, &ds, "http://example.org/c", "Person"));
        assert!(v.stats().gfp_iterations >= 1);
    }

    #[test]
    fn cardinality_via_expansion() {
        let (v, ds) = setup(
            "PREFIX e: <http://e/>\n<S> { e:p .{2,3} }",
            r#"
            @prefix e: <http://e/> .
            e:one e:p 1 .
            e:two e:p 1, 2 .
            e:four e:p 1, 2, 3, 4 .
            "#,
        );
        assert!(!check(&v, &ds, "http://e/one", "S"));
        assert!(check(&v, &ds, "http://e/two", "S"));
        assert!(!check(&v, &ds, "http://e/four", "S"));
    }

    #[test]
    fn budget_exceeded_on_adversarial_input() {
        // Wide And of stars over many triples blows the tiny budget.
        let schema =
            shexc::parse("PREFIX e: <http://e/>\n<S> { e:a .*, e:b .*, e:c .*, e:d .*, e:e .* }")
                .unwrap();
        let mut data = String::from("@prefix e: <http://e/> .\n");
        for p in ["a", "b", "c", "d", "e"] {
            for i in 0..4 {
                data.push_str(&format!("e:n e:{p} {i} .\n"));
            }
        }
        let ds = turtle::parse(&data).unwrap();
        let v = BacktrackValidator::with_config(
            &schema,
            BtConfig {
                budget: Budget::steps(10_000),
            },
        )
        .unwrap();
        let n = ds.iri("http://e/n").unwrap();
        let err = v.check(&ds.graph, &ds.pool, n, &"S".into()).unwrap_err();
        let BtError::ResourceExhausted(e) = err else {
            panic!("expected exhaustion, got {err:?}");
        };
        assert_eq!(e.resource, shapex::budget::Resource::Steps);
        assert_eq!(e.limit, 10_000);
        assert!(e.spent <= e.limit);
        assert!(v.stats().exhausted_checks > 0);
    }

    #[test]
    fn stats_mirror_counters() {
        let (v, ds) = setup(EX5_SCHEMA, "@prefix e: <http://e/> . e:n e:a 1; e:b 1, 2 .");
        check(&v, &ds, "http://e/n", "S");
        let st = v.stats();
        assert!(st.node_checks > 0);
        // Every rule application charges exactly one budget step, so the
        // two mirror counters agree when no meter trips.
        assert_eq!(st.budget_steps, st.rule_applications);
        assert_eq!(st.exhausted_checks, 0);
    }

    #[test]
    fn deadline_budget_trips() {
        use std::time::Duration;
        // Same adversarial input, but governed by a zero deadline instead
        // of a step cap.
        let schema =
            shexc::parse("PREFIX e: <http://e/>\n<S> { e:a .*, e:b .*, e:c .*, e:d .*, e:e .* }")
                .unwrap();
        let mut data = String::from("@prefix e: <http://e/> .\n");
        for p in ["a", "b", "c", "d", "e"] {
            for i in 0..4 {
                data.push_str(&format!("e:n e:{p} {i} .\n"));
            }
        }
        let ds = turtle::parse(&data).unwrap();
        let v = BacktrackValidator::with_config(
            &schema,
            BtConfig {
                budget: Budget::UNLIMITED.with_deadline(Duration::ZERO),
            },
        )
        .unwrap();
        let n = ds.iri("http://e/n").unwrap();
        let err = v.check(&ds.graph, &ds.pool, n, &"S".into()).unwrap_err();
        assert!(matches!(err, BtError::ResourceExhausted(_)), "{err:?}");
    }

    #[test]
    fn depth_budget_trips_on_nested_expression() {
        // Deeply nested optional groups recurse through `matches` far
        // deeper than a depth limit of 4.
        let mut expr = String::from("e:p [1]");
        for _ in 0..10 {
            expr = format!("( {expr} )?");
        }
        let schema = shexc::parse(&format!("PREFIX e: <http://e/>\n<S> {{ {expr} }}")).unwrap();
        let ds = turtle::parse("@prefix e: <http://e/> . e:n e:p 1 .").unwrap();
        let v = BacktrackValidator::with_config(
            &schema,
            BtConfig {
                budget: Budget::UNLIMITED.with_max_depth(4),
            },
        )
        .unwrap();
        let n = ds.iri("http://e/n").unwrap();
        let err = v.check(&ds.graph, &ds.pool, n, &"S".into()).unwrap_err();
        let BtError::ResourceExhausted(e) = err else {
            panic!("expected exhaustion, got {err:?}");
        };
        assert_eq!(e.resource, shapex::budget::Resource::Depth);
    }

    #[test]
    fn unknown_shape_error() {
        let (v, ds) = setup(EX5_SCHEMA, "@prefix e: <http://e/> . e:n e:a 1 .");
        let n = ds.iri("http://e/n").unwrap();
        assert!(matches!(
            v.check(&ds.graph, &ds.pool, n, &"Nope".into()),
            Err(BtError::UnknownShape(_))
        ));
    }

    #[test]
    fn node_absent_from_graph_matches_nullable_shape() {
        let (v, mut ds) = setup(
            "PREFIX e: <http://e/>\n<S> { e:p .* }",
            "@prefix e: <http://e/> . e:x e:p 1 .",
        );
        let lonely = ds.pool.intern_iri("http://e/lonely");
        assert!(v.check(&ds.graph, &ds.pool, lonely, &"S".into()).unwrap());
    }

    #[test]
    fn inverse_arcs_match() {
        let (v, ds) = setup(
            "PREFIX e: <http://e/>\n<Dept> { e:name LITERAL, ^e:worksIn IRI+ }",
            r#"
            @prefix e: <http://e/> .
            e:sales e:name "Sales" .
            e:ghost e:name "Ghost" .
            e:alice e:worksIn e:sales .
            "#,
        );
        assert!(check(&v, &ds, "http://e/sales", "Dept"));
        assert!(!check(&v, &ds, "http://e/ghost", "Dept"));
    }

    #[test]
    fn or_alternatives() {
        let (v, ds) = setup(
            "PREFIX e: <http://e/>\n<S> { e:a [1] | e:b [2] }",
            "@prefix e: <http://e/> . e:x e:a 1 . e:z e:a 1; e:b 2 .",
        );
        assert!(check(&v, &ds, "http://e/x", "S"));
        assert!(!check(&v, &ds, "http://e/z", "S"));
    }

    #[test]
    fn stats_reset() {
        let (v, ds) = setup(EX5_SCHEMA, "@prefix e: <http://e/> . e:n e:a 1 .");
        check(&v, &ds, "http://e/n", "S");
        assert!(v.stats().rule_applications > 0);
        v.reset_stats();
        assert_eq!(v.stats(), BtStats::default());
    }

    /// Fig. 1, rule *Empty*: `ε ≃ {}` — and only the empty bag.
    #[test]
    fn rule_empty() {
        let (v, mut ds) = setup("<S> { }", "@prefix e: <http://e/> . e:n e:p 1 .");
        let lonely = ds.pool.intern_iri("http://e/lonely");
        assert!(v.check(&ds.graph, &ds.pool, lonely, &"S".into()).unwrap());
        let n = ds.iri("http://e/n").unwrap();
        assert!(!v.check(&ds.graph, &ds.pool, n, &"S".into()).unwrap());
    }

    /// Fig. 1, rule *Arc*: `vp→vo ≃ {⟨s,p,o⟩}` — exactly one triple, with
    /// p ∈ vp and o ∈ vo.
    #[test]
    fn rule_arc() {
        let (v, ds) = setup(
            "PREFIX e: <http://e/>\n<S> { e:p [1] }",
            "@prefix e: <http://e/> . e:ok e:p 1 . e:badv e:p 2 . e:badp e:q 1 .\n\
             e:two e:p 1; e:q 1 .",
        );
        assert!(check(&v, &ds, "http://e/ok", "S"));
        assert!(!check(&v, &ds, "http://e/badv", "S")); // o ∉ vo
        assert!(!check(&v, &ds, "http://e/badp", "S")); // p ∉ vp
        assert!(!check(&v, &ds, "http://e/two", "S")); // two triples ≠ one
    }

    /// Fig. 1, rules *Or1*/*Or2*: either disjunct may match the whole bag.
    #[test]
    fn rules_or() {
        let (v, ds) = setup(
            "PREFIX e: <http://e/>\n<S> { e:a [1] | e:b [1] }",
            "@prefix e: <http://e/> . e:l e:a 1 . e:r e:b 1 . e:no e:c 1 .",
        );
        assert!(check(&v, &ds, "http://e/l", "S")); // Or1
        assert!(check(&v, &ds, "http://e/r", "S")); // Or2
        assert!(!check(&v, &ds, "http://e/no", "S"));
    }

    /// Fig. 1, rule *And*: some decomposition g = g1 ⊕ g2 satisfies both.
    #[test]
    fn rule_and() {
        let (v, ds) = setup(
            "PREFIX e: <http://e/>\n<S> { e:a ., e:b . }",
            "@prefix e: <http://e/> . e:ok e:a 1; e:b 2 . e:half e:a 1 .",
        );
        assert!(check(&v, &ds, "http://e/ok", "S"));
        assert!(!check(&v, &ds, "http://e/half", "S"));
    }

    /// Fig. 1, rules *Star1*/*Star2*: the empty bag, or a non-empty split
    /// whose parts match r and r*.
    #[test]
    fn rules_star() {
        let (v, mut ds) = setup(
            "PREFIX e: <http://e/>\n<S> { e:p [1 2]* }",
            "@prefix e: <http://e/> . e:many e:p 1, 2 . e:bad e:p 3 .",
        );
        let lonely = ds.pool.intern_iri("http://e/lonely");
        assert!(v.check(&ds.graph, &ds.pool, lonely, &"S".into()).unwrap()); // Star1
        assert!(check(&v, &ds, "http://e/many", "S")); // Star2, twice
        assert!(!check(&v, &ds, "http://e/bad", "S"));
    }
}

#![warn(missing_docs)]
//! # shapex-backtrack
//!
//! The baseline validator: a direct implementation of the paper's Fig. 1
//! inference rules. The *And* rule
//!
//! ```text
//!        r1 ≃ g1    r2 ≃ g2
//! And ─────────────────────────
//!        r1 ‖ r2 ≃ g1 ⊕ g2
//! ```
//!
//! is implemented exactly as §2 describes: by **decomposing** the
//! neighbourhood into all `2ⁿ` pairs `(g1, g2)` with `g1 ⊕ g2 = g` and
//! backtracking over them (Example 3 / Fig. 2). This is deliberately the
//! naïve algorithm the paper contrasts against — "a naïve implementation of
//! Regular Shape expression matching using backtracking leads to
//! exponential growth and has poor performance" (§5) — kept for the
//! head-to-head benchmarks (experiments E1/E2) and for differential
//! testing of the derivative engine.
//!
//! Recursion (§8 schemas) is handled by the textbook greatest-fixpoint
//! computation: start from the typing where every `(node, label)` pair
//! holds and repeatedly strike out pairs whose match fails, until stable.
//! This doubles as the *reference semantics* the derivative engine's
//! optimised coinduction is differential-tested against.

mod matcher;

pub use matcher::{BacktrackValidator, BtConfig, BtError, BtStats};

//! Emits `BENCH_scale.json`: million-triple ingestion curves (E12).
//!
//! ```sh
//! cargo run --release -p shapex-bench --bin scale
//! cargo run --release -p shapex-bench --bin scale -- --triples 1000000 --jobs 1,2,4
//! cargo run --release -p shapex-bench --features alloc-mimalloc --bin scale
//! ```
//!
//! Per dump size (default 1M and 10M triples of the UniProt-shaped
//! workload) the harness measures:
//!
//! - **parse throughput** (triples/sec) of the chunked parallel N-Triples
//!   parser at each `--jobs` count, minimum over `--reps` runs;
//! - **typing throughput** (nodes/sec) of a full `type_all` over the
//!   parsed dump against the UniProt schema;
//! - **peak RSS** (`VmHWM` from `/proc/self/status`) per measurement.
//!
//! Every measurement runs in a *fresh subprocess* (the binary re-executes
//! itself with a hidden `--measure-*` mode) so `VmHWM` — a monotone
//! per-process high-water mark — reflects exactly one configuration, and
//! allocator state never leaks between samples. At `jobs > 1` the child
//! also checks the parallel parse against the sequential one with full
//! structural equality (pool, triples, adjacency), so the numbers are for
//! the *verified-identical* path.
//!
//! The `alloc-mimalloc` feature routes the process through the `mimalloc`
//! crate for an allocator A/B. In this tree that crate is an offline shim
//! forwarding to the system allocator (see `vendor/mimalloc`), so both
//! arms measure the same allocator; the report's `"allocator"` field says
//! which arm produced it.

use std::process::Command;
use std::time::Instant;

use serde_json::Value;
use shapex_rdf::ntriples;
use shapex_workloads::scale;

#[cfg(feature = "alloc-mimalloc")]
#[global_allocator]
static GLOBAL: mimalloc::MiMalloc = mimalloc::MiMalloc;

#[cfg(feature = "alloc-mimalloc")]
const ALLOCATOR: &str = "mimalloc (vendored shim → system)";
#[cfg(not(feature = "alloc-mimalloc"))]
const ALLOCATOR: &str = "system";

const SEED: u64 = 42;
const DEFAULT_TRIPLES: &[usize] = &[1_000_000, 10_000_000];
const DEFAULT_JOBS: &[usize] = &[1, 2, 4];
const DEFAULT_REPS: usize = 3;

/// Peak resident set size of this process so far, in kilobytes.
fn vm_hwm_kb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().strip_suffix("kB"))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

fn entities_for(triples: usize) -> usize {
    (triples as f64 / scale::TRIPLES_PER_ENTITY).ceil() as usize
}

/// Child mode: parse the generated dump `reps` times at `jobs` workers,
/// print one JSON object on stdout. Generation is untimed; the first
/// parallel parse at `jobs > 1` is verified structurally identical to the
/// sequential parse (then the sequential copy is dropped before timing).
fn measure_parse(entities: usize, jobs: usize, reps: usize) {
    let doc = scale::uniprot_ntriples(entities, SEED);
    let bytes = doc.len();

    if jobs > 1 {
        let seq = ntriples::parse(&doc).expect("workload parses");
        let par = ntriples::parse_par(&doc, jobs).expect("workload parses in parallel");
        assert_eq!(seq.pool.len(), par.pool.len(), "pool sizes diverge");
        for ((ia, ta), (ib, tb)) in seq.pool.iter().zip(par.pool.iter()) {
            assert_eq!(ia, ib);
            assert_eq!(ta, tb, "TermId {ia:?} bound to different terms");
        }
        assert_eq!(
            seq.graph.triples_sorted(),
            par.graph.triples_sorted(),
            "triple sets diverge"
        );
        for (id, _) in seq.pool.iter() {
            assert_eq!(seq.graph.neighbourhood(id), par.graph.neighbourhood(id));
        }
    }

    let mut samples = Vec::with_capacity(reps);
    let mut triples = 0usize;
    for _ in 0..reps {
        let t = Instant::now();
        let ds = ntriples::parse_par(&doc, jobs).expect("workload parses");
        samples.push(t.elapsed().as_micros() as u64);
        triples = ds.graph.len();
    }
    let min_us = *samples.iter().min().expect("reps >= 1");
    let samples_v = Value::Array(samples.iter().map(|&s| Value::from(s)).collect());
    let row = serde_json::json!({
        "entities": entities as u64,
        "triples": triples as u64,
        "bytes": bytes as u64,
        "jobs": jobs as u64,
        "verified_identical": jobs > 1,
        "parse_min_us": min_us,
        "parse_samples_us": samples_v,
        "triples_per_sec": triples as f64 / (min_us as f64 / 1e6),
        "mb_per_sec": bytes as f64 / 1e6 / (min_us as f64 / 1e6),
        "vm_hwm_kb": vm_hwm_kb(),
    });
    println!("{}", serde_json::to_string(&row).expect("no NaN"));
}

/// Child mode: parse the dump once, compile the UniProt schema, and time a
/// full typing of the graph (every protein node against `<Protein>`).
fn measure_type(entities: usize) {
    use shapex::{Engine, EngineConfig};

    let doc = scale::uniprot_ntriples(entities, SEED);
    let mut ds = ntriples::parse(&doc).expect("workload parses");
    drop(doc);
    let schema = shapex_shex::shexc::parse(&scale::uniprot_schema()).expect("schema parses");
    let mut engine =
        Engine::compile(&schema, &mut ds.pool, EngineConfig::default()).expect("schema compiles");

    let t = Instant::now();
    let typing = engine.type_all(&ds.graph, &ds.pool);
    let us = t.elapsed().as_micros() as u64;
    let nodes = ds.graph.subjects().count();
    let row = serde_json::json!({
        "entities": entities as u64,
        "triples": ds.graph.len() as u64,
        "nodes": nodes as u64,
        "typed_pairs": typing.len() as u64,
        "type_all_us": us,
        "nodes_per_sec": nodes as f64 / (us as f64 / 1e6),
        "vm_hwm_kb": vm_hwm_kb(),
    });
    println!("{}", serde_json::to_string(&row).expect("no NaN"));
}

/// Runs this same binary in a child mode and parses its JSON stdout.
fn child(args: &[String]) -> Value {
    let exe = std::env::current_exe().expect("own path");
    let out = Command::new(exe)
        .args(args)
        .output()
        .expect("spawning measurement subprocess");
    assert!(
        out.status.success(),
        "measurement {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    serde_json::from_str(String::from_utf8_lossy(&out.stdout).trim())
        .unwrap_or_else(|e| panic!("measurement {args:?} produced bad JSON: {e}"))
}

fn parse_list(v: &str, flag: &str) -> Vec<usize> {
    v.split(',')
        .map(|p| {
            p.trim()
                .parse()
                .unwrap_or_else(|_| panic!("{flag} wants comma-separated integers, got '{p}'"))
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Hidden child modes (one measurement per process, for VmHWM isolation).
    match args.first().map(String::as_str) {
        Some("--measure-parse") => {
            let e: usize = args[1].parse().unwrap();
            let j: usize = args[2].parse().unwrap();
            let r: usize = args[3].parse().unwrap();
            return measure_parse(e, j, r);
        }
        Some("--measure-type") => {
            let e: usize = args[1].parse().unwrap();
            return measure_type(e);
        }
        _ => {}
    }

    let mut triples = DEFAULT_TRIPLES.to_vec();
    let mut jobs = DEFAULT_JOBS.to_vec();
    let mut reps = DEFAULT_REPS;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |flag: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
                .clone()
        };
        match a.as_str() {
            "--triples" => triples = parse_list(&val("--triples"), "--triples"),
            "--jobs" => jobs = parse_list(&val("--jobs"), "--jobs"),
            "--reps" => reps = val("--reps").parse().expect("--reps wants an integer"),
            other => panic!("unknown flag '{other}' (see the module docs)"),
        }
    }

    let mut sizes = Vec::new();
    for &t in &triples {
        let entities = entities_for(t);
        let mut parse_rows = Vec::new();
        for &j in &jobs {
            let row = child(&[
                "--measure-parse".into(),
                entities.to_string(),
                j.to_string(),
                reps.to_string(),
            ]);
            let f = |k: &str| row.get(k).and_then(Value::as_f64).unwrap_or(0.0);
            println!(
                "parse {t} triples @ jobs={j}: {:.0} triples/s ({:.1} MB/s), peak {} MB",
                f("triples_per_sec"),
                f("mb_per_sec"),
                row.get("vm_hwm_kb").and_then(Value::as_u64).unwrap_or(0) / 1024,
            );
            parse_rows.push(row);
        }
        let typing = child(&["--measure-type".into(), entities.to_string()]);
        println!(
            "type  {t} triples: {:.0} nodes/s, peak {} MB",
            typing
                .get("nodes_per_sec")
                .and_then(Value::as_f64)
                .unwrap_or(0.0),
            typing.get("vm_hwm_kb").and_then(Value::as_u64).unwrap_or(0) / 1024,
        );
        sizes.push(serde_json::json!({
            "target_triples": t as u64,
            "entities": entities as u64,
            "parse": Value::Array(parse_rows),
            "typing": typing,
        }));
    }

    let doc = serde_json::json!({
        "generated_by": "cargo run --release -p shapex-bench --bin scale",
        "workload": "uniprot-shaped N-Triples (crates/workloads scale::uniprot_ntriples)",
        "allocator": ALLOCATOR,
        "seed": SEED,
        "reps_per_timing": reps as u64,
        "cpus_available": std::thread::available_parallelism().map_or(1, |n| n.get()) as u64,
        "sizes": Value::Array(sizes),
    });
    let rendered = serde_json::to_string_pretty(&doc).expect("no NaN in report") + "\n";
    std::fs::write("BENCH_scale.json", &rendered).expect("write BENCH_scale.json");
    println!("wrote BENCH_scale.json");
}

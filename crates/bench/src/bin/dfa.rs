//! Emits `BENCH_dfa.json`: the lazy shape DFA (alphabet-class compression
//! plus dense transition tables) against the `--no-dfa` HashMap derivative
//! memo, over the derivative-path workloads (E10).
//!
//! ```sh
//! cargo run --release -p shapex-bench --bin dfa
//! ```
//!
//! Every case runs with `no_sorbe` so the derivative engine does the work
//! in both modes — the SORBE counting fast path bypasses the structure
//! under comparison entirely. Both modes reset per iteration, so timings
//! measure a full cold-cache validation wave; the DFA's edge is cheaper
//! lookups *within* the wave (dense table loads instead of SipHash-keyed
//! probes), which compounds on repeated-shape / high-fanout workloads
//! where hits dominate. The two modes are sampled *interleaved* (one
//! memo pass, one DFA pass, repeated) so slow machine-load drift hits
//! both equally, and each reported timing is the minimum over the reps —
//! the computation is deterministic, so the minimum is the run least
//! disturbed by scheduler/allocator noise (medians land in the JSON for
//! reference).

use std::time::Instant;

use serde_json::Value;
use shapex::EngineConfig;
use shapex_bench::DerivativeRun;
use shapex_workloads::{
    alternation_fanout, and_width, balanced_ab, example8_neighbourhood, flat_person_records,
    person_network, Topology, Workload,
};

const REPS: usize = 15;

/// Repeated-shape × high-fanout: `nodes` subjects all validated against
/// one width-`w` unordered concatenation, `per_branch` triples per
/// predicate. From the second subject on, every derivative lookup hits
/// the already-built table — the regime the dense layout targets.
fn repeated_and_width(nodes: usize, w: usize, per_branch: usize) -> Workload {
    use shapex_rdf::term::{Literal, Term};
    let body: Vec<String> = (0..w).map(|i| format!("e:p{i} .+")).collect();
    let schema = format!("PREFIX e: <http://e/>\n<S> {{ {} }}", body.join(", "));
    let mut dataset = shapex_rdf::graph::Dataset::new();
    let mut focus = Vec::with_capacity(nodes);
    for n in 0..nodes {
        let subject = Term::iri(format!("http://e/n{n}"));
        for i in 0..w {
            for j in 0..per_branch {
                dataset.insert(
                    subject.clone(),
                    Term::iri(format!("http://e/p{i}")),
                    Term::Literal(Literal::integer(j as i64)),
                );
            }
        }
        focus.push(format!("http://e/n{n}"));
    }
    let expected = vec![true; nodes];
    Workload {
        name: format!("repeated_and_width/n={nodes},w={w},k={per_branch}"),
        schema,
        dataset,
        focus,
        shape: "S".to_string(),
        expected,
    }
}

/// `(min, median)` of a sorted sample vector, in microseconds.
fn min_median(mut samples: Vec<u128>) -> (u64, u64) {
    samples.sort();
    (samples[0] as u64, samples[samples.len() / 2] as u64)
}

fn timed(f: &mut impl FnMut()) -> u128 {
    let t = Instant::now();
    f();
    t.elapsed().as_micros()
}

/// One workload timed in both modes, plus the DFA's size summary from a
/// final metered pass.
fn case(name: &str, workload: impl Fn() -> Workload) -> Value {
    let base = EngineConfig {
        no_sorbe: true,
        ..EngineConfig::default()
    };
    let mut memo = DerivativeRun::prepare(
        workload(),
        EngineConfig {
            no_dfa: true,
            ..base
        },
    );
    let mut dfa = DerivativeRun::prepare(workload(), base);
    let mut run_memo = || {
        memo.validate_all();
    };
    let mut run_dfa = || {
        dfa.validate_all();
    };
    // Warm-up both: fault in the datasets, settle allocator pools.
    run_memo();
    run_dfa();
    let mut memo_samples = Vec::with_capacity(REPS);
    let mut dfa_samples = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        memo_samples.push(timed(&mut run_memo));
        dfa_samples.push(timed(&mut run_dfa));
    }
    let (memo_us, memo_median_us) = min_median(memo_samples);
    let (dfa_us, dfa_median_us) = min_median(dfa_samples);
    dfa.validate_all();
    let (mut states, mut classes, mut filled) = (0usize, 0usize, 0usize);
    for (_, s, c, f) in dfa.engine.dfa_summary() {
        states += s;
        classes += c;
        filled += f;
    }
    serde_json::json!({
        "name": name,
        "no_dfa_us": memo_us,
        "dfa_us": dfa_us,
        "no_dfa_median_us": memo_median_us,
        "dfa_median_us": dfa_median_us,
        "speedup": memo_us as f64 / dfa_us.max(1) as f64,
        "dfa_states": states as u64,
        "dfa_classes": classes as u64,
        "dfa_filled": filled as u64,
    })
}

fn main() {
    let cases = vec![
        // Single-node derivative runs: the paper's own growth regimes.
        case("example8_512_general", || example8_neighbourhood(512)),
        case("balanced_ab_48", || balanced_ab(48)),
        case("and_width_6x64", || and_width(6, 64)),
        case("alt_fanout_16", || alternation_fanout(16, 16)),
        // Repeated-shape fleets: one shape, thousands of similar
        // neighbourhoods — table hits dominate after the first node.
        case("flat_person_4000", || flat_person_records(4000, 1)),
        case("repeated_and_width_64x6x8", || repeated_and_width(64, 6, 8)),
        // Recursive typing: two shapes re-derived across a network.
        case("person_network_600_random2", || {
            person_network(600, Topology::Random { degree: 2 }, 0.1, 42)
        }),
    ];
    let doc = serde_json::json!({
        "generated_by": "cargo run --release -p shapex-bench --bin dfa",
        "reps_per_timing": REPS as u64,
        "cases": Value::Array(cases),
    });
    let rendered = serde_json::to_string_pretty(&doc).expect("no NaN in report") + "\n";
    let path = "BENCH_dfa.json";
    std::fs::write(path, &rendered).expect("write BENCH_dfa.json");
    for c in doc.get("cases").and_then(|c| c.as_array()).unwrap() {
        let num = |k: &str| c.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
        println!(
            "{}: {} µs memo / {} µs dfa ({:.2}x, {} cells)",
            c.get("name").and_then(|v| v.as_str()).unwrap_or("?"),
            num("no_dfa_us"),
            num("dfa_us"),
            c.get("speedup").and_then(|v| v.as_f64()).unwrap_or(0.0),
            num("dfa_filled"),
        );
    }
    println!("wrote {path}");
}

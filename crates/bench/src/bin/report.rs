//! Regenerates the measured tables in EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p shapex-bench --bin report
//! ```
//!
//! Unlike the Criterion benches (which give statistically careful per-point
//! timings), this binary prints the full markdown tables in one pass —
//! median of a few repetitions per cell, which is plenty for the
//! order-of-magnitude shapes the paper's claims are about.

use std::time::Instant;

use shapex::{EngineConfig, Simplify};
use shapex_bench::{parse_schema, BacktrackRun, DerivativeRun};
use shapex_shex::ast::ShapeLabel;
use shapex_shex::strre::{backtrack_match, Regex};
use shapex_workloads::{
    alternation_fanout, and_width, balanced_ab, example8_neighbourhood, flat_person_records,
    person_network, repeat_bounds, Topology, Workload,
};

fn main() {
    println!("# shapex experiment report\n");
    println!("(regenerate with `cargo run --release -p shapex-bench --bin report`)\n");
    e1();
    e2();
    e3();
    e4();
    e4b();
    e5();
    e6();
    e7();
    e8();
    e9();
}

const REPS: usize = 5;

/// Median wall time of `REPS` runs, in microseconds.
fn time_us(mut f: impl FnMut()) -> u128 {
    let mut samples: Vec<u128> = (0..REPS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_micros()
        })
        .collect();
    samples.sort();
    samples[REPS / 2]
}

fn derivative_config() -> EngineConfig {
    EngineConfig {
        no_sorbe: true,
        ..EngineConfig::default()
    }
}

fn us(v: u128) -> String {
    if v >= 100_000 {
        format!("{:.1} ms", v as f64 / 1000.0)
    } else {
        format!("{v} µs")
    }
}

fn derivative_cell(w: impl Fn() -> Workload, config: EngineConfig) -> String {
    let mut run = DerivativeRun::prepare(w(), config);
    us(time_us(|| {
        run.validate_all();
    }))
}

/// Backtracking cell: time, or the decomposition count when the budget
/// blows.
fn backtracking_cell(w: impl Fn() -> Workload, budget: u64) -> (String, String) {
    let run = BacktrackRun::prepare(w(), shapex::Budget::steps(budget));
    match run.validate_all() {
        Ok(_) => {
            let t = us(time_us(|| {
                run.validate_all().expect("within budget");
            }));
            run.validator.reset_stats();
            let _ = run.validate_all();
            (t, format!("{}", run.validator.stats().decompositions))
        }
        Err(_) => ("> budget".to_string(), format!("> {budget} steps")),
    }
}

fn e1() {
    println!("## E1 — Fig. 2 / Example 8 head-to-head\n");
    println!("| triples | derivative (general) | SORBE fast path | backtracking | backtracking decompositions |");
    println!("|---:|---:|---:|---:|---:|");
    for b in [2usize, 4, 8, 12, 16, 20, 64, 256] {
        let d = derivative_cell(|| example8_neighbourhood(b), derivative_config());
        let s = derivative_cell(|| example8_neighbourhood(b), EngineConfig::default());
        let (bt, decomp) = backtracking_cell(|| example8_neighbourhood(b), 30_000_000);
        println!("| {} | {d} | {s} | {bt} | {decomp} |", b + 1);
    }
    println!();
}

fn e2() {
    println!("## E2 — And-width decomposition blow-up (2 triples/branch)\n");
    println!("| width | derivative (general) | backtracking |");
    println!("|---:|---:|---:|");
    for w in [1usize, 2, 3, 4, 5, 6, 7] {
        let d = derivative_cell(|| and_width(w, 2), derivative_config());
        let (bt, _) = backtracking_cell(|| and_width(w, 2), 30_000_000);
        println!("| {w} | {d} | {bt} |");
    }
    println!();
}

fn e3() {
    println!("## E3 — derivative scaling in neighbourhood size\n");
    println!("| triples | derivative (general) | SORBE | µs/triple (general) |");
    println!("|---:|---:|---:|---:|");
    for n in [10usize, 100, 1_000, 10_000, 100_000] {
        let mut run = DerivativeRun::prepare(example8_neighbourhood(n), derivative_config());
        let t = time_us(|| {
            run.validate_all();
        });
        let s = derivative_cell(|| example8_neighbourhood(n), EngineConfig::default());
        println!("| {n} | {} | {s} | {:.3} |", us(t), t as f64 / n as f64);
    }
    println!();
}

fn e4() {
    println!("## E4 — Example 10 derivative growth\n");
    println!("| a/b pairs | time | expression arena | ∂-steps |");
    println!("|---:|---:|---:|---:|");
    for pairs in [4usize, 8, 16, 32, 64] {
        let mut run = DerivativeRun::prepare(balanced_ab(pairs), EngineConfig::default());
        let t = time_us(|| {
            run.validate_all();
        });
        run.validate_all();
        let stats = run.engine.stats();
        println!(
            "| {pairs} | {} | {} | {} |",
            us(t),
            stats.expr_pool_size,
            stats.derivative_steps
        );
    }
    println!();
}

fn e4b() {
    println!("## E4b — alternation fan-out `(p→[v1] | … | p→[vk])+`, k distinct triples\n");
    println!("| alternatives k | derivative (general) |");
    println!("|---:|---:|");
    for k in [2usize, 4, 8, 16, 32] {
        let d = derivative_cell(|| alternation_fanout(k, k), derivative_config());
        println!("| {k} | {d} |");
    }
    println!();
}

fn e5() {
    println!("## E5 — cardinality bounds `p→.{{m,n}}` (instance at the upper bound)\n");
    println!("| bounds | native counter | §4 expansion | SORBE counting | backtracking |");
    println!("|---:|---:|---:|---:|---:|");
    for (m, n) in [(2u32, 4u32), (5, 10), (20, 40), (100, 200)] {
        let count = n as usize;
        let native = derivative_cell(|| repeat_bounds(m, n, count), derivative_config());
        let expanded = {
            let w = repeat_bounds(m, n, count);
            let parsed = shapex_shex::shexc::parse(&w.schema).unwrap();
            let expanded = shapex_shex::schema::Schema::from_rules(
                parsed.iter().map(|(l, e)| (l.clone(), e.desugared())),
            )
            .unwrap();
            let rendered = shapex_shex::display::schema_to_shexc(&expanded);
            let w2 = Workload {
                schema: rendered,
                ..w
            };
            let mut run = DerivativeRun::prepare(w2, derivative_config());
            us(time_us(|| {
                run.validate_all();
            }))
        };
        let sorbe = derivative_cell(|| repeat_bounds(m, n, count), EngineConfig::default());
        let (bt, _) = if n <= 10 {
            backtracking_cell(|| repeat_bounds(m, n, count), 30_000_000)
        } else {
            ("—".to_string(), String::new())
        };
        println!("| {{{m},{n}}} | {native} | {expanded} | {sorbe} | {bt} |");
    }
    println!();
}

fn e6() {
    println!("## E6 — recursive person networks (10% invalid)\n");
    println!("| people | topology | derivative (general) | SORBE | gfp reruns |");
    println!("|---:|---|---:|---:|---:|");
    for n in [10usize, 100, 1_000, 10_000] {
        for (name, topology) in [
            ("chain", Topology::Chain),
            ("cycle", Topology::Cycle),
            ("random (deg 2)", Topology::Random { degree: 2 }),
        ] {
            let mut run =
                DerivativeRun::prepare(person_network(n, topology, 0.1, 42), derivative_config());
            let t = time_us(|| {
                run.validate_all();
            });
            let reruns = run.engine.stats().gfp_reruns;
            let s = derivative_cell(
                || person_network(n, topology, 0.1, 42),
                EngineConfig::default(),
            );
            println!("| {n} | {name} | {} | {s} | {reruns} |", us(t));
        }
    }
    println!("\nBacktracking baseline (full gfp table) for contrast:\n");
    println!("| people | topology | backtracking |");
    println!("|---:|---|---:|");
    for n in [10usize, 50] {
        let (bt, _) = backtracking_cell(|| person_network(n, Topology::Cycle, 0.1, 42), 30_000_000);
        println!("| {n} | cycle | {bt} |");
    }
    println!();
}

fn e7() {
    println!("## E7 — flat person records: derivative vs generated SPARQL\n");
    println!("| records | derivative (general) | SORBE | SPARQL eval | SPARQL gen+parse+eval |");
    println!("|---:|---:|---:|---:|---:|");
    for n in [10usize, 50, 200, 1_000] {
        let d = derivative_cell(|| flat_person_records(n, 42), derivative_config());
        let s = derivative_cell(|| flat_person_records(n, 42), EngineConfig::default());
        let w = flat_person_records(n, 42);
        let schema = parse_schema(&w);
        let label = ShapeLabel::new(w.shape.as_str());
        let queries: Vec<_> = w
            .focus
            .iter()
            .map(|iri| {
                let q = shapex_sparql::generate_node_ask(&schema, &label, iri).unwrap();
                shapex_sparql::parser::parse(&q).unwrap()
            })
            .collect();
        let eval_t = us(time_us(|| {
            for q in &queries {
                let _ = shapex_sparql::ask(q, &w.dataset.graph, &w.dataset.pool).unwrap();
            }
        }));
        let full_t = us(time_us(|| {
            for iri in &w.focus {
                let q = shapex_sparql::generate_node_ask(&schema, &label, iri).unwrap();
                let parsed = shapex_sparql::parser::parse(&q).unwrap();
                let _ = shapex_sparql::ask(&parsed, &w.dataset.graph, &w.dataset.pool).unwrap();
            }
        }));
        println!("| {n} | {d} | {s} | {eval_t} | {full_t} |");
    }
    println!();
}

fn e8() {
    println!("## E8 — Brzozowski string derivatives vs naive backtracking, `(a|aa)*` on `aⁿb`\n");
    println!("| n | derivative | derivative (memo) | backtracking |");
    println!("|---:|---:|---:|---:|");
    let re = Regex::new("(a|aa)*").unwrap();
    for n in [8usize, 16, 24, 28, 32] {
        let input = "a".repeat(n) + "b";
        let d = us(time_us(|| {
            assert!(!re.is_match(&input));
        }));
        let m = us(time_us(|| {
            assert!(!re.is_match_memo(&input));
        }));
        let bt = if n <= 28 {
            us(time_us(|| {
                assert!(!backtrack_match(re.ast(), &input));
            }))
        } else {
            "(skipped)".to_string()
        };
        println!("| {n} | {d} | {m} | {bt} |");
    }
    println!();
}

fn e9() {
    println!("## E9 — ablations\n");
    let general = derivative_config();
    let configs: Vec<(&str, EngineConfig)> = vec![
        ("full (general path)", general),
        (
            "no derivative memo",
            EngineConfig {
                no_deriv_memo: true,
                ..general
            },
        ),
        (
            "no Or-dedup",
            EngineConfig {
                simplify: Simplify {
                    identities: true,
                    or_dedup: false,
                },
                ..general
            },
        ),
        ("SORBE fast path", EngineConfig::default()),
    ];
    // Example 10 runs at 8 pairs here: without the derivative memo the
    // growth workload is *exponentially* infeasible — which is the
    // ablation's finding; the small size keeps the rows comparable.
    println!("| config | Example 8 (257 triples) | Example 10 (8 pairs) | person net (500, 10% bad) | arena (Ex. 10) |");
    println!("|---|---:|---:|---:|---:|");
    for (name, config) in &configs {
        let a = derivative_cell(|| example8_neighbourhood(256), *config);
        let mut run10 = DerivativeRun::prepare(balanced_ab(8), *config);
        let b = us(time_us(|| {
            run10.validate_all();
        }));
        run10.validate_all();
        let arena = run10.engine.stats().expr_pool_size;
        let c = derivative_cell(
            || person_network(500, Topology::Random { degree: 2 }, 0.1, 42),
            *config,
        );
        println!("| {name} | {a} | {b} | {c} | {arena} |");
    }
    // No-simplification runs only at a small size (unbounded growth).
    let mut run = DerivativeRun::prepare(
        example8_neighbourhood(32),
        EngineConfig {
            simplify: Simplify::none(),
            no_sorbe: true,
            ..EngineConfig::default()
        },
    );
    let t = us(time_us(|| {
        run.validate_all();
    }));
    run.validate_all();
    println!(
        "| no §4 simplification (33 triples only) | {t} | — | — | {} |",
        run.engine.stats().expr_pool_size
    );
    println!();
}

//! Emits `BENCH_parallel.json`: fixed-shard vs work-stealing scheduler
//! curves for `Engine::type_all_par` (E14).
//!
//! ```sh
//! cargo run --release -p shapex-bench --bin parallel
//! cargo run --release -p shapex-bench --bin parallel -- --entities 4000 --jobs 1,2,4
//! ```
//!
//! Two workload shapes, each at every `--jobs` count and under both
//! schedulers (`EngineConfig::fixed_shard` toggles the arm):
//!
//! - **uniform** — the UniProt-shaped dump: every entity costs about the
//!   same, so fixed sharding is already balanced and stealing must merely
//!   not regress;
//! - **hub** — the skewed hub-fanout graph (`scale::hub_ntriples`): one
//!   (hub, Hub) mega-task plus a Zipf tail, the adversarial case where a
//!   fixed shard draws the hub and its peers idle at the wave barrier.
//!
//! Every measurement runs in a fresh subprocess (the binary re-executes
//! itself with a hidden `--measure-typing` mode) so allocator and memo
//! state never leak between samples. Each child first computes the
//! sequential `type_all` reference and asserts the parallel typing is
//! **equal** to it (the correctness gate — timings are for the
//! verified-identical path), then times `--reps` fresh runs with metrics
//! off (min is reported), then does one metrics-on run to collect the
//! scheduler counters: steals, steal attempts, published/drained verdicts,
//! and per-worker busy/idle microseconds. *Epoch utilization* is
//! `Σ busy / (jobs × max busy)` over per-worker busy totals — 1.0 means
//! no worker outworked its peers; the skew between schedulers on the hub
//! workload is the headline number on a single-core box, where wall-clock
//! speedup is unmeasurable (see EXPERIMENTS.md E14).

use std::process::Command;
use std::time::Instant;

use serde_json::Value;
use shapex::{Engine, EngineConfig, Typing};
use shapex_rdf::ntriples;
use shapex_rdf::TermPool;
use shapex_workloads::scale;

const SEED: u64 = 42;
const DEFAULT_ENTITIES: usize = 2_000;
const DEFAULT_JOBS: &[usize] = &[1, 2, 4];
const DEFAULT_REPS: usize = 3;

fn workload_doc(workload: &str, entities: usize) -> (String, String) {
    match workload {
        "uniform" => (
            scale::uniprot_ntriples(entities, SEED),
            scale::uniprot_schema(),
        ),
        "hub" => (scale::hub_ntriples(entities, SEED), scale::hub_schema()),
        other => panic!("unknown workload '{other}' (uniform|hub)"),
    }
}

fn fresh_engine(pool: &mut TermPool, schema_src: &str, fixed: bool, metrics: bool) -> Engine {
    let schema = shapex_shex::shexc::parse(schema_src).expect("schema parses");
    Engine::compile(
        &schema,
        pool,
        EngineConfig {
            fixed_shard: fixed,
            metrics,
            ..EngineConfig::default()
        },
    )
    .expect("schema compiles")
}

/// Child mode: one (workload, jobs, scheduler) cell. Prints a JSON row.
fn measure_typing(workload: &str, entities: usize, jobs: usize, fixed: bool, reps: usize) {
    let (doc, schema_src) = workload_doc(workload, entities);
    let mut ds = ntriples::parse(&doc).expect("workload parses");
    drop(doc);

    // Correctness gate: the parallel typing must equal the sequential one
    // (same pairs, same exhaustion records) before anything is timed.
    let reference: Typing =
        fresh_engine(&mut ds.pool, &schema_src, fixed, false).type_all(&ds.graph, &ds.pool);

    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let mut engine = fresh_engine(&mut ds.pool, &schema_src, fixed, false);
        let t = Instant::now();
        let typing = engine.type_all_par(&ds.graph, &ds.pool, jobs);
        samples.push(t.elapsed().as_micros() as u64);
        assert_eq!(
            typing, reference,
            "parallel typing diverged from sequential"
        );
    }
    let min_us = *samples.iter().min().expect("reps >= 1");

    // One metrics-on run for the scheduler counters (not timed: metrics
    // collection itself costs time, so it stays out of the samples).
    let mut engine = fresh_engine(&mut ds.pool, &schema_src, fixed, true);
    let typing = engine.type_all_par(&ds.graph, &ds.pool, jobs);
    assert_eq!(typing, reference, "metrics run diverged from sequential");
    let metrics = engine.metrics().expect("metrics enabled");

    let mut busy = vec![0u64; jobs.max(1)];
    let mut idle = vec![0u64; jobs.max(1)];
    let (mut steals, mut attempts, mut stolen, mut published, mut drained) = (0, 0, 0, 0, 0);
    let (mut memo_answered, mut merged_answered, mut epochs) = (0, 0, 0u64);
    for wave in &metrics.waves {
        epochs += 1;
        steals += wave.steals;
        attempts += wave.steal_attempts;
        published += wave.published;
        memo_answered += wave.memo_answered;
        merged_answered += wave.merged_answered;
        for shard in &wave.shards {
            busy[shard.worker] += shard.busy_us;
            idle[shard.worker] += shard.idle_us;
            stolen += shard.stolen;
            drained += shard.drained;
        }
    }
    let busy_sum: u64 = busy.iter().sum();
    let busy_max = busy.iter().copied().max().unwrap_or(0);
    let utilization = if busy_max == 0 {
        1.0
    } else {
        busy_sum as f64 / (jobs as f64 * busy_max as f64)
    };

    let row = serde_json::json!({
        "workload": workload,
        "entities": entities as u64,
        "triples": ds.graph.len() as u64,
        "jobs": jobs as u64,
        "scheduler": if fixed { "fixed-shard" } else { "work-stealing" },
        "verified_identical": true,
        "typed_pairs": reference.len() as u64,
        "type_all_par_min_us": min_us,
        "type_all_par_samples_us": Value::Array(samples.iter().map(|&s| Value::from(s)).collect()),
        "epochs": epochs,
        "memo_answered": memo_answered,
        "merged_answered": merged_answered,
        "steals": steals,
        "steal_attempts": attempts,
        "stolen_queries": stolen,
        "published": published,
        "drained": drained,
        "busy_us_per_worker": Value::Array(busy.iter().map(|&b| Value::from(b)).collect()),
        "idle_us_per_worker": Value::Array(idle.iter().map(|&b| Value::from(b)).collect()),
        "epoch_utilization": utilization,
    });
    println!("{}", serde_json::to_string(&row).expect("no NaN"));
}

/// Runs this same binary in a child mode and parses its JSON stdout.
fn child(args: &[String]) -> Value {
    let exe = std::env::current_exe().expect("own path");
    let out = Command::new(exe)
        .args(args)
        .output()
        .expect("spawning measurement subprocess");
    assert!(
        out.status.success(),
        "measurement {args:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    serde_json::from_str(String::from_utf8_lossy(&out.stdout).trim())
        .unwrap_or_else(|e| panic!("measurement {args:?} produced bad JSON: {e}"))
}

fn parse_list(v: &str, flag: &str) -> Vec<usize> {
    v.split(',')
        .map(|p| {
            p.trim()
                .parse()
                .unwrap_or_else(|_| panic!("{flag} wants comma-separated integers, got '{p}'"))
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.first().map(String::as_str) == Some("--measure-typing") {
        let workload = args[1].as_str();
        let e: usize = args[2].parse().unwrap();
        let j: usize = args[3].parse().unwrap();
        let fixed: bool = args[4].parse().unwrap();
        let r: usize = args[5].parse().unwrap();
        return measure_typing(workload, e, j, fixed, r);
    }

    let mut entities = DEFAULT_ENTITIES;
    let mut jobs = DEFAULT_JOBS.to_vec();
    let mut reps = DEFAULT_REPS;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |flag: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{flag} needs a value"))
                .clone()
        };
        match a.as_str() {
            "--entities" => {
                entities = val("--entities")
                    .parse()
                    .expect("--entities wants an integer")
            }
            "--jobs" => jobs = parse_list(&val("--jobs"), "--jobs"),
            "--reps" => reps = val("--reps").parse().expect("--reps wants an integer"),
            other => panic!("unknown flag '{other}' (see the module docs)"),
        }
    }

    let mut workloads = Vec::new();
    for workload in ["uniform", "hub"] {
        let mut rows = Vec::new();
        for &j in &jobs {
            let mut cell = serde_json::Map::new();
            for fixed in [true, false] {
                let row = child(&[
                    "--measure-typing".into(),
                    workload.into(),
                    entities.to_string(),
                    j.to_string(),
                    fixed.to_string(),
                    reps.to_string(),
                ]);
                let us = row.get("type_all_par_min_us").and_then(Value::as_u64);
                let util = row.get("epoch_utilization").and_then(Value::as_f64);
                println!(
                    "{workload} @ jobs={j} {}: {} us, utilization {:.3}, steals {}",
                    if fixed {
                        "fixed-shard  "
                    } else {
                        "work-stealing"
                    },
                    us.unwrap_or(0),
                    util.unwrap_or(0.0),
                    row.get("steals").and_then(Value::as_u64).unwrap_or(0),
                );
                cell.insert(
                    if fixed {
                        "fixed_shard"
                    } else {
                        "work_stealing"
                    }
                    .to_string(),
                    row,
                );
            }
            let min_us = |arm: &str| {
                cell.get(arm)
                    .and_then(|r| r.get("type_all_par_min_us"))
                    .and_then(Value::as_f64)
            };
            let ratio = match (min_us("fixed_shard"), min_us("work_stealing")) {
                (Some(f), Some(s)) if s > 0.0 => f / s,
                _ => 0.0,
            };
            cell.insert("jobs".to_string(), Value::from(j as u64));
            cell.insert("steal_speedup_vs_fixed".to_string(), Value::from(ratio));
            rows.push(Value::Object(cell));
        }
        workloads.push(serde_json::json!({
            "workload": workload,
            "entities": entities as u64,
            "rows": Value::Array(rows),
        }));
    }

    let doc = serde_json::json!({
        "generated_by": "cargo run --release -p shapex-bench --bin parallel",
        "workloads_from": "crates/workloads scale::{uniprot,hub}_ntriples",
        "seed": SEED,
        "reps_per_timing": reps as u64,
        "cpus_available": std::thread::available_parallelism().map_or(1, |n| n.get()) as u64,
        "note": "every row is correctness-gated: the parallel typing was asserted equal to the sequential type_all before timing; on a single-core box wall-clock speedup is not expected — epoch_utilization and steal counters carry the scheduler comparison (EXPERIMENTS.md E14)",
        "workloads": Value::Array(workloads),
    });
    let rendered = serde_json::to_string_pretty(&doc).expect("no NaN in report") + "\n";
    std::fs::write("BENCH_parallel.json", &rendered).expect("write BENCH_parallel.json");
    println!("wrote BENCH_parallel.json");
}

//! Emits `BENCH_incremental.json`: incremental revalidation
//! (`Engine::revalidate` over a dependency index) against the only
//! alternative an edit otherwise leaves — `Engine::reset` plus a full
//! re-typing — across delta sizes from 0.1% to 100% of the graph's
//! triples (E11).
//!
//! ```sh
//! cargo run --release -p shapex-bench --bin revalidate
//! ```
//!
//! Each delta replaces every k-th triple (in the deterministic
//! `triples_sorted` order) with a copy carrying a fresh literal object, so
//! the graph keeps its size and shape while the touched neighbourhoods
//! genuinely change. Per repetition the delta is applied, the timed run
//! re-types the mutated graph, and the delta is reverted (plus, on the
//! incremental engine, revalidated back) so every sample starts from the
//! same warm pre-delta state. The two strategies are sampled interleaved
//! and the reported timing is the minimum over the reps, medians alongside
//! (same rationale as the DFA bench: the work is deterministic, the
//! minimum is the least-disturbed run).

use std::time::Instant;

use serde_json::Value;
use shapex::{Engine, EngineConfig};
use shapex_rdf::delta::GraphDelta;
use shapex_rdf::graph::{Dataset, Triple};
use shapex_rdf::term::{Literal, Term};
use shapex_workloads::{person_network, Topology, Workload};

const REPS: usize = 9;
const FRACTIONS: [f64; 6] = [0.001, 0.01, 0.05, 0.2, 0.5, 1.0];

/// Repeated-shape × high-fanout, cascade-free: `nodes` subjects against a
/// width-`w` unordered concatenation of wildcard-object arcs,
/// `per_branch` triples per predicate. No shape references, so a delta's
/// blast radius is exactly the subjects it touches — the regime where
/// incremental revalidation should approach `touched/total` of the full
/// cost.
fn repeated_and_width(nodes: usize, w: usize, per_branch: usize) -> Workload {
    let body: Vec<String> = (0..w).map(|i| format!("e:p{i} .+")).collect();
    let schema = format!("PREFIX e: <http://e/>\n<S> {{ {} }}", body.join(", "));
    let mut dataset = Dataset::new();
    let mut focus = Vec::with_capacity(nodes);
    for n in 0..nodes {
        let subject = Term::iri(format!("http://e/n{n}"));
        for i in 0..w {
            for j in 0..per_branch {
                dataset.insert(
                    subject.clone(),
                    Term::iri(format!("http://e/p{i}")),
                    Term::Literal(Literal::integer(j as i64)),
                );
            }
        }
        focus.push(format!("http://e/n{n}"));
    }
    let expected = vec![true; nodes];
    Workload {
        name: format!("repeated_and_width/n={nodes},w={w},k={per_branch}"),
        schema,
        dataset,
        focus,
        shape: "S".to_string(),
        expected,
    }
}

/// A delta replacing a contiguous block of `fraction` of the sorted
/// triples (at least one) with copies carrying fresh integer-literal
/// objects. Contiguous in `triples_sorted` order means contiguous in
/// subjects — the localized-edit regime incremental revalidation exists
/// for ("these resources changed"), as opposed to a uniform sprinkle that
/// touches every neighbourhood no matter how small the delta.
/// Deterministic: no randomness, same selection per run.
fn make_delta(ds: &mut Dataset, fraction: f64) -> GraphDelta {
    let triples = ds.graph.triples_sorted();
    let total = triples.len();
    let count = ((total as f64 * fraction).round() as usize).clamp(1, total);
    let mut delta = GraphDelta::new();
    for (i, t) in triples.iter().take(count).enumerate() {
        delta.removed.push(*t);
        delta.added.push(Triple {
            object: ds
                .pool
                .intern(Term::Literal(Literal::integer(1_000_000 + i as i64))),
            ..*t
        });
    }
    delta
}

/// `(min, median)` of a sample vector, in microseconds.
fn min_median(mut samples: Vec<u128>) -> (u64, u64) {
    samples.sort();
    (samples[0] as u64, samples[samples.len() / 2] as u64)
}

/// One workload across all delta fractions: per fraction, warm full-reset
/// and revalidate timings plus the invalidation counters from a metered
/// revalidate pass.
fn case(name: &str, workload: Workload) -> Value {
    let schema = shapex_shex::shexc::parse(&workload.schema).expect("workload schema parses");
    let mut ds = workload.dataset;
    let mut full = Engine::compile(&schema, &mut ds.pool, EngineConfig::default())
        .expect("workload schema compiles");
    let mut inc = Engine::compile(
        &schema,
        &mut ds.pool,
        EngineConfig {
            incremental: true,
            ..EngineConfig::default()
        },
    )
    .expect("workload schema compiles");
    // Prime the incremental engine: the pre-delta typing populates the
    // memo and the dependency index every revalidation below starts from.
    inc.type_all(&ds.graph, &ds.pool);
    let total_triples = ds.graph.triples_sorted().len();

    let mut rows = Vec::new();
    for fraction in FRACTIONS {
        let delta = make_delta(&mut ds, fraction);
        let inverse = delta.inverse();

        // Correctness gate: the incremental typing of the mutated graph
        // must equal the from-scratch one.
        let applied = ds.apply_delta(&delta);
        let t_inc = inc.revalidate(&ds.graph, &ds.pool, &delta).unwrap();
        full.reset();
        let t_full = full.type_all(&ds.graph, &ds.pool);
        assert_eq!(t_inc, t_full, "{name}: incremental diverges at {fraction}");
        ds.revert_delta(&applied);
        inc.revalidate(&ds.graph, &ds.pool, &inverse).unwrap();

        let mut full_samples = Vec::with_capacity(REPS);
        let mut inc_samples = Vec::with_capacity(REPS);
        for _ in 0..REPS {
            let applied = ds.apply_delta(&delta);
            let t = Instant::now();
            full.reset();
            full.type_all(&ds.graph, &ds.pool);
            full_samples.push(t.elapsed().as_micros());
            ds.revert_delta(&applied);

            let applied = ds.apply_delta(&delta);
            let t = Instant::now();
            inc.revalidate(&ds.graph, &ds.pool, &delta).unwrap();
            inc_samples.push(t.elapsed().as_micros());
            ds.revert_delta(&applied);
            // Restore the warm pre-delta state (untimed).
            inc.revalidate(&ds.graph, &ds.pool, &inverse).unwrap();
        }
        let (full_us, full_median_us) = min_median(full_samples);
        let (inc_us, inc_median_us) = min_median(inc_samples);

        // Counter snapshot from one more revalidation.
        let before = inc.stats();
        let applied = ds.apply_delta(&delta);
        inc.revalidate(&ds.graph, &ds.pool, &delta).unwrap();
        let after = inc.stats();
        ds.revert_delta(&applied);
        inc.revalidate(&ds.graph, &ds.pool, &inverse).unwrap();

        rows.push(serde_json::json!({
            "fraction": fraction,
            "delta_triples": delta.removed.len() + delta.added.len(),
            "full_us": full_us,
            "incremental_us": inc_us,
            "full_median_us": full_median_us,
            "incremental_median_us": inc_median_us,
            "speedup": full_us as f64 / inc_us.max(1) as f64,
            "invalidated_pairs": after.invalidated_pairs - before.invalidated_pairs,
            "retyped_pairs": after.retyped_pairs - before.retyped_pairs,
            "reused_pairs": after.reused_pairs - before.reused_pairs,
        }));
    }
    serde_json::json!({
        "name": name,
        "total_triples": total_triples as u64,
        "deltas": Value::Array(rows),
    })
}

fn main() {
    let cases = vec![
        // Cascade-free high-fanout fleet: the headline regime.
        case("repeated_and_width_96x6x8", repeated_and_width(96, 6, 8)),
        // Recursive typing: invalidation must chase reference edges, so
        // a touched triple's blast radius exceeds its own subject.
        case(
            "person_network_300_random2",
            person_network(300, Topology::Random { degree: 2 }, 0.3, 7),
        ),
    ];
    let doc = serde_json::json!({
        "generated_by": "cargo run --release -p shapex-bench --bin revalidate",
        "reps_per_timing": REPS as u64,
        "cases": Value::Array(cases),
    });
    let rendered = serde_json::to_string_pretty(&doc).expect("no NaN in report") + "\n";
    let path = "BENCH_incremental.json";
    std::fs::write(path, &rendered).expect("write BENCH_incremental.json");
    for c in doc.get("cases").and_then(|c| c.as_array()).unwrap() {
        let name = c.get("name").and_then(|v| v.as_str()).unwrap_or("?");
        for d in c.get("deltas").and_then(|d| d.as_array()).unwrap() {
            let num = |k: &str| d.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
            println!(
                "{name} @ {:.1}%: {} µs full / {} µs incremental ({:.2}x, {} retyped)",
                d.get("fraction").and_then(|v| v.as_f64()).unwrap_or(0.0) * 100.0,
                num("full_us"),
                num("incremental_us"),
                d.get("speedup").and_then(|v| v.as_f64()).unwrap_or(0.0),
                num("retyped_pairs"),
            );
        }
    }
    println!("wrote {path}");
}

//! Emits `BENCH_observability.json`: the engine's metrics block over
//! representative workloads, plus the cost of collecting it.
//!
//! ```sh
//! cargo run --release -p shapex-bench --bin observability
//! ```
//!
//! Three sequential workloads exercise the general derivative path, the
//! Example 10 growth regime, and recursive gfp typing; a fourth runs the
//! parallel `type_all_par` driver so the per-wave/per-shard records are
//! populated. Each case is timed twice — metrics off and metrics on — so
//! the JSON also documents the collection overhead the zero-cost-when-
//! disabled claim is about (timings are medians of a few reps; expect
//! noise, not statistics).

use std::time::Instant;

use serde_json::Value;
use shapex::{Engine, EngineConfig};
use shapex_bench::DerivativeRun;
use shapex_shex::shexc;
use shapex_workloads::{balanced_ab, example8_neighbourhood, person_network, Topology, Workload};

const REPS: usize = 5;

fn median_us(mut f: impl FnMut()) -> u64 {
    let mut samples: Vec<u128> = (0..REPS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_micros()
        })
        .collect();
    samples.sort();
    samples[REPS / 2] as u64
}

fn shape_labels(engine: &Engine) -> impl Fn(usize) -> String + '_ {
    |i| {
        engine
            .label_of(shapex::ShapeId(i as u32))
            .as_str()
            .to_string()
    }
}

/// One sequential workload: metrics-off baseline vs metrics-on run, plus
/// the stats and metrics blocks from the final metered pass.
fn sequential_case(name: &str, workload: impl Fn() -> Workload, config: EngineConfig) -> Value {
    let mut off = DerivativeRun::prepare(workload(), config);
    let off_us = median_us(|| {
        off.validate_all();
    });
    let mut on = DerivativeRun::prepare(
        workload(),
        EngineConfig {
            metrics: true,
            ..config
        },
    );
    let on_us = median_us(|| {
        on.validate_all();
    });
    on.validate_all();
    let metrics = on
        .engine
        .metrics()
        .expect("metrics enabled")
        .to_json(&shape_labels(&on.engine));
    serde_json::json!({
        "name": name,
        "elapsed_us_metrics_off": off_us,
        "elapsed_us_metrics_on": on_us,
        "stats": on.engine.stats().to_json(),
        "metrics": metrics,
    })
}

/// The parallel typing driver over a recursive network, so the wave and
/// shard records have something to say.
fn parallel_case(jobs: usize) -> Value {
    // Fully valid network: with invalid seeds, non-conformance cascades
    // through `knows @<Person>*` and the gfp (correctly) empties the
    // typing, which would make the typed-pairs number uninformative.
    let mut w = person_network(800, Topology::Random { degree: 2 }, 0.0, 42);
    let schema = shexc::parse(&w.schema).expect("workload schema parses");
    let mut engine = Engine::compile(
        &schema,
        &mut w.dataset.pool,
        EngineConfig {
            metrics: true,
            ..EngineConfig::default()
        },
    )
    .expect("workload schema compiles");
    let t = Instant::now();
    let typing = engine.type_all_par(&w.dataset.graph, &w.dataset.pool, jobs);
    let elapsed_us = t.elapsed().as_micros() as u64;
    let metrics = engine.metrics().expect("metrics enabled");
    serde_json::json!({
        "name": "person_network_800_full_typing",
        "jobs": jobs,
        "typed_pairs": typing.len(),
        "elapsed_us": elapsed_us,
        "waves": metrics.waves.len(),
        "stats": engine.stats().to_json(),
        "metrics": metrics.to_json(&shape_labels(&engine)),
    })
}

fn main() {
    let general = EngineConfig {
        no_sorbe: true,
        ..EngineConfig::default()
    };
    let cases = vec![
        sequential_case(
            "example8_256_general",
            || example8_neighbourhood(256),
            general,
        ),
        sequential_case(
            "balanced_ab_32",
            || balanced_ab(32),
            EngineConfig::default(),
        ),
        sequential_case(
            "person_network_500_random2",
            || person_network(500, Topology::Random { degree: 2 }, 0.1, 42),
            EngineConfig::default(),
        ),
        parallel_case(4),
    ];
    let doc = serde_json::json!({
        "generated_by": "cargo run --release -p shapex-bench --bin observability",
        "reps_per_timing": REPS as u64,
        "cases": Value::Array(cases),
    });
    let rendered = serde_json::to_string_pretty(&doc).expect("no NaN in report") + "\n";
    let path = "BENCH_observability.json";
    std::fs::write(path, &rendered).expect("write BENCH_observability.json");
    for case in doc.get("cases").and_then(|c| c.as_array()).unwrap() {
        let name = case.get("name").and_then(|n| n.as_str()).unwrap();
        match (
            case.get("elapsed_us_metrics_off").and_then(|v| v.as_u64()),
            case.get("elapsed_us_metrics_on").and_then(|v| v.as_u64()),
        ) {
            (Some(off), Some(on)) => println!("{name}: {off} µs off / {on} µs on"),
            _ => println!(
                "{name}: {} µs ({} waves)",
                case.get("elapsed_us").and_then(|v| v.as_u64()).unwrap_or(0),
                case.get("waves").and_then(|v| v.as_u64()).unwrap_or(0),
            ),
        }
    }
    println!("wrote {path}");
}

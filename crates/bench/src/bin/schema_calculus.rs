//! Emits `BENCH_schema_calculus.json`: schema-delta revalidation
//! (`schema_diff` classification plus verdict transplant into the new
//! engine) against the only alternative a schema edit otherwise leaves —
//! compiling the new schema cold and re-typing everything — across schema
//! churn from 1% to 50% of the shapes (E13).
//!
//! ```sh
//! cargo run --release -p shapex-bench --bin schema_calculus
//! ```
//!
//! The workload is a fleet of independent shapes `<S0>..<S39>`, each
//! validating its own predicate pair, over a graph whose nodes each
//! conform to one shape. Churning a fraction f rewrites the first
//! `ceil(f·40)` shapes' cardinalities (`.+` → `.*`), genuinely changing
//! their languages while the rest stay identical. The delta arm pays for
//! everything it needs — the containment-based diff, the new compile, and
//! the transplant — so the reported speedup is end-to-end honest. The two
//! strategies are sampled interleaved and the reported timing is the
//! minimum over the reps, medians alongside (same rationale as the
//! revalidate bench: the work is deterministic, the minimum is the
//! least-disturbed run).

use std::time::Instant;

use serde_json::Value;
use shapex::{schema_diff, Budget, Engine, EngineConfig};
use shapex_rdf::graph::Dataset;
use shapex_rdf::term::{Literal, Term};

const REPS: usize = 9;
const CHURN: [f64; 3] = [0.01, 0.1, 0.5];
const SHAPES: usize = 40;
const NODES: usize = 240;

/// The fleet schema with the first `churned` shapes rewritten to a
/// different language (`.+` loosened to `.*`).
fn schema_src(churned: usize) -> String {
    let mut s = String::from("PREFIX e: <http://e/>\n");
    for i in 0..SHAPES {
        let card = if i < churned { "*" } else { "+" };
        s.push_str(&format!("<S{i}> {{ e:p{i} .{card} , e:q{i} .? }}\n"));
    }
    s
}

/// One subject per node, conforming to shape `n mod SHAPES`.
fn dataset() -> Dataset {
    let mut ds = Dataset::new();
    for n in 0..NODES {
        let subject = Term::iri(format!("http://e/n{n}"));
        let i = n % SHAPES;
        ds.insert(
            subject.clone(),
            Term::iri(format!("http://e/p{i}")),
            Term::Literal(Literal::integer(1)),
        );
        ds.insert(
            subject,
            Term::iri(format!("http://e/q{i}")),
            Term::Literal(Literal::integer(2)),
        );
    }
    ds
}

/// `(min, median)` of a sample vector, in microseconds.
fn min_median(mut samples: Vec<u128>) -> (u64, u64) {
    samples.sort();
    (samples[0] as u64, samples[samples.len() / 2] as u64)
}

fn case(fraction: f64) -> Value {
    let churned = ((SHAPES as f64 * fraction).round() as usize).clamp(1, SHAPES);
    let old = shapex_shex::shexc::parse(&schema_src(0)).expect("old schema parses");
    let new = shapex_shex::shexc::parse(&schema_src(churned)).expect("new schema parses");
    let config = EngineConfig::default();

    let mut ds = dataset();
    // The warm pre-edit engine every delta-arm sample transplants from.
    let mut old_engine = Engine::compile(&old, &mut ds.pool, config).expect("old schema compiles");
    old_engine.type_all(&ds.graph, &ds.pool);

    // Correctness gate: the transplanted typing of the new schema must
    // equal the from-scratch one.
    let diff = schema_diff(
        &old,
        &new,
        config.simplify,
        config.closure,
        &Budget::UNLIMITED,
    )
    .expect("diff");
    assert_eq!(diff.changed.len(), churned, "churn miscounted");
    let mut warm = Engine::compile(&new, &mut ds.pool, config).expect("new schema compiles");
    let transplanted = warm.transplant_verdicts(&old_engine, &diff.reusable);
    let t_warm = warm.type_all(&ds.graph, &ds.pool);
    let mut scratch = Engine::compile(&new, &mut ds.pool, config).expect("new schema compiles");
    let t_scratch = scratch.type_all(&ds.graph, &ds.pool);
    assert_eq!(t_warm, t_scratch, "schema-delta diverges at {fraction}");

    let mut scratch_samples = Vec::with_capacity(REPS);
    let mut delta_samples = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let t = Instant::now();
        let mut e = Engine::compile(&new, &mut ds.pool, config).expect("compiles");
        e.type_all(&ds.graph, &ds.pool);
        scratch_samples.push(t.elapsed().as_micros());

        let t = Instant::now();
        let diff = schema_diff(
            &old,
            &new,
            config.simplify,
            config.closure,
            &Budget::UNLIMITED,
        )
        .expect("diff");
        let mut e = Engine::compile(&new, &mut ds.pool, config).expect("compiles");
        e.transplant_verdicts(&old_engine, &diff.reusable);
        e.type_all(&ds.graph, &ds.pool);
        delta_samples.push(t.elapsed().as_micros());
    }
    let (scratch_us, scratch_median_us) = min_median(scratch_samples);
    let (delta_us, delta_median_us) = min_median(delta_samples);

    serde_json::json!({
        "churn_fraction": fraction,
        "shapes_changed": churned as u64,
        "shapes_reusable": diff.reusable.len() as u64,
        "transplanted_pairs": transplanted as u64,
        "scratch_us": scratch_us,
        "schema_delta_us": delta_us,
        "scratch_median_us": scratch_median_us,
        "schema_delta_median_us": delta_median_us,
        "speedup": scratch_us as f64 / delta_us.max(1) as f64,
    })
}

fn main() {
    let rows: Vec<Value> = CHURN.iter().map(|&f| case(f)).collect();
    let doc = serde_json::json!({
        "generated_by": "cargo run --release -p shapex-bench --bin schema_calculus",
        "reps_per_timing": REPS as u64,
        "shapes": SHAPES as u64,
        "nodes": NODES as u64,
        "cases": Value::Array(rows),
    });
    let rendered = serde_json::to_string_pretty(&doc).expect("no NaN in report") + "\n";
    let path = "BENCH_schema_calculus.json";
    std::fs::write(path, &rendered).expect("write BENCH_schema_calculus.json");
    for c in doc.get("cases").and_then(|c| c.as_array()).unwrap() {
        let num = |k: &str| c.get(k).and_then(|v| v.as_u64()).unwrap_or(0);
        println!(
            "churn {:.0}%: {} µs scratch / {} µs schema-delta ({:.2}x, {} transplanted)",
            c.get("churn_fraction")
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0)
                * 100.0,
            num("scratch_us"),
            num("schema_delta_us"),
            c.get("speedup").and_then(|v| v.as_f64()).unwrap_or(0.0),
            num("transplanted_pairs"),
        );
    }
    println!("wrote {path}");
}

//! Shared helpers for the benchmark harness (see EXPERIMENTS.md for the
//! experiment ↔ bench mapping).

use shapex::{Engine, EngineConfig, ShapeId};
use shapex_backtrack::{BacktrackValidator, BtConfig, BtError};
use shapex_rdf::pool::TermId;
use shapex_shex::ast::ShapeLabel;
use shapex_shex::schema::Schema;
use shapex_shex::shexc;
use shapex_workloads::Workload;

/// A workload compiled for the derivative engine, ready to validate.
pub struct DerivativeRun {
    /// The compiled engine.
    pub engine: Engine,
    /// The workload's data.
    pub dataset: shapex_rdf::graph::Dataset,
    /// Focus node ids.
    pub nodes: Vec<TermId>,
    /// The shape every focus node is checked against.
    pub label: ShapeLabel,
    /// Resolved shape id.
    pub shape: ShapeId,
    /// Ground-truth conformance per focus node.
    pub expected: Vec<bool>,
}

impl DerivativeRun {
    pub fn prepare(mut w: Workload, config: EngineConfig) -> DerivativeRun {
        let schema = shexc::parse(&w.schema).expect("workload schema parses");
        let engine = Engine::compile(&schema, &mut w.dataset.pool, config)
            .expect("workload schema compiles");
        let nodes: Vec<TermId> = w
            .focus
            .iter()
            .map(|iri| w.dataset.iri(iri).expect("focus node in data"))
            .collect();
        let label = ShapeLabel::new(w.shape);
        let shape = engine.shape_id(&label).expect("shape exists");
        DerivativeRun {
            engine,
            dataset: w.dataset,
            nodes,
            label,
            shape,
            expected: w.expected,
        }
    }

    /// Validates every focus node (fresh memo state per call so repeated
    /// bench iterations measure real work), asserting ground truth.
    pub fn validate_all(&mut self) -> usize {
        self.engine.reset();
        let queries: Vec<(TermId, ShapeId)> = self.nodes.iter().map(|&n| (n, self.shape)).collect();
        let results = self
            .engine
            .check_many(&self.dataset.graph, &self.dataset.pool, &queries);
        let mut conforming = 0;
        for (i, result) in results.iter().enumerate() {
            debug_assert_eq!(result.matched(), self.expected[i]);
            conforming += usize::from(result.matched());
        }
        conforming
    }

    /// Like `validate_all`, but under a budget: returns
    /// `(conforming, exhausted)` counts instead of asserting ground truth
    /// (an exhausted check has no ground truth to assert).
    pub fn validate_all_budgeted(&mut self, budget: shapex::Budget) -> (usize, usize) {
        self.engine.reset();
        self.engine.set_budget(budget);
        let queries: Vec<(TermId, ShapeId)> = self.nodes.iter().map(|&n| (n, self.shape)).collect();
        let results = self
            .engine
            .check_many(&self.dataset.graph, &self.dataset.pool, &queries);
        let mut conforming = 0;
        let mut exhausted = 0;
        for result in &results {
            conforming += usize::from(result.matched());
            exhausted += usize::from(result.is_exhausted());
        }
        (conforming, exhausted)
    }
}

/// A workload set up for the backtracking baseline.
pub struct BacktrackRun {
    pub validator: BacktrackValidator,
    pub dataset: shapex_rdf::graph::Dataset,
    pub nodes: Vec<TermId>,
    pub label: ShapeLabel,
}

impl BacktrackRun {
    pub fn prepare(w: Workload, budget: shapex::Budget) -> BacktrackRun {
        let schema = shexc::parse(&w.schema).expect("workload schema parses");
        let validator = BacktrackValidator::with_config(&schema, BtConfig { budget })
            .expect("workload schema compiles");
        let nodes = w
            .focus
            .iter()
            .map(|iri| w.dataset.iri(iri).expect("focus node in data"))
            .collect();
        BacktrackRun {
            validator,
            dataset: w.dataset,
            nodes,
            label: ShapeLabel::new(w.shape),
        }
    }

    /// Validates every focus node; `Err` when the budget blows (the
    /// exponential regime — reported, not timed).
    pub fn validate_all(&self) -> Result<usize, BtError> {
        let mut conforming = 0;
        for &node in &self.nodes {
            conforming += usize::from(self.validator.check(
                &self.dataset.graph,
                &self.dataset.pool,
                node,
                &self.label,
            )?);
        }
        Ok(conforming)
    }
}

/// Parses a workload's schema (for SPARQL generation paths).
pub fn parse_schema(w: &Workload) -> Schema {
    shexc::parse(&w.schema).expect("workload schema parses")
}

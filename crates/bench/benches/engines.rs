//! **E1 / E2 / E7** — engine head-to-heads (EXPERIMENTS.md).
//!
//! E1: the Fig. 2 / Example 8 shape over a growing neighbourhood —
//!     derivatives consume triples linearly while the backtracking
//!     matcher decomposes (2ⁿ).
//! E2: And-width blow-up — the paper's §5 warning, isolated.
//! E7: flat person records — derivative engine vs the §3
//!     generate-SPARQL-and-evaluate pipeline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use shapex::EngineConfig;

/// The general derivative algorithm (the paper's contribution), with the
/// SORBE fast path disabled so the series measures what it names.
fn derivative_config() -> EngineConfig {
    EngineConfig {
        no_sorbe: true,
        ..EngineConfig::default()
    }
}
use shapex_bench::{parse_schema, BacktrackRun, DerivativeRun};
use shapex_shex::ast::ShapeLabel;
use shapex_workloads::{and_width, example8_neighbourhood, flat_person_records};

fn e1_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_fig2_example8");
    for b_triples in [2usize, 4, 8, 12, 16] {
        let mut run =
            DerivativeRun::prepare(example8_neighbourhood(b_triples), derivative_config());
        group.bench_with_input(
            BenchmarkId::new("derivative", b_triples),
            &b_triples,
            |bench, _| bench.iter(|| black_box(run.validate_all())),
        );
        // The §8-future-work SORBE counting path (this shape qualifies).
        let mut sorbe =
            DerivativeRun::prepare(example8_neighbourhood(b_triples), EngineConfig::default());
        group.bench_with_input(
            BenchmarkId::new("sorbe", b_triples),
            &b_triples,
            |bench, _| bench.iter(|| black_box(sorbe.validate_all())),
        );
        // Backtracking: skip sizes whose decomposition count would exceed
        // the budget (reported in EXPERIMENTS.md instead of timed).
        let bt = BacktrackRun::prepare(
            example8_neighbourhood(b_triples),
            shapex::Budget::steps(50_000_000),
        );
        if bt.validate_all().is_ok() {
            group.bench_with_input(
                BenchmarkId::new("backtracking", b_triples),
                &b_triples,
                |bench, _| bench.iter(|| black_box(bt.validate_all().expect("within budget"))),
            );
        }
    }
    // Derivatives keep going far beyond the baseline's feasible range.
    for b_triples in [64usize, 256] {
        let mut run =
            DerivativeRun::prepare(example8_neighbourhood(b_triples), derivative_config());
        group.bench_with_input(
            BenchmarkId::new("derivative", b_triples),
            &b_triples,
            |bench, _| bench.iter(|| black_box(run.validate_all())),
        );
    }
    group.finish();
}

fn e2_and_width(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_and_width");
    for width in [1usize, 2, 3, 4, 5, 6] {
        let mut run = DerivativeRun::prepare(and_width(width, 2), derivative_config());
        group.bench_with_input(BenchmarkId::new("derivative", width), &width, |bench, _| {
            bench.iter(|| black_box(run.validate_all()))
        });
        let mut sorbe = DerivativeRun::prepare(and_width(width, 2), EngineConfig::default());
        group.bench_with_input(BenchmarkId::new("sorbe", width), &width, |bench, _| {
            bench.iter(|| black_box(sorbe.validate_all()))
        });
        let bt = BacktrackRun::prepare(and_width(width, 2), shapex::Budget::steps(50_000_000));
        if bt.validate_all().is_ok() {
            group.bench_with_input(
                BenchmarkId::new("backtracking", width),
                &width,
                |bench, _| bench.iter(|| black_box(bt.validate_all().expect("within budget"))),
            );
        }
    }
    group.finish();
}

fn e7_sparql(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_sparql_mapping");
    for n in [10usize, 50, 200] {
        let mut run = DerivativeRun::prepare(flat_person_records(n, 42), derivative_config());
        group.bench_with_input(BenchmarkId::new("derivative", n), &n, |bench, _| {
            bench.iter(|| black_box(run.validate_all()))
        });
        let mut sorbe = DerivativeRun::prepare(flat_person_records(n, 42), EngineConfig::default());
        group.bench_with_input(BenchmarkId::new("sorbe", n), &n, |bench, _| {
            bench.iter(|| black_box(sorbe.validate_all()))
        });

        let w = flat_person_records(n, 42);
        let schema = parse_schema(&w);
        let label = ShapeLabel::new(w.shape.as_str());
        // Pre-generate and pre-parse the queries: the bench measures
        // evaluation (generation is measured separately below).
        let queries: Vec<_> = w
            .focus
            .iter()
            .map(|iri| {
                let q = shapex_sparql::generate_node_ask(&schema, &label, iri).unwrap();
                shapex_sparql::parser::parse(&q).unwrap()
            })
            .collect();
        let ds = w.dataset;
        group.bench_with_input(BenchmarkId::new("sparql_eval", n), &n, |bench, _| {
            bench.iter(|| {
                let mut conforming = 0usize;
                for q in &queries {
                    conforming += usize::from(shapex_sparql::ask(q, &ds.graph, &ds.pool).unwrap());
                }
                black_box(conforming)
            })
        });
        group.bench_with_input(
            BenchmarkId::new("sparql_generate_parse_eval", n),
            &n,
            |bench, _| {
                bench.iter(|| {
                    let mut conforming = 0usize;
                    for iri in &w.focus {
                        let q = shapex_sparql::generate_node_ask(&schema, &label, iri).unwrap();
                        let parsed = shapex_sparql::parser::parse(&q).unwrap();
                        conforming +=
                            usize::from(shapex_sparql::ask(&parsed, &ds.graph, &ds.pool).unwrap());
                    }
                    black_box(conforming)
                })
            },
        );
    }
    group.finish();
}

/// **Budget guard** — time-to-exhaustion must stay flat: a blown budget is
/// a cheap structured outcome, not a cheaper hang. Runs the backtracking
/// baseline on sizes past its feasible range under a small step budget
/// (every check must come back `Exhausted`, never complete and never
/// wedge), and the derivative engine through `validate_all_budgeted` to
/// keep the partial-typing path measured.
fn budget_guard(c: &mut Criterion) {
    let mut group = c.benchmark_group("budget_guard");
    for b_triples in [24usize, 32] {
        let bt = BacktrackRun::prepare(
            example8_neighbourhood(b_triples),
            shapex::Budget::steps(100_000),
        );
        // Sanity outside the timing loop: this size must exhaust.
        assert!(
            bt.validate_all().is_err(),
            "size {b_triples} should blow a 100k-step budget"
        );
        group.bench_with_input(
            BenchmarkId::new("backtracking_exhaust", b_triples),
            &b_triples,
            |bench, _| bench.iter(|| black_box(bt.validate_all().is_err())),
        );
    }
    for b_triples in [8usize, 16] {
        let mut run =
            DerivativeRun::prepare(example8_neighbourhood(b_triples), derivative_config());
        group.bench_with_input(
            BenchmarkId::new("derivative_budgeted", b_triples),
            &b_triples,
            |bench, _| {
                bench.iter(|| {
                    let (conforming, exhausted) =
                        run.validate_all_budgeted(shapex::Budget::steps(1_000_000));
                    black_box((conforming, exhausted))
                })
            },
        );
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = config();
    targets = e1_fig2, e2_and_width, e7_sparql, budget_guard
}
criterion_main!(benches);

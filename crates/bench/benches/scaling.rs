//! **E3 / E4** — derivative-engine scaling (EXPERIMENTS.md).
//!
//! E3: time vs neighbourhood size for the Example 8 shape — the paper's
//!     "linear approach where it is consuming a triple in each step" (§7).
//! E4: the Example 10 family whose derivative *expression* grows; measures
//!     wall time and records the expression-arena size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

use shapex::EngineConfig;

fn derivative_config() -> EngineConfig {
    EngineConfig {
        no_sorbe: true,
        ..EngineConfig::default()
    }
}
use shapex_bench::DerivativeRun;
use shapex_workloads::{alternation_fanout, balanced_ab, example8_neighbourhood};

fn e3_triples(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_triples_scaling");
    for n in [10usize, 100, 1_000, 10_000, 100_000] {
        let mut run = DerivativeRun::prepare(example8_neighbourhood(n), derivative_config());
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("derivative", n), &n, |bench, _| {
            bench.iter(|| black_box(run.validate_all()))
        });
        let mut sorbe = DerivativeRun::prepare(example8_neighbourhood(n), EngineConfig::default());
        group.bench_with_input(BenchmarkId::new("sorbe", n), &n, |bench, _| {
            bench.iter(|| black_box(sorbe.validate_all()))
        });
    }
    group.finish();
}

fn e4_expr_growth(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_example10_growth");
    for pairs in [4usize, 8, 16, 32, 64] {
        let mut run = DerivativeRun::prepare(balanced_ab(pairs), EngineConfig::default());
        group.bench_with_input(BenchmarkId::new("derivative", pairs), &pairs, |bench, _| {
            bench.iter(|| black_box(run.validate_all()))
        });
        // Record the arena growth once per size (printed into the bench
        // log; EXPERIMENTS.md cites these numbers).
        run.validate_all();
        println!(
            "e4_example10_growth/pairs={pairs}: expression arena = {} nodes, ∂-steps = {}",
            run.engine.stats().expr_pool_size,
            run.engine.stats().derivative_steps,
        );
    }
    group.finish();
}

fn e4b_alternation_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4b_alternation_fanout");
    for k in [2usize, 4, 8, 16, 32] {
        let mut run = DerivativeRun::prepare(alternation_fanout(k, k), derivative_config());
        group.bench_with_input(BenchmarkId::new("derivative", k), &k, |bench, _| {
            bench.iter(|| black_box(run.validate_all()))
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = config();
    targets = e3_triples, e4_expr_growth, e4b_alternation_fanout
}
criterion_main!(benches);

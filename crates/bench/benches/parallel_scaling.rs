//! Parallel typing scaling: `Engine::type_all_par` at 1/2/4/8 workers.
//!
//! Three workload shapes:
//! * wide fan-out of independent record nodes (`flat_person_records`) —
//!   embarrassingly parallel, the headline speedup case;
//! * a recursive referencing network (`person_network`) — workers trade
//!   promoted unconditional answers between waves;
//! * the pathological fixtures under budgets — measures governed typing,
//!   where the shared run governor aggregates worker step counts.
//!
//! `jobs = 1` is the exact sequential path, so each group's first entry is
//! the baseline the other entries are compared against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::path::Path;
use std::time::Duration;

use shapex::{Budget, Engine, EngineConfig};
use shapex_rdf::graph::Dataset;
use shapex_workloads::{flat_person_records, person_network, Topology};

const JOBS: [usize; 4] = [1, 2, 4, 8];

fn bench_typing(c: &mut Criterion, name: &str, schema_src: &str, mut ds: Dataset, budget: Budget) {
    let schema = shapex_shex::shexc::parse(schema_src).unwrap();
    let config = EngineConfig {
        budget,
        ..EngineConfig::default()
    };
    let mut engine = Engine::compile(&schema, &mut ds.pool, config).unwrap();
    let mut group = c.benchmark_group(format!("parallel_scaling/{name}"));
    for jobs in JOBS {
        group.bench_with_input(BenchmarkId::from_parameter(jobs), &jobs, |bench, &jobs| {
            bench.iter(|| {
                engine.reset();
                black_box(engine.type_all_par(&ds.graph, &ds.pool, jobs))
            })
        });
    }
    group.finish();
}

fn pathological(name: &str) -> (String, Dataset) {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../fixtures/_pathological");
    let schema_src = std::fs::read_to_string(root.join(format!("{name}.shex")))
        .unwrap_or_else(|e| panic!("{name}.shex: {e}"));
    let data_src = std::fs::read_to_string(root.join(format!("{name}.ttl")))
        .unwrap_or_else(|e| panic!("{name}.ttl: {e}"));
    let ds = shapex_rdf::turtle::parse(&data_src).unwrap();
    (schema_src, ds)
}

fn wide_fanout(c: &mut Criterion) {
    let w = flat_person_records(600, 0);
    bench_typing(
        c,
        "flat_records_600",
        &w.schema,
        w.dataset,
        Budget::UNLIMITED,
    );
}

fn recursive_network(c: &mut Criterion) {
    let w = person_network(300, Topology::Random { degree: 2 }, 0.2, 7);
    bench_typing(
        c,
        "person_network_300",
        &w.schema,
        w.dataset,
        Budget::UNLIMITED,
    );
}

fn pathological_fixtures(c: &mut Criterion) {
    // Budgets per the fixtures' design: these exist to blow up, so the
    // bench measures governed (partial) typing, not an unbounded search.
    let (schema, ds) = pathological("fanout");
    bench_typing(c, "pathological_fanout", &schema, ds, Budget::UNLIMITED);
    let (schema, ds) = pathological("interleave");
    bench_typing(
        c,
        "pathological_interleave",
        &schema,
        ds,
        Budget::steps(50_000),
    );
    let (schema, ds) = pathological("deep_recursion");
    bench_typing(
        c,
        "pathological_deep_recursion",
        &schema,
        ds,
        Budget::UNLIMITED.with_max_depth(64),
    );
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = config();
    targets = wide_fanout, recursive_network, pathological_fixtures
}
criterion_main!(benches);

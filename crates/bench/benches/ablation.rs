//! **E9** — ablations of the derivative engine's design choices
//! (EXPERIMENTS.md / DESIGN.md §4): the §4 simplification identities, the
//! Or-dedup rule, and the (expression × triple-class) derivative memo,
//! each toggled off independently on the workloads they matter for.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use shapex::{EngineConfig, Simplify};
use shapex_bench::DerivativeRun;
use shapex_workloads::{balanced_ab, example8_neighbourhood, person_network, Topology};

fn configs() -> Vec<(&'static str, EngineConfig)> {
    // All ablations run with the SORBE fast path off so they measure the
    // derivative machinery itself; "sorbe" is the fast path for contrast
    // (on workloads where the shape qualifies).
    let general = EngineConfig {
        no_sorbe: true,
        ..EngineConfig::default()
    };
    vec![
        ("full", general),
        (
            "no_memo",
            EngineConfig {
                no_deriv_memo: true,
                ..general
            },
        ),
        (
            "no_or_dedup",
            EngineConfig {
                simplify: Simplify {
                    identities: true,
                    or_dedup: false,
                },
                ..general
            },
        ),
        ("sorbe", EngineConfig::default()),
    ]
}

fn e9_simplification(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_ablation_example8");
    for (name, config) in configs() {
        let mut run = DerivativeRun::prepare(example8_neighbourhood(256), config);
        group.bench_function(BenchmarkId::new(name, 256), |bench| {
            bench.iter(|| black_box(run.validate_all()))
        });
    }
    // Disabling the identities entirely makes derivatives grow without
    // bound on stars; measure it only on a small instance.
    let mut run = DerivativeRun::prepare(
        example8_neighbourhood(32),
        EngineConfig {
            simplify: Simplify::none(),
            no_sorbe: true,
            ..EngineConfig::default()
        },
    );
    group.bench_function(BenchmarkId::new("no_simplify", 32), |bench| {
        bench.iter(|| black_box(run.validate_all()))
    });
    let mut baseline = DerivativeRun::prepare(
        example8_neighbourhood(32),
        EngineConfig {
            no_sorbe: true,
            ..EngineConfig::default()
        },
    );
    group.bench_function(BenchmarkId::new("full", 32), |bench| {
        bench.iter(|| black_box(baseline.validate_all()))
    });
    group.finish();
}

fn e9_growth_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_ablation_example10");
    // 8 pairs: the no-memo configuration is exponentially infeasible on
    // larger instances (that blow-up is the point of the ablation).
    for (name, config) in configs() {
        let mut run = DerivativeRun::prepare(balanced_ab(8), config);
        group.bench_function(BenchmarkId::new(name, 8), |bench| {
            bench.iter(|| black_box(run.validate_all()))
        });
        run.validate_all();
        println!(
            "e9_ablation_example10/{name}: arena={} ∂-steps={} memo-hits={}",
            run.engine.stats().expr_pool_size,
            run.engine.stats().derivative_steps,
            run.engine.stats().deriv_memo_hits,
        );
    }
    group.finish();
}

fn e9_recursive_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_ablation_person_net");
    for (name, config) in configs() {
        let mut run = DerivativeRun::prepare(
            person_network(500, Topology::Random { degree: 2 }, 0.1, 42),
            config,
        );
        group.bench_function(BenchmarkId::new(name, 500), |bench| {
            bench.iter(|| black_box(run.validate_all()))
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = config();
    targets = e9_simplification, e9_growth_workload, e9_recursive_workload
}
criterion_main!(benches);

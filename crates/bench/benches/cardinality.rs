//! **E5** — cardinality bounds `e{m,n}` (EXPERIMENTS.md): the native
//! counter derivative vs the paper's §4 recursive expansion (run through
//! the same derivative engine after `desugared()`), and vs the
//! backtracking baseline where feasible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use shapex::EngineConfig;
use shapex_bench::{BacktrackRun, DerivativeRun};
use shapex_shex::schema::Schema;
use shapex_workloads::repeat_bounds;

/// Desugars every shape in the workload's schema before compiling, so the
/// engine sees the expanded form.
fn prepare_expanded(w: shapex_workloads::Workload, config: EngineConfig) -> DerivativeRun {
    let parsed = shapex_shex::shexc::parse(&w.schema).unwrap();
    let expanded =
        Schema::from_rules(parsed.iter().map(|(l, e)| (l.clone(), e.desugared()))).unwrap();
    let rendered = shapex_shex::display::schema_to_shexc(&expanded);
    let w2 = shapex_workloads::Workload {
        schema: rendered,
        ..w
    };
    DerivativeRun::prepare(w2, config)
}

fn e5_repeat(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_cardinality");
    for (m, n) in [(2u32, 4u32), (5, 10), (20, 40), (100, 200)] {
        let count = n as usize; // exactly the upper bound: valid instance
        let id = format!("{{{m},{n}}}");
        let general = EngineConfig {
            no_sorbe: true,
            ..EngineConfig::default()
        };
        let mut native = DerivativeRun::prepare(repeat_bounds(m, n, count), general);
        group.bench_with_input(BenchmarkId::new("native_counter", &id), &id, |bench, _| {
            bench.iter(|| black_box(native.validate_all()))
        });
        let mut sorbe = DerivativeRun::prepare(repeat_bounds(m, n, count), EngineConfig::default());
        group.bench_with_input(BenchmarkId::new("sorbe_counting", &id), &id, |bench, _| {
            bench.iter(|| black_box(sorbe.validate_all()))
        });
        let mut expanded = prepare_expanded(repeat_bounds(m, n, count), general);
        group.bench_with_input(BenchmarkId::new("expanded", &id), &id, |bench, _| {
            bench.iter(|| black_box(expanded.validate_all()))
        });
        // Baseline only at small bounds (exponential in `count`).
        if n <= 10 {
            let bt = BacktrackRun::prepare(
                repeat_bounds(m, n, count),
                shapex::Budget::steps(50_000_000),
            );
            if bt.validate_all().is_ok() {
                group.bench_with_input(BenchmarkId::new("backtracking", &id), &id, |bench, _| {
                    bench.iter(|| black_box(bt.validate_all().expect("within budget")))
                });
            }
        }
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = config();
    targets = e5_repeat
}
criterion_main!(benches);

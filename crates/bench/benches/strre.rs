//! **E8** — the Brzozowski lineage on plain strings (EXPERIMENTS.md):
//! derivative matching is immune to the catastrophic backtracking that
//! kills naive matchers on patterns like `(a|aa)*` — the 1964 result the
//! paper transplants to RDF graphs. Also measures the PATTERN facet as
//! used inside shape validation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use shapex_shex::strre::{backtrack_match, Regex};

fn e8_pathological(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_string_derivatives");
    // (a|aa)* against "a"^n + "b": never matches; a naive backtracker
    // explores Fibonacci(n) parses.
    let re = Regex::new("(a|aa)*").unwrap();
    for n in [8usize, 16, 24, 28] {
        let input = "a".repeat(n) + "b";
        group.bench_with_input(BenchmarkId::new("derivative", n), &input, |bench, input| {
            bench.iter(|| black_box(re.is_match(input)))
        });
        group.bench_with_input(
            BenchmarkId::new("derivative_memo", n),
            &input,
            |bench, input| bench.iter(|| black_box(re.is_match_memo(input))),
        );
        // The naive matcher is exponential; keep it to sizes that finish.
        if n <= 24 {
            let re2 = Regex::new("(a|aa)*").unwrap();
            group.bench_with_input(
                BenchmarkId::new("backtracking", n),
                &input,
                |bench, input| bench.iter(|| black_box(backtrack_match(re2.ast(), input))),
            );
        }
    }
    group.finish();
}

fn e8_realistic(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_realistic_patterns");
    let cases = [
        ("isbn", r"97[89]-\d{10}", "978-0441172719"),
        (
            "datetime",
            r"\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}",
            "2015-03-27T09:30:00",
        ),
        (
            "email",
            r"[\w.]+@[\w]+\.[a-z]{2,4}",
            "eric.prudhommeaux@w3.org",
        ),
    ];
    for (name, pattern, input) in cases {
        let re = Regex::new(pattern).unwrap();
        assert!(re.is_match(input), "{name} sanity");
        group.bench_function(BenchmarkId::new("derivative", name), |bench| {
            bench.iter(|| black_box(re.is_match(black_box(input))))
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

criterion_group! {
    name = benches;
    config = config();
    targets = e8_pathological, e8_realistic
}
criterion_main!(benches);

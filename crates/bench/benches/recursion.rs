//! **E6** — recursive schemas on FOAF person networks (EXPERIMENTS.md):
//! the §8 typing-context machinery at scale, across topologies, with and
//! without invalid nodes (invalidity propagates through `knows` and
//! triggers greatest-fixpoint reruns).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::time::Duration;

use shapex::EngineConfig;

fn derivative_config() -> EngineConfig {
    EngineConfig {
        no_sorbe: true,
        ..EngineConfig::default()
    }
}
use shapex_bench::{BacktrackRun, DerivativeRun};
use shapex_workloads::{person_network, Topology};

fn e6_person_networks(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_person_networks");
    for n in [10usize, 100, 1_000, 10_000] {
        for (name, topology) in [
            ("chain", Topology::Chain),
            ("cycle", Topology::Cycle),
            ("random2", Topology::Random { degree: 2 }),
        ] {
            let mut run =
                DerivativeRun::prepare(person_network(n, topology, 0.0, 42), derivative_config());
            group.throughput(Throughput::Elements(n as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("derivative/{name}/all_valid"), n),
                &n,
                |bench, _| bench.iter(|| black_box(run.validate_all())),
            );
            let mut run =
                DerivativeRun::prepare(person_network(n, topology, 0.1, 42), derivative_config());
            group.bench_with_input(
                BenchmarkId::new(format!("derivative/{name}/10pct_invalid"), n),
                &n,
                |bench, _| bench.iter(|| black_box(run.validate_all())),
            );
            // The Person schema is itself SORBE: the counting fast path
            // handles the local structure, recursion still goes through Γ.
            let mut run = DerivativeRun::prepare(
                person_network(n, topology, 0.1, 42),
                EngineConfig::default(),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("sorbe/{name}/10pct_invalid"), n),
                &n,
                |bench, _| bench.iter(|| black_box(run.validate_all())),
            );
        }
    }
    // Baseline comparison only at small sizes: its gfp recomputes every
    // (node, shape) pair with the exponential matcher.
    for n in [10usize, 50] {
        let bt = BacktrackRun::prepare(
            person_network(n, Topology::Cycle, 0.1, 42),
            shapex::Budget::steps(50_000_000),
        );
        if bt.validate_all().is_ok() {
            group.bench_with_input(
                BenchmarkId::new("backtracking/cycle/10pct_invalid", n),
                &n,
                |bench, _| bench.iter(|| black_box(bt.validate_all().expect("within budget"))),
            );
        }
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = e6_person_networks
}
criterion_main!(benches);

#![warn(missing_docs)]
//! # shapex-server
//!
//! The resident validation service behind `shapex serve`: a std-only
//! HTTP/1.1 listener hosting warm [`Engine`](shapex::Engine)s so the
//! expensive state — interned term pools, compiled schemas, lazy DFA
//! tables, the incremental dependency index — survives across requests
//! instead of dying with each CLI invocation.
//!
//! ## Endpoints
//!
//! | method + path          | body             | answer |
//! |------------------------|------------------|--------|
//! | `GET /health`          | —                | `{"status":"ok"}` (or `"draining"`) |
//! | `GET /stats`           | —                | server counters + per-entry engine stats/metrics |
//! | `POST /validate?id=G`  | —                | full-typing report, byte-identical to `validate --report json` |
//! | `POST /map?id=G`       | shape-map text   | per-association report (CLI `--map --report json`) |
//! | `POST /delta?id=G`     | delta-file text  | before/after report (CLI `--delta --report json`) |
//! | `POST /load?id=G`      | JSON `{schema, data, schema_format?}` | registers/replaces entry `G` |
//!
//! `id` defaults to `default`. Report responses carry the CLI-equivalent
//! exit code in an `X-Shapex-Exit` header (0 ok, 2 non-conformant, 3
//! exhausted) so the body can stay byte-identical to CLI output.
//!
//! `schema_format` is `"shex"` (default) or `"shacl"`. A SHACL entry
//! serves `/validate` with the `sh:ValidationReport` document of
//! `validate --shacl --report json`, byte for byte; `/map` and `/delta`
//! answer 422 on it, and unsupported SHACL terms are refused at `/load`
//! (DESIGN.md §5h).
//!
//! ## Robustness model
//!
//! * **Fault isolation** — engine calls run under `catch_unwind`; a panic
//!   quarantines only that entry, which is rebuilt from immutable sources
//!   and differentially checked before re-entering service (see
//!   [`registry`]).
//! * **QoS admission control** — connections are admitted onto a bounded
//!   work-stealing [`Executor`] queue (the same scheduler that runs
//!   intra-request typing epochs, so one pool serves both request-level
//!   and intra-request parallelism); when the queue is full the acceptor
//!   sheds load with `503` + `Retry-After` instead of buffering without
//!   bound. Admitted work outranks unadmitted connections: an engine's
//!   budget-charged epoch tasks run before queued requests, so paid-for
//!   work finishes first. Every engine call runs under the server-level
//!   per-request [`Budget`].
//! * **Keep-alive** — a client sending `Connection: keep-alive` gets up
//!   to [`KEEPALIVE_MAX_REQUESTS`] requests on one connection, bounded by
//!   a short idle timeout; during a drain the current response is
//!   finished with `Connection: close` and the connection ends.
//! * **Graceful drain** — SIGTERM (or [`ServerHandle::shutdown`]) stops
//!   the acceptor, lets the pool finish the queued requests, then joins
//!   it; in-flight requests complete.

pub mod http;
pub mod registry;

use std::io;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use serde_json::{json, to_string, Value};
use shapex::{Budget, EngineConfig, Executor};

use http::{read_request, respond, respond_error, Request, READ_TIMEOUT};
use registry::Registry;

/// Most requests served on one keep-alive connection before the server
/// forces a close (bounds how long one client can monopolise pool time).
pub const KEEPALIVE_MAX_REQUESTS: usize = 100;
/// How long a keep-alive connection may sit idle between requests.
pub const KEEPALIVE_IDLE: Duration = Duration::from_secs(2);

/// Server tuning knobs; every limit is a hard bound.
#[derive(Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Accept-queue depth; connections beyond it are shed with 503.
    pub queue: usize,
    /// Worker threads per full-typing run (`--jobs`; 1 = the exact
    /// sequential path, which is what the CLI byte-identity smoke pins).
    pub jobs: usize,
    /// Per-request engine budget derived from server-level limits.
    pub budget: Budget,
    /// ShEx open-shape semantics (default: closed, as in the paper).
    pub open: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: 4,
            queue: 64,
            jobs: 1,
            budget: Budget::UNLIMITED,
            open: false,
        }
    }
}

impl ServerConfig {
    /// The engine configuration every entry is compiled with: metrics on
    /// (report documents always carry them), incremental on (the `/delta`
    /// endpoint consumes the dependency index), budget from the server
    /// limits.
    pub fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            closure: if self.open {
                shapex::Closure::Open
            } else {
                shapex::Closure::Closed
            },
            metrics: true,
            incremental: true,
            budget: self.budget,
            ..EngineConfig::default()
        }
    }
}

/// Service-level counters surfaced at `/stats`.
#[derive(Default)]
struct ServerStats {
    requests: AtomicU64,
    shed: AtomicU64,
    protocol_errors: AtomicU64,
}

/// A running server: join handles plus the shared shutdown flag.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    executor: Option<Arc<Executor>>,
}

impl ServerHandle {
    /// The bound address (useful with `:0` ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful drain and blocks until the pool has finished:
    /// the acceptor stops taking connections, queued requests complete,
    /// threads are joined.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.join_all();
    }

    /// Blocks until the server drains (e.g. after SIGTERM set the flag).
    pub fn wait(mut self) {
        self.join_all();
    }

    fn join_all(&mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        if let Some(exec) = self.executor.take() {
            // Drains every queued connection before the threads exit; a
            // registry still holding this executor degrades gracefully
            // (engine runs fall back to inline execution).
            exec.shutdown_and_join();
        }
    }
}

/// Starts the server on `config.addr`, returning once the socket is
/// bound and the request executor is up. The registry is shared — load
/// entries before or after starting.
///
/// The [`Executor`] doubles as the typing scheduler: it is installed on
/// the registry, which hands it to every entry's engine, so request
/// handling and intra-request typing epochs share one pool. Pool threads
/// get deep stacks because recursive-schema typing runs on them.
pub fn start(config: ServerConfig, registry: Arc<Registry>) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let shutdown = shutdown_flag();
    shutdown.store(false, Ordering::SeqCst);
    let stats = Arc::new(ServerStats::default());
    let executor = Arc::new(Executor::new(
        config.workers.max(1),
        Some(512 << 20),
        "shapex-server",
    ));
    registry.set_executor(Arc::clone(&executor));

    let acceptor = {
        let shutdown = Arc::clone(&shutdown);
        let stats = Arc::clone(&stats);
        let executor = Arc::clone(&executor);
        let registry = Arc::clone(&registry);
        let config = config.clone();
        std::thread::Builder::new()
            .name("shapex-acceptor".to_string())
            .spawn(move || accept_loop(listener, executor, registry, config, shutdown, stats))
            .expect("spawning acceptor thread")
    };

    Ok(ServerHandle {
        addr,
        shutdown,
        acceptor: Some(acceptor),
        executor: Some(executor),
    })
}

/// The process-wide shutdown flag; shared with the SIGTERM handler, which
/// may only do an atomic store.
fn shutdown_flag() -> Arc<AtomicBool> {
    static FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();
    Arc::clone(FLAG.get_or_init(|| Arc::new(AtomicBool::new(false))))
}

/// Installs a SIGTERM/SIGINT handler that requests a graceful drain.
/// `std` already links libc; declaring `signal` directly avoids a crate
/// dependency the offline build cannot add.
pub fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        // Async-signal-safe: a relaxed atomic store only.
        if let Some(flag) = SIGNAL_FLAG.get() {
            flag.store(true, Ordering::Relaxed);
        }
    }
    static SIGNAL_FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();
    let _ = SIGNAL_FLAG.set(shutdown_flag());
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

/// Accepts connections until shutdown. Admission control lives here: the
/// executor's normal-priority queue is capped at `config.queue`, and a
/// refused submission means the connection is answered `503` +
/// `Retry-After` and closed — bounded memory under any load. The stream
/// rides in a shared slot so a refused job can hand it back for the shed
/// response.
fn accept_loop(
    listener: TcpListener,
    executor: Arc<Executor>,
    registry: Arc<Registry>,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
) {
    let cap = config.queue.max(1);
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let slot = Arc::new(Mutex::new(Some(stream)));
                let job: Box<dyn FnOnce() + Send> = {
                    let slot = Arc::clone(&slot);
                    let registry = Arc::clone(&registry);
                    let stats = Arc::clone(&stats);
                    let config = config.clone();
                    let shutdown = Arc::clone(&shutdown);
                    Box::new(move || {
                        let taken = slot.lock().unwrap_or_else(|p| p.into_inner()).take();
                        if let Some(stream) = taken {
                            handle_connection(stream, &registry, &stats, &config, &shutdown);
                        }
                    })
                };
                if executor.try_submit(false, cap, job).is_err() {
                    stats.shed.fetch_add(1, Ordering::Relaxed);
                    let taken = slot.lock().unwrap_or_else(|p| p.into_inner()).take();
                    if let Some(mut stream) = taken {
                        let _ = respond(
                            &mut stream,
                            503,
                            "application/json",
                            &[("Retry-After", "1")],
                            &(to_string(&json!({"error": "server saturated, retry later"}))
                                .expect("JSON")
                                + "\n"),
                            true,
                        );
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// One connection: parse, route, respond — repeatedly when the client
/// opted into keep-alive. Exits on close, idle timeout, request cap,
/// protocol error, or drain (the in-flight response is finished with
/// `Connection: close` first).
fn handle_connection(
    stream: TcpStream,
    registry: &Registry,
    stats: &ServerStats,
    config: &ServerConfig,
    shutdown: &AtomicBool,
) {
    let mut reader = BufReader::new(stream);
    for served in 0..KEEPALIVE_MAX_REQUESTS {
        let timeout = if served == 0 {
            READ_TIMEOUT
        } else {
            KEEPALIVE_IDLE
        };
        let _ = reader.get_ref().set_read_timeout(Some(timeout));
        let request = match read_request(&mut reader) {
            Ok(Ok(r)) => r,
            Ok(Err(e)) => {
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let _ = respond_error(reader.get_mut(), e.status, &e.message);
                return;
            }
            Err(_) => {
                // On the first request the client vanished mid-request;
                // on later ones a clean EOF or idle timeout is the normal
                // end of a keep-alive conversation.
                if served == 0 {
                    stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                }
                return;
            }
        };
        stats.requests.fetch_add(1, Ordering::Relaxed);
        let draining = shutdown.load(Ordering::Relaxed);
        let close = !request.keep_alive || draining || served + 1 == KEEPALIVE_MAX_REQUESTS;
        let _ = route(
            &request,
            reader.get_mut(),
            registry,
            stats,
            config,
            shutdown,
            close,
        );
        if close {
            return;
        }
    }
}

/// Dispatches one request. `close` is what the connection loop decided
/// about persistence; it only shapes the `Connection` response header.
fn route(
    request: &Request,
    stream: &mut TcpStream,
    registry: &Registry,
    stats: &ServerStats,
    config: &ServerConfig,
    shutdown: &AtomicBool,
    close: bool,
) -> io::Result<()> {
    let id = request.query_param("id").unwrap_or("default");
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/health") => {
            let status = if shutdown.load(Ordering::Relaxed) {
                "draining"
            } else {
                "ok"
            };
            respond(
                stream,
                200,
                "application/json",
                &[],
                &(to_string(&json!({ "status": status })).expect("JSON") + "\n"),
                close,
            )
        }
        ("GET", "/stats") => {
            let body = serde_json::to_string_pretty(&json!({
                "server": {
                    "requests": stats.requests.load(Ordering::Relaxed),
                    "shed": stats.shed.load(Ordering::Relaxed),
                    "protocol_errors": stats.protocol_errors.load(Ordering::Relaxed),
                    "refused_unhealthy": registry.refused_unhealthy.load(Ordering::Relaxed),
                    "entries": registry
                        .ids()
                        .into_iter()
                        .map(Value::from)
                        .collect::<Vec<Value>>(),
                },
                "graphs": registry.stats(),
            }))
            .expect("stats JSON")
                + "\n";
            respond(stream, 200, "application/json", &[], &body, close)
        }
        ("POST", "/validate") => api_respond(stream, registry.validate(id), close),
        ("POST", "/map") => api_respond(stream, registry.map(id, &request.body), close),
        ("POST", "/delta") => api_respond(stream, registry.delta(id, &request.body), close),
        ("POST", "/load") => {
            let parsed: Result<Value, _> = serde_json::from_str(&request.body);
            let Ok(Value::Object(m)) = parsed else {
                return respond_error(stream, 422, "body must be a JSON object");
            };
            let (Some(schema), Some(data)) = (
                m.get("schema").and_then(Value::as_str),
                m.get("data").and_then(Value::as_str),
            ) else {
                return respond_error(stream, 422, "body needs string fields 'schema' and 'data'");
            };
            // Optional "format": "turtle" (default) or "ntriples"; N-Triples
            // data is parsed in parallel on the entry's jobs workers.
            let format = match m.get("format").and_then(Value::as_str) {
                None => registry::DataFormat::Turtle,
                Some(name) => match registry::DataFormat::from_name(name) {
                    Ok(f) => f,
                    Err(e) => return respond_error(stream, 422, &e),
                },
            };
            // Optional "schema_format": "shex" (default) or "shacl" — the
            // latter treats `schema` as a SHACL Core shapes graph in
            // Turtle, compiled onto the derivative engine. Unsupported
            // SHACL terms fail the load with 422, never validate silently.
            let schema_format = match m.get("schema_format").and_then(Value::as_str) {
                None => registry::SchemaFormat::Shex,
                Some(name) => match registry::SchemaFormat::from_name(name) {
                    Ok(f) => f,
                    Err(e) => return respond_error(stream, 422, &e),
                },
            };
            match registry.load(
                id,
                schema.to_string(),
                schema_format,
                data.to_string(),
                format,
                config.engine_config(),
                config.jobs,
            ) {
                Ok(()) => respond(
                    stream,
                    200,
                    "application/json",
                    &[],
                    &(to_string(&json!({ "loaded": id })).expect("JSON") + "\n"),
                    close,
                ),
                Err(e) => respond_error(stream, 422, &e),
            }
        }
        ("GET" | "POST", _) => respond_error(stream, 404, "no such endpoint"),
        _ => respond_error(stream, 405, "method not allowed"),
    }
}

/// Writes an [`registry::ApiResponse`], carrying the CLI-equivalent exit
/// code in `X-Shapex-Exit` so report bodies stay byte-identical to CLI
/// output.
fn api_respond(
    stream: &mut TcpStream,
    response: registry::ApiResponse,
    close: bool,
) -> io::Result<()> {
    let exit = response.exit.to_string();
    respond(
        stream,
        response.status,
        "application/json",
        &[("X-Shapex-Exit", &exit)],
        &response.body,
        close,
    )
}

#![warn(missing_docs)]
//! # shapex-server
//!
//! The resident validation service behind `shapex serve`: a std-only
//! HTTP/1.1 listener hosting warm [`Engine`](shapex::Engine)s so the
//! expensive state — interned term pools, compiled schemas, lazy DFA
//! tables, the incremental dependency index — survives across requests
//! instead of dying with each CLI invocation.
//!
//! ## Endpoints
//!
//! | method + path          | body             | answer |
//! |------------------------|------------------|--------|
//! | `GET /health`          | —                | `{"status":"ok"}` (or `"draining"`) |
//! | `GET /stats`           | —                | server counters + per-entry engine stats/metrics |
//! | `POST /validate?id=G`  | —                | full-typing report, byte-identical to `validate --report json` |
//! | `POST /map?id=G`       | shape-map text   | per-association report (CLI `--map --report json`) |
//! | `POST /delta?id=G`     | delta-file text  | before/after report (CLI `--delta --report json`) |
//! | `POST /load?id=G`      | JSON `{schema, data}` | registers/replaces entry `G` |
//!
//! `id` defaults to `default`. Report responses carry the CLI-equivalent
//! exit code in an `X-Shapex-Exit` header (0 ok, 2 non-conformant, 3
//! exhausted) so the body can stay byte-identical to CLI output.
//!
//! ## Robustness model
//!
//! * **Fault isolation** — engine calls run under `catch_unwind`; a panic
//!   quarantines only that entry, which is rebuilt from immutable sources
//!   and differentially checked before re-entering service (see
//!   [`registry`]).
//! * **QoS admission control** — a bounded worker pool takes connections
//!   from a bounded accept queue; when the queue is full the acceptor
//!   sheds load with `503` + `Retry-After` instead of buffering without
//!   bound. Every engine call runs under the server-level per-request
//!   [`Budget`].
//! * **Graceful drain** — SIGTERM (or [`ServerHandle::shutdown`]) stops
//!   the acceptor, lets workers finish the queued requests, then joins
//!   them; in-flight requests complete.

pub mod http;
pub mod registry;

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use serde_json::{json, to_string, Value};
use shapex::{Budget, EngineConfig};

use http::{read_request, respond, respond_error, Request};
use registry::Registry;

/// Server tuning knobs; every limit is a hard bound.
#[derive(Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (`:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Accept-queue depth; connections beyond it are shed with 503.
    pub queue: usize,
    /// Worker threads per full-typing run (`--jobs`; 1 = the exact
    /// sequential path, which is what the CLI byte-identity smoke pins).
    pub jobs: usize,
    /// Per-request engine budget derived from server-level limits.
    pub budget: Budget,
    /// ShEx open-shape semantics (default: closed, as in the paper).
    pub open: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: 4,
            queue: 64,
            jobs: 1,
            budget: Budget::UNLIMITED,
            open: false,
        }
    }
}

impl ServerConfig {
    /// The engine configuration every entry is compiled with: metrics on
    /// (report documents always carry them), incremental on (the `/delta`
    /// endpoint consumes the dependency index), budget from the server
    /// limits.
    pub fn engine_config(&self) -> EngineConfig {
        EngineConfig {
            closure: if self.open {
                shapex::Closure::Open
            } else {
                shapex::Closure::Closed
            },
            metrics: true,
            incremental: true,
            budget: self.budget,
            ..EngineConfig::default()
        }
    }
}

/// Service-level counters surfaced at `/stats`.
#[derive(Default)]
struct ServerStats {
    requests: AtomicU64,
    shed: AtomicU64,
    protocol_errors: AtomicU64,
}

/// A running server: join handles plus the shared shutdown flag.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with `:0` ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests a graceful drain and blocks until every worker has
    /// finished: the acceptor stops taking connections, queued requests
    /// complete, threads are joined.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.join_all();
    }

    /// Blocks until the server drains (e.g. after SIGTERM set the flag).
    pub fn wait(mut self) {
        self.join_all();
    }

    fn join_all(&mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Starts the server on `config.addr`, returning once the socket is
/// bound and the worker pool is up. The registry is shared — load entries
/// before or after starting.
pub fn start(config: ServerConfig, registry: Arc<Registry>) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let shutdown = shutdown_flag();
    shutdown.store(false, Ordering::SeqCst);
    let stats = Arc::new(ServerStats::default());
    let (tx, rx) = sync_channel::<TcpStream>(config.queue.max(1));
    let rx = Arc::new(Mutex::new(rx));

    let mut workers = Vec::with_capacity(config.workers.max(1));
    for i in 0..config.workers.max(1) {
        let rx = Arc::clone(&rx);
        let registry = Arc::clone(&registry);
        let stats = Arc::clone(&stats);
        let config = config.clone();
        let shutdown = Arc::clone(&shutdown);
        workers.push(
            std::thread::Builder::new()
                .name(format!("shapex-worker-{i}"))
                .spawn(move || worker_loop(&rx, &registry, &stats, &config, &shutdown))
                .expect("spawning worker thread"),
        );
    }

    let acceptor = {
        let shutdown = Arc::clone(&shutdown);
        let stats = Arc::clone(&stats);
        std::thread::Builder::new()
            .name("shapex-acceptor".to_string())
            .spawn(move || accept_loop(listener, tx, &shutdown, &stats))
            .expect("spawning acceptor thread")
    };

    Ok(ServerHandle {
        addr,
        shutdown,
        acceptor: Some(acceptor),
        workers,
    })
}

/// The process-wide shutdown flag; shared with the SIGTERM handler, which
/// may only do an atomic store.
fn shutdown_flag() -> Arc<AtomicBool> {
    static FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();
    Arc::clone(FLAG.get_or_init(|| Arc::new(AtomicBool::new(false))))
}

/// Installs a SIGTERM/SIGINT handler that requests a graceful drain.
/// `std` already links libc; declaring `signal` directly avoids a crate
/// dependency the offline build cannot add.
pub fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        // Async-signal-safe: a relaxed atomic store only.
        if let Some(flag) = SIGNAL_FLAG.get() {
            flag.store(true, Ordering::Relaxed);
        }
    }
    static SIGNAL_FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();
    let _ = SIGNAL_FLAG.set(shutdown_flag());
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

/// Accepts connections until shutdown. Admission control lives here: a
/// full queue means the connection is answered `503` + `Retry-After` and
/// closed — bounded memory under any load.
fn accept_loop(
    listener: TcpListener,
    tx: SyncSender<TcpStream>,
    shutdown: &AtomicBool,
    stats: &ServerStats,
) {
    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _peer)) => match tx.try_send(stream) {
                Ok(()) => {}
                Err(TrySendError::Full(mut stream)) => {
                    stats.shed.fetch_add(1, Ordering::Relaxed);
                    let _ = respond(
                        &mut stream,
                        503,
                        "application/json",
                        &[("Retry-After", "1")],
                        &(to_string(&json!({"error": "server saturated, retry later"}))
                            .expect("JSON")
                            + "\n"),
                    );
                }
                Err(TrySendError::Disconnected(_)) => return,
            },
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    // Dropping `tx` disconnects the channel: workers drain what is queued
    // and exit on the disconnect.
}

/// One worker: pull connections, parse, route, respond. Exits when the
/// acceptor hangs up and the queue is drained.
fn worker_loop(
    rx: &Mutex<Receiver<TcpStream>>,
    registry: &Registry,
    stats: &ServerStats,
    config: &ServerConfig,
    shutdown: &AtomicBool,
) {
    loop {
        let next = {
            let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
            guard.recv()
        };
        let Ok(mut stream) = next else {
            return; // acceptor gone, queue drained
        };
        stats.requests.fetch_add(1, Ordering::Relaxed);
        let request = match read_request(&mut stream) {
            Ok(Ok(r)) => r,
            Ok(Err(e)) => {
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let _ = respond_error(&mut stream, e.status, &e.message);
                continue;
            }
            Err(_) => {
                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                continue; // client vanished mid-request: nothing to answer
            }
        };
        let _ = route(&request, &mut stream, registry, stats, config, shutdown);
    }
}

/// Dispatches one request.
fn route(
    request: &Request,
    stream: &mut TcpStream,
    registry: &Registry,
    stats: &ServerStats,
    config: &ServerConfig,
    shutdown: &AtomicBool,
) -> io::Result<()> {
    let id = request.query_param("id").unwrap_or("default");
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/health") => {
            let status = if shutdown.load(Ordering::Relaxed) {
                "draining"
            } else {
                "ok"
            };
            respond(
                stream,
                200,
                "application/json",
                &[],
                &(to_string(&json!({ "status": status })).expect("JSON") + "\n"),
            )
        }
        ("GET", "/stats") => {
            let body = serde_json::to_string_pretty(&json!({
                "server": {
                    "requests": stats.requests.load(Ordering::Relaxed),
                    "shed": stats.shed.load(Ordering::Relaxed),
                    "protocol_errors": stats.protocol_errors.load(Ordering::Relaxed),
                    "refused_unhealthy": registry.refused_unhealthy.load(Ordering::Relaxed),
                    "entries": registry
                        .ids()
                        .into_iter()
                        .map(Value::from)
                        .collect::<Vec<Value>>(),
                },
                "graphs": registry.stats(),
            }))
            .expect("stats JSON")
                + "\n";
            respond(stream, 200, "application/json", &[], &body)
        }
        ("POST", "/validate") => api_respond(stream, registry.validate(id)),
        ("POST", "/map") => api_respond(stream, registry.map(id, &request.body)),
        ("POST", "/delta") => api_respond(stream, registry.delta(id, &request.body)),
        ("POST", "/load") => {
            let parsed: Result<Value, _> = serde_json::from_str(&request.body);
            let Ok(Value::Object(m)) = parsed else {
                return respond_error(stream, 422, "body must be a JSON object");
            };
            let (Some(schema), Some(data)) = (
                m.get("schema").and_then(Value::as_str),
                m.get("data").and_then(Value::as_str),
            ) else {
                return respond_error(stream, 422, "body needs string fields 'schema' and 'data'");
            };
            // Optional "format": "turtle" (default) or "ntriples"; N-Triples
            // data is parsed in parallel on the entry's jobs workers.
            let format = match m.get("format").and_then(Value::as_str) {
                None => registry::DataFormat::Turtle,
                Some(name) => match registry::DataFormat::from_name(name) {
                    Ok(f) => f,
                    Err(e) => return respond_error(stream, 422, &e),
                },
            };
            match registry.load(
                id,
                schema.to_string(),
                data.to_string(),
                format,
                config.engine_config(),
                config.jobs,
            ) {
                Ok(()) => respond(
                    stream,
                    200,
                    "application/json",
                    &[],
                    &(to_string(&json!({ "loaded": id })).expect("JSON") + "\n"),
                ),
                Err(e) => respond_error(stream, 422, &e),
            }
        }
        ("GET" | "POST", _) => respond_error(stream, 404, "no such endpoint"),
        _ => respond_error(stream, 405, "method not allowed"),
    }
}

/// Writes an [`registry::ApiResponse`], carrying the CLI-equivalent exit
/// code in `X-Shapex-Exit` so report bodies stay byte-identical to CLI
/// output.
fn api_respond(stream: &mut TcpStream, response: registry::ApiResponse) -> io::Result<()> {
    let exit = response.exit.to_string();
    respond(
        stream,
        response.status,
        "application/json",
        &[("X-Shapex-Exit", &exit)],
        &response.body,
    )
}

//! A minimal HTTP/1.1 server side: just enough request parsing and
//! response writing for the validation endpoints, hand-rolled over
//! [`std::net::TcpStream`] because the build is offline (no hyper, no
//! tokio — the same constraint that put the stand-in crates in
//! `vendor/`).
//!
//! Deliberate simplifications, all safe for a service that fronts trusted
//! infrastructure rather than the open internet:
//!
//! * connections close after each response unless the client *opts in*
//!   with `Connection: keep-alive` (the connection loop in the crate root
//!   then serves more requests off the same socket, up to a per-connection
//!   cap and an idle timeout);
//! * bodies require `Content-Length` (no chunked encoding);
//! * hard caps on header block (16 KiB) and body (16 MiB) — a request
//!   over either is refused, not buffered, so a misbehaving client
//!   cannot balloon server memory;
//! * a socket read timeout bounds how long a slow client can hold a
//!   worker (slowloris protection).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Largest accepted request-line + header block.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;
/// Largest accepted request body.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;
/// How long a worker waits on a slow client before giving up.
pub const READ_TIMEOUT: Duration = Duration::from_secs(10);

/// A parsed request: method, decoded path, query pairs, body.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, ... — uppercased as received.
    pub method: String,
    /// Path without the query string, e.g. `/validate`.
    pub path: String,
    /// Decoded `key=value` query pairs in order of appearance.
    pub query: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: String,
    /// Whether the client sent `Connection: keep-alive`. Persistence is
    /// strictly opt-in — absent the header the server closes after the
    /// response, exactly like the pre-keep-alive protocol.
    pub keep_alive: bool,
}

impl Request {
    /// First query value for `key`, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A request refused at the protocol layer, with the status to answer.
#[derive(Debug)]
pub struct HttpError {
    /// HTTP status code to respond with.
    pub status: u16,
    /// Human-readable reason, included in the error body.
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> HttpError {
        HttpError {
            status,
            message: message.into(),
        }
    }
}

/// Reads and parses one request from the stream. `Err(Ok(e))`-style
/// layering is avoided: IO failures (client gone, timeout) come back as
/// `Err(io::Error)` — nothing to answer; protocol violations come back as
/// `Ok(Err(HttpError))` — answer with that status.
///
/// Takes the connection's long-lived [`BufReader`] rather than the bare
/// stream so bytes buffered past one request's body (a pipelining client)
/// are still there when the keep-alive loop reads the next request. The
/// caller owns the read timeout (first-request vs keep-alive idle).
pub fn read_request(reader: &mut BufReader<TcpStream>) -> io::Result<Result<Request, HttpError>> {
    let mut head = Vec::new();
    // Read header lines up to the blank separator, enforcing the cap.
    loop {
        let mut line = Vec::new();
        let n = read_limited_line(reader, &mut line, MAX_HEADER_BYTES)?;
        if n == 0 {
            // EOF before a full request: client went away.
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-request",
            ));
        }
        head.extend_from_slice(&line);
        if head.len() > MAX_HEADER_BYTES {
            return Ok(Err(HttpError::new(431, "request header block too large")));
        }
        if line == b"\r\n" || line == b"\n" {
            break;
        }
    }
    let head = String::from_utf8_lossy(&head).into_owned();
    let mut lines = head.lines();
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return Ok(Err(HttpError::new(400, "malformed request line")));
    };

    let mut content_length = 0usize;
    let mut keep_alive = false;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = match value.trim().parse() {
                Ok(n) => n,
                Err(_) => return Ok(Err(HttpError::new(400, "bad Content-Length"))),
            };
        } else if name.eq_ignore_ascii_case("connection") {
            // Token list, case-insensitive; "close" anywhere wins.
            let mut close = false;
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                } else if token.eq_ignore_ascii_case("close") {
                    close = true;
                }
            }
            if close {
                keep_alive = false;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Ok(Err(HttpError::new(413, "request body too large")));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = match String::from_utf8(body) {
        Ok(b) => b,
        Err(_) => return Ok(Err(HttpError::new(400, "request body is not UTF-8"))),
    };

    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|p| !p.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(pair), String::new()),
        })
        .collect();

    Ok(Ok(Request {
        method: method.to_ascii_uppercase(),
        path: percent_decode(path),
        query,
        body,
        keep_alive,
    }))
}

/// `read_until(b'\n')` with a byte cap, so an endless header line cannot
/// grow the buffer without bound.
fn read_limited_line(
    reader: &mut impl BufRead,
    out: &mut Vec<u8>,
    cap: usize,
) -> io::Result<usize> {
    let mut total = 0usize;
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte)? {
            0 => return Ok(total),
            _ => {
                out.push(byte[0]);
                total += 1;
                if byte[0] == b'\n' || total > cap {
                    return Ok(total);
                }
            }
        }
    }
}

/// Minimal `%XX` + `+` decoding for paths and query values.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let decoded = bytes
                    .get(i + 1..i + 3)
                    .and_then(|hex| std::str::from_utf8(hex).ok())
                    .and_then(|hex| u8::from_str_radix(hex, 16).ok());
                match decoded {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                        continue;
                    }
                    // Malformed escape: pass the '%' through.
                    None => out.push(b'%'),
                }
            }
            b'+' => out.push(b' '),
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Writes one response and flushes. `extra_headers` are appended verbatim
/// after the standard set. `close` selects the `Connection` header: the
/// connection loop passes `false` only when the client opted into
/// keep-alive and the loop will actually serve another request.
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
    close: bool,
) -> io::Result<()> {
    let reason = reason_phrase(status);
    let connection = if close { "close" } else { "keep-alive" };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A JSON error body: `{"error": "..."}` with the given status. Error
/// responses always close — after a refused request the framing on the
/// connection is no longer trustworthy.
pub fn respond_error(stream: &mut TcpStream, status: u16, message: &str) -> io::Result<()> {
    let body =
        serde_json::to_string(&serde_json::json!({ "error": message })).expect("error JSON") + "\n";
    respond(stream, status, "application/json", &[], &body, true)
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

#[cfg(test)]
mod tests {
    use super::percent_decode;

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("plain"), "plain");
        assert_eq!(percent_decode("%2Fpath"), "/path");
        // Malformed escapes pass through instead of panicking.
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }
}

//! The schema/graph registry: named validation contexts, each holding its
//! immutable sources, one warm [`Engine`], and the fault-isolation
//! machinery around it.
//!
//! ## Fault isolation
//!
//! Every engine call runs under [`std::panic::catch_unwind`]. A panic
//! mid-call may leave the engine's caches half-mutated, so the engine is
//! *quarantined* — discarded wholesale — and a replacement is rebuilt
//! from the entry's immutable sources: the schema text, the data text,
//! and the ordered log of successfully applied delta texts. The rebuild
//! is **differentially checked** before the entry returns to service: two
//! independent fresh engines validate the reconstructed graph and their
//! full JSON reports must be byte-identical (the determinism guarantee
//! from the paper's semantics — a rebuilt engine answers exactly like the
//! one it replaced). A rebuild that fails the check leaves the entry
//! out of service (requests get 500) rather than serving doubtful
//! answers.
//!
//! ## Locking
//!
//! One mutex per entry, held for the duration of an engine call. Panics
//! are caught *inside* the lock scope so the mutex is never poisoned;
//! `unwrap_or_else(PoisonError::into_inner)` is belt-and-braces for the
//! one path that can still poison it (a panic in the rebuild itself).

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use serde_json::{json, to_string, Value};

use shapex::report::{finish_engine_doc, push_typing_rows, result_json, ReportDoc};
use shapex::{Engine, EngineConfig, Executor};
use shapex_rdf::graph::Dataset;
use shapex_rdf::{delta, ntriples, turtle};
use shapex_shex::schema::Schema;
use shapex_shex::shapemap;

/// CLI-compatible exit code carried in the `X-Shapex-Exit` header: 0 ok,
/// 2 non-conformant, 3 budget exhausted (3 wins over 2).
pub type ExitCode = u8;

/// A request outcome: HTTP status, report/error body, CLI-style exit code.
pub struct ApiResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body (a report document or `{"error": ...}`).
    pub body: String,
    /// CLI-equivalent exit code for the `X-Shapex-Exit` header.
    pub exit: ExitCode,
}

impl ApiResponse {
    fn ok(body: String, exit: ExitCode) -> ApiResponse {
        ApiResponse {
            status: 200,
            body,
            exit,
        }
    }

    fn error(status: u16, message: impl std::fmt::Display) -> ApiResponse {
        ApiResponse {
            status,
            body: to_string(&json!({ "error": message.to_string() })).expect("error JSON") + "\n",
            exit: 1,
        }
    }
}

/// Language of an entry's schema source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchemaFormat {
    /// ShExC compact syntax (the default).
    #[default]
    Shex,
    /// A SHACL Core shapes graph in Turtle, compiled onto the derivative
    /// engine (DESIGN.md §5h). Entries in this format serve
    /// `sh:ValidationReport`-shaped `/validate` documents, byte-identical
    /// to `shapex validate --shacl --report json`; `/map` and `/delta`
    /// are refused with 422.
    Shacl,
}

impl SchemaFormat {
    /// Parses a client-supplied schema format name.
    pub fn from_name(name: &str) -> Result<SchemaFormat, String> {
        match name {
            "shex" => Ok(SchemaFormat::Shex),
            "shacl" => Ok(SchemaFormat::Shacl),
            other => Err(format!(
                "unknown schema format '{other}' (expected 'shex' or 'shacl')"
            )),
        }
    }
}

/// Input format of an entry's data source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DataFormat {
    /// Turtle (the default).
    #[default]
    Turtle,
    /// Strict line-oriented N-Triples, parsed in parallel on the entry's
    /// `jobs` worker threads (byte-identical to a sequential parse).
    NTriples,
}

impl DataFormat {
    /// Detects the format from a data file path: `.nt` means N-Triples,
    /// anything else Turtle.
    pub fn from_path(path: &str) -> DataFormat {
        if path.ends_with(".nt") {
            DataFormat::NTriples
        } else {
            DataFormat::Turtle
        }
    }

    /// Parses a client-supplied format name.
    pub fn from_name(name: &str) -> Result<DataFormat, String> {
        match name {
            "turtle" => Ok(DataFormat::Turtle),
            "ntriples" => Ok(DataFormat::NTriples),
            other => Err(format!(
                "unknown data format '{other}' (expected 'turtle' or 'ntriples')"
            )),
        }
    }
}

/// The warm, mutable half of an entry. Discarded wholesale on panic.
struct Slot {
    ds: Dataset,
    kind: SlotKind,
    /// Applied delta texts, in application order — with the schema and
    /// data sources, this reconstructs the exact current state.
    deltas: Vec<String>,
    /// False while quarantined (a rebuild failed its differential check).
    healthy: bool,
}

/// The engine half of a slot, by schema language.
enum SlotKind {
    /// A ShEx entry: the bare engine, driven by the typing endpoints.
    Shex(Engine),
    /// A SHACL entry: the engine wrapped in the target-selection /
    /// verdict-logic front end (boxed: the validator carries the compiled
    /// front-end schema alongside the engine).
    Shacl(Box<shapex_shacl::ShaclValidator>),
}

impl SlotKind {
    fn engine(&self) -> &Engine {
        match self {
            SlotKind::Shex(engine) => engine,
            SlotKind::Shacl(v) => v.engine(),
        }
    }

    fn engine_mut(&mut self) -> &mut Engine {
        match self {
            SlotKind::Shex(engine) => engine,
            SlotKind::Shacl(v) => v.engine_mut(),
        }
    }
}

/// One named validation context.
struct Entry {
    schema_src: String,
    schema_format: SchemaFormat,
    data_src: String,
    format: DataFormat,
    config: EngineConfig,
    jobs: usize,
    slot: Mutex<Option<Slot>>,
    quarantines: AtomicU64,
    rebuilds: AtomicU64,
}

/// Builds a fresh slot from the immutable sources: parse, compile, replay
/// the delta log. Any failure is reported, not panicked.
fn build_slot(
    schema_src: &str,
    schema_format: SchemaFormat,
    data_src: &str,
    format: DataFormat,
    jobs: usize,
    deltas: &[String],
    config: EngineConfig,
) -> Result<Slot, String> {
    let mut ds = match format {
        DataFormat::Turtle => turtle::parse(data_src).map_err(|e| format!("data: {e}"))?,
        DataFormat::NTriples => {
            ntriples::parse_par(data_src, jobs).map_err(|e| format!("data: {e}"))?
        }
    };
    for (i, text) in deltas.iter().enumerate() {
        let d =
            delta::parse(text, &mut ds.pool).map_err(|e| format!("replaying delta {i}: {e}"))?;
        ds.try_apply_delta(&d)
            .map_err(|e| format!("replaying delta {i}: {e}"))?;
    }
    let kind = match schema_format {
        SchemaFormat::Shex => {
            let schema: Schema =
                shapex_shex::shexc::parse(schema_src).map_err(|e| format!("schema: {e}"))?;
            let engine =
                Engine::compile(&schema, &mut ds.pool, config).map_err(|e| e.to_string())?;
            SlotKind::Shex(engine)
        }
        SchemaFormat::Shacl => {
            // A shapes graph is ordinary RDF: parse with the Turtle front
            // end, compile onto the engine. Unsupported SHACL terms fail
            // here — at load — never at request time.
            let shapes = turtle::parse(schema_src).map_err(|e| format!("schema: {e}"))?;
            let compiled =
                shapex_shacl::compile(&shapes).map_err(|e| format!("schema: {e}"))?;
            let validator = shapex_shacl::ShaclValidator::new(compiled, &mut ds.pool, config)
                .map_err(|e| format!("schema: {e}"))?;
            SlotKind::Shacl(Box::new(validator))
        }
    };
    Ok(Slot {
        ds,
        kind,
        deltas: deltas.to_vec(),
        healthy: true,
    })
}

/// Swaps a new schema into a live slot in place: compiles it into the
/// slot's existing term pool (so memo keys line up) and transplants every
/// verdict that [`shapex::schema_diff`] proves reusable. The graph and
/// delta log are untouched. On failure the slot is handed back unchanged
/// so the caller can restore it.
fn warm_swap(
    old_schema_src: &str,
    new_schema_src: &str,
    mut slot: Slot,
    config: EngineConfig,
) -> Result<Slot, (Box<Slot>, String)> {
    let SlotKind::Shex(old_engine) = &slot.kind else {
        return Err((Box::new(slot), "warm swap is ShEx-only".to_string()));
    };
    let new_schema: Schema = match shapex_shex::shexc::parse(new_schema_src) {
        Ok(s) => s,
        Err(e) => return Err((Box::new(slot), format!("schema: {e}"))),
    };
    let mut engine = match Engine::compile(&new_schema, &mut slot.ds.pool, config) {
        Ok(e) => e,
        Err(e) => return Err((Box::new(slot), e.to_string())),
    };
    // The old schema text always re-parses (it compiled when the entry
    // was first loaded), and a diff failure only costs reuse, never
    // correctness — so degrade to zero transplants rather than erroring.
    if let Ok(old_schema) = shapex_shex::shexc::parse(old_schema_src) {
        if let Ok(diff) = shapex::schema_diff(
            &old_schema,
            &new_schema,
            config.simplify,
            config.closure,
            &config.budget,
        ) {
            engine.transplant_verdicts(old_engine, &diff.reusable);
        }
    }
    slot.kind = SlotKind::Shex(engine);
    Ok(slot)
}

/// The validation report of a slot, built exactly the way the CLI builds
/// `validate --report json` output — the byte-identity contract. ShEx
/// entries emit the full-typing document; SHACL entries emit the
/// `sh:ValidationReport`-shaped document of `validate --shacl`.
fn typing_report(slot: &mut Slot, jobs: usize) -> (String, ExitCode) {
    match &mut slot.kind {
        SlotKind::Shex(engine) => {
            let typing = engine.type_all_par(&slot.ds.graph, &slot.ds.pool, jobs);
            let mut doc = ReportDoc::new("typing", "derivative");
            push_typing_rows(&mut doc, engine, &slot.ds.graph, &slot.ds.pool, &typing);
            let conforms = (!typing.is_partial()).then_some(true);
            let exit = if typing.is_partial() { 3 } else { 0 };
            (finish_engine_doc(doc, engine, 0, conforms), exit)
        }
        SlotKind::Shacl(validator) => {
            let outcome = validator.validate_par(&mut slot.ds, jobs);
            let exit = match outcome.conforms() {
                Some(true) => 0,
                Some(false) => 2,
                None => 3,
            };
            (
                shapex_shacl::shacl_report(&outcome, validator.engine()),
                exit,
            )
        }
    }
}

/// The registry of named entries plus service-level counters.
pub struct Registry {
    entries: RwLock<HashMap<String, Entry>>,
    /// The server's request executor, installed on every entry's engine so
    /// intra-request typing epochs share the request pool instead of
    /// spawning transient threads per epoch.
    executor: RwLock<Option<Arc<Executor>>>,
    /// Requests that hit a quarantined (out-of-service) entry.
    pub refused_unhealthy: AtomicU64,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry {
            entries: RwLock::new(HashMap::new()),
            executor: RwLock::new(None),
            refused_unhealthy: AtomicU64::new(0),
        }
    }

    /// Installs the shared typing/request executor; engines pick it up on
    /// their next call. Harmless to call more than once.
    pub fn set_executor(&self, executor: Arc<Executor>) {
        *self.executor.write().unwrap_or_else(|p| p.into_inner()) = Some(executor);
    }

    /// Registers `id` with schema and data sources, compiling its warm
    /// engine. Replaces any previous entry of the same id.
    ///
    /// Re-registering an id over the *same* data source and format takes
    /// a warm path: the new schema is compiled into the entry's existing
    /// term pool, [`shapex::schema_diff`] classifies which shapes kept
    /// their language, and every verdict of a reusable shape is
    /// transplanted into the new engine — the entry re-enters service
    /// with a hot memo instead of a cold scratch build, and its graph and
    /// delta log are kept as-is. Quarantined entries always take the cold
    /// path: their state is untrusted by definition.
    pub fn load(
        &self,
        id: &str,
        schema_src: String,
        schema_format: SchemaFormat,
        data_src: String,
        format: DataFormat,
        config: EngineConfig,
        jobs: usize,
    ) -> Result<(), String> {
        // SHACL entries always build cold: schema_diff speaks the engine's
        // shape-expression language, not the front end's verdict logic, so
        // a verdict transplant could silently reuse stale answers.
        let warm = match schema_format {
            SchemaFormat::Shex => self.take_warm_slot(id, &data_src, format),
            SchemaFormat::Shacl => None,
        };
        let slot = match warm {
            Some((old_schema_src, old_slot)) => {
                match warm_swap(&old_schema_src, &schema_src, old_slot, config) {
                    Ok(slot) => slot,
                    Err((old_slot, e)) => {
                        // The new schema is unusable: hand the old slot
                        // back so the existing entry stays in service.
                        self.restore_slot(id, *old_slot);
                        return Err(e);
                    }
                }
            }
            None => build_slot(
                &schema_src,
                schema_format,
                &data_src,
                format,
                jobs,
                &[],
                config,
            )?,
        };
        let entry = Entry {
            schema_src,
            schema_format,
            data_src,
            format,
            config,
            jobs,
            slot: Mutex::new(Some(slot)),
            quarantines: AtomicU64::new(0),
            rebuilds: AtomicU64::new(0),
        };
        self.entries
            .write()
            .unwrap_or_else(|p| p.into_inner())
            .insert(id.to_string(), entry);
        Ok(())
    }

    /// Takes the live slot of `id` for a warm schema swap, returning it
    /// with the entry's current schema text — only when the data source
    /// and format match exactly and the slot is healthy. While the swap
    /// is in flight the entry briefly has no slot; concurrent requests
    /// get the quarantine 500 rather than a stale answer.
    fn take_warm_slot(
        &self,
        id: &str,
        data_src: &str,
        format: DataFormat,
    ) -> Option<(String, Slot)> {
        let entries = self.entries.read().unwrap_or_else(|p| p.into_inner());
        let entry = entries.get(id)?;
        if entry.schema_format != SchemaFormat::Shex
            || entry.data_src != data_src
            || entry.format != format
        {
            return None;
        }
        let mut guard = entry.slot.lock().unwrap_or_else(|p| p.into_inner());
        match guard.take() {
            Some(slot) if slot.healthy => Some((entry.schema_src.clone(), slot)),
            other => {
                *guard = other;
                None
            }
        }
    }

    /// Puts a slot taken by [`Registry::take_warm_slot`] back.
    fn restore_slot(&self, id: &str, slot: Slot) {
        if let Some(entry) = self
            .entries
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .get(id)
        {
            *entry.slot.lock().unwrap_or_else(|p| p.into_inner()) = Some(slot);
        }
    }

    /// Registered entry ids, sorted.
    pub fn ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .entries
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .keys()
            .cloned()
            .collect();
        ids.sort();
        ids
    }

    /// Runs `op` on the entry's slot under fault isolation. On panic the
    /// slot is quarantined and rebuilt (differentially checked) before
    /// the error response is returned; other entries are untouched.
    fn with_entry<R>(
        &self,
        id: &str,
        op: impl FnOnce(&mut Slot, usize) -> R,
    ) -> Result<R, ApiResponse> {
        let entries = self.entries.read().unwrap_or_else(|p| p.into_inner());
        let Some(entry) = entries.get(id) else {
            return Err(ApiResponse::error(
                404,
                format!("no graph registered under id '{id}'"),
            ));
        };
        let mut guard = entry.slot.lock().unwrap_or_else(|p| p.into_inner());
        let Some(slot) = guard.as_mut() else {
            self.refused_unhealthy.fetch_add(1, Ordering::Relaxed);
            return Err(ApiResponse::error(
                500,
                format!("entry '{id}' is quarantined and could not be rebuilt"),
            ));
        };
        if !slot.healthy {
            self.refused_unhealthy.fetch_add(1, Ordering::Relaxed);
            return Err(ApiResponse::error(
                500,
                format!("entry '{id}' is quarantined"),
            ));
        }
        // Hand the engine the shared pool (cheap: an Arc clone) so its
        // parallel epochs run on the request executor. Re-done per call so
        // rebuilt slots pick it up too.
        if let Some(exec) = self
            .executor
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .as_ref()
        {
            slot.kind.engine_mut().set_executor(Arc::clone(exec));
        }
        match catch_unwind(AssertUnwindSafe(|| op(slot, entry.jobs))) {
            Ok(r) => Ok(r),
            Err(panic) => {
                // The engine may be half-mutated: quarantine and rebuild
                // from the immutable sources while still holding the lock,
                // so no other request can observe the poisoned state.
                entry.quarantines.fetch_add(1, Ordering::Relaxed);
                let deltas = slot.deltas.clone();
                *guard = None; // drop the poisoned slot before rebuilding
                let outcome = rebuild_checked(entry, &deltas);
                let rebuilt = outcome.is_ok();
                if let Ok(slot) = outcome {
                    entry.rebuilds.fetch_add(1, Ordering::Relaxed);
                    *guard = Some(slot);
                }
                let msg = panic_message(panic);
                let body = to_string(&json!({
                    "error": format!("engine panicked: {msg}"),
                    "quarantined": true,
                    "rebuilt": rebuilt,
                }))
                .expect("quarantine JSON")
                    + "\n";
                Err(ApiResponse {
                    status: 500,
                    body,
                    exit: 1,
                })
            }
        }
    }

    /// `POST /validate?id=X`: the full-typing report, byte-identical to
    /// `shapex validate --report json` over the same sources.
    pub fn validate(&self, id: &str) -> ApiResponse {
        match self.with_entry(id, typing_report) {
            Ok((body, exit)) => ApiResponse::ok(body, exit),
            Err(e) => e,
        }
    }

    /// `POST /map?id=X` with a shape-map body: per-association verdicts,
    /// built exactly like `validate --map --report json`.
    pub fn map(&self, id: &str, map_src: &str) -> ApiResponse {
        let map = match shapemap::parse(map_src) {
            Ok(m) => m,
            Err(e) => return ApiResponse::error(422, format!("shape map: {e}")),
        };
        let result = self.with_entry(id, |slot, _jobs| -> Result<(String, ExitCode), String> {
            let SlotKind::Shex(engine) = &mut slot.kind else {
                return Err(
                    "shape maps address ShEx shape labels; entry holds a SHACL schema \
                     (its shapes carry their own targets — use /validate)"
                        .to_string(),
                );
            };
            let outcomes = engine
                .validate_map(&slot.ds.graph, &mut slot.ds.pool, &map)
                .map_err(|e| e.to_string())?;
            let mut ok = 0;
            let mut first_exhaustion = None;
            let mut doc = ReportDoc::new("map", "derivative");
            for outcome in &outcomes {
                let assoc = &map.associations[outcome.index];
                let verdict = if outcome.exhaustion.is_some() {
                    "exhausted"
                } else if outcome.conforms {
                    "conforms"
                } else {
                    "fails"
                };
                if let Some(e) = outcome.exhaustion {
                    first_exhaustion.get_or_insert(e);
                }
                ok += usize::from(outcome.exhaustion.is_none() && outcome.as_expected);
                let mut row = result_json(
                    &assoc.node.to_string(),
                    assoc.shape.as_str(),
                    verdict,
                    outcome.failure.as_ref().map(|f| f.render(&slot.ds.pool)),
                    outcome.exhaustion.as_ref(),
                );
                if let Value::Object(m) = &mut row {
                    m.insert("expected".to_string(), Value::from(assoc.expected));
                    m.insert("as_expected".to_string(), Value::from(outcome.as_expected));
                }
                doc.push_result(row);
                if let Some(e) = &outcome.exhaustion {
                    doc.push_exhausted(&assoc.node.to_string(), assoc.shape.as_str(), e);
                }
            }
            let conforms = match first_exhaustion {
                Some(_) => None,
                None => Some(ok == outcomes.len()),
            };
            let exit = if first_exhaustion.is_some() {
                3
            } else if ok < outcomes.len() {
                2
            } else {
                0
            };
            Ok((finish_engine_doc(doc, engine, 0, conforms), exit))
        });
        match result {
            Ok(Ok((body, exit))) => ApiResponse::ok(body, exit),
            Ok(Err(msg)) => ApiResponse::error(422, msg),
            Err(e) => e,
        }
    }

    /// `POST /delta?id=X` with a delta-file body: applies the delta
    /// all-or-nothing, incrementally revalidates, and returns the CLI's
    /// `--delta` before/after document. On any failure the graph is left
    /// byte-identical to its pre-delta state.
    pub fn delta(&self, id: &str, delta_src: &str) -> ApiResponse {
        let result = self.with_entry(
            id,
            |slot, jobs| -> Result<(String, ExitCode), (u16, String)> {
                let SlotKind::Shex(engine) = &mut slot.kind else {
                    return Err((
                        422,
                        "incremental revalidation transplants engine-level verdicts; \
                         a SHACL entry's conformance verdicts also depend on the \
                         front-end logic layer — reload the entry instead"
                            .to_string(),
                    ));
                };
                let d = match delta::parse(delta_src, &mut slot.ds.pool) {
                    Ok(d) => d,
                    Err(e) => return Err((422, e.to_string())),
                };

                // Before: the (memo-served, on a warm engine) pre-delta typing.
                let before_typing = engine.type_all_par(&slot.ds.graph, &slot.ds.pool, jobs);
                let mut before_doc = ReportDoc::new("typing", "derivative");
                push_typing_rows(
                    &mut before_doc,
                    engine,
                    &slot.ds.graph,
                    &slot.ds.pool,
                    &before_typing,
                );
                let before = before_doc.finish((!before_typing.is_partial()).then_some(true));

                // All-or-nothing apply: an injected mid-delta failure rolls
                // the graph back before this returns. With jobs > 1 the
                // invalidation plan (a read of the dependency index only,
                // valid before or after the mutation) is computed
                // concurrently with the graph mutation — the pipelined
                // /delta path.
                let (plan, applied) = if jobs > 1 {
                    let engine = &*engine;
                    let ds = &mut slot.ds;
                    std::thread::scope(|s| {
                        let planner = s.spawn(|| engine.plan_invalidation(&d));
                        let applied = ds.try_apply_delta(&d);
                        let plan = planner.join().expect("invalidation planner panicked");
                        (plan, applied)
                    })
                } else {
                    (engine.plan_invalidation(&d), slot.ds.try_apply_delta(&d))
                };
                if let Err(e) = applied {
                    return Err((500, e.to_string()));
                }
                let after_typing = match engine.revalidate_par_planned(
                    &slot.ds.graph,
                    &slot.ds.pool,
                    &d,
                    plan,
                    jobs,
                ) {
                    Ok(t) => t,
                    Err(e) => return Err((422, e.to_string())),
                };
                // The delta is now part of the entry's durable state: record
                // it so a quarantine rebuild replays it.
                slot.deltas.push(delta_src.to_string());

                let mut after_doc = ReportDoc::new("typing", "derivative");
                push_typing_rows(
                    &mut after_doc,
                    engine,
                    &slot.ds.graph,
                    &slot.ds.pool,
                    &after_typing,
                );
                let after = after_doc.finish((!after_typing.is_partial()).then_some(true));

                let stats = engine.stats();
                let mut doc = ReportDoc::new("delta", "derivative");
                doc.set(
                    "delta",
                    json!({
                        "added": d.added.len(),
                        "removed": d.removed.len(),
                        "invalidated": stats.invalidated_pairs,
                        "retyped": stats.retyped_pairs,
                        "reused": stats.reused_pairs,
                    }),
                );
                doc.set("before", before);
                doc.set("after", after);
                let conforms = (!after_typing.is_partial()).then_some(true);
                let exit = if after_typing.is_partial() { 3 } else { 0 };
                Ok((finish_engine_doc(doc, engine, 0, conforms), exit))
            },
        );
        match result {
            Ok(Ok((body, exit))) => ApiResponse::ok(body, exit),
            Ok(Err((status, msg))) => ApiResponse::error(status, msg),
            Err(e) => e,
        }
    }

    /// The per-entry `stats` block: engine stats/metrics plus the
    /// quarantine counters.
    pub fn stats(&self) -> Value {
        let entries = self.entries.read().unwrap_or_else(|p| p.into_inner());
        let mut out = serde_json::Map::new();
        let mut ids: Vec<&String> = entries.keys().collect();
        ids.sort();
        for id in ids {
            let entry = &entries[id];
            let guard = entry.slot.lock().unwrap_or_else(|p| p.into_inner());
            let mut m = serde_json::Map::new();
            m.insert(
                "healthy".to_string(),
                Value::from(guard.as_ref().is_some_and(|s| s.healthy)),
            );
            m.insert(
                "quarantines".to_string(),
                Value::from(entry.quarantines.load(Ordering::Relaxed)),
            );
            m.insert(
                "rebuilds".to_string(),
                Value::from(entry.rebuilds.load(Ordering::Relaxed)),
            );
            if let Some(slot) = guard.as_ref() {
                m.insert("triples".to_string(), Value::from(slot.ds.graph.len()));
                m.insert("deltas_applied".to_string(), Value::from(slot.deltas.len()));
                m.insert(
                    "schema_format".to_string(),
                    Value::from(match entry.schema_format {
                        SchemaFormat::Shex => "shex",
                        SchemaFormat::Shacl => "shacl",
                    }),
                );
                m.insert("stats".to_string(), slot.kind.engine().stats().to_json());
                if let Some(metrics) = slot.kind.engine().metrics() {
                    let engine = slot.kind.engine();
                    let labels = |i: usize| {
                        engine
                            .label_of(shapex::ShapeId(i as u32))
                            .as_str()
                            .to_string()
                    };
                    m.insert("metrics".to_string(), metrics.to_json(&labels));
                }
            }
            out.insert(id.clone(), Value::Object(m));
        }
        Value::Object(out)
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

/// Rebuilds a quarantined entry's slot and differentially checks it:
/// the rebuilt engine's full report must be byte-identical to a second,
/// independently built engine's. Disagreement means the reconstruction is
/// not trustworthy — the entry stays out of service.
fn rebuild_checked(entry: &Entry, deltas: &[String]) -> Result<Slot, String> {
    let rebuild = || {
        catch_unwind(AssertUnwindSafe(|| {
            build_slot(
                &entry.schema_src,
                entry.schema_format,
                &entry.data_src,
                entry.format,
                entry.jobs,
                deltas,
                entry.config,
            )
        }))
        .unwrap_or_else(|p| Err(format!("rebuild panicked: {}", panic_message(p))))
    };
    let mut slot = rebuild()?;
    let mut reference = rebuild()?;
    // Differential check: full typing reports, byte for byte. Also warms
    // the replacement slot's memo, so it re-enters service hot.
    let (report, _) = typing_report(&mut slot, entry.jobs);
    let (reference_report, _) = typing_report(&mut reference, entry.jobs);
    if report != reference_report {
        return Err("differential check failed: rebuilt engine disagrees with reference".into());
    }
    Ok(slot)
}

/// Best-effort panic payload rendering.
fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

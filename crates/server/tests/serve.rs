//! End-to-end tests over a live listener: raw HTTP/1.1 requests against a
//! server started on an ephemeral port. The fault-injection scenarios
//! (panic quarantine, mid-delta rollback, saturation shedding) are gated
//! on `--features fail-inject`.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;

use shapex_server::registry::Registry;
use shapex_server::{start, ServerConfig, ServerHandle};

const SCHEMA: &str = "\
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>

<Person> {
  foaf:age xsd:integer
  , foaf:name xsd:string+
  , foaf:knows @<Person>*
}
";

const DATA: &str = "\
@prefix : <http://example.org/> .
@prefix foaf: <http://xmlns.com/foaf/0.1/> .

:john foaf:age 23;
      foaf:name \"John\";
      foaf:knows :bob .
:bob foaf:age 34;
     foaf:name \"Bob\", \"Robert\" .
:mary foaf:age 50, 65 .
";

const DELTA: &str = "\
@prefix : <http://example.org/> .
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
- :mary foaf:age 65 .
+ :mary foaf:name \"Mary\" .
";

/// Failpoints are process-global, and every test here shares one process:
/// tests hold this lock so an armed failpoint can only fire in the test
/// that armed it.
fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

/// A parsed response: status line code, headers, body.
struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// One request over a fresh connection (the server is Connection: close).
fn request(handle: &ServerHandle, method: &str, target: &str, body: &str) -> Response {
    let mut stream = TcpStream::connect(handle.addr()).expect("connecting");
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("writing head");
    stream.write_all(body.as_bytes()).expect("writing body");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("reading response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let mut lines = head.lines();
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
        .collect();
    Response {
        status,
        headers,
        body: body.to_string(),
    }
}

/// Starts a server hosting the Example 1/2 fixture under id `default`.
fn serve_fixture(config: ServerConfig) -> ServerHandle {
    let registry = Arc::new(Registry::new());
    registry
        .load(
            "default",
            SCHEMA.to_string(),
            shapex_server::registry::SchemaFormat::Shex,
            DATA.to_string(),
            shapex_server::registry::DataFormat::Turtle,
            config.engine_config(),
            config.jobs,
        )
        .expect("loading fixture");
    start(config, registry).expect("starting server")
}

fn local_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    }
}

/// The report the CLI would print for `validate --report json --jobs 1`
/// over the same sources — the byte-identity reference.
fn reference_report() -> String {
    reference_report_after(&[])
}

/// The from-scratch report over DATA with `deltas` already applied: parse,
/// replay, compile fresh, full typing — exactly how a quarantine rebuild
/// reconstructs an entry.
fn reference_report_after(deltas: &[&str]) -> String {
    reference_report_for(SCHEMA, deltas)
}

/// [`reference_report_after`] generalized over the schema text.
fn reference_report_for(schema_src: &str, deltas: &[&str]) -> String {
    use shapex::report::{finish_engine_doc, push_typing_rows, ReportDoc};
    let schema = shapex_shex::shexc::parse(schema_src).unwrap();
    let mut ds = shapex_rdf::turtle::parse(DATA).unwrap();
    for text in deltas {
        let d = shapex_rdf::delta::parse(text, &mut ds.pool).unwrap();
        ds.try_apply_delta(&d).unwrap();
    }
    let config = shapex::EngineConfig {
        metrics: true,
        ..shapex::EngineConfig::default()
    };
    let mut engine = shapex::Engine::compile(&schema, &mut ds.pool, config).unwrap();
    let typing = engine.type_all_par(&ds.graph, &ds.pool, 1);
    let mut doc = ReportDoc::new("typing", "derivative");
    push_typing_rows(&mut doc, &mut engine, &ds.graph, &ds.pool, &typing);
    let conforms = (!typing.is_partial()).then_some(true);
    finish_engine_doc(doc, &engine, 0, conforms)
}

#[test]
fn validate_is_byte_identical_to_cli_report() {
    let _guard = test_lock();
    let handle = serve_fixture(local_config());
    let response = request(&handle, "POST", "/validate", "");
    assert_eq!(response.status, 200);
    assert_eq!(response.header("X-Shapex-Exit"), Some("0"));
    assert_eq!(response.body, reference_report());
    // A second request is served from the warm memo — still identical.
    let again = request(&handle, "POST", "/validate", "");
    assert_eq!(again.body, response.body);
    handle.shutdown();
}

#[test]
fn health_stats_and_errors() {
    let _guard = test_lock();
    let handle = serve_fixture(local_config());

    let health = request(&handle, "GET", "/health", "");
    assert_eq!(health.status, 200);
    assert!(health.body.contains("\"ok\""));

    let stats = request(&handle, "GET", "/stats", "");
    assert_eq!(stats.status, 200);
    let v: serde_json::Value = serde_json::from_str(&stats.body).expect("stats JSON");
    let graphs = v.get("graphs").expect("graphs block");
    let entry = graphs.get("default").expect("default entry");
    assert_eq!(entry.get("healthy").and_then(|h| h.as_bool()), Some(true));
    assert_eq!(
        entry.get("triples").and_then(|t| t.as_u64()),
        Some(8),
        "fixture graph has 8 triples"
    );

    let missing = request(&handle, "POST", "/validate?id=nope", "");
    assert_eq!(missing.status, 404);

    let bad_map = request(&handle, "POST", "/map", "not a shape map @@@");
    assert_eq!(bad_map.status, 422);

    let unknown = request(&handle, "GET", "/nowhere", "");
    assert_eq!(unknown.status, 404);

    handle.shutdown();
}

#[test]
fn map_endpoint_reports_expectations() {
    let _guard = test_lock();
    let handle = serve_fixture(local_config());
    let map = "<http://example.org/john>@<Person>, <http://example.org/mary>@!<Person>";
    let response = request(&handle, "POST", "/map", map);
    assert_eq!(response.status, 200);
    assert_eq!(response.header("X-Shapex-Exit"), Some("0"));
    let v: serde_json::Value = serde_json::from_str(&response.body).expect("map JSON");
    assert_eq!(v.get("mode").and_then(|m| m.as_str()), Some("map"));
    assert_eq!(v.get("conforms").and_then(|c| c.as_bool()), Some(true));
    handle.shutdown();
}

#[test]
fn delta_endpoint_applies_and_revalidates() {
    let _guard = test_lock();
    let handle = serve_fixture(local_config());
    let response = request(&handle, "POST", "/delta", DELTA);
    assert_eq!(response.status, 200, "body: {}", response.body);
    let v: serde_json::Value = serde_json::from_str(&response.body).expect("delta JSON");
    assert_eq!(v.get("mode").and_then(|m| m.as_str()), Some("delta"));
    let block = v.get("delta").expect("delta block");
    assert_eq!(block.get("added").and_then(|n| n.as_u64()), Some(1));
    assert_eq!(block.get("removed").and_then(|n| n.as_u64()), Some(1));
    // After the repair delta, every node conforms.
    let after = v.get("after").expect("after report");
    assert_eq!(after.get("conforms").and_then(|c| c.as_bool()), Some(true));

    // A malformed delta is refused without disturbing the graph.
    let bad = request(&handle, "POST", "/delta", "* not an op line .");
    assert_eq!(bad.status, 422);

    // Replaying the same delta is set-idempotent: the graph already looks
    // exactly like the delta was applied, so it is accepted unchanged.
    let replay = request(&handle, "POST", "/delta", DELTA);
    assert_eq!(replay.status, 200, "body: {}", replay.body);

    handle.shutdown();
}

#[test]
fn load_registers_new_entries() {
    let _guard = test_lock();
    let handle = serve_fixture(local_config());
    let body = serde_json::to_string(&serde_json::json!({
        "schema": SCHEMA,
        "data": DATA,
    }))
    .unwrap();
    let response = request(&handle, "POST", "/load?id=second", &body);
    assert_eq!(response.status, 200, "body: {}", response.body);
    let validate = request(&handle, "POST", "/validate?id=second", "");
    assert_eq!(validate.status, 200);
    assert_eq!(validate.body, reference_report());

    // A broken schema is refused and the id stays unregistered.
    let broken = serde_json::to_string(&serde_json::json!({
        "schema": "<Person> { junk",
        "data": DATA,
    }))
    .unwrap();
    let refused = request(&handle, "POST", "/load?id=broken", &broken);
    assert_eq!(refused.status, 422);
    let missing = request(&handle, "POST", "/validate?id=broken", "");
    assert_eq!(missing.status, 404);

    handle.shutdown();
}

const SHACL_SHAPES: &str = include_str!("../../../fixtures/shacl/shapes.ttl");
const SHACL_DATA: &str = include_str!("../../../fixtures/shacl/data.ttl");

/// The report the CLI prints for `validate --shacl shapes.ttl data.ttl
/// --report json --jobs 1` over the same fixture — built through the same
/// front-end crate, so `/validate` on a SHACL entry must match it byte
/// for byte.
fn shacl_reference_report(config: &ServerConfig) -> String {
    let shapes = shapex_rdf::turtle::parse(SHACL_SHAPES).unwrap();
    let schema = shapex_shacl::compile(&shapes).unwrap();
    let mut ds = shapex_rdf::turtle::parse(SHACL_DATA).unwrap();
    let mut validator =
        shapex_shacl::ShaclValidator::new(schema, &mut ds.pool, config.engine_config()).unwrap();
    let outcome = validator.validate_par(&mut ds, 1);
    shapex_shacl::shacl_report(&outcome, validator.engine())
}

#[test]
fn shacl_entry_validates_and_refuses_map_delta() {
    let _guard = test_lock();
    let config = local_config();
    let reference = shacl_reference_report(&config);
    let handle = serve_fixture(config);

    let body = serde_json::to_string(&serde_json::json!({
        "schema": SHACL_SHAPES,
        "data": SHACL_DATA,
        "schema_format": "shacl",
    }))
    .unwrap();
    let loaded = request(&handle, "POST", "/load?id=shapes", &body);
    assert_eq!(loaded.status, 200, "body: {}", loaded.body);

    // The fixture carries three violations: sh:ValidationReport JSON,
    // exit 2 in the header, bytes identical to the CLI path.
    let validate = request(&handle, "POST", "/validate?id=shapes", "");
    assert_eq!(validate.status, 200);
    assert_eq!(validate.header("X-Shapex-Exit"), Some("2"));
    assert_eq!(validate.body, reference);

    // Shape maps address ShEx labels; deltas transplant engine-level
    // verdicts. Both are refused on a SHACL entry with 422, and the
    // entry keeps serving afterwards.
    let map = request(&handle, "POST", "/map?id=shapes", "<x>@<y>");
    assert_eq!(map.status, 422, "body: {}", map.body);
    let delta = request(&handle, "POST", "/delta?id=shapes", DELTA);
    assert_eq!(delta.status, 422, "body: {}", delta.body);
    let again = request(&handle, "POST", "/validate?id=shapes", "");
    assert_eq!(again.body, reference);

    // An unsupported SHACL term is refused at load, never served vacuously.
    let sparql = serde_json::to_string(&serde_json::json!({
        "schema": "@prefix sh: <http://www.w3.org/ns/shacl#> .\n\
                   @prefix ex: <http://example.org/> .\n\
                   ex:S a sh:NodeShape ; sh:targetClass ex:T ;\n\
                        sh:sparql ex:Q .",
        "data": SHACL_DATA,
        "schema_format": "shacl",
    }))
    .unwrap();
    let refused = request(&handle, "POST", "/load?id=sparql", &sparql);
    assert_eq!(refused.status, 422, "body: {}", refused.body);
    assert!(refused.body.contains("E001"), "body: {}", refused.body);

    handle.shutdown();
}

/// SCHEMA plus a new shape, with `<Person>` byte-identical — re-loading
/// over the same data takes the warm path and transplants every Person
/// verdict into the new engine.
const SCHEMA_V2: &str = "\
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>

<Person> {
  foaf:age xsd:integer
  , foaf:name xsd:string+
  , foaf:knows @<Person>*
}

<Named> {
  foaf:name .+
  , foaf:age .*
  , foaf:knows .*
}
";

/// The typing rows and conforms flag of a report document — the part of
/// the warm-swap contract that must match a cold build (cumulative
/// `stats` legitimately differ: a warm engine counts transplanted pairs,
/// a cold one counts the node checks that recomputed them).
fn typing_of(body: &str) -> (serde_json::Value, serde_json::Value) {
    let v: serde_json::Value = serde_json::from_str(body).expect("report JSON");
    (
        v.get("results").cloned().expect("results member"),
        v.get("conforms").cloned().expect("conforms member"),
    )
}

/// `graphs.default` of a `/stats` response.
fn default_entry(stats_body: &str) -> serde_json::Value {
    let v: serde_json::Value = serde_json::from_str(stats_body).expect("stats JSON");
    v.get("graphs")
        .and_then(|g| g.get("default"))
        .cloned()
        .expect("graphs.default entry")
}

#[test]
fn reload_same_data_swaps_schema_warm() {
    let _guard = test_lock();
    let handle = serve_fixture(local_config());
    // Warm the memo, then grow a delta log — in-memory state a cold
    // rebuild would have to reconstruct from sources.
    assert_eq!(request(&handle, "POST", "/validate", "").status, 200);
    assert_eq!(request(&handle, "POST", "/delta", DELTA).status, 200);

    // Re-register the same id over the same data with a grown schema.
    let body = serde_json::to_string(&serde_json::json!({
        "schema": SCHEMA_V2,
        "data": DATA,
    }))
    .unwrap();
    let reload = request(&handle, "POST", "/load?id=default", &body);
    assert_eq!(reload.status, 200, "body: {}", reload.body);

    // The graph and delta log survived the swap, and the unchanged
    // <Person> shape's verdicts were transplanted into the new engine.
    let stats = request(&handle, "GET", "/stats", "");
    let entry = default_entry(&stats.body);
    assert_eq!(
        entry.get("deltas_applied").and_then(|n| n.as_u64()),
        Some(1),
        "delta log kept"
    );
    assert_eq!(
        entry.get("triples").and_then(|n| n.as_u64()),
        Some(8),
        "repaired graph kept"
    );
    let reused = entry
        .get("stats")
        .and_then(|s| s.get("reused_pairs"))
        .and_then(|n| n.as_u64())
        .unwrap();
    assert!(
        reused >= 3,
        "john, bob, mary × <Person> transplanted, got {reused}"
    );

    // The warm engine's typing is identical to a from-scratch build of
    // the new schema over the delta-repaired graph.
    let warm = request(&handle, "POST", "/validate", "");
    assert_eq!(warm.status, 200);
    let cold = reference_report_for(SCHEMA_V2, &[DELTA]);
    assert_eq!(typing_of(&warm.body), typing_of(&cold));

    // A broken replacement schema is refused with the entry unharmed:
    // the taken slot is restored and keeps serving the previous schema.
    let broken = serde_json::to_string(&serde_json::json!({
        "schema": "<Person> { junk",
        "data": DATA,
    }))
    .unwrap();
    let refused = request(&handle, "POST", "/load?id=default", &broken);
    assert_eq!(refused.status, 422);
    let still = request(&handle, "POST", "/validate", "");
    assert_eq!(still.status, 200);
    assert_eq!(typing_of(&still.body), typing_of(&cold));

    // Re-loading with *different* data takes the cold path: fresh graph,
    // empty delta log.
    let other_data = format!("{DATA}\n:extra foaf:age 1 .\n");
    let cold_body = serde_json::to_string(&serde_json::json!({
        "schema": SCHEMA,
        "data": other_data,
    }))
    .unwrap();
    let cold_reload = request(&handle, "POST", "/load?id=default", &cold_body);
    assert_eq!(cold_reload.status, 200, "body: {}", cold_reload.body);
    let stats = request(&handle, "GET", "/stats", "");
    let entry = default_entry(&stats.body);
    assert_eq!(
        entry.get("deltas_applied").and_then(|n| n.as_u64()),
        Some(0),
        "delta log reset"
    );
    assert_eq!(
        entry
            .get("stats")
            .and_then(|s| s.get("reused_pairs"))
            .and_then(|n| n.as_u64()),
        Some(0),
        "cold build"
    );

    handle.shutdown();
}

/// Reads exactly one response off a persistent connection, framing by
/// `Content-Length` (unlike [`request`], which reads to EOF and therefore
/// only works on `Connection: close` conversations).
fn read_framed_response(stream: &mut TcpStream) -> Response {
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        let n = stream.read(&mut byte).expect("reading response header");
        assert!(n > 0, "EOF mid-header after {} bytes", head.len());
        head.push(byte[0]);
    }
    let head = String::from_utf8_lossy(&head).into_owned();
    let mut lines = head.lines();
    let status: u16 = lines
        .next()
        .expect("status line")
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
        .collect();
    let length: usize = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .map(|(_, v)| v.parse().expect("numeric Content-Length"))
        .expect("Content-Length header");
    let mut body = vec![0u8; length];
    stream.read_exact(&mut body).expect("reading framed body");
    Response {
        status,
        headers,
        body: String::from_utf8_lossy(&body).into_owned(),
    }
}

#[test]
fn keep_alive_serves_multiple_requests_on_one_connection() {
    let _guard = test_lock();
    let handle = serve_fixture(local_config());
    let mut stream = TcpStream::connect(handle.addr()).expect("connecting");

    // Two keep-alive requests ride the same socket, each answered with
    // `Connection: keep-alive` and the full CLI-identical report.
    for _ in 0..2 {
        stream
            .write_all(
                b"POST /validate HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\nContent-Length: 0\r\n\r\n",
            )
            .expect("writing keep-alive request");
        let response = read_framed_response(&mut stream);
        assert_eq!(response.status, 200);
        assert_eq!(response.header("Connection"), Some("keep-alive"));
        assert_eq!(response.body, reference_report());
    }

    // A request *without* the opt-in header is answered with
    // `Connection: close` and the server hangs up — the pre-keep-alive
    // contract, unchanged for clients that read to EOF.
    stream
        .write_all(b"GET /health HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n")
        .expect("writing final request");
    let mut rest = String::new();
    stream
        .read_to_string(&mut rest)
        .expect("reading to server-side close");
    assert!(rest.contains(" 200 "), "final response: {rest}");
    assert!(rest.contains("Connection: close"), "final response: {rest}");

    handle.shutdown();
}

#[test]
fn keep_alive_idle_connections_time_out() {
    let _guard = test_lock();
    let handle = serve_fixture(local_config());
    let mut stream = TcpStream::connect(handle.addr()).expect("connecting");
    stream
        .write_all(
            b"GET /health HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\nContent-Length: 0\r\n\r\n",
        )
        .expect("writing request");
    let response = read_framed_response(&mut stream);
    assert_eq!(response.status, 200);
    // Then go idle: the server must hang up on its own within the idle
    // timeout instead of pinning a pool slot forever.
    let mut rest = Vec::new();
    stream
        .set_read_timeout(Some(shapex_server::KEEPALIVE_IDLE * 4))
        .unwrap();
    let n = stream
        .read_to_end(&mut rest)
        .expect("awaiting server close");
    assert_eq!(n, 0, "server should close an idle keep-alive connection");
    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains() {
    let _guard = test_lock();
    let handle = serve_fixture(local_config());
    // In-flight work completes before shutdown() returns and the port is
    // released afterwards.
    let response = request(&handle, "POST", "/validate", "");
    assert_eq!(response.status, 200);
    let addr = handle.addr();
    handle.shutdown();
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener should be closed after drain"
    );
}

#[cfg(feature = "fail-inject")]
mod fail_inject {
    use super::*;
    use shapex::failpoint::{self, Action};
    use std::time::Duration;

    /// An injected panic in the typing wave quarantines only that entry;
    /// the rebuilt engine answers byte-identically to a fresh one and the
    /// server keeps serving throughout.
    #[test]
    fn typing_wave_panic_quarantines_and_rebuilds() {
        let _guard = test_lock();
        failpoint::reset();
        let handle = serve_fixture(local_config());
        // A second entry that must stay untouched by the quarantine.
        let body = serde_json::to_string(&serde_json::json!({
            "schema": SCHEMA,
            "data": DATA,
        }))
        .unwrap();
        assert_eq!(
            request(&handle, "POST", "/load?id=other", &body).status,
            200
        );

        failpoint::set("typing-wave", Action::Panic, Some(1));
        let hit = request(&handle, "POST", "/validate", "");
        failpoint::reset();
        assert_eq!(hit.status, 500);
        let v: serde_json::Value = serde_json::from_str(&hit.body).expect("panic JSON");
        assert_eq!(v.get("quarantined").and_then(|b| b.as_bool()), Some(true));
        assert_eq!(v.get("rebuilt").and_then(|b| b.as_bool()), Some(true));

        // The other entry was never disturbed.
        let other = request(&handle, "POST", "/validate?id=other", "");
        assert_eq!(other.status, 200);

        // The rebuilt engine answers exactly like a from-scratch engine.
        let recovered = request(&handle, "POST", "/validate", "");
        assert_eq!(recovered.status, 200);
        assert_eq!(recovered.body, reference_report());

        // The quarantine and rebuild are visible in /stats.
        let stats = request(&handle, "GET", "/stats", "");
        let v: serde_json::Value = serde_json::from_str(&stats.body).unwrap();
        let entry = v
            .get("graphs")
            .and_then(|g| g.get("default"))
            .expect("default entry");
        assert_eq!(entry.get("healthy").and_then(|b| b.as_bool()), Some(true));
        assert_eq!(entry.get("quarantines").and_then(|n| n.as_u64()), Some(1));
        assert_eq!(entry.get("rebuilds").and_then(|n| n.as_u64()), Some(1));

        handle.shutdown();
    }

    /// A worker killed mid-epoch under the work-stealing scheduler
    /// (`jobs: 2`, so typing runs as parallel epochs on the shared
    /// request pool): the panic propagates off the pool thread to the
    /// request, the entry quarantines, and the rebuild's differential
    /// check — which types at the same `jobs` — still certifies a
    /// byte-identical replacement.
    #[test]
    fn worker_killed_mid_steal_quarantines_and_rebuilds() {
        let _guard = test_lock();
        failpoint::reset();
        let handle = serve_fixture(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            jobs: 2,
            ..ServerConfig::default()
        });

        failpoint::set("typing-wave", Action::Panic, Some(1));
        let hit = request(&handle, "POST", "/validate", "");
        failpoint::reset();
        assert_eq!(hit.status, 500, "body: {}", hit.body);
        let v: serde_json::Value = serde_json::from_str(&hit.body).expect("panic JSON");
        assert_eq!(v.get("quarantined").and_then(|b| b.as_bool()), Some(true));
        assert_eq!(
            v.get("rebuilt").and_then(|b| b.as_bool()),
            Some(true),
            "parallel rebuild must pass its differential check"
        );

        // The rebuilt engine serves the same typing as the sequential
        // reference — scheduler jobs-invariance, observed end to end.
        let recovered = request(&handle, "POST", "/validate", "");
        assert_eq!(recovered.status, 200);
        assert_eq!(typing_of(&recovered.body), typing_of(&reference_report()));

        // And the pool survives the mid-epoch panic: further parallel
        // requests are served normally.
        let again = request(&handle, "POST", "/validate", "");
        assert_eq!(again.status, 200);
        assert_eq!(typing_of(&again.body), typing_of(&recovered.body));
        handle.shutdown();
    }

    /// A panic mid-way through a *second* delta request (after its triples
    /// were applied, during revalidation): the rebuild must replay only
    /// the committed delta log, discarding the half-applied state.
    #[test]
    fn rebuild_replays_the_delta_log() {
        let _guard = test_lock();
        failpoint::reset();
        let handle = serve_fixture(local_config());
        let applied = request(&handle, "POST", "/delta", DELTA);
        assert_eq!(applied.status, 200, "body: {}", applied.body);
        let settled = request(&handle, "POST", "/validate", "");
        assert_eq!(settled.status, 200);

        // The second delta disturbs :bob, so its revalidation must run
        // the typing wave — where the panic is waiting. The engine has
        // already mutated the graph by then; the quarantine throws that
        // half-applied state away.
        let second = "\
@prefix : <http://example.org/> .
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
+ :bob foaf:knows :john .
";
        failpoint::set("typing-wave", Action::Panic, Some(1));
        let hit = request(&handle, "POST", "/delta", second);
        failpoint::reset();
        assert_eq!(hit.status, 500, "body: {}", hit.body);
        let v: serde_json::Value = serde_json::from_str(&hit.body).expect("panic JSON");
        assert_eq!(v.get("rebuilt").and_then(|b| b.as_bool()), Some(true));

        // Only the first delta was committed to the log: the rebuilt
        // engine answers byte-identically to a from-scratch engine over
        // data + first delta — the half-applied second delta is gone.
        let recovered = request(&handle, "POST", "/validate", "");
        assert_eq!(recovered.status, 200);
        assert_eq!(
            recovered.body,
            reference_report_after(&[DELTA]),
            "rebuilt engine must reconstruct the committed post-delta state"
        );
        // The verdicts (though not the engine-lifetime metrics) also match
        // the pre-panic warm engine's answers.
        let settled_v: serde_json::Value = serde_json::from_str(&settled.body).unwrap();
        let recovered_v: serde_json::Value = serde_json::from_str(&recovered.body).unwrap();
        assert_eq!(
            serde_json::to_string(settled_v.get("results").unwrap()).unwrap(),
            serde_json::to_string(recovered_v.get("results").unwrap()).unwrap(),
        );
        handle.shutdown();
    }

    /// An injected failure mid-delta rolls the graph back: the apply
    /// reports 500, and the next full report is byte-identical to the
    /// pre-delta one.
    #[test]
    fn mid_delta_failure_leaves_graph_untouched() {
        let _guard = test_lock();
        failpoint::reset();
        let handle = serve_fixture(local_config());
        let before = request(&handle, "POST", "/validate", "");
        assert_eq!(before.status, 200);

        // Fail on the second of the two delta operations.
        failpoint::set_after("delta-apply", Action::Error("disk full".into()), 1, Some(1));
        let failed = request(&handle, "POST", "/delta", DELTA);
        failpoint::reset();
        assert_eq!(failed.status, 500, "body: {}", failed.body);
        assert!(failed.body.contains("rolled back"), "body: {}", failed.body);

        let after = request(&handle, "POST", "/validate", "");
        assert_eq!(after.status, 200);
        assert_eq!(
            after.body, before.body,
            "failed delta must not disturb the graph"
        );

        // The delta still applies cleanly once the fault is gone.
        let retry = request(&handle, "POST", "/delta", DELTA);
        assert_eq!(retry.status, 200, "body: {}", retry.body);
        handle.shutdown();
    }

    /// With one worker pinned by a slow request and a queue of one, the
    /// acceptor sheds the overflow with `503` + `Retry-After` instead of
    /// buffering without bound.
    #[test]
    fn saturation_sheds_load_with_503() {
        let _guard = test_lock();
        failpoint::reset();
        let handle = serve_fixture(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            queue: 1,
            ..ServerConfig::default()
        });
        // Pin the single worker for a while.
        failpoint::set(
            "typing-wave",
            Action::Delay(Duration::from_millis(800)),
            Some(1),
        );
        let addr = handle.addr();
        let pinned = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            stream
                .write_all(b"POST /validate HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n")
                .unwrap();
            let mut out = String::new();
            stream.read_to_string(&mut out).unwrap();
            out
        });
        std::thread::sleep(Duration::from_millis(150));

        // A concurrent burst: the queue holds one connection, the worker
        // is pinned, so most of the burst must be shed with 503. The
        // acceptor closes a shed socket without reading the request, so a
        // client mid-write can see a connection reset instead of the 503
        // — either way the connection was refused admission.
        let burst: Vec<_> = (0..6)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut stream = TcpStream::connect(addr).unwrap();
                    if stream
                        .write_all(b"GET /health HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n")
                        .is_err()
                    {
                        return "RESET".to_string();
                    }
                    let mut out = String::new();
                    match stream.read_to_string(&mut out) {
                        Ok(_) => out,
                        Err(_) if out.is_empty() => "RESET".to_string(),
                        Err(_) => out,
                    }
                })
            })
            .collect();
        let outcomes: Vec<String> = burst.into_iter().map(|t| t.join().unwrap()).collect();
        let shed = outcomes
            .iter()
            .filter(|o| o.contains(" 503 ") || *o == "RESET")
            .count() as u64;
        let pinned_out = pinned.join().unwrap();
        failpoint::reset();
        assert!(
            pinned_out.contains("200 OK"),
            "pinned request should still complete"
        );
        assert!(shed > 0, "expected load shedding, outcomes: {outcomes:?}");
        for o in outcomes.iter().filter(|o| o.contains(" 503 ")) {
            assert!(o.contains("Retry-After: 1"), "shed response: {o}");
        }

        // After the load passes, service is back to normal.
        let after = request(&handle, "POST", "/validate", "");
        assert_eq!(after.status, 200);
        let stats = request(&handle, "GET", "/stats", "");
        let v: serde_json::Value = serde_json::from_str(&stats.body).unwrap();
        let total_shed = v
            .get("server")
            .and_then(|s| s.get("shed"))
            .and_then(|n| n.as_u64())
            .expect("shed counter");
        assert!(total_shed >= shed);
        handle.shutdown();
    }
}

//! Parser for the ShExC compact syntax, covering the paper's surface
//! language (Example 1):
//!
//! ```text
//! PREFIX foaf: <http://xmlns.com/foaf/0.1/>
//! PREFIX xsd:  <http://www.w3.org/2001/XMLSchema#>
//!
//! <Person> {
//!   foaf:age xsd:integer
//!   , foaf:name xsd:string+
//!   , foaf:knows @<Person>*
//! }
//! ```
//!
//! plus: `start = @<Shape>`, alternatives `|`, groups `( ... )`,
//! cardinalities `* + ? {m} {m,n} {m,}`, node kinds, value sets
//! `[ ... ]` with IRI stems `~` and language tags, string/numeric facets,
//! the `a` predicate keyword, `.` wildcards for predicate-any arcs and
//! value-any constraints, and the §10 extensions `^` (inverse arc) and
//! `NOT` (negated constraint). Both `,` and `;` separate conjuncts.

use std::collections::HashMap;

use shapex_rdf::parser::{decode_string_escape, Cursor, ParseError};
use shapex_rdf::term::{Literal, Term};
use shapex_rdf::vocab::{rdf, xsd};
use shapex_rdf::xsd::Numeric;

use crate::ast::{ArcConstraint, ObjectConstraint, PredicateSet, ShapeExpr, ShapeLabel};
use crate::constraint::{Facet, NodeConstraint, NodeKind, ValueSetValue};
use crate::schema::Schema;

/// Parses a ShExC document into a [`Schema`].
pub fn parse(input: &str) -> Result<Schema, ParseError> {
    let mut p = ShexcParser {
        cur: Cursor::new(input),
        prefixes: HashMap::new(),
        schema: Schema::new(),
    };
    p.run()?;
    Ok(p.schema)
}

struct ShexcParser<'a> {
    cur: Cursor<'a>,
    prefixes: HashMap<String, String>,
    schema: Schema,
}

impl ShexcParser<'_> {
    fn run(&mut self) -> Result<(), ParseError> {
        loop {
            self.cur.skip_ws_and_comments();
            if self.cur.at_end() {
                return Ok(());
            }
            if self.keyword_ci("PREFIX") {
                let name = self.pname_ns()?;
                self.cur.skip_ws_and_comments();
                let iri = self.iriref()?;
                self.schema.prefixes.push((name.clone(), iri.clone()));
                self.prefixes.insert(name, iri);
                continue;
            }
            if self.keyword_ci("BASE") {
                // Accepted and ignored: shape labels and IRIs are used
                // verbatim, matching the paper's presentation.
                self.iriref()?;
                continue;
            }
            if self.keyword_ci("START") {
                self.cur.skip_ws_and_comments();
                if !self.cur.eat('=') {
                    return Err(self.cur.error("expected '=' after 'start'"));
                }
                self.cur.skip_ws_and_comments();
                self.cur.eat('@'); // optional '@'
                let label = self.shape_label()?;
                self.schema.set_start(label);
                continue;
            }
            let label = self.shape_label()?;
            self.cur.skip_ws_and_comments();
            if !self.cur.eat('{') {
                return Err(self.cur.error("expected '{' starting shape definition"));
            }
            self.cur.skip_ws_and_comments();
            let expr = if self.cur.peek() == Some('}') {
                ShapeExpr::Epsilon // `{}`: a node with no (constrained) arcs
            } else {
                self.one_of()?
            };
            self.cur.skip_ws_and_comments();
            if !self.cur.eat('}') {
                return Err(self.cur.error("expected '}' closing shape definition"));
            }
            self.schema
                .add_shape(label, expr)
                .map_err(|e| self.cur.error(e.to_string()))?;
        }
    }

    /// Consumes a keyword (case-insensitive) only when followed by a
    /// non-name character, so `starting:thing` is not mistaken for `start`.
    fn keyword_ci(&mut self, kw: &str) -> bool {
        if !self.cur.starts_with_ci(kw) {
            return false;
        }
        let boundary = self.cur.rest()[kw.len()..]
            .chars()
            .next()
            .is_none_or(|c| !(c.is_alphanumeric() || c == '_' || c == ':'));
        if boundary {
            self.cur.eat_str_ci(kw);
            self.cur.skip_ws_and_comments();
            true
        } else {
            false
        }
    }

    fn pname_ns(&mut self) -> Result<String, ParseError> {
        let mut name = String::new();
        while let Some(c) = self.cur.peek() {
            if c == ':' {
                self.cur.bump();
                return Ok(name);
            }
            if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' {
                name.push(c);
                self.cur.bump();
            } else {
                break;
            }
        }
        Err(self.cur.error("expected ':' terminating prefix name"))
    }

    fn iriref(&mut self) -> Result<String, ParseError> {
        if !self.cur.eat('<') {
            return Err(self.cur.error("expected '<'"));
        }
        let mut iri = String::new();
        loop {
            match self.cur.bump() {
                None => return Err(self.cur.error("unterminated IRI")),
                Some('>') => return Ok(iri),
                Some(c) if c.is_whitespace() => return Err(self.cur.error("whitespace in IRI")),
                Some(c) => iri.push(c),
            }
        }
    }

    /// A shape label: `<Name>` or a prefixed name (resolved to a full IRI).
    fn shape_label(&mut self) -> Result<ShapeLabel, ParseError> {
        if self.cur.peek() == Some('<') {
            return Ok(ShapeLabel::new(self.iriref()?));
        }
        let iri = self.prefixed_name()?;
        Ok(ShapeLabel::new(iri))
    }

    fn prefixed_name(&mut self) -> Result<String, ParseError> {
        let mut prefix = String::new();
        while let Some(c) = self.cur.peek() {
            if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' {
                prefix.push(c);
                self.cur.bump();
            } else {
                break;
            }
        }
        if !self.cur.eat(':') {
            return Err(self
                .cur
                .error(format!("expected ':' after prefix '{prefix}'")));
        }
        let ns = self
            .prefixes
            .get(&prefix)
            .ok_or_else(|| self.cur.error(format!("undefined prefix '{prefix}:'")))?;
        let mut iri = ns.clone();
        while let Some(c) = self.cur.peek() {
            if c.is_alphanumeric() || matches!(c, '_' | '-' | '%') {
                iri.push(c);
                self.cur.bump();
            } else if c == '.' {
                match self.cur.peek2() {
                    Some(n) if n.is_alphanumeric() || n == '_' => {
                        iri.push('.');
                        self.cur.bump();
                    }
                    _ => break,
                }
            } else {
                break;
            }
        }
        Ok(iri)
    }

    /// `oneOf := group ('|' group)*` — alternatives, lowest precedence.
    fn one_of(&mut self) -> Result<ShapeExpr, ParseError> {
        let mut alts = vec![self.group()?];
        loop {
            self.cur.skip_ws_and_comments();
            if self.cur.eat('|') {
                self.cur.skip_ws_and_comments();
                alts.push(self.group()?);
            } else {
                return Ok(ShapeExpr::or_all(alts));
            }
        }
    }

    /// `group := unary ((','|';') unary)*` — unordered concatenation.
    fn group(&mut self) -> Result<ShapeExpr, ParseError> {
        let mut items = vec![self.unary()?];
        loop {
            self.cur.skip_ws_and_comments();
            if self.cur.eat(',') || self.cur.eat(';') {
                self.cur.skip_ws_and_comments();
                // trailing separator before '}' or ')'
                if matches!(self.cur.peek(), Some('}') | Some(')') | None) {
                    break;
                }
                items.push(self.unary()?);
            } else {
                break;
            }
        }
        Ok(ShapeExpr::and_all(items))
    }

    fn unary(&mut self) -> Result<ShapeExpr, ParseError> {
        self.cur.skip_ws_and_comments();
        if self.cur.eat('(') {
            self.cur.skip_ws_and_comments();
            // `()` is ε (emitted by the pretty-printer for nested ε).
            if self.cur.eat(')') {
                return self.apply_cardinality(ShapeExpr::Epsilon);
            }
            let inner = self.one_of()?;
            self.cur.skip_ws_and_comments();
            if !self.cur.eat(')') {
                return Err(self.cur.error("expected ')'"));
            }
            return self.apply_cardinality(inner);
        }
        let inverse = self.cur.eat('^');
        let predicates = self.predicate()?;
        self.cur.skip_ws_and_comments();
        let object = self.value_expr()?;
        let mut arc = ArcConstraint::new(predicates, object);
        arc.inverse = inverse;
        self.apply_cardinality(ShapeExpr::Arc(arc))
    }

    fn predicate(&mut self) -> Result<PredicateSet, ParseError> {
        match self.cur.peek() {
            Some('<') => Ok(PredicateSet::one(self.iriref()?)),
            Some('.') => {
                self.cur.bump();
                Ok(PredicateSet::Any)
            }
            Some('a') => {
                // `a` keyword only when followed by whitespace.
                if self.cur.peek2().is_some_and(char::is_whitespace) {
                    self.cur.bump();
                    return Ok(PredicateSet::one(rdf::TYPE));
                }
                Ok(PredicateSet::one(self.prefixed_name()?))
            }
            _ => Ok(PredicateSet::one(self.prefixed_name()?)),
        }
    }

    fn value_expr(&mut self) -> Result<ObjectConstraint, ParseError> {
        if self.keyword_ci("NOT") {
            let inner = self.value_expr()?;
            let ObjectConstraint::Value(c) = inner else {
                return Err(self.cur.error("NOT cannot negate a shape reference"));
            };
            return Ok(ObjectConstraint::Value(NodeConstraint::Not(Box::new(c))));
        }
        if self.cur.eat('@') {
            let label = self.shape_label()?;
            return Ok(ObjectConstraint::Ref(label));
        }
        let base = self.value_atom()?;
        let facets = self.facets()?;
        let constraint = if facets.is_empty() {
            base
        } else {
            let mut all = vec![base];
            all.extend(facets.into_iter().map(NodeConstraint::Facet));
            // `.` contributes nothing to a conjunction
            all.retain(|c| *c != NodeConstraint::Any);
            if all.len() == 1 {
                all.pop().expect("one element")
            } else {
                NodeConstraint::AllOf(all)
            }
        };
        Ok(ObjectConstraint::Value(constraint))
    }

    fn value_atom(&mut self) -> Result<NodeConstraint, ParseError> {
        match self.cur.peek() {
            Some('.') => {
                self.cur.bump();
                Ok(NodeConstraint::Any)
            }
            Some('[') => self.value_set(),
            Some('<') => Ok(NodeConstraint::Datatype(self.iriref()?.into())),
            _ => {
                for (kw, kind) in [
                    ("NONLITERAL", NodeKind::NonLiteral),
                    ("LITERAL", NodeKind::Literal),
                    ("BNODE", NodeKind::BNode),
                    ("IRI", NodeKind::Iri),
                ] {
                    if self.keyword_ci(kw) {
                        return Ok(NodeConstraint::Kind(kind));
                    }
                }
                // If only facets follow (e.g. `:p PATTERN "x"`), the atom
                // is implicitly `.`.
                if self.peek_facet_keyword() {
                    return Ok(NodeConstraint::Any);
                }
                Ok(NodeConstraint::Datatype(self.prefixed_name()?.into()))
            }
        }
    }

    fn peek_facet_keyword(&self) -> bool {
        const FACETS: [&str; 8] = [
            "MININCLUSIVE",
            "MINEXCLUSIVE",
            "MAXINCLUSIVE",
            "MAXEXCLUSIVE",
            "MINLENGTH",
            "MAXLENGTH",
            "LENGTH",
            "PATTERN",
        ];
        FACETS.iter().any(|kw| self.cur.starts_with_ci(kw))
    }

    fn facets(&mut self) -> Result<Vec<Facet>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.cur.skip_ws_and_comments();
            let facet = if self.keyword_ci("MININCLUSIVE") {
                Facet::MinInclusive(self.numeric()?)
            } else if self.keyword_ci("MINEXCLUSIVE") {
                Facet::MinExclusive(self.numeric()?)
            } else if self.keyword_ci("MAXINCLUSIVE") {
                Facet::MaxInclusive(self.numeric()?)
            } else if self.keyword_ci("MAXEXCLUSIVE") {
                Facet::MaxExclusive(self.numeric()?)
            } else if self.keyword_ci("MINLENGTH") {
                Facet::MinLength(self.unsigned()? as usize)
            } else if self.keyword_ci("MAXLENGTH") {
                Facet::MaxLength(self.unsigned()? as usize)
            } else if self.keyword_ci("LENGTH") {
                Facet::Length(self.unsigned()? as usize)
            } else if self.keyword_ci("PATTERN") {
                let Term::Literal(lit) = self.literal()? else {
                    return Err(self.cur.error("PATTERN expects a string literal"));
                };
                Facet::Pattern(lit.lexical_form().into())
            } else {
                return Ok(out);
            };
            out.push(facet);
        }
    }

    fn numeric(&mut self) -> Result<Numeric, ParseError> {
        self.cur.skip_ws_and_comments();
        let Term::Literal(lit) = self.number_literal()? else {
            unreachable!("number_literal returns literals");
        };
        Numeric::of_literal(&lit).ok_or_else(|| self.cur.error("expected numeric value"))
    }

    fn unsigned(&mut self) -> Result<u32, ParseError> {
        self.cur.skip_ws_and_comments();
        let mut n: u32 = 0;
        let mut any = false;
        while let Some(c) = self.cur.peek() {
            if let Some(d) = c.to_digit(10) {
                n = n
                    .checked_mul(10)
                    .and_then(|n| n.checked_add(d))
                    .ok_or_else(|| self.cur.error("number too large"))?;
                any = true;
                self.cur.bump();
            } else {
                break;
            }
        }
        if any {
            Ok(n)
        } else {
            Err(self.cur.error("expected number"))
        }
    }

    fn value_set(&mut self) -> Result<NodeConstraint, ParseError> {
        self.cur.bump(); // '['
        let mut values = Vec::new();
        loop {
            self.cur.skip_ws_and_comments();
            if self.cur.eat(']') {
                return Ok(NodeConstraint::ValueSet(values));
            }
            match self.cur.peek() {
                None => return Err(self.cur.error("unterminated value set")),
                Some('@') => {
                    self.cur.bump();
                    let mut tag = String::new();
                    while let Some(c) = self.cur.peek() {
                        if c.is_ascii_alphanumeric() || c == '-' {
                            tag.push(c);
                            self.cur.bump();
                        } else {
                            break;
                        }
                    }
                    if tag.is_empty() {
                        return Err(self.cur.error("empty language tag in value set"));
                    }
                    if self.cur.eat('~') {
                        values.push(ValueSetValue::LanguageStem(tag.into()));
                    } else {
                        values.push(ValueSetValue::Language(tag.into()));
                    }
                }
                Some('"') | Some('\'') => {
                    values.push(ValueSetValue::Term(self.literal()?));
                }
                Some(c) if c.is_ascii_digit() || c == '+' || c == '-' => {
                    values.push(ValueSetValue::Term(self.number_literal()?));
                }
                Some('<') => {
                    let iri = self.iriref()?;
                    if self.cur.eat('~') {
                        values.push(ValueSetValue::IriStem(iri.into()));
                    } else {
                        values.push(ValueSetValue::Term(Term::iri(iri)));
                    }
                }
                Some(_) => {
                    if self.cur.rest().starts_with("true") || self.cur.rest().starts_with("false") {
                        let v = self.cur.eat_str("true");
                        if !v {
                            self.cur.eat_str("false");
                        }
                        values.push(ValueSetValue::Term(Term::Literal(Literal::boolean(v))));
                        continue;
                    }
                    let iri = self.prefixed_name()?;
                    if self.cur.eat('~') {
                        values.push(ValueSetValue::IriStem(iri.into()));
                    } else {
                        values.push(ValueSetValue::Term(Term::iri(iri)));
                    }
                }
            }
        }
    }

    fn literal(&mut self) -> Result<Term, ParseError> {
        self.cur.skip_ws_and_comments();
        let quote = match self.cur.peek() {
            Some(q @ ('"' | '\'')) => q,
            _ => return Err(self.cur.error("expected string literal")),
        };
        self.cur.bump();
        let mut s = String::new();
        loop {
            match self.cur.bump() {
                None => return Err(self.cur.error("unterminated string literal")),
                Some('\\') => s.push(decode_string_escape(&mut self.cur)?),
                Some(c) if c == quote => break,
                Some(c) => s.push(c),
            }
        }
        if self.cur.eat('@') {
            let mut tag = String::new();
            while let Some(c) = self.cur.peek() {
                if c.is_ascii_alphanumeric() || c == '-' {
                    tag.push(c);
                    self.cur.bump();
                } else {
                    break;
                }
            }
            return Ok(Term::Literal(Literal::lang_string(s, &tag)));
        }
        if self.cur.eat_str("^^") {
            let dt = if self.cur.peek() == Some('<') {
                self.iriref()?
            } else {
                self.prefixed_name()?
            };
            return Ok(Term::Literal(Literal::typed(s, dt)));
        }
        Ok(Term::Literal(Literal::string(s)))
    }

    fn number_literal(&mut self) -> Result<Term, ParseError> {
        let mut s = String::new();
        if matches!(self.cur.peek(), Some('+') | Some('-')) {
            s.push(self.cur.bump().expect("peeked"));
        }
        let mut has_dot = false;
        let mut has_exp = false;
        while let Some(c) = self.cur.peek() {
            match c {
                '0'..='9' => {
                    s.push(c);
                    self.cur.bump();
                }
                '.' if !has_dot && !has_exp => match self.cur.peek2() {
                    Some(n) if n.is_ascii_digit() => {
                        has_dot = true;
                        s.push('.');
                        self.cur.bump();
                    }
                    _ => break,
                },
                'e' | 'E' if !has_exp && !s.is_empty() => {
                    has_exp = true;
                    s.push(c);
                    self.cur.bump();
                    if matches!(self.cur.peek(), Some('+') | Some('-')) {
                        s.push(self.cur.bump().expect("peeked"));
                    }
                }
                _ => break,
            }
        }
        if s.is_empty() || !s.bytes().any(|b| b.is_ascii_digit()) {
            return Err(self.cur.error("expected numeric literal"));
        }
        let dt = if has_exp {
            xsd::DOUBLE
        } else if has_dot {
            xsd::DECIMAL
        } else {
            xsd::INTEGER
        };
        Ok(Term::Literal(Literal::typed(s, dt)))
    }

    fn apply_cardinality(&mut self, e: ShapeExpr) -> Result<ShapeExpr, ParseError> {
        self.cur.skip_ws_and_comments();
        Ok(match self.cur.peek() {
            Some('*') => {
                self.cur.bump();
                ShapeExpr::star(e)
            }
            Some('+') => {
                self.cur.bump();
                ShapeExpr::plus(e)
            }
            Some('?') => {
                self.cur.bump();
                ShapeExpr::opt(e)
            }
            Some('{') => {
                self.cur.bump();
                self.cur.skip_ws_and_comments();
                let m = self.unsigned()?;
                self.cur.skip_ws_and_comments();
                let bounds = if self.cur.eat(',') {
                    self.cur.skip_ws_and_comments();
                    if self.cur.eat('*') || self.cur.peek() == Some('}') {
                        (m, None)
                    } else {
                        let n = self.unsigned()?;
                        if n < m {
                            return Err(self.cur.error(format!("invalid bounds {{{m},{n}}}")));
                        }
                        (m, Some(n))
                    }
                } else {
                    (m, Some(m))
                };
                self.cur.skip_ws_and_comments();
                if !self.cur.eat('}') {
                    return Err(self.cur.error("expected '}' closing cardinality"));
                }
                ShapeExpr::repeat(e, bounds.0, bounds.1)
            }
            _ => e,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shapex_rdf::vocab::foaf;

    fn person_schema() -> Schema {
        parse(
            r#"
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>

            <Person> {
              foaf:age xsd:integer
              , foaf:name xsd:string+
              , foaf:knows @<Person>*
            }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn paper_example_1_parses() {
        let s = person_schema();
        assert_eq!(s.len(), 1);
        let e = s.get(&"Person".into()).unwrap();
        // age ‖ (name+ ‖ knows*)
        let ShapeExpr::And(age, rest) = e else {
            panic!("expected And, got {e:?}");
        };
        let ShapeExpr::Arc(age) = &**age else {
            panic!("expected Arc");
        };
        assert!(age.predicates.contains(foaf::AGE));
        assert!(matches!(
            &age.object,
            ObjectConstraint::Value(NodeConstraint::Datatype(dt)) if &**dt == xsd::INTEGER
        ));
        let ShapeExpr::And(name, knows) = &**rest else {
            panic!("expected And");
        };
        assert!(matches!(&**name, ShapeExpr::Plus(_)));
        let ShapeExpr::Star(knows) = &**knows else {
            panic!("expected Star");
        };
        let ShapeExpr::Arc(knows) = &**knows else {
            panic!("expected Arc");
        };
        assert!(matches!(
            &knows.object,
            ObjectConstraint::Ref(l) if l.as_str() == "Person"
        ));
    }

    #[test]
    fn start_directive() {
        let s = parse("PREFIX e: <http://e/>\nstart = @<S>\n<S> { e:p . }").unwrap();
        assert_eq!(s.start().unwrap().as_str(), "S");
        assert!(s.check_references().is_ok());
    }

    #[test]
    fn empty_shape_is_epsilon() {
        let s = parse("<S> { }").unwrap();
        assert_eq!(s.get(&"S".into()), Some(&ShapeExpr::Epsilon));
    }

    #[test]
    fn alternatives_and_groups() {
        let s = parse(
            r#"
            PREFIX e: <http://e/>
            <S> { (e:a . , e:b .) | e:c . }
            "#,
        )
        .unwrap();
        let e = s.get(&"S".into()).unwrap();
        let ShapeExpr::Or(l, r) = e else {
            panic!("expected Or, got {e:?}")
        };
        assert!(matches!(**l, ShapeExpr::And(_, _)));
        assert!(matches!(**r, ShapeExpr::Arc(_)));
    }

    #[test]
    fn group_cardinality() {
        let s = parse("PREFIX e: <http://e/>\n<S> { (e:a . , e:b .)+ }").unwrap();
        assert!(matches!(s.get(&"S".into()).unwrap(), ShapeExpr::Plus(_)));
    }

    #[test]
    fn cardinalities() {
        let s = parse(
            r#"
            PREFIX e: <http://e/>
            <S> { e:a .{2} , e:b .{1,3} , e:c .{2,} , e:d .{0,*} }
            "#,
        )
        .unwrap();
        let mut repeats = Vec::new();
        fn walk(e: &ShapeExpr, out: &mut Vec<(u32, Option<u32>)>) {
            match e {
                ShapeExpr::Repeat(_, m, n) => out.push((*m, *n)),
                ShapeExpr::And(a, b) | ShapeExpr::Or(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                _ => {}
            }
        }
        walk(s.get(&"S".into()).unwrap(), &mut repeats);
        assert_eq!(
            repeats,
            vec![(2, Some(2)), (1, Some(3)), (2, None), (0, None)]
        );
    }

    #[test]
    fn node_kinds_parse() {
        let s =
            parse("PREFIX e: <http://e/>\n<S> { e:a IRI, e:b BNODE, e:c LITERAL, e:d NONLITERAL }")
                .unwrap();
        let mut kinds = Vec::new();
        s.get(&"S".into()).unwrap().visit_arcs(&mut |arc| {
            if let ObjectConstraint::Value(NodeConstraint::Kind(k)) = &arc.object {
                kinds.push(*k);
            }
        });
        assert_eq!(
            kinds,
            vec![
                NodeKind::Iri,
                NodeKind::BNode,
                NodeKind::Literal,
                NodeKind::NonLiteral
            ]
        );
    }

    #[test]
    fn value_sets_parse() {
        let s = parse(
            r#"
            PREFIX e: <http://e/>
            <S> { e:p [1 2 "x" "tag"@en e:v <http://full/iri> e:stem~ @fr @de~ true] }
            "#,
        )
        .unwrap();
        let mut n = 0;
        s.get(&"S".into()).unwrap().visit_arcs(&mut |arc| {
            let ObjectConstraint::Value(NodeConstraint::ValueSet(vs)) = &arc.object else {
                panic!("expected value set");
            };
            n = vs.len();
            assert!(
                matches!(&vs[0], ValueSetValue::Term(Term::Literal(l)) if l.lexical_form() == "1")
            );
            assert!(matches!(&vs[6], ValueSetValue::IriStem(s) if &**s == "http://e/stem"));
            assert!(matches!(&vs[7], ValueSetValue::Language(t) if &**t == "fr"));
            assert!(matches!(&vs[8], ValueSetValue::LanguageStem(t) if &**t == "de"));
        });
        assert_eq!(n, 10);
    }

    #[test]
    fn facets_parse() {
        let s = parse(
            r#"
            PREFIX e: <http://e/>
            PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
            <S> {
              e:age xsd:integer MININCLUSIVE 0 MAXEXCLUSIVE 150,
              e:name LITERAL MINLENGTH 1 MAXLENGTH 64,
              e:code PATTERN "[A-Z]{3}\\d+",
              e:exact LENGTH 5
            }
            "#,
        )
        .unwrap();
        let mut found_pattern = false;
        let mut found_bounds = false;
        s.get(&"S".into()).unwrap().visit_arcs(&mut |arc| {
            if let ObjectConstraint::Value(c) = &arc.object {
                match c {
                    NodeConstraint::AllOf(cs)
                        if cs.iter().any(|c| {
                            matches!(c, NodeConstraint::Facet(Facet::MinInclusive(_)))
                        }) =>
                    {
                        found_bounds = true;
                    }
                    NodeConstraint::Facet(Facet::Pattern(p)) => {
                        assert_eq!(&**p, "[A-Z]{3}\\d+");
                        found_pattern = true;
                    }
                    _ => {}
                }
            }
        });
        assert!(found_bounds);
        assert!(found_pattern);
    }

    #[test]
    fn inverse_and_not_extensions() {
        let s = parse("PREFIX e: <http://e/>\n<S> { ^e:memberOf IRI, e:status NOT [\"closed\"] }")
            .unwrap();
        let mut inverse = false;
        let mut negated = false;
        s.get(&"S".into()).unwrap().visit_arcs(&mut |arc| {
            if arc.inverse {
                inverse = true;
            }
            if matches!(&arc.object, ObjectConstraint::Value(NodeConstraint::Not(_))) {
                negated = true;
            }
        });
        assert!(inverse);
        assert!(negated);
    }

    #[test]
    fn a_keyword_and_wildcards() {
        let s = parse("PREFIX e: <http://e/>\n<S> { a [e:T], . . }").unwrap();
        let mut saw_type = false;
        let mut saw_any = false;
        s.get(&"S".into()).unwrap().visit_arcs(&mut |arc| {
            if arc.predicates.contains(rdf::TYPE) {
                saw_type = true;
            }
            if arc.predicates == PredicateSet::Any {
                saw_any = true;
            }
        });
        assert!(saw_type);
        assert!(saw_any);
    }

    #[test]
    fn semicolon_separator_accepted() {
        let s = parse("PREFIX e: <http://e/>\n<S> { e:a . ; e:b . ; }").unwrap();
        assert!(matches!(s.get(&"S".into()).unwrap(), ShapeExpr::And(_, _)));
    }

    #[test]
    fn prefixed_shape_labels() {
        let s = parse("PREFIX e: <http://e/>\n e:S { e:p @e:S } ").unwrap();
        assert!(s.get(&"http://e/S".into()).is_some());
        assert!(s.check_references().is_ok());
    }

    #[test]
    fn recursive_schema_example_13() {
        // p ↦ a→1 ‖ b→{1,2}+ ‖ c→@p*
        let s = parse(
            r#"
            PREFIX e: <http://e/>
            <p> { e:a [1], e:b [1 2]+, e:c @<p>* }
            "#,
        )
        .unwrap();
        assert!(s.is_recursive(&"p".into()));
    }

    #[test]
    fn errors_report_position() {
        let err = parse("PREFIX e: <http://e/>\n<S> { e:p }").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(parse("<S> { undefined:p . }").is_err());
        assert!(parse("<S> e:p . }").is_err());
        assert!(parse("<S> { e:p . ").is_err());
    }

    #[test]
    fn duplicate_shape_is_error() {
        assert!(parse("<S> {} <S> {}").is_err());
    }

    #[test]
    fn invalid_cardinality_bounds_error() {
        assert!(parse("PREFIX e: <http://e/>\n<S> { e:p .{3,1} }").is_err());
    }

    #[test]
    fn string_literal_datatype_in_value_set() {
        let s = parse(
            "PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\nPREFIX e: <http://e/>\n<S> { e:p [\"5\"^^xsd:integer] }",
        )
        .unwrap();
        s.get(&"S".into()).unwrap().visit_arcs(&mut |arc| {
            let ObjectConstraint::Value(NodeConstraint::ValueSet(vs)) = &arc.object else {
                panic!();
            };
            assert!(
                matches!(&vs[0], ValueSetValue::Term(Term::Literal(l)) if l.datatype() == xsd::INTEGER)
            );
        });
    }
}

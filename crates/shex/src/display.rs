//! Pretty-printing schemas and shape expressions back to ShExC.
//!
//! The printer emits a canonical form that re-parses to an equal schema
//! (round-trip property-tested in the integration suite).

use std::fmt::Write as _;

use shapex_rdf::term::Term;
use shapex_rdf::vocab::rdf;
use shapex_rdf::xsd::Numeric;

use crate::ast::{ArcConstraint, ObjectConstraint, PredicateSet, ShapeExpr};
use crate::constraint::{Facet, NodeConstraint, ValueSetValue};
use crate::schema::Schema;

/// Renders a whole schema in ShExC.
pub fn schema_to_shexc(schema: &Schema) -> String {
    let mut out = String::new();
    for (name, ns) in &schema.prefixes {
        let _ = writeln!(out, "PREFIX {name}: <{ns}>");
    }
    if !schema.prefixes.is_empty() {
        out.push('\n');
    }
    if let Some(start) = schema.start() {
        let _ = writeln!(out, "start = @{start}\n");
    }
    for (label, expr) in schema.iter() {
        if *expr == ShapeExpr::Epsilon {
            // ε at top level is the empty shape `{ }`.
            let _ = writeln!(out, "{label} {{ }}\n");
        } else {
            let _ = writeln!(out, "{label} {{\n  {}\n}}\n", expr_to_shexc(expr));
        }
    }
    out
}

/// Renders one shape expression in ShExC (without the surrounding braces).
pub fn expr_to_shexc(expr: &ShapeExpr) -> String {
    render(expr, Prec::Or)
}

/// Precedence levels: `|` binds looser than `,`, which binds looser than
/// cardinality suffixes.
#[derive(PartialEq, PartialOrd, Clone, Copy)]
enum Prec {
    Or,
    And,
    Unary,
}

fn render(expr: &ShapeExpr, ctx: Prec) -> String {
    match expr {
        // ∅ and ε have no ShExC surface syntax; render as comments-free
        // synthetic forms that the parser understands where possible.
        // ε inside a larger expression renders as an empty group.
        ShapeExpr::Empty => "(∅)".to_string(),
        ShapeExpr::Epsilon => "()".to_string(),
        ShapeExpr::Arc(arc) => arc_to_shexc(arc),
        ShapeExpr::Star(e) => format!("{}*", suffix_operand(e)),
        ShapeExpr::Plus(e) => format!("{}+", suffix_operand(e)),
        ShapeExpr::Opt(e) => format!("{}?", suffix_operand(e)),
        ShapeExpr::Repeat(e, m, None) => format!("{}{{{m},}}", suffix_operand(e)),
        ShapeExpr::Repeat(e, m, Some(n)) => {
            if m == n {
                format!("{}{{{m}}}", suffix_operand(e))
            } else {
                format!("{}{{{m},{n}}}", suffix_operand(e))
            }
        }
        ShapeExpr::And(a, b) => {
            // The parser folds `x, y, z` right-nested, so a left-nested
            // And must be parenthesised to survive the round trip.
            let s = format!("{}, {}", render(a, Prec::Unary), render(b, Prec::And));
            if ctx > Prec::And {
                format!("({s})")
            } else {
                s
            }
        }
        ShapeExpr::Or(a, b) => {
            let s = format!("{} | {}", render(a, Prec::And), render(b, Prec::Or));
            if ctx > Prec::Or {
                format!("({s})")
            } else {
                s
            }
        }
    }
}

/// Renders the operand of a cardinality suffix, parenthesising anything
/// that itself ends in (or contains) an operator — `(e*)*`, not `e**`.
fn suffix_operand(e: &ShapeExpr) -> String {
    match e {
        ShapeExpr::Arc(_) | ShapeExpr::Epsilon | ShapeExpr::Empty => render(e, Prec::Unary),
        _ => format!("({})", render(e, Prec::Or)),
    }
}

fn arc_to_shexc(arc: &ArcConstraint) -> String {
    let inv = if arc.inverse { "^" } else { "" };
    let pred = match &arc.predicates {
        PredicateSet::Any => ".".to_string(),
        PredicateSet::Iris(set) if set.len() == 1 => {
            if &*set[0] == rdf::TYPE {
                "a".to_string()
            } else {
                format!("<{}>", set[0])
            }
        }
        PredicateSet::Iris(set) => {
            // No standard ShExC syntax for predicate sets; render as a
            // parenthesised list (accepted back by our parser as sugar is
            // not required — this form is informational).
            let items: Vec<_> = set.iter().map(|i| format!("<{i}>")).collect();
            format!("({})", items.join(" "))
        }
    };
    format!("{inv}{pred} {}", object_to_shexc(&arc.object))
}

fn object_to_shexc(obj: &ObjectConstraint) -> String {
    match obj {
        ObjectConstraint::Ref(l) => format!("@{l}"),
        ObjectConstraint::Value(c) => constraint_to_shexc(c),
    }
}

/// Renders a node constraint in ShExC.
pub fn constraint_to_shexc(c: &NodeConstraint) -> String {
    match c {
        NodeConstraint::Any => ".".to_string(),
        NodeConstraint::Kind(k) => k.to_string(),
        NodeConstraint::Datatype(dt) => format!("<{dt}>"),
        NodeConstraint::ValueSet(vs) => {
            let items: Vec<_> = vs.iter().map(value_to_shexc).collect();
            format!("[{}]", items.join(" "))
        }
        NodeConstraint::Facet(f) => facet_to_shexc(f),
        NodeConstraint::AllOf(cs) => cs
            .iter()
            .map(constraint_to_shexc)
            .collect::<Vec<_>>()
            .join(" "),
        // Diagnostic rendering only; the ShExC parser does not read this
        // back (ShEx spells value disjunction as shape OR).
        NodeConstraint::AnyOf(cs) => format!(
            "({})",
            cs.iter()
                .map(constraint_to_shexc)
                .collect::<Vec<_>>()
                .join(" OR ")
        ),
        NodeConstraint::Not(inner) => format!("NOT {}", constraint_to_shexc(inner)),
    }
}

fn value_to_shexc(v: &ValueSetValue) -> String {
    match v {
        ValueSetValue::Term(Term::Iri(iri)) => iri.to_string(),
        ValueSetValue::Term(t) => t.to_string(),
        ValueSetValue::IriStem(s) => format!("<{s}>~"),
        ValueSetValue::Language(t) => format!("@{t}"),
        ValueSetValue::LanguageStem(t) => format!("@{t}~"),
    }
}

fn facet_to_shexc(f: &Facet) -> String {
    fn num(n: &Numeric) -> String {
        match n {
            Numeric::Decimal { unscaled, scale: 0 } => unscaled.to_string(),
            Numeric::Decimal { unscaled, scale } => {
                let neg = *unscaled < 0;
                let digits = unscaled.unsigned_abs().to_string();
                let scale = *scale as usize;
                let (int, frac) = if digits.len() > scale {
                    let (i, f) = digits.split_at(digits.len() - scale);
                    (i.to_string(), f.to_string())
                } else {
                    ("0".to_string(), format!("{digits:0>scale$}"))
                };
                format!("{}{int}.{frac}", if neg { "-" } else { "" })
            }
            Numeric::Double(d) => format!("{d}"),
        }
    }
    match f {
        Facet::MinInclusive(n) => format!("MININCLUSIVE {}", num(n)),
        Facet::MinExclusive(n) => format!("MINEXCLUSIVE {}", num(n)),
        Facet::MaxInclusive(n) => format!("MAXINCLUSIVE {}", num(n)),
        Facet::MaxExclusive(n) => format!("MAXEXCLUSIVE {}", num(n)),
        Facet::Length(n) => format!("LENGTH {n}"),
        Facet::MinLength(n) => format!("MINLENGTH {n}"),
        Facet::MaxLength(n) => format!("MAXLENGTH {n}"),
        Facet::Pattern(p) => format!(
            "PATTERN \"{}\"",
            p.replace('\\', "\\\\").replace('"', "\\\"")
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shexc;

    #[test]
    fn example_1_roundtrips() {
        let src = r#"
            PREFIX foaf: <http://xmlns.com/foaf/0.1/>
            PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
            <Person> {
              foaf:age xsd:integer
              , foaf:name xsd:string+
              , foaf:knows @<Person>*
            }
        "#;
        let s1 = shexc::parse(src).unwrap();
        let printed = schema_to_shexc(&s1);
        let s2 = shexc::parse(&printed).unwrap();
        assert_eq!(
            s1.get(&"Person".into()).unwrap(),
            s2.get(&"Person".into()).unwrap(),
            "printed form:\n{printed}"
        );
    }

    #[test]
    fn cardinalities_roundtrip() {
        let src = "PREFIX e: <http://e/>\n<S> { e:a .{2}, e:b .{1,3}, e:c .{2,}, e:d .?, e:e .+ }";
        let s1 = shexc::parse(src).unwrap();
        let s2 = shexc::parse(&schema_to_shexc(&s1)).unwrap();
        assert_eq!(s1.get(&"S".into()), s2.get(&"S".into()));
    }

    #[test]
    fn value_sets_and_facets_roundtrip() {
        let src = r#"
            PREFIX e: <http://e/>
            PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
            <S> {
              e:v [1 2 "x"@en <http://e/ns>~ @de~],
              e:n xsd:integer MININCLUSIVE 0 MAXEXCLUSIVE 150,
              e:p PATTERN "[a-z]+\\d",
              e:k NOT LITERAL
            }
        "#;
        let s1 = shexc::parse(src).unwrap();
        let printed = schema_to_shexc(&s1);
        let s2 = shexc::parse(&printed).unwrap();
        assert_eq!(
            s1.get(&"S".into()),
            s2.get(&"S".into()),
            "printed form:\n{printed}"
        );
    }

    #[test]
    fn or_inside_and_parenthesised() {
        let src = "PREFIX e: <http://e/>\n<S> { (e:a . | e:b .), e:c . }";
        let s1 = shexc::parse(src).unwrap();
        let printed = schema_to_shexc(&s1);
        let s2 = shexc::parse(&printed).unwrap();
        assert_eq!(s1.get(&"S".into()), s2.get(&"S".into()));
    }

    #[test]
    fn inverse_arcs_roundtrip() {
        let src = "PREFIX e: <http://e/>\n<S> { ^e:member IRI }";
        let s1 = shexc::parse(src).unwrap();
        let s2 = shexc::parse(&schema_to_shexc(&s1)).unwrap();
        assert_eq!(s1.get(&"S".into()), s2.get(&"S".into()));
    }

    #[test]
    fn decimal_facet_rendering() {
        let f = Facet::MinInclusive(Numeric::Decimal {
            unscaled: 25,
            scale: 1,
        });
        assert_eq!(facet_to_shexc(&f), "MININCLUSIVE 2.5");
        let f = Facet::MaxInclusive(Numeric::Decimal {
            unscaled: -5,
            scale: 2,
        });
        assert_eq!(facet_to_shexc(&f), "MAXINCLUSIVE -0.05");
    }

    #[test]
    fn start_is_printed() {
        let src = "PREFIX e: <http://e/>\nstart = @<S>\n<S> { e:p . }";
        let s1 = shexc::parse(src).unwrap();
        let printed = schema_to_shexc(&s1);
        assert!(printed.contains("start = @<S>"));
        let s2 = shexc::parse(&printed).unwrap();
        assert_eq!(s2.start().unwrap().as_str(), "S");
    }
}

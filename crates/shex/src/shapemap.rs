//! Shape maps: the standard interface for requesting ShEx validation —
//! a list of `node@<Shape>` associations to check. This is how published
//! ShEx test suites and validators (shex.js, PyShEx, shex-scala — the
//! implementations contemporaneous with the paper) phrase validation
//! goals.
//!
//! Supported syntax, one association per entry, comma- or
//! newline-separated:
//!
//! ```text
//! <http://example.org/john>@<Person>,
//! <http://example.org/mary>@!<Person>     # '!' = expected NOT to conform
//! ex:bob@ex:Employee                      # prefixed names (with PREFIX)
//! "lit"@<Valued>                          # literals can be focus nodes
//! _:b0@<Anon>
//! ```

use shapex_rdf::parser::{decode_string_escape, Cursor, ParseError};
use shapex_rdf::term::{Literal, Term};
use shapex_rdf::vocab::xsd;
use std::collections::HashMap;

use crate::ast::ShapeLabel;

/// One `node@shape` association, possibly negated (`@!`).
#[derive(Debug, Clone, PartialEq)]
pub struct Association {
    /// The focus node to validate.
    pub node: Term,
    /// The shape to validate against.
    pub shape: ShapeLabel,
    /// `false` for `@!<Shape>`: the node is expected *not* to conform.
    pub expected: bool,
}

/// A parsed shape map.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShapeMap {
    /// The associations, in document order.
    pub associations: Vec<Association>,
}

impl ShapeMap {
    /// Number of associations.
    pub fn len(&self) -> usize {
        self.associations.len()
    }

    /// True when the map has no associations.
    pub fn is_empty(&self) -> bool {
        self.associations.is_empty()
    }

    /// Iterates over the associations in order.
    pub fn iter(&self) -> impl Iterator<Item = &Association> {
        self.associations.iter()
    }
}

/// Parses a shape map document.
///
/// ```
/// let map = shapex_shex::shapemap::parse(
///     "<http://e/john>@<Person>, <http://e/mary>@!<Person>").unwrap();
/// assert_eq!(map.len(), 2);
/// assert!(!map.associations[1].expected);
/// ```
pub fn parse(input: &str) -> Result<ShapeMap, ParseError> {
    let mut p = MapParser {
        cur: Cursor::new(input),
        prefixes: HashMap::new(),
    };
    p.run()
}

struct MapParser<'a> {
    cur: Cursor<'a>,
    prefixes: HashMap<String, String>,
}

impl MapParser<'_> {
    fn run(&mut self) -> Result<ShapeMap, ParseError> {
        let mut map = ShapeMap::default();
        loop {
            self.cur.skip_ws_and_comments();
            if self.cur.at_end() {
                return Ok(map);
            }
            if self.cur.starts_with_keyword_ci("PREFIX") {
                self.cur.eat_str_ci("PREFIX");
                self.cur.skip_ws_and_comments();
                let name = self.pname_ns()?;
                self.cur.skip_ws_and_comments();
                let iri = self.iriref()?;
                self.prefixes.insert(name, iri);
                continue;
            }
            let node = self.node()?;
            if !self.cur.eat('@') {
                return Err(self.cur.error("expected '@' after focus node"));
            }
            let expected = !self.cur.eat('!');
            let shape = self.shape_label()?;
            map.associations.push(Association {
                node,
                shape,
                expected,
            });
            self.cur.skip_ws_and_comments();
            self.cur.eat(','); // optional separator
        }
    }

    fn node(&mut self) -> Result<Term, ParseError> {
        self.cur.skip_ws_and_comments();
        match self.cur.peek() {
            Some('<') => Ok(Term::iri(self.iriref()?)),
            Some('_') => {
                if !self.cur.eat_str("_:") {
                    return Err(self.cur.error("expected blank node label"));
                }
                let mut label = String::new();
                while let Some(c) = self.cur.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '-' {
                        label.push(c);
                        self.cur.bump();
                    } else {
                        break;
                    }
                }
                if label.is_empty() {
                    return Err(self.cur.error("empty blank node label"));
                }
                Ok(Term::blank(label))
            }
            Some('"') | Some('\'') => self.literal(),
            Some(c) if c.is_ascii_digit() || c == '-' || c == '+' => self.number(),
            Some(_) => Ok(Term::iri(self.prefixed_name()?)),
            None => Err(self.cur.error("expected focus node")),
        }
    }

    fn shape_label(&mut self) -> Result<ShapeLabel, ParseError> {
        self.cur.skip_ws_and_comments();
        if self.cur.peek() == Some('<') {
            return Ok(ShapeLabel::new(self.iriref()?));
        }
        Ok(ShapeLabel::new(self.prefixed_name()?))
    }

    fn iriref(&mut self) -> Result<String, ParseError> {
        if !self.cur.eat('<') {
            return Err(self.cur.error("expected '<'"));
        }
        let mut iri = String::new();
        loop {
            match self.cur.bump() {
                None => return Err(self.cur.error("unterminated IRI")),
                Some('>') => return Ok(iri),
                Some(c) if c.is_whitespace() => return Err(self.cur.error("whitespace in IRI")),
                Some(c) => iri.push(c),
            }
        }
    }

    fn pname_ns(&mut self) -> Result<String, ParseError> {
        let mut name = String::new();
        while let Some(c) = self.cur.peek() {
            if c == ':' {
                self.cur.bump();
                return Ok(name);
            }
            if c.is_alphanumeric() || c == '_' || c == '-' {
                name.push(c);
                self.cur.bump();
            } else {
                break;
            }
        }
        Err(self.cur.error("expected ':'"))
    }

    fn prefixed_name(&mut self) -> Result<String, ParseError> {
        let prefix = {
            let mut p = String::new();
            while let Some(c) = self.cur.peek() {
                if c.is_alphanumeric() || c == '_' || c == '-' {
                    p.push(c);
                    self.cur.bump();
                } else {
                    break;
                }
            }
            p
        };
        if !self.cur.eat(':') {
            return Err(self
                .cur
                .error(format!("expected ':' after prefix '{prefix}'")));
        }
        let ns = self
            .prefixes
            .get(&prefix)
            .ok_or_else(|| self.cur.error(format!("undefined prefix '{prefix}:'")))?;
        let mut iri = ns.clone();
        while let Some(c) = self.cur.peek() {
            if c.is_alphanumeric() || matches!(c, '_' | '-' | '%') {
                iri.push(c);
                self.cur.bump();
            } else {
                break;
            }
        }
        Ok(iri)
    }

    fn literal(&mut self) -> Result<Term, ParseError> {
        let quote = self.cur.bump().expect("caller checked quote");
        let mut s = String::new();
        loop {
            match self.cur.bump() {
                None => return Err(self.cur.error("unterminated string literal")),
                Some('\\') => s.push(decode_string_escape(&mut self.cur)?),
                Some(c) if c == quote => break,
                Some(c) => s.push(c),
            }
        }
        // NOTE: `@` introduces the shape here, so language-tagged focus
        // literals use the explicit `^^`-less form only; datatypes are
        // supported.
        if self.cur.eat_str("^^") {
            let dt = if self.cur.peek() == Some('<') {
                self.iriref()?
            } else {
                self.prefixed_name()?
            };
            return Ok(Term::Literal(Literal::typed(s, dt)));
        }
        Ok(Term::Literal(Literal::string(s)))
    }

    fn number(&mut self) -> Result<Term, ParseError> {
        let mut s = String::new();
        if matches!(self.cur.peek(), Some('+') | Some('-')) {
            s.push(self.cur.bump().expect("peeked"));
        }
        let mut has_dot = false;
        while let Some(c) = self.cur.peek() {
            if c.is_ascii_digit() {
                s.push(c);
                self.cur.bump();
            } else if c == '.' && !has_dot && self.cur.peek2().is_some_and(|n| n.is_ascii_digit()) {
                has_dot = true;
                s.push('.');
                self.cur.bump();
            } else {
                break;
            }
        }
        if !s.bytes().any(|b| b.is_ascii_digit()) {
            return Err(self.cur.error("expected number"));
        }
        let dt = if has_dot { xsd::DECIMAL } else { xsd::INTEGER };
        Ok(Term::Literal(Literal::typed(s, dt)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iri_associations() {
        let m = parse("<http://e/john>@<Person>,\n<http://e/mary>@!<Person>").unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m.associations[0].node, Term::iri("http://e/john"));
        assert_eq!(m.associations[0].shape.as_str(), "Person");
        assert!(m.associations[0].expected);
        assert!(!m.associations[1].expected);
    }

    #[test]
    fn prefixed_names() {
        let m = parse("PREFIX ex: <http://e/>\nex:bob@ex:Employee").unwrap();
        assert_eq!(m.associations[0].node, Term::iri("http://e/bob"));
        assert_eq!(m.associations[0].shape.as_str(), "http://e/Employee");
    }

    #[test]
    fn literal_and_blank_focus_nodes() {
        let m = parse("\"text\"@<S>, _:b0@<T>, 42@<N>, 4.5@<D>").unwrap();
        assert_eq!(m.len(), 4);
        assert_eq!(
            m.associations[0].node,
            Term::Literal(Literal::string("text"))
        );
        assert_eq!(m.associations[1].node, Term::blank("b0"));
        assert_eq!(
            m.associations[2].node,
            Term::Literal(Literal::typed("42", xsd::INTEGER))
        );
        assert_eq!(
            m.associations[3].node,
            Term::Literal(Literal::typed("4.5", xsd::DECIMAL))
        );
    }

    #[test]
    fn typed_literal_focus() {
        let m =
            parse("PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n\"5\"^^xsd:byte@<S>").unwrap();
        assert_eq!(
            m.associations[0].node,
            Term::Literal(Literal::typed("5", xsd::BYTE))
        );
    }

    #[test]
    fn comments_and_trailing_commas() {
        let m = parse("# heading\n<http://e/a>@<S>, # why\n<http://e/b>@<S>,").unwrap();
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn empty_map_is_ok() {
        assert!(parse("").unwrap().is_empty());
        assert!(parse("  # only comments\n").unwrap().is_empty());
    }

    #[test]
    fn errors() {
        assert!(parse("<http://e/a><S>").is_err()); // missing @
        assert!(parse("<http://e/a>@").is_err());
        assert!(parse("ex:a@<S>").is_err()); // undefined prefix
        assert!(parse("<http://e/a").is_err());
        assert!(parse("@<S>").is_err());
    }
}

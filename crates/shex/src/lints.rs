//! Schema lints: usage warnings plus *exact* per-shape satisfiability
//! verdicts.
//!
//! Earlier versions answered "can this shape ever be satisfied?" with
//! syntax checks, and got it wrong in both directions: `∅` under `Or` was
//! flagged although `e | ∅ ≡ e` conforms fine, while compositionally-dead
//! shapes (contradictory facets under `AllOf`, an `[]`-value arc forced by
//! `‖` at depth, `{2,}` over an empty language) sailed through silently.
//! The verdicts here are now computed by [`satisfiability`] — a greatest
//! fixpoint over the schema with the tri-state node-constraint checker
//! from [`crate::sat`] at the leaves — so [`Lint::Unsatisfiable`] is only
//! emitted when the shape's language is *provably* empty, and satisfiable
//! shapes are never flagged.
//!
//! The fixpoint is *greatest* (coinductive) to match the validation
//! engine's semantics: `<A> { e:p @<A> }` is satisfiable — a cyclic graph
//! `x →p x` conforms — so recursion through references must default to
//! "satisfiable until proven otherwise", not the inductive opposite.

use std::collections::HashMap;
use std::fmt;

use crate::ast::{ObjectConstraint, PredicateSet, ShapeExpr, ShapeLabel};
use crate::constraint::NodeConstraint;
use crate::sat::{constraint_sat, Sat3};
use crate::schema::Schema;
use crate::strre::Regex;

/// One warning about a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lint {
    /// The shape is neither the start shape nor referenced by any other
    /// shape — validators will never reach it implicitly.
    UnusedShape(String),
    /// A start shape is declared but this shape cannot be reached from it.
    UnreachableFromStart(String),
    /// The shape's language is provably empty: no graph conforms. Exact —
    /// backed by the [`satisfiability`] fixpoint, never by syntax alone.
    Unsatisfiable(String),
    /// An arc's object constraint is provably unsatisfiable (contradictory
    /// facets, `X` conjoined with `NOT X`, incompatible kinds, ...): the
    /// arc can never fire. The shape as a whole may still be satisfiable
    /// (e.g. the arc sits under `|` or `*`).
    UnsatisfiableConstraint(String),
    /// An arc carries an empty value set `[]` — no object can ever match.
    EmptyValueSet(String),
    /// A `PATTERN` facet whose regex does not parse: it will match
    /// nothing.
    InvalidPattern {
        /// The shape holding the facet.
        shape: String,
        /// The offending pattern source.
        pattern: String,
        /// The regex parser's message.
        error: String,
    },
    /// A cardinality `{0,0}` — equivalent to writing nothing.
    VacuousCardinality(String),
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lint::UnusedShape(s) => {
                write!(
                    f,
                    "shape <{s}> is never referenced and is not the start shape"
                )
            }
            Lint::UnreachableFromStart(s) => {
                write!(f, "shape <{s}> is unreachable from the start shape")
            }
            Lint::Unsatisfiable(s) => {
                write!(f, "shape <{s}> is unsatisfiable: no graph can conform")
            }
            Lint::UnsatisfiableConstraint(s) => {
                write!(
                    f,
                    "shape <{s}> has an arc whose object constraint no term satisfies"
                )
            }
            Lint::EmptyValueSet(s) => {
                write!(
                    f,
                    "shape <{s}> has an empty value set [] — no object can match"
                )
            }
            Lint::InvalidPattern {
                shape,
                pattern,
                error,
            } => write!(
                f,
                "shape <{shape}> has an invalid PATTERN {pattern:?}: {error}"
            ),
            Lint::VacuousCardinality(s) => {
                write!(
                    f,
                    "shape <{s}> has a {{0,0}} cardinality — the expression is inert"
                )
            }
        }
    }
}

/// Exact satisfiability verdict for one shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Satisfiability {
    /// The shape's language is provably empty.
    Unsatisfiable,
    /// A conforming graph provably exists.
    ProvenSatisfiable,
    /// The checker could not decide (e.g. a `PATTERN` whose emptiness is
    /// unknown feeds a mandatory arc). Conservative callers treat this as
    /// satisfiable.
    Undetermined,
}

/// Per-shape satisfiability, in schema declaration order: the greatest
/// fixpoint of the emptiness equations over the tri-state lattice.
///
/// Rules (with `⊓` = min, `⊔` = max on `Unsat < Unknown < Sat`):
///
/// ```text
/// sat(∅)        = Unsat          sat(ε)      = Sat
/// sat(e*)       = Sat            sat(e?)     = Sat          (both contain ε)
/// sat(e+)       = sat(e)
/// sat(e{m,n})   = Unsat if n<m;  Sat if m=0;  sat(e) otherwise
/// sat(vp → vo)  = Unsat if vp=∅; constraint_sat(vo) for value objects;
///                 sat(λ) for @λ references
/// sat(e1 ‖ e2)  = sat(e1) ⊓ sat(e2)
/// sat(e1 | e2)  = sat(e1) ⊔ sat(e2)
/// ```
///
/// Every shape starts at `Sat` and verdicts only descend, so the
/// iteration terminates; recursion through references lands on the
/// *greatest* fixpoint, matching the engine's coinductive typing
/// (`<A> { e:p @<A> }` is satisfiable via a cyclic graph).
pub fn satisfiability(schema: &Schema) -> Vec<(ShapeLabel, Satisfiability)> {
    let mut state: HashMap<&ShapeLabel, Sat3> = schema.labels().map(|l| (l, Sat3::Sat)).collect();
    // Node-constraint verdicts don't depend on the fixpoint state;
    // memoise them by constraint address across iterations.
    let mut constraint_memo: HashMap<usize, Sat3> = HashMap::new();
    loop {
        let mut changed = false;
        let mut next: HashMap<&ShapeLabel, Sat3> = HashMap::new();
        for (label, expr) in schema.iter() {
            let v = expr_sat(expr, &state, &mut constraint_memo);
            if state.get(label) != Some(&v) {
                changed = true;
            }
            next.insert(label, v);
        }
        state = next;
        if !changed {
            break;
        }
    }
    schema
        .labels()
        .map(|l| {
            let v = match state.get(l) {
                Some(Sat3::Unsat) => Satisfiability::Unsatisfiable,
                Some(Sat3::Sat) => Satisfiability::ProvenSatisfiable,
                _ => Satisfiability::Undetermined,
            };
            (l.clone(), v)
        })
        .collect()
}

fn expr_sat(
    expr: &ShapeExpr,
    state: &HashMap<&ShapeLabel, Sat3>,
    memo: &mut HashMap<usize, Sat3>,
) -> Sat3 {
    match expr {
        ShapeExpr::Empty => Sat3::Unsat,
        ShapeExpr::Epsilon => Sat3::Sat,
        ShapeExpr::Arc(arc) => {
            if matches!(&arc.predicates, PredicateSet::Iris(v) if v.is_empty()) {
                return Sat3::Unsat;
            }
            match &arc.object {
                ObjectConstraint::Value(c) => {
                    let key = c as *const NodeConstraint as usize;
                    *memo.entry(key).or_insert_with(|| constraint_sat(c))
                }
                // Missing labels are a SchemaError elsewhere; stay
                // conservative here rather than claiming emptiness.
                ObjectConstraint::Ref(l) => *state.get(l).unwrap_or(&Sat3::Unknown),
            }
        }
        // `e*` and `e?` always accept the empty bag of triples.
        ShapeExpr::Star(_) | ShapeExpr::Opt(_) => Sat3::Sat,
        ShapeExpr::Plus(e) => expr_sat(e, state, memo),
        ShapeExpr::Repeat(e, m, n) => {
            if n.is_some_and(|n| n < *m) {
                return Sat3::Unsat;
            }
            if *m == 0 {
                return Sat3::Sat;
            }
            expr_sat(e, state, memo)
        }
        ShapeExpr::And(a, b) => expr_sat(a, state, memo).min(expr_sat(b, state, memo)),
        ShapeExpr::Or(a, b) => expr_sat(a, state, memo).max(expr_sat(b, state, memo)),
    }
}

/// Runs every lint over the schema: usage lints, per-constraint lints,
/// and the exact per-shape emptiness verdicts.
pub fn lints(schema: &Schema) -> Vec<Lint> {
    let mut out = Vec::new();
    usage_lints(schema, &mut out);
    for (label, expr) in schema.iter() {
        expr_lints(label, expr, &mut out);
    }
    for (label, verdict) in satisfiability(schema) {
        if verdict == Satisfiability::Unsatisfiable {
            out.push(Lint::Unsatisfiable(label.as_str().to_string()));
        }
    }
    out
}

fn usage_lints(schema: &Schema, out: &mut Vec<Lint>) {
    let referenced: Vec<&ShapeLabel> = schema.iter().flat_map(|(_, e)| e.references()).collect();
    for label in schema.labels() {
        let is_start = schema.start() == Some(label);
        if !is_start && !referenced.contains(&label) && schema.start().is_some() {
            // With a start shape, anything not referenced and not start is
            // dead; without one, every shape is a potential entry point.
            out.push(Lint::UnusedShape(label.as_str().to_string()));
        }
    }
    if let Some(start) = schema.start() {
        let reachable = schema.reachable(start);
        for label in schema.labels() {
            if !reachable.contains(&label) {
                out.push(Lint::UnreachableFromStart(label.as_str().to_string()));
            }
        }
    }
}

fn expr_lints(label: &ShapeLabel, expr: &ShapeExpr, out: &mut Vec<Lint>) {
    let name = || label.as_str().to_string();
    match expr {
        // `∅` on its own is not a lint: whether it kills the shape depends
        // on context (`e | ∅ ≡ e`), and the satisfiability pass decides
        // that exactly.
        ShapeExpr::Empty | ShapeExpr::Epsilon => {}
        ShapeExpr::Arc(arc) => {
            if let ObjectConstraint::Value(c) = &arc.object {
                constraint_lints(label, c, out);
            }
        }
        ShapeExpr::Repeat(e, 0, Some(0)) => {
            out.push(Lint::VacuousCardinality(name()));
            expr_lints(label, e, out);
        }
        ShapeExpr::Star(e) | ShapeExpr::Plus(e) | ShapeExpr::Opt(e) => expr_lints(label, e, out),
        ShapeExpr::Repeat(e, _, _) => expr_lints(label, e, out),
        ShapeExpr::And(a, b) | ShapeExpr::Or(a, b) => {
            expr_lints(label, a, out);
            expr_lints(label, b, out);
        }
    }
}

/// Specific diagnoses first (`[]`, bad `PATTERN`), then the general
/// verdict: if the whole constraint is proven unsatisfiable by
/// [`crate::sat`] and no specific lint already explains why, report it.
/// This subsumes the old ad-hoc kind-contradiction check and catches the
/// cases it missed (contradictory numeric facets, `X ∧ NOT X`).
fn constraint_lints(label: &ShapeLabel, c: &NodeConstraint, out: &mut Vec<Lint>) {
    let before = out.len();
    specific_constraint_lints(label, c, out);
    if out.len() == before && constraint_sat(c) == Sat3::Unsat {
        out.push(Lint::UnsatisfiableConstraint(label.as_str().to_string()));
    }
}

fn specific_constraint_lints(label: &ShapeLabel, c: &NodeConstraint, out: &mut Vec<Lint>) {
    let name = || label.as_str().to_string();
    match c {
        NodeConstraint::ValueSet(vs) if vs.is_empty() => out.push(Lint::EmptyValueSet(name())),
        NodeConstraint::Facet(crate::constraint::Facet::Pattern(p)) => {
            if let Err(error) = Regex::new(p) {
                out.push(Lint::InvalidPattern {
                    shape: name(),
                    pattern: p.to_string(),
                    error,
                });
            }
        }
        NodeConstraint::AllOf(cs) | NodeConstraint::AnyOf(cs) => {
            for inner in cs {
                specific_constraint_lints(label, inner, out);
            }
        }
        NodeConstraint::Not(inner) => specific_constraint_lints(label, inner, out),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ArcConstraint, ShapeExpr};
    use crate::constraint::{Facet, NodeKind};
    use crate::shexc;
    use shapex_rdf::xsd::Numeric;

    fn lint_src(src: &str) -> Vec<Lint> {
        lints(&shexc::parse(src).unwrap())
    }

    fn sat_of(schema: &Schema, label: &str) -> Satisfiability {
        satisfiability(schema)
            .into_iter()
            .find(|(l, _)| l.as_str() == label)
            .map(|(_, v)| v)
            .unwrap()
    }

    #[test]
    fn clean_schema_has_no_lints() {
        let l = lint_src("PREFIX e: <http://e/>\nstart = @<A>\n<A> { e:p @<B>* }\n<B> { e:q . }");
        assert!(l.is_empty(), "{l:?}");
    }

    #[test]
    fn unused_shape_detected() {
        let l = lint_src("PREFIX e: <http://e/>\nstart = @<A>\n<A> { e:p . }\n<Dead> { e:q . }");
        assert!(l.contains(&Lint::UnusedShape("Dead".into())));
        assert!(l.contains(&Lint::UnreachableFromStart("Dead".into())));
    }

    #[test]
    fn no_start_means_no_usage_lints() {
        let l = lint_src("PREFIX e: <http://e/>\n<A> { e:p . }\n<B> { e:q . }");
        assert!(l.is_empty(), "{l:?}");
    }

    #[test]
    fn empty_value_set_detected() {
        let l = lint_src("PREFIX e: <http://e/>\n<A> { e:p [] }");
        assert!(l.contains(&Lint::EmptyValueSet("A".into())));
        // The arc is mandatory, so the whole shape is dead too — and the
        // exact pass proves it.
        assert!(l.contains(&Lint::Unsatisfiable("A".into())));
    }

    #[test]
    fn invalid_pattern_detected() {
        let l = lint_src("PREFIX e: <http://e/>\n<A> { e:p PATTERN \"(unclosed\" }");
        assert!(matches!(&l[0], Lint::InvalidPattern { shape, .. } if shape == "A"));
    }

    #[test]
    fn vacuous_cardinality_detected() {
        let l = lint_src("PREFIX e: <http://e/>\n<A> { e:p .{0,0}, e:q . }");
        assert!(l.contains(&Lint::VacuousCardinality("A".into())));
    }

    #[test]
    fn contradictory_kinds_detected() {
        // `IRI` together with a string facet is fine.
        let l = lint_src(
            "PREFIX e: <http://e/>\nPREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n\
             <A> { e:p IRI MINLENGTH 1 }\n<B> { e:q LITERAL MINLENGTH 1 }",
        );
        assert!(l.is_empty(), "kind+facet is fine: {l:?}");
        // Construct the contradiction through the AST (two kinds cannot be
        // written in one ShExC constraint position).
        let schema = Schema::from_rules([(
            ShapeLabel::new("C"),
            ShapeExpr::arc(ArcConstraint::value(
                "http://e/p",
                NodeConstraint::AllOf(vec![
                    NodeConstraint::Kind(NodeKind::Iri),
                    NodeConstraint::Kind(NodeKind::Literal),
                ]),
            )),
        )])
        .unwrap();
        let l = lints(&schema);
        assert!(
            l.contains(&Lint::UnsatisfiableConstraint("C".into())),
            "{l:?}"
        );
        assert!(l.contains(&Lint::Unsatisfiable("C".into())), "{l:?}");
        let schema = Schema::from_rules([(
            ShapeLabel::new("D"),
            ShapeExpr::arc(ArcConstraint::value(
                "http://e/p",
                NodeConstraint::AllOf(vec![
                    NodeConstraint::Kind(NodeKind::Iri),
                    NodeConstraint::Datatype("http://dt".into()),
                ]),
            )),
        )])
        .unwrap();
        assert!(lints(&schema).contains(&Lint::UnsatisfiableConstraint("D".into())));
    }

    #[test]
    fn empty_expression_detected() {
        let schema = Schema::from_rules([(ShapeLabel::new("A"), ShapeExpr::Empty)]).unwrap();
        assert_eq!(lints(&schema), vec![Lint::Unsatisfiable("A".into())]);
    }

    // Regression (ISSUE 8 satellite 1): the old syntactic `ContainsEmpty`
    // lint flagged `e:p . | ∅` as unsatisfiable, but `e | ∅ ≡ e` — the
    // shape conforms fine and must not be flagged.
    #[test]
    fn empty_under_or_is_satisfiable_and_unflagged() {
        let schema = Schema::from_rules([(
            ShapeLabel::new("A"),
            ShapeExpr::or(
                ShapeExpr::arc(ArcConstraint::value("http://e/p", NodeConstraint::Any)),
                ShapeExpr::Empty,
            ),
        )])
        .unwrap();
        assert_eq!(sat_of(&schema, "A"), Satisfiability::ProvenSatisfiable);
        let l = lints(&schema);
        assert!(l.is_empty(), "satisfiable shape wrongly flagged: {l:?}");
    }

    // Regression (ISSUE 8 satellite 2a): contradictory numeric facets
    // (`MININCLUSIVE 5 MAXINCLUSIVE 3`) previously produced no lint.
    #[test]
    fn contradictory_numeric_facets_detected() {
        let l = lint_src(
            "PREFIX e: <http://e/>\nPREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n\
             <A> { e:p xsd:integer MININCLUSIVE 5 MAXINCLUSIVE 3 }",
        );
        assert!(
            l.contains(&Lint::UnsatisfiableConstraint("A".into())),
            "{l:?}"
        );
        assert!(l.contains(&Lint::Unsatisfiable("A".into())), "{l:?}");
    }

    // Regression (ISSUE 8 satellite 2b): `X` conjoined with `NOT X` under
    // `AllOf` previously produced no lint.
    #[test]
    fn not_x_conjoined_with_x_detected() {
        let x = NodeConstraint::Facet(Facet::MinInclusive(Numeric::integer(0)));
        let schema = Schema::from_rules([(
            ShapeLabel::new("A"),
            ShapeExpr::arc(ArcConstraint::value(
                "http://e/p",
                NodeConstraint::AllOf(vec![x.clone(), NodeConstraint::Not(Box::new(x))]),
            )),
        )])
        .unwrap();
        let l = lints(&schema);
        assert!(
            l.contains(&Lint::UnsatisfiableConstraint("A".into())),
            "{l:?}"
        );
    }

    // Compositionally-dead shapes the old syntactic pass missed entirely.
    #[test]
    fn repeat_at_least_two_over_empty_language_detected() {
        // `@<B>{2,}` where <B> is unsatisfiable: forced arc, dead object.
        let schema = Schema::from_rules([
            (
                ShapeLabel::new("A"),
                ShapeExpr::repeat(
                    ShapeExpr::arc(ArcConstraint::reference("http://e/p", "B")),
                    2,
                    None,
                ),
            ),
            (ShapeLabel::new("B"), ShapeExpr::Empty),
        ])
        .unwrap();
        assert_eq!(sat_of(&schema, "A"), Satisfiability::Unsatisfiable);
        assert_eq!(sat_of(&schema, "B"), Satisfiability::Unsatisfiable);
        let l = lints(&schema);
        assert!(l.contains(&Lint::Unsatisfiable("A".into())), "{l:?}");
    }

    #[test]
    fn empty_value_set_arc_forced_by_and_detected() {
        // `e:q . ‖ e:p []` — the dead arc is mandatory at depth.
        let schema = Schema::from_rules([(
            ShapeLabel::new("A"),
            ShapeExpr::and(
                ShapeExpr::arc(ArcConstraint::value("http://e/q", NodeConstraint::Any)),
                ShapeExpr::arc(ArcConstraint::value(
                    "http://e/p",
                    NodeConstraint::ValueSet(vec![]),
                )),
            ),
        )])
        .unwrap();
        assert_eq!(sat_of(&schema, "A"), Satisfiability::Unsatisfiable);
    }

    #[test]
    fn dead_branch_under_star_is_still_satisfiable() {
        // `(e:p [])*` accepts the empty bag: satisfiable.
        let schema = Schema::from_rules([(
            ShapeLabel::new("A"),
            ShapeExpr::star(ShapeExpr::arc(ArcConstraint::value(
                "http://e/p",
                NodeConstraint::ValueSet(vec![]),
            ))),
        )])
        .unwrap();
        assert_eq!(sat_of(&schema, "A"), Satisfiability::ProvenSatisfiable);
        let l = lints(&schema);
        // The dead constraint itself is still worth a local warning...
        assert!(l.contains(&Lint::EmptyValueSet("A".into())));
        // ...but the shape must not be declared unsatisfiable.
        assert!(!l.contains(&Lint::Unsatisfiable("A".into())));
    }

    #[test]
    fn recursive_shape_is_satisfiable_coinductively() {
        // `<A> { e:p @<A> }`: a cyclic graph x →p x conforms, so the
        // greatest fixpoint must come back satisfiable.
        let schema = Schema::from_rules([(
            ShapeLabel::new("A"),
            ShapeExpr::arc(ArcConstraint::reference("http://e/p", "A")),
        )])
        .unwrap();
        assert_eq!(sat_of(&schema, "A"), Satisfiability::ProvenSatisfiable);
    }

    #[test]
    fn mutual_recursion_through_dead_shape() {
        // <A> requires @<B>, <B> requires a dead constraint: both empty.
        let schema = Schema::from_rules([
            (
                ShapeLabel::new("A"),
                ShapeExpr::arc(ArcConstraint::reference("http://e/p", "B")),
            ),
            (
                ShapeLabel::new("B"),
                ShapeExpr::and(
                    ShapeExpr::arc(ArcConstraint::reference("http://e/q", "A")),
                    ShapeExpr::arc(ArcConstraint::value(
                        "http://e/r",
                        NodeConstraint::ValueSet(vec![]),
                    )),
                ),
            ),
        ])
        .unwrap();
        assert_eq!(sat_of(&schema, "A"), Satisfiability::Unsatisfiable);
        assert_eq!(sat_of(&schema, "B"), Satisfiability::Unsatisfiable);
    }

    #[test]
    fn lints_inside_nested_expressions() {
        let l = lint_src("PREFIX e: <http://e/>\n<A> { (e:p [] | e:q .)+ }");
        assert!(l.contains(&Lint::EmptyValueSet("A".into())));
        // The healthy `|` branch keeps the shape alive.
        assert!(!l.contains(&Lint::Unsatisfiable("A".into())));
    }

    #[test]
    fn display_messages() {
        assert!(Lint::UnusedShape("X".into())
            .to_string()
            .contains("never referenced"));
        assert!(Lint::EmptyValueSet("X".into()).to_string().contains("[]"));
        assert!(Lint::Unsatisfiable("X".into())
            .to_string()
            .contains("unsatisfiable"));
        assert!(Lint::UnsatisfiableConstraint("X".into())
            .to_string()
            .contains("no term satisfies"));
    }
}

//! Schema lints: warnings for constructs that are legal but almost
//! certainly mistakes — dead shapes, vacuous constraints, impossible
//! expressions.

use std::fmt;

use crate::ast::{ShapeExpr, ShapeLabel};
use crate::constraint::{NodeConstraint, NodeKind};
use crate::schema::Schema;
use crate::strre::Regex;

/// One warning about a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Lint {
    /// The shape is neither the start shape nor referenced by any other
    /// shape — validators will never reach it implicitly.
    UnusedShape(String),
    /// A start shape is declared but this shape cannot be reached from it.
    UnreachableFromStart(String),
    /// The shape's expression contains `∅`, which matches no graph at all:
    /// under `‖` it makes the whole shape unsatisfiable.
    ContainsEmpty(String),
    /// An arc carries an empty value set `[]` — no object can ever match.
    EmptyValueSet(String),
    /// A `PATTERN` facet whose regex does not parse: it will match
    /// nothing.
    InvalidPattern {
        /// The shape holding the facet.
        shape: String,
        /// The offending pattern source.
        pattern: String,
        /// The regex parser's message.
        error: String,
    },
    /// A cardinality `{0,0}` — equivalent to writing nothing.
    VacuousCardinality(String),
    /// A node-kind conjunction that no term satisfies
    /// (e.g. `IRI LITERAL`).
    ContradictoryKinds(String),
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Lint::UnusedShape(s) => {
                write!(
                    f,
                    "shape <{s}> is never referenced and is not the start shape"
                )
            }
            Lint::UnreachableFromStart(s) => {
                write!(f, "shape <{s}> is unreachable from the start shape")
            }
            Lint::ContainsEmpty(s) => {
                write!(f, "shape <{s}> contains ∅, which matches no graph")
            }
            Lint::EmptyValueSet(s) => {
                write!(
                    f,
                    "shape <{s}> has an empty value set [] — no object can match"
                )
            }
            Lint::InvalidPattern {
                shape,
                pattern,
                error,
            } => write!(
                f,
                "shape <{shape}> has an invalid PATTERN {pattern:?}: {error}"
            ),
            Lint::VacuousCardinality(s) => {
                write!(
                    f,
                    "shape <{s}> has a {{0,0}} cardinality — the expression is inert"
                )
            }
            Lint::ContradictoryKinds(s) => {
                write!(f, "shape <{s}> conjoins node kinds no term can satisfy")
            }
        }
    }
}

/// Runs every lint over the schema.
pub fn lints(schema: &Schema) -> Vec<Lint> {
    let mut out = Vec::new();
    usage_lints(schema, &mut out);
    for (label, expr) in schema.iter() {
        expr_lints(label, expr, &mut out);
    }
    out
}

fn usage_lints(schema: &Schema, out: &mut Vec<Lint>) {
    let referenced: Vec<&ShapeLabel> = schema.iter().flat_map(|(_, e)| e.references()).collect();
    for label in schema.labels() {
        let is_start = schema.start() == Some(label);
        if !is_start && !referenced.contains(&label) && schema.start().is_some() {
            // With a start shape, anything not referenced and not start is
            // dead; without one, every shape is a potential entry point.
            out.push(Lint::UnusedShape(label.as_str().to_string()));
        }
    }
    if let Some(start) = schema.start() {
        let reachable = schema.reachable(start);
        for label in schema.labels() {
            if !reachable.contains(&label) {
                out.push(Lint::UnreachableFromStart(label.as_str().to_string()));
            }
        }
    }
}

fn expr_lints(label: &ShapeLabel, expr: &ShapeExpr, out: &mut Vec<Lint>) {
    let name = || label.as_str().to_string();
    match expr {
        ShapeExpr::Empty => out.push(Lint::ContainsEmpty(name())),
        ShapeExpr::Epsilon => {}
        ShapeExpr::Arc(arc) => {
            if let crate::ast::ObjectConstraint::Value(c) = &arc.object {
                constraint_lints(label, c, out);
            }
        }
        ShapeExpr::Repeat(e, 0, Some(0)) => {
            out.push(Lint::VacuousCardinality(name()));
            expr_lints(label, e, out);
        }
        ShapeExpr::Star(e) | ShapeExpr::Plus(e) | ShapeExpr::Opt(e) => expr_lints(label, e, out),
        ShapeExpr::Repeat(e, _, _) => expr_lints(label, e, out),
        ShapeExpr::And(a, b) | ShapeExpr::Or(a, b) => {
            expr_lints(label, a, out);
            expr_lints(label, b, out);
        }
    }
}

fn constraint_lints(label: &ShapeLabel, c: &NodeConstraint, out: &mut Vec<Lint>) {
    let name = || label.as_str().to_string();
    match c {
        NodeConstraint::ValueSet(vs) if vs.is_empty() => out.push(Lint::EmptyValueSet(name())),
        NodeConstraint::Facet(crate::constraint::Facet::Pattern(p)) => {
            if let Err(error) = Regex::new(p) {
                out.push(Lint::InvalidPattern {
                    shape: name(),
                    pattern: p.to_string(),
                    error,
                });
            }
        }
        NodeConstraint::AllOf(cs) => {
            let kinds: Vec<NodeKind> = cs
                .iter()
                .filter_map(|c| match c {
                    NodeConstraint::Kind(k) => Some(*k),
                    _ => None,
                })
                .collect();
            if kinds_contradict(&kinds) {
                out.push(Lint::ContradictoryKinds(name()));
            }
            // Datatype constraints imply Literal; conjoined with a
            // non-literal-only kind they are unsatisfiable too.
            let has_datatype = cs.iter().any(|c| matches!(c, NodeConstraint::Datatype(_)));
            if has_datatype
                && kinds
                    .iter()
                    .any(|k| matches!(k, NodeKind::Iri | NodeKind::BNode | NodeKind::NonLiteral))
            {
                out.push(Lint::ContradictoryKinds(name()));
            }
            for inner in cs {
                constraint_lints(label, inner, out);
            }
        }
        NodeConstraint::Not(inner) => constraint_lints(label, inner, out),
        _ => {}
    }
}

/// Two kinds with an empty intersection?
fn kinds_contradict(kinds: &[NodeKind]) -> bool {
    use NodeKind::*;
    for (i, a) in kinds.iter().enumerate() {
        for b in &kinds[i + 1..] {
            let compatible = match (a, b) {
                (x, y) if x == y => true,
                (Iri, NonLiteral) | (NonLiteral, Iri) => true,
                (BNode, NonLiteral) | (NonLiteral, BNode) => true,
                _ => false,
            };
            if !compatible {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shexc;

    fn lint_src(src: &str) -> Vec<Lint> {
        lints(&shexc::parse(src).unwrap())
    }

    #[test]
    fn clean_schema_has_no_lints() {
        let l = lint_src("PREFIX e: <http://e/>\nstart = @<A>\n<A> { e:p @<B>* }\n<B> { e:q . }");
        assert!(l.is_empty(), "{l:?}");
    }

    #[test]
    fn unused_shape_detected() {
        let l = lint_src("PREFIX e: <http://e/>\nstart = @<A>\n<A> { e:p . }\n<Dead> { e:q . }");
        assert!(l.contains(&Lint::UnusedShape("Dead".into())));
        assert!(l.contains(&Lint::UnreachableFromStart("Dead".into())));
    }

    #[test]
    fn no_start_means_no_usage_lints() {
        let l = lint_src("PREFIX e: <http://e/>\n<A> { e:p . }\n<B> { e:q . }");
        assert!(l.is_empty(), "{l:?}");
    }

    #[test]
    fn empty_value_set_detected() {
        let l = lint_src("PREFIX e: <http://e/>\n<A> { e:p [] }");
        assert!(l.contains(&Lint::EmptyValueSet("A".into())));
    }

    #[test]
    fn invalid_pattern_detected() {
        let l = lint_src("PREFIX e: <http://e/>\n<A> { e:p PATTERN \"(unclosed\" }");
        assert!(matches!(&l[0], Lint::InvalidPattern { shape, .. } if shape == "A"));
    }

    #[test]
    fn vacuous_cardinality_detected() {
        let l = lint_src("PREFIX e: <http://e/>\n<A> { e:p .{0,0}, e:q . }");
        assert!(l.contains(&Lint::VacuousCardinality("A".into())));
    }

    #[test]
    fn contradictory_kinds_detected() {
        // `IRI` together with a datatype can never hold.
        let l = lint_src(
            "PREFIX e: <http://e/>\nPREFIX xsd: <http://www.w3.org/2001/XMLSchema#>\n\
             <A> { e:p IRI MINLENGTH 1 }\n<B> { e:q LITERAL MINLENGTH 1 }",
        );
        assert!(l.is_empty(), "kind+facet is fine: {l:?}");
        // Construct the contradiction through the AST (two kinds cannot be
        // written in one ShExC constraint position).
        use crate::ast::{ArcConstraint, ShapeExpr};
        let schema = Schema::from_rules([(
            ShapeLabel::new("C"),
            ShapeExpr::arc(ArcConstraint::value(
                "http://e/p",
                NodeConstraint::AllOf(vec![
                    NodeConstraint::Kind(NodeKind::Iri),
                    NodeConstraint::Kind(NodeKind::Literal),
                ]),
            )),
        )])
        .unwrap();
        assert!(lints(&schema).contains(&Lint::ContradictoryKinds("C".into())));
        let schema = Schema::from_rules([(
            ShapeLabel::new("D"),
            ShapeExpr::arc(ArcConstraint::value(
                "http://e/p",
                NodeConstraint::AllOf(vec![
                    NodeConstraint::Kind(NodeKind::Iri),
                    NodeConstraint::Datatype("http://dt".into()),
                ]),
            )),
        )])
        .unwrap();
        assert!(lints(&schema).contains(&Lint::ContradictoryKinds("D".into())));
    }

    #[test]
    fn empty_expression_detected() {
        use crate::ast::ShapeExpr;
        let schema = Schema::from_rules([(ShapeLabel::new("A"), ShapeExpr::Empty)]).unwrap();
        assert_eq!(lints(&schema), vec![Lint::ContainsEmpty("A".into())]);
    }

    #[test]
    fn lints_inside_nested_expressions() {
        let l = lint_src("PREFIX e: <http://e/>\n<A> { (e:p [] | e:q .)+ }");
        assert!(l.contains(&Lint::EmptyValueSet("A".into())));
    }

    #[test]
    fn display_messages() {
        assert!(Lint::UnusedShape("X".into())
            .to_string()
            .contains("never referenced"));
        assert!(Lint::EmptyValueSet("X".into()).to_string().contains("[]"));
    }
}

//! A Brzozowski-derivative string regular-expression engine.
//!
//! This is the 1964 construction the paper builds on ("Brzozowski proposed
//! a method for directly implementing a regular expression recognizer based
//! on regular expression derivatives", §1). It serves two roles here:
//!
//! * it implements the ShEx `PATTERN` string facet (full-match semantics,
//!   as in XML Schema patterns), and
//! * it is the baseline for experiment E8, demonstrating that derivative
//!   matchers are immune to the catastrophic backtracking of naive
//!   recursive matchers on patterns like `(a|a)*`.
//!
//! Character classes follow the Owens–Reppy–Turon treatment the paper cites
//! (\[21\]): a class is a set of ranges, possibly negated, so large alphabets
//! (Unicode) need no per-symbol enumeration.

use std::collections::HashMap;
use std::rc::Rc;

/// A set of character ranges, possibly negated. Ranges are kept sorted and
/// disjoint.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CharClass {
    ranges: Vec<(char, char)>,
    negated: bool,
}

impl CharClass {
    /// A class containing exactly `c`.
    pub fn single(c: char) -> Self {
        CharClass {
            ranges: vec![(c, c)],
            negated: false,
        }
    }

    /// A class of inclusive ranges, optionally negated.
    pub fn ranges(mut ranges: Vec<(char, char)>, negated: bool) -> Self {
        ranges.sort();
        CharClass { ranges, negated }
    }

    /// `.` — any character.
    pub fn any() -> Self {
        CharClass {
            ranges: vec![],
            negated: true,
        }
    }

    /// Membership test.
    pub fn contains(&self, c: char) -> bool {
        let inside = self.ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi);
        inside != self.negated
    }
}

/// A regular expression over strings. Construct via the smart constructors
/// on [`Re`] or by parsing with [`Regex::new`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Re {
    /// `∅` — rejects everything.
    Empty,
    /// `ε` — accepts only the empty string.
    Epsilon,
    /// A character class (single symbols included).
    Class(CharClass),
    /// Sequential composition.
    Concat(Rc<Re>, Rc<Re>),
    /// Alternation (kept flattened and sorted).
    Alt(Rc<Re>, Rc<Re>),
    /// Kleene closure.
    Star(Rc<Re>),
}

impl Re {
    /// Wraps a class as an expression.
    pub fn class(c: CharClass) -> Rc<Re> {
        Rc::new(Re::Class(c))
    }

    /// An expression matching exactly `c`.
    pub fn char(c: char) -> Rc<Re> {
        Re::class(CharClass::single(c))
    }

    /// Smart constructor: `ε·r = r`, `r·ε = r`, `∅·r = r·∅ = ∅`.
    pub fn concat(a: Rc<Re>, b: Rc<Re>) -> Rc<Re> {
        match (&*a, &*b) {
            (Re::Empty, _) | (_, Re::Empty) => Rc::new(Re::Empty),
            (Re::Epsilon, _) => b,
            (_, Re::Epsilon) => a,
            _ => Rc::new(Re::Concat(a, b)),
        }
    }

    /// Smart constructor: `∅|r = r`, `r|r = r`, plus flattening into a
    /// canonical sorted alternation. Without the canonical form,
    /// derivative *states* of patterns like `(a|aa)*` grow as unbalanced
    /// alternation trees and matching degrades to exponential — the
    /// normalisation Owens–Reppy–Turon §4.1 prescribes (associativity,
    /// commutativity, idempotence of `+`).
    pub fn alt(a: Rc<Re>, b: Rc<Re>) -> Rc<Re> {
        fn gather(r: &Rc<Re>, out: &mut Vec<Rc<Re>>) {
            match &**r {
                Re::Empty => {}
                Re::Alt(x, y) => {
                    gather(x, out);
                    gather(y, out);
                }
                _ => out.push(r.clone()),
            }
        }
        let mut alts = Vec::new();
        gather(&a, &mut alts);
        gather(&b, &mut alts);
        alts.sort();
        alts.dedup();
        let Some(last) = alts.pop() else {
            return Rc::new(Re::Empty);
        };
        alts.into_iter()
            .rev()
            .fold(last, |acc, r| Rc::new(Re::Alt(r, acc)))
    }

    /// Smart constructor: `(r*)* = r*`, `ε* = ε`, `∅* = ε`.
    pub fn star(r: Rc<Re>) -> Rc<Re> {
        match &*r {
            Re::Empty | Re::Epsilon => Rc::new(Re::Epsilon),
            Re::Star(_) => r,
            _ => Rc::new(Re::Star(r)),
        }
    }

    /// `ν(r)`: does `r` accept the empty string?
    pub fn nullable(&self) -> bool {
        match self {
            Re::Empty | Re::Class(_) => false,
            Re::Epsilon | Re::Star(_) => true,
            Re::Concat(a, b) => a.nullable() && b.nullable(),
            Re::Alt(a, b) => a.nullable() || b.nullable(),
        }
    }

    /// Brzozowski derivative `∂c(r)`.
    pub fn derivative(self: &Rc<Re>, c: char) -> Rc<Re> {
        match &**self {
            Re::Empty | Re::Epsilon => Rc::new(Re::Empty),
            Re::Class(cls) => {
                if cls.contains(c) {
                    Rc::new(Re::Epsilon)
                } else {
                    Rc::new(Re::Empty)
                }
            }
            Re::Concat(a, b) => {
                let da_b = Re::concat(a.derivative(c), b.clone());
                if a.nullable() {
                    Re::alt(da_b, b.derivative(c))
                } else {
                    da_b
                }
            }
            Re::Alt(a, b) => Re::alt(a.derivative(c), b.derivative(c)),
            Re::Star(r) => Re::concat(r.derivative(c), self.clone()),
        }
    }
}

/// A compiled pattern with full-match semantics (XSD pattern style: the
/// whole string must match, no implicit anchors needed).
///
/// ```
/// use shapex_shex::strre::Regex;
/// let re = Regex::new(r"97[89]-\d{10}").unwrap();
/// assert!(re.is_match("978-0441172719"));
/// assert!(!re.is_match("978-0441172719 extra")); // full match
/// ```
#[derive(Debug, Clone)]
pub struct Regex {
    re: Rc<Re>,
    source: String,
}

impl Regex {
    /// Parses a pattern. Supported syntax: literals, `.`, `|`,
    /// concatenation, `*` `+` `?` `{m}` `{m,}` `{m,n}`, groups `(...)`,
    /// classes `[a-z]` / `[^a-z]`, and escapes `\d \D \w \W \s \S \n \r \t`
    /// plus escaped metacharacters.
    pub fn new(pattern: &str) -> Result<Regex, String> {
        let mut p = PatternParser {
            chars: pattern.chars().collect(),
            pos: 0,
        };
        let re = p.alternation()?;
        if p.pos != p.chars.len() {
            return Err(format!("unexpected '{}' at {}", p.chars[p.pos], p.pos));
        }
        Ok(Regex {
            re,
            source: pattern.to_string(),
        })
    }

    /// The original pattern source.
    pub fn as_str(&self) -> &str {
        &self.source
    }

    /// The compiled AST — exposed for the E8 baseline comparison
    /// ([`backtrack_match`]) and for tests.
    pub fn ast(&self) -> &Rc<Re> {
        &self.re
    }

    /// Wraps an already-built AST (for differential testing against the
    /// structural matchers).
    pub fn from_ast(re: Rc<Re>) -> Regex {
        Regex {
            source: format!("{re:?}"),
            re,
        }
    }

    /// Full-match test by iterated derivatives: `O(|input| × |state|)`,
    /// no backtracking.
    pub fn is_match(&self, input: &str) -> bool {
        let mut state = self.re.clone();
        for c in input.chars() {
            if matches!(*state, Re::Empty) {
                return false; // derivative is ∅: fail fast
            }
            state = state.derivative(c);
        }
        state.nullable()
    }

    /// Like [`Regex::is_match`] but memoises derivative states, giving the
    /// DFA-construction-on-the-fly behaviour of \[21\]. Worth it for long
    /// inputs over small alphabets.
    pub fn is_match_memo(&self, input: &str) -> bool {
        let mut memo: HashMap<(Re, char), Rc<Re>> = HashMap::new();
        let mut state = self.re.clone();
        for c in input.chars() {
            if matches!(*state, Re::Empty) {
                return false;
            }
            let key = ((*state).clone(), c);
            state = match memo.get(&key) {
                Some(next) => next.clone(),
                None => {
                    let next = state.derivative(c);
                    memo.insert(key, next.clone());
                    next
                }
            };
        }
        state.nullable()
    }
}

/// A deliberately naive backtracking matcher over the same `Re` AST — the
/// E8 baseline. Exponential on patterns like `(a|a)*` against non-matching
/// inputs.
pub fn backtrack_match(re: &Rc<Re>, input: &str) -> bool {
    let chars: Vec<char> = input.chars().collect();
    // `try_match(re, i, k)`: match `re` against some prefix of chars[i..],
    // calling k with the index after the consumed prefix.
    fn try_match(re: &Rc<Re>, chars: &[char], i: usize, k: &mut dyn FnMut(usize) -> bool) -> bool {
        match &**re {
            Re::Empty => false,
            Re::Epsilon => k(i),
            Re::Class(c) => {
                if i < chars.len() && c.contains(chars[i]) {
                    k(i + 1)
                } else {
                    false
                }
            }
            Re::Concat(a, b) => try_match(a, chars, i, &mut |j| try_match(b, chars, j, k)),
            Re::Alt(a, b) => try_match(a, chars, i, k) || try_match(b, chars, i, k),
            Re::Star(r) => {
                if k(i) {
                    return true;
                }
                try_match(r, chars, i, &mut |j| {
                    // require progress to avoid ε-loops
                    j > i && try_match(re, chars, j, k)
                })
            }
        }
    }
    try_match(re, &chars, 0, &mut |i| i == chars.len())
}

struct PatternParser {
    chars: Vec<char>,
    pos: usize,
}

impl PatternParser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn alternation(&mut self) -> Result<Rc<Re>, String> {
        let mut e = self.sequence()?;
        while self.peek() == Some('|') {
            self.bump();
            e = Re::alt(e, self.sequence()?);
        }
        Ok(e)
    }

    fn sequence(&mut self) -> Result<Rc<Re>, String> {
        let mut e = Rc::new(Re::Epsilon);
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            e = Re::concat(e, self.repeated()?);
        }
        Ok(e)
    }

    fn repeated(&mut self) -> Result<Rc<Re>, String> {
        let mut e = self.atom()?;
        loop {
            match self.peek() {
                Some('*') => {
                    self.bump();
                    e = Re::star(e);
                }
                Some('+') => {
                    self.bump();
                    e = Re::concat(e.clone(), Re::star(e));
                }
                Some('?') => {
                    self.bump();
                    e = Re::alt(e, Rc::new(Re::Epsilon));
                }
                Some('{') => {
                    self.bump();
                    let (m, n) = self.bounds()?;
                    e = repeat(e, m, n);
                }
                _ => return Ok(e),
            }
        }
    }

    fn bounds(&mut self) -> Result<(u32, Option<u32>), String> {
        let m = self.number()?;
        match self.bump() {
            Some('}') => Ok((m, Some(m))),
            Some(',') => {
                if self.peek() == Some('}') {
                    self.bump();
                    return Ok((m, None));
                }
                let n = self.number()?;
                if self.bump() != Some('}') {
                    return Err("expected '}' after bounds".into());
                }
                if n < m {
                    return Err(format!("invalid bounds {{{m},{n}}}"));
                }
                Ok((m, Some(n)))
            }
            _ => Err("expected '}' or ',' in bounds".into()),
        }
    }

    fn number(&mut self) -> Result<u32, String> {
        let mut n: u32 = 0;
        let mut any = false;
        while let Some(c) = self.peek() {
            if let Some(d) = c.to_digit(10) {
                n = n
                    .checked_mul(10)
                    .and_then(|n| n.checked_add(d))
                    .ok_or("bound too large")?;
                any = true;
                self.bump();
            } else {
                break;
            }
        }
        if any {
            Ok(n)
        } else {
            Err("expected number".into())
        }
    }

    fn atom(&mut self) -> Result<Rc<Re>, String> {
        match self.bump() {
            None => Err("unexpected end of pattern".into()),
            Some('(') => {
                let e = self.alternation()?;
                if self.bump() != Some(')') {
                    return Err("unclosed group".into());
                }
                Ok(e)
            }
            Some('[') => self.char_class(),
            Some('.') => Ok(Re::class(CharClass::any())),
            Some('\\') => self.escape().map(Re::class),
            Some(c) if "*+?{}|)".contains(c) => Err(format!("unexpected '{c}'")),
            Some(c) => Ok(Re::char(c)),
        }
    }

    fn escape(&mut self) -> Result<CharClass, String> {
        let c = self.bump().ok_or("trailing backslash")?;
        Ok(match c {
            'd' => CharClass::ranges(vec![('0', '9')], false),
            'D' => CharClass::ranges(vec![('0', '9')], true),
            'w' => CharClass::ranges(vec![('0', '9'), ('A', 'Z'), ('_', '_'), ('a', 'z')], false),
            'W' => CharClass::ranges(vec![('0', '9'), ('A', 'Z'), ('_', '_'), ('a', 'z')], true),
            's' => CharClass::ranges(vec![('\t', '\n'), ('\r', '\r'), (' ', ' ')], false),
            'S' => CharClass::ranges(vec![('\t', '\n'), ('\r', '\r'), (' ', ' ')], true),
            'n' => CharClass::single('\n'),
            'r' => CharClass::single('\r'),
            't' => CharClass::single('\t'),
            c => CharClass::single(c), // escaped metacharacter
        })
    }

    fn char_class(&mut self) -> Result<Rc<Re>, String> {
        let negated = if self.peek() == Some('^') {
            self.bump();
            true
        } else {
            false
        };
        let mut ranges = Vec::new();
        loop {
            let c = match self.bump() {
                None => return Err("unclosed character class".into()),
                Some(']') if !ranges.is_empty() || negated => break,
                Some(']') => break, // empty class: matches nothing
                Some('\\') => {
                    let cls = self.escape()?;
                    // Only single-char escapes make sense inside a range;
                    // multi-range escapes are unioned in directly.
                    if cls.ranges.len() == 1 && cls.ranges[0].0 == cls.ranges[0].1 && !cls.negated {
                        cls.ranges[0].0
                    } else {
                        ranges.extend(cls.ranges.iter().copied());
                        continue;
                    }
                }
                Some(c) => c,
            };
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.bump(); // '-'
                let hi = self.bump().ok_or("unclosed range")?;
                if hi < c {
                    return Err(format!("invalid range {c}-{hi}"));
                }
                ranges.push((c, hi));
            } else {
                ranges.push((c, c));
            }
        }
        Ok(Re::class(CharClass::ranges(ranges, negated)))
    }
}

/// `r{m,n}` as derivative-friendly expansion (patterns keep small bounds,
/// so expansion is fine here, unlike shape expressions).
fn repeat(e: Rc<Re>, m: u32, n: Option<u32>) -> Rc<Re> {
    let mut out = Rc::new(Re::Epsilon);
    for _ in 0..m {
        out = Re::concat(out, e.clone());
    }
    match n {
        None => Re::concat(out, Re::star(e)),
        Some(n) => {
            for _ in m..n {
                out = Re::concat(out, Re::alt(e.clone(), Rc::new(Re::Epsilon)));
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, s: &str) -> bool {
        Regex::new(pat).unwrap().is_match(s)
    }

    #[test]
    fn literal_full_match() {
        assert!(m("abc", "abc"));
        assert!(!m("abc", "ab"));
        assert!(!m("abc", "abcd")); // full-match semantics
        assert!(!m("abc", "xabc"));
    }

    #[test]
    fn alternation_and_grouping() {
        assert!(m("a|b", "a"));
        assert!(m("a|b", "b"));
        assert!(!m("a|b", "c"));
        assert!(m("(ab|cd)e", "abe"));
        assert!(m("(ab|cd)e", "cde"));
    }

    #[test]
    fn quantifiers() {
        assert!(m("a*", ""));
        assert!(m("a*", "aaaa"));
        assert!(!m("a+", ""));
        assert!(m("a+", "aaa"));
        assert!(m("a?", ""));
        assert!(m("a?", "a"));
        assert!(!m("a?", "aa"));
    }

    #[test]
    fn bounded_repetition() {
        assert!(m("a{3}", "aaa"));
        assert!(!m("a{3}", "aa"));
        assert!(m("a{2,4}", "aa"));
        assert!(m("a{2,4}", "aaaa"));
        assert!(!m("a{2,4}", "aaaaa"));
        assert!(m("a{2,}", "aaaaaaa"));
        assert!(!m("a{2,}", "a"));
    }

    #[test]
    fn character_classes() {
        assert!(m("[a-c]+", "abcba"));
        assert!(!m("[a-c]+", "abd"));
        assert!(m("[^0-9]", "x"));
        assert!(!m("[^0-9]", "5"));
        assert!(m("[a-cx]", "x"));
    }

    #[test]
    fn dot_matches_any() {
        assert!(m(".", "x"));
        assert!(m(".", "λ"));
        assert!(!m(".", ""));
        assert!(!m(".", "ab"));
        assert!(m(".*", "anything at all"));
    }

    #[test]
    fn escapes() {
        assert!(m(r"\d{4}", "2015"));
        assert!(!m(r"\d{4}", "201x"));
        assert!(m(r"\w+", "snake_case9"));
        assert!(m(r"\s", " "));
        assert!(m(r"a\.b", "a.b"));
        assert!(!m(r"a\.b", "axb"));
        assert!(m(r"\(x\)", "(x)"));
        assert!(m(r"\D", "x"));
        assert!(!m(r"\D", "7"));
        assert!(!m(r"\W", "x"));
        assert!(!m(r"\S", "\t"));
    }

    #[test]
    fn escape_class_inside_brackets() {
        assert!(m(r"[\d-]+", "12-34"));
        assert!(!m(r"[\d]+", "a"));
    }

    #[test]
    fn mail_style_pattern() {
        let pat = r"[\w.]+@[\w]+\.[a-z]{2,4}";
        assert!(m(pat, "john.doe@example.org"));
        assert!(!m(pat, "not-an-email"));
    }

    #[test]
    fn nullable_cases() {
        assert!(Regex::new("a*").unwrap().re.nullable());
        assert!(Regex::new("").unwrap().re.nullable());
        assert!(!Regex::new("a").unwrap().re.nullable());
        assert!(Regex::new("a?b?").unwrap().re.nullable());
    }

    #[test]
    fn derivative_of_class() {
        let r = Re::char('a');
        assert!(matches!(*r.derivative('a'), Re::Epsilon));
        assert!(matches!(*r.derivative('b'), Re::Empty));
    }

    #[test]
    fn smart_constructors_simplify() {
        let a = Re::char('a');
        assert!(matches!(
            *Re::concat(Rc::new(Re::Empty), a.clone()),
            Re::Empty
        ));
        assert_eq!(Re::concat(Rc::new(Re::Epsilon), a.clone()), a);
        assert_eq!(Re::alt(a.clone(), a.clone()), a);
        assert!(matches!(*Re::star(Rc::new(Re::Epsilon)), Re::Epsilon));
        let sa = Re::star(a.clone());
        assert_eq!(Re::star(sa.clone()), sa);
    }

    #[test]
    fn memoised_match_agrees() {
        let r = Regex::new(r"(ab)*c?").unwrap();
        for s in ["", "ab", "ababc", "abc", "ba", "c"] {
            assert_eq!(r.is_match(s), r.is_match_memo(s), "input {s:?}");
        }
    }

    #[test]
    fn pathological_pattern_is_fast_with_derivatives() {
        // (a|a)* over a^40 b — naive backtracking takes 2^40 paths.
        let r = Regex::new("(a|a)*").unwrap();
        let input = "a".repeat(40) + "b";
        assert!(!r.is_match(&input)); // returns promptly
        assert!(r.is_match(&"a".repeat(40)));
    }

    #[test]
    fn backtracking_baseline_agrees_on_small_inputs() {
        for (pat, s) in [
            ("a*b", "aaab"),
            ("a*b", "aaa"),
            ("(a|b)*", "abba"),
            ("a{2,3}", "aa"),
            ("a{2,3}", "aaaa"),
            ("(ab|a)(c|bc)", "abc"),
        ] {
            let r = Regex::new(pat).unwrap();
            assert_eq!(
                backtrack_match(&r.re, s),
                r.is_match(s),
                "pattern {pat:?} input {s:?}"
            );
        }
    }

    #[test]
    fn invalid_patterns_error() {
        assert!(Regex::new("(a").is_err());
        assert!(Regex::new("a)").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new("[a").is_err());
        assert!(Regex::new("a{3,1}").is_err());
        assert!(Regex::new("[z-a]").is_err());
        assert!(Regex::new("a{").is_err());
    }

    #[test]
    fn empty_class_matches_nothing() {
        assert!(!m("[]", "a"));
        assert!(!m("[]", ""));
    }
}

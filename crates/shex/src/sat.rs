//! Tri-state satisfiability of [`NodeConstraint`]s.
//!
//! The schema calculus (emptiness, containment, schema diffing in
//! `shapex-core`) and the exact lints in [`crate::lints`] both need to
//! answer "does any RDF term satisfy this constraint?" — and, more
//! generally, "is this *conjunction* of constraints and negated
//! constraints satisfiable?". The answer is three-valued:
//!
//! * [`Sat3::Sat`] — a concrete witness term was found and verified with
//!   [`NodeConstraint::matches`], so the verdict is exact.
//! * [`Sat3::Unsat`] — a symbolic contradiction was proven (empty facet
//!   interval, incompatible node kinds, `X ∧ ¬X`, a value set whose
//!   members are all individually refuted, ...), so the verdict is exact.
//! * [`Sat3::Unknown`] — neither: the checker refuses to guess. Callers
//!   must treat `Unknown` conservatively (a shape is only reported
//!   *unsatisfiable* on `Unsat`, only *proven satisfiable* on `Sat`).
//!
//! Soundness rests on an asymmetry: `Sat` is always backed by an actual
//! term evaluated through the same [`NodeConstraint::matches`] code that
//! validation uses, and `Unsat` only by contradictions that hold for
//! *every* term. There is no completeness claim — exotic combinations
//! (e.g. a `PATTERN` whose language is empty but non-obviously so) come
//! back `Unknown`.

use std::cmp::Ordering;
use std::collections::HashSet;
use std::rc::Rc;

use shapex_rdf::term::{Literal, Term};
use shapex_rdf::vocab::{rdf, xsd};
use shapex_rdf::xsd::{is_numeric_datatype, Numeric};

use crate::constraint::{Facet, NodeConstraint, NodeKind, ValueSetValue};
use crate::strre::{CharClass, Re, Regex};

/// Three-valued satisfiability verdict. The `Ord` instance is the
/// knowledge lattice `Unsat < Unknown < Sat`, so `min` is conjunction
/// ("all must hold") and `max` is disjunction ("any suffices") for shape
/// emptiness fixpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Sat3 {
    /// Proven unsatisfiable: no term can ever match.
    Unsat,
    /// Not decided either way.
    Unknown,
    /// Proven satisfiable by a concrete witness term.
    Sat,
}

/// Satisfiability of a single constraint.
pub fn constraint_sat(c: &NodeConstraint) -> Sat3 {
    conj_sat(&[c])
}

/// Satisfiability of a conjunction of constraints (each must hold of the
/// same term). This is the form the containment letter enumeration needs:
/// "is there a term matching arcs `S` and *not* matching arcs outside
/// `S`?" is `conj_sat` over positives and [`NodeConstraint::Not`]s.
pub fn conj_sat(cs: &[&NodeConstraint]) -> Sat3 {
    conj_sat_depth(cs, 4)
}

/// The worker behind [`conj_sat`]: direct contradiction/witness checks,
/// then a depth-bounded case split on negated conjunctions —
/// `¬(m₁ ∧ … ∧ mₖ) = ¬m₁ ∨ … ∨ ¬mₖ`, so the verdict is the lattice `max`
/// over the branches (all branches `Unsat` ⇒ `Unsat`; any `Sat` witness
/// transfers to the original). Containment letters routinely produce
/// `X ∧ ¬(D ∧ F)` shapes that only this split can decide.
fn conj_sat_depth(cs: &[&NodeConstraint], depth: u32) -> Sat3 {
    let mut atoms = Atoms::default();
    for c in cs {
        atoms.add_positive(c);
    }
    if atoms.contradiction() {
        return Sat3::Unsat;
    }
    for term in atoms.candidates() {
        if atoms.eval(&term) {
            return Sat3::Sat;
        }
    }
    if depth > 0 {
        // A positive disjunction splits into one branch per member:
        // `AnyOf(m₁…mₖ) ∧ rest` is `(m₁ ∧ rest) ∨ … ∨ (mₖ ∧ rest)`, so the
        // verdict is again the lattice `max` over branches.
        let pos_split = atoms.pos.iter().enumerate().find_map(|(i, p)| match p {
            NodeConstraint::AnyOf(ms) if ms.len() <= 8 => Some((i, ms)),
            _ => None,
        });
        if let Some((idx, members)) = pos_split {
            let mut best = Sat3::Unsat;
            for m in members {
                let mut branch: Vec<NodeConstraint> = atoms
                    .pos
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != idx)
                    .map(|(_, p)| (*p).clone())
                    .collect();
                branch.push(m.clone());
                for n in &atoms.neg {
                    branch.push(NodeConstraint::Not(Box::new((*n).clone())));
                }
                let refs: Vec<&NodeConstraint> = branch.iter().collect();
                best = best.max(conj_sat_depth(&refs, depth - 1));
                if best == Sat3::Sat {
                    return Sat3::Sat;
                }
            }
            return best;
        }
        let split = atoms.neg.iter().enumerate().find_map(|(i, n)| match n {
            NodeConstraint::AllOf(ms) if ms.len() <= 8 => Some((i, ms)),
            _ => None,
        });
        if let Some((idx, members)) = split {
            let mut best = Sat3::Unsat;
            for m in members {
                let mut branch: Vec<NodeConstraint> =
                    atoms.pos.iter().map(|p| (*p).clone()).collect();
                for (j, n) in atoms.neg.iter().enumerate() {
                    if j != idx {
                        branch.push(NodeConstraint::Not(Box::new((*n).clone())));
                    }
                }
                branch.push(NodeConstraint::Not(Box::new(m.clone())));
                let refs: Vec<&NodeConstraint> = branch.iter().collect();
                best = best.max(conj_sat_depth(&refs, depth - 1));
                if best == Sat3::Sat {
                    return Sat3::Sat;
                }
            }
            return best;
        }
    }
    Sat3::Unknown
}

/// The flattened conjunction: positive atoms (no `AllOf` left) and
/// negated constraints (arbitrary, evaluated wholesale against witness
/// candidates).
#[derive(Default)]
struct Atoms<'a> {
    pos: Vec<&'a NodeConstraint>,
    neg: Vec<&'a NodeConstraint>,
}

impl<'a> Atoms<'a> {
    fn add_positive(&mut self, c: &'a NodeConstraint) {
        match c {
            NodeConstraint::Any => {}
            NodeConstraint::AllOf(cs) => {
                for c in cs {
                    self.add_positive(c);
                }
            }
            NodeConstraint::Not(inner) => self.add_negative(inner),
            _ => self.pos.push(c),
        }
    }

    fn add_negative(&mut self, c: &'a NodeConstraint) {
        match c {
            // ¬¬X = X
            NodeConstraint::Not(inner) => self.add_positive(inner),
            // ¬(X ∨ Y) = ¬X ∧ ¬Y — flattens exactly.
            NodeConstraint::AnyOf(cs) => {
                for c in cs {
                    self.add_negative(c);
                }
            }
            // ¬(X ∧ Y) is a disjunction — keep it whole; eval() handles it.
            _ => self.neg.push(c),
        }
    }

    /// True when the term satisfies every positive atom and refutes every
    /// negative one — the exact semantics of the original conjunction.
    fn eval(&self, term: &Term) -> bool {
        self.pos.iter().all(|c| c.matches(term)) && self.neg.iter().all(|c| !c.matches(term))
    }

    /// Symbolic contradiction detection. Every rule here must hold for
    /// *all* terms; returning `true` is an exact `Unsat`.
    fn contradiction(&self) -> bool {
        // ¬(.): nothing escapes the universal constraint.
        if self.neg.iter().any(|c| matches!(c, NodeConstraint::Any)) {
            return true;
        }
        // X ∧ ¬X, structurally.
        if self.pos.iter().any(|p| self.neg.iter().any(|n| n == p)) {
            return true;
        }
        let kinds: Vec<NodeKind> = self
            .pos
            .iter()
            .filter_map(|c| match c {
                NodeConstraint::Kind(k) => Some(*k),
                _ => None,
            })
            .collect();
        for (i, a) in kinds.iter().enumerate() {
            for b in &kinds[i + 1..] {
                if kinds_contradict(*a, *b) {
                    return true;
                }
            }
        }
        let datatypes: Vec<&str> = self
            .pos
            .iter()
            .filter_map(|c| match c {
                NodeConstraint::Datatype(dt) => Some(&**dt),
                _ => None,
            })
            .collect();
        // Two distinct datatype requirements: a literal has exactly one
        // declared datatype (lang-tagged ⇒ rdf:langString), so they cannot
        // both hold.
        if datatypes
            .iter()
            .enumerate()
            .any(|(i, a)| datatypes[i + 1..].iter().any(|b| a != b))
        {
            return true;
        }
        // Datatypes only match literals.
        let literal_impossible = kinds
            .iter()
            .any(|k| matches!(k, NodeKind::Iri | NodeKind::BNode | NodeKind::NonLiteral));
        if literal_impossible && !datatypes.is_empty() {
            return true;
        }
        // Numeric facets only match numerically-typed literals.
        let numeric_bounds = self.numeric_bounds();
        if !numeric_bounds.is_empty() {
            if literal_impossible {
                return true;
            }
            if datatypes.iter().any(|dt| !is_numeric_datatype(dt)) {
                return true;
            }
            // A positive bound forces the term to be numerically
            // comparable, and within that domain a negated bound flips
            // (`¬(x ≥ 3)` ⇔ `x < 3`) — fold the flipped negatives into
            // the interval. NaN-bounded negatives are vacuously true for
            // comparable terms and are skipped.
            let flipped: Vec<Facet> = self
                .neg
                .iter()
                .filter_map(|c| match c {
                    NodeConstraint::Facet(f) => flip_numeric_facet(f),
                    _ => None,
                })
                .collect();
            let mut all_bounds = numeric_bounds.clone();
            all_bounds.extend(flipped.iter());
            if numeric_interval_empty(&all_bounds) {
                return true;
            }
        }
        if self.length_interval_empty() {
            return true;
        }
        // An invalid PATTERN matches nothing at all.
        for c in &self.pos {
            if let NodeConstraint::Facet(Facet::Pattern(p)) = c {
                if Regex::new(p).is_err() {
                    return true;
                }
            }
        }
        // A value set all of whose members are individually refuted.
        for c in &self.pos {
            if let NodeConstraint::ValueSet(vs) = c {
                if vs.iter().all(|v| self.member_dead(v)) {
                    return true;
                }
            }
        }
        false
    }

    /// Can this value-set member be ruled out for every term it could
    /// denote? Exact for `Term` members (finitely many candidates — one);
    /// for stems, only structural impossibilities are claimed.
    fn member_dead(&self, v: &ValueSetValue) -> bool {
        let literal_required = self.pos.iter().any(|c| {
            matches!(c, NodeConstraint::Kind(NodeKind::Literal))
                || matches!(c, NodeConstraint::Datatype(_))
        }) || !self.numeric_bounds().is_empty();
        let literal_impossible = self.pos.iter().any(|c| {
            matches!(
                c,
                NodeConstraint::Kind(NodeKind::Iri)
                    | NodeConstraint::Kind(NodeKind::BNode)
                    | NodeConstraint::Kind(NodeKind::NonLiteral)
            )
        });
        match v {
            // The member denotes exactly one term: evaluate it.
            ValueSetValue::Term(t) => !self.eval(t),
            // IRI stems denote IRIs only.
            ValueSetValue::IriStem(_) => literal_required,
            // Language members denote lang-tagged literals only.
            ValueSetValue::Language(_) | ValueSetValue::LanguageStem(_) => {
                literal_impossible
                    || self.pos.iter().any(
                        |c| matches!(c, NodeConstraint::Datatype(dt) if &**dt != rdf::LANG_STRING),
                    )
            }
        }
    }

    fn numeric_bounds(&self) -> Vec<&Facet> {
        self.pos
            .iter()
            .filter_map(|c| match c {
                NodeConstraint::Facet(
                    f @ (Facet::MinInclusive(_)
                    | Facet::MinExclusive(_)
                    | Facet::MaxInclusive(_)
                    | Facet::MaxExclusive(_)),
                ) => Some(f),
                _ => None,
            })
            .collect()
    }

    /// Merge `LENGTH`/`MINLENGTH`/`MAXLENGTH` into one interval and test
    /// emptiness. Every term has a string value (lexical form, IRI text,
    /// bnode label), so negated length bounds flip *globally*:
    /// `¬MINLENGTH n` ⇔ `MAXLENGTH n−1` (unsatisfiable outright for
    /// `n = 0`) and `¬MAXLENGTH n` ⇔ `MINLENGTH n+1`.
    fn length_interval_empty(&self) -> bool {
        let mut lo = 0usize;
        let mut hi = usize::MAX;
        for c in &self.pos {
            if let NodeConstraint::Facet(f) = c {
                match f {
                    Facet::Length(n) => {
                        lo = lo.max(*n);
                        hi = hi.min(*n);
                    }
                    Facet::MinLength(n) => lo = lo.max(*n),
                    Facet::MaxLength(n) => hi = hi.min(*n),
                    _ => {}
                }
            }
        }
        for c in &self.neg {
            if let NodeConstraint::Facet(f) = c {
                match f {
                    Facet::MinLength(0) => return true, // every length is ≥ 0
                    Facet::MinLength(n) => hi = hi.min(*n - 1),
                    Facet::MaxLength(n) => match n.checked_add(1) {
                        Some(n1) => lo = lo.max(n1),
                        None => return true, // every length is ≤ usize::MAX
                    },
                    _ => {}
                }
            }
        }
        lo > hi
    }

    /// Witness candidates: value-set members, stem representatives,
    /// canonical literals per mentioned datatype, facet boundary values,
    /// length-matched strings, pattern-derived strings, and generic fresh
    /// terms. Every candidate is *verified* by [`Atoms::eval`]; an
    /// unsuitable candidate merely wastes a probe.
    fn candidates(&self) -> Vec<Term> {
        let mut out: Vec<Term> = Vec::new();
        for c in &self.pos {
            if let NodeConstraint::ValueSet(vs) = c {
                for v in vs {
                    match v {
                        ValueSetValue::Term(t) => out.push(t.clone()),
                        ValueSetValue::IriStem(stem) => {
                            out.push(Term::iri(stem.to_string()));
                            out.push(Term::iri(format!("{stem}x")));
                        }
                        ValueSetValue::Language(tag) | ValueSetValue::LanguageStem(tag) => {
                            out.push(Term::Literal(Literal::lang_string("a", tag)));
                        }
                    }
                }
            }
        }
        let datatypes: Vec<&str> = self
            .pos
            .iter()
            .filter_map(|c| match c {
                NodeConstraint::Datatype(dt) => Some(&**dt),
                _ => None,
            })
            .collect();
        for dt in &datatypes {
            out.extend(canonical_literals(dt));
        }
        // Numeric boundary probes, typed with every plausibly-compatible
        // numeric datatype so facet+datatype conjunctions get a shot.
        let bounds = self.numeric_bounds();
        if !bounds.is_empty() {
            let mut values: Vec<Numeric> = bounds.iter().map(|f| facet_bound(f)).collect();
            let nudged: Vec<Numeric> = values.iter().flat_map(|n| nudge_candidates(*n)).collect();
            values.extend(nudged);
            for (i, a) in bounds.iter().enumerate() {
                for b in &bounds[i + 1..] {
                    if let Some(mid) = midpoint(facet_bound(a), facet_bound(b)) {
                        values.push(mid);
                    }
                }
            }
            let numeric_dts: Vec<&str> = if datatypes.is_empty() {
                vec![xsd::INTEGER, xsd::DECIMAL, xsd::DOUBLE]
            } else {
                datatypes
                    .iter()
                    .copied()
                    .filter(|dt| is_numeric_datatype(dt))
                    .collect()
            };
            for v in &values {
                for dt in &numeric_dts {
                    if let Some(t) = numeric_literal(*v, dt) {
                        out.push(t);
                    }
                }
            }
        }
        // Length-driven strings / IRIs / bnode labels.
        for c in &self.pos {
            if let NodeConstraint::Facet(Facet::Length(n) | Facet::MinLength(n)) = c {
                let n = (*n).min(4096); // don't allocate absurd witnesses
                let s: String = "a".repeat(n);
                out.push(Term::Literal(Literal::string(s.clone())));
                if n > 0 {
                    out.push(Term::iri(s.clone()));
                    out.push(Term::blank(s));
                }
            }
        }
        // Pattern-driven strings: a bounded BFS over the Brzozowski
        // derivative states of the pattern finds a member of its language.
        for c in &self.pos {
            if let NodeConstraint::Facet(Facet::Pattern(p)) = c {
                if let Ok(re) = Regex::new(p) {
                    if let Some(w) = pattern_witness(&re) {
                        out.push(Term::Literal(Literal::string(w.clone())));
                        if !w.is_empty() {
                            out.push(Term::iri(w));
                        }
                    }
                }
            }
        }
        // Generic fresh terms, one per kind plus common literal shapes.
        out.push(Term::iri("http://witness.example/w"));
        out.push(Term::blank("w0"));
        out.push(Term::Literal(Literal::string("a")));
        out.push(Term::Literal(Literal::string("")));
        out.push(Term::Literal(Literal::integer(0)));
        out.push(Term::Literal(Literal::decimal("0.5")));
        out.push(Term::Literal(Literal::double(0.5)));
        out.push(Term::Literal(Literal::lang_string("a", "en")));
        out.push(Term::Literal(Literal::boolean(true)));
        out.truncate(256);
        out
    }
}

/// Mirror of the validation-side kind semantics: two kind requirements are
/// jointly satisfiable only if equal or one is `NONLITERAL` paired with
/// `IRI`/`BNODE`.
fn kinds_contradict(a: NodeKind, b: NodeKind) -> bool {
    use NodeKind::*;
    !matches!(
        (a, b),
        (Iri, Iri)
            | (BNode, BNode)
            | (Literal, Literal)
            | (NonLiteral, NonLiteral)
            | (Iri, NonLiteral)
            | (NonLiteral, Iri)
            | (BNode, NonLiteral)
            | (NonLiteral, BNode)
    )
}

/// The within-comparable-domain complement of a numeric bound facet:
/// `¬(x ≥ b)` ⇔ `x < b` and so on. Only valid when something else forces
/// the term to be numerically comparable. Returns `None` for non-numeric
/// facets and for NaN bounds (`¬(x ≥ NaN)` holds for *every* comparable
/// term, so it contributes nothing to the interval).
fn flip_numeric_facet(f: &Facet) -> Option<Facet> {
    let flipped = match f {
        Facet::MinInclusive(b) => Facet::MaxExclusive(*b),
        Facet::MinExclusive(b) => Facet::MaxInclusive(*b),
        Facet::MaxInclusive(b) => Facet::MinExclusive(*b),
        Facet::MaxExclusive(b) => Facet::MinInclusive(*b),
        _ => return None,
    };
    let b = facet_bound(&flipped);
    // NaN bound: the flipped facet constrains nothing.
    b.compare(b)?;
    Some(flipped)
}

fn facet_bound(f: &Facet) -> Numeric {
    match f {
        Facet::MinInclusive(b)
        | Facet::MinExclusive(b)
        | Facet::MaxInclusive(b)
        | Facet::MaxExclusive(b) => *b,
        _ => unreachable!("numeric_bounds filters to numeric facets"),
    }
}

/// Is the conjunction of numeric bounds an empty interval? Exact: bound
/// comparison goes through [`Numeric::compare`] (256-bit exact for
/// decimal/double mixes; `None` only for NaN, which no literal satisfies).
fn numeric_interval_empty(bounds: &[&Facet]) -> bool {
    // A NaN bound satisfies no comparison at all — the facet alone is
    // unsatisfiable.
    for f in bounds {
        let b = facet_bound(f);
        if b.compare(b).is_none() {
            return true;
        }
    }
    let mut lo: Option<(Numeric, bool)> = None; // (bound, exclusive)
    let mut hi: Option<(Numeric, bool)> = None;
    for f in bounds {
        let b = facet_bound(f);
        match f {
            Facet::MinInclusive(_) | Facet::MinExclusive(_) => {
                let excl = matches!(f, Facet::MinExclusive(_));
                lo = Some(match lo {
                    None => (b, excl),
                    Some((cur, cur_excl)) => match b.compare(cur) {
                        Some(Ordering::Greater) => (b, excl),
                        Some(Ordering::Equal) => (cur, cur_excl || excl),
                        _ => (cur, cur_excl),
                    },
                });
            }
            Facet::MaxInclusive(_) | Facet::MaxExclusive(_) => {
                let excl = matches!(f, Facet::MaxExclusive(_));
                hi = Some(match hi {
                    None => (b, excl),
                    Some((cur, cur_excl)) => match b.compare(cur) {
                        Some(Ordering::Less) => (b, excl),
                        Some(Ordering::Equal) => (cur, cur_excl || excl),
                        _ => (cur, cur_excl),
                    },
                });
            }
            _ => {}
        }
    }
    if let (Some((lo, lo_excl)), Some((hi, hi_excl))) = (lo, hi) {
        match lo.compare(hi) {
            Some(Ordering::Greater) => true,
            Some(Ordering::Equal) => lo_excl || hi_excl,
            _ => false,
        }
    } else {
        false
    }
}

/// Candidate values adjacent to a bound, for open intervals: ±1 at the
/// bound's scale and ±0.1 one scale finer. All checked arithmetic — an
/// overflow just drops the candidate.
fn nudge_candidates(n: Numeric) -> Vec<Numeric> {
    match n {
        Numeric::Decimal { unscaled, scale } => {
            let mut out = Vec::new();
            for d in [1i128, -1] {
                if let Some(u) = unscaled.checked_add(d) {
                    out.push(Numeric::Decimal { unscaled: u, scale });
                }
            }
            if scale < 30 {
                if let Some(u10) = unscaled.checked_mul(10) {
                    for d in [1i128, -1] {
                        if let Some(u) = u10.checked_add(d) {
                            out.push(Numeric::Decimal {
                                unscaled: u,
                                scale: scale + 1,
                            });
                        }
                    }
                }
            }
            out
        }
        Numeric::Double(d) => vec![Numeric::Double(d + 1.0), Numeric::Double(d - 1.0)],
    }
}

/// Exact midpoint of two decimals (or a float midpoint for doubles) for
/// probing open intervals like `(5, 6)`.
fn midpoint(a: Numeric, b: Numeric) -> Option<Numeric> {
    match (a, b) {
        (
            Numeric::Decimal {
                unscaled: ua,
                scale: sa,
            },
            Numeric::Decimal {
                unscaled: ub,
                scale: sb,
            },
        ) => {
            let s = sa.max(sb) + 1;
            if s > 30 {
                return None;
            }
            let ua = ua.checked_mul(10i128.checked_pow(s - sa)?)?;
            let ub = ub.checked_mul(10i128.checked_pow(s - sb)?)?;
            // ua and ub both carry a factor of 10 beyond max(sa, sb), so
            // their sum is even whenever both inputs were exact halves —
            // integer division by 2 is exact here because 10·x + 10·y is
            // always even.
            Some(Numeric::Decimal {
                unscaled: ua.checked_add(ub)? / 2,
                scale: s,
            })
        }
        (Numeric::Double(x), Numeric::Double(y)) => Some(Numeric::Double((x + y) / 2.0)),
        (Numeric::Decimal { .. }, Numeric::Double(d))
        | (Numeric::Double(d), Numeric::Decimal { .. }) => Some(Numeric::Double(d)),
    }
}

/// Renders a numeric value as a literal of the requested datatype, when
/// the value is representable there. Unrepresentable combinations return
/// `None`; invalid-but-rendered ones simply fail `matches` later.
fn numeric_literal(n: Numeric, datatype: &str) -> Option<Term> {
    let lexical = match n {
        Numeric::Decimal { unscaled, scale } => decimal_lexical(unscaled, scale),
        Numeric::Double(d) => {
            if !d.is_finite() {
                return None;
            }
            format!("{d:?}")
        }
    };
    match (n, datatype) {
        (Numeric::Decimal { scale: 0, .. }, _) => {
            Some(Term::Literal(Literal::typed(lexical, datatype)))
        }
        // Fractional decimals only render under decimal/double/float.
        (Numeric::Decimal { .. }, xsd::DECIMAL | xsd::DOUBLE | xsd::FLOAT) => {
            Some(Term::Literal(Literal::typed(lexical, datatype)))
        }
        (Numeric::Decimal { .. }, _) => None,
        (Numeric::Double(_), xsd::DOUBLE | xsd::FLOAT) => {
            Some(Term::Literal(Literal::typed(lexical, datatype)))
        }
        (Numeric::Double(d), _) => {
            // Probe integral doubles through integer datatypes too.
            if d.fract() == 0.0 && d.abs() < 9e15 {
                Some(Term::Literal(Literal::typed(
                    format!("{}", d as i64),
                    datatype,
                )))
            } else {
                None
            }
        }
    }
}

/// `unscaled × 10⁻ˢᶜᵃˡᵉ` as a plain decimal lexical form.
fn decimal_lexical(unscaled: i128, scale: u32) -> String {
    if scale == 0 {
        return unscaled.to_string();
    }
    let negative = unscaled < 0;
    let digits = unscaled.unsigned_abs().to_string();
    let scale = scale as usize;
    let padded = if digits.len() <= scale {
        format!("{}{}", "0".repeat(scale + 1 - digits.len()), digits)
    } else {
        digits
    };
    let (int_part, frac_part) = padded.split_at(padded.len() - scale);
    format!("{}{int_part}.{frac_part}", if negative { "-" } else { "" })
}

/// One valid literal per well-known datatype; unknown datatypes get a
/// generic lexical form (which [`NodeConstraint::matches`] will accept or
/// reject as its validity rules dictate).
fn canonical_literals(datatype: &str) -> Vec<Term> {
    let mk = |lex: &str| Term::Literal(Literal::typed(lex, datatype));
    match datatype {
        rdf::LANG_STRING => vec![Term::Literal(Literal::lang_string("a", "en"))],
        xsd::STRING => vec![Term::Literal(Literal::string("a"))],
        xsd::BOOLEAN => vec![mk("true"), mk("false")],
        xsd::DATE => vec![mk("2000-01-01")],
        xsd::DATE_TIME => vec![mk("2000-01-01T00:00:00")],
        xsd::TIME => vec![mk("00:00:00")],
        xsd::G_YEAR => vec![mk("2000")],
        xsd::ANY_URI => vec![mk("http://witness.example/w")],
        xsd::DOUBLE | xsd::FLOAT => vec![mk("0.5"), mk("1")],
        xsd::DECIMAL => vec![mk("0.5"), mk("1")],
        dt if is_numeric_datatype(dt) => vec![mk("1"), mk("0"), mk("-1")],
        _ => vec![mk("a"), mk("1")],
    }
}

/// Breadth-first search over the pattern's Brzozowski derivative states
/// for a shortest-ish accepted string. Bounded (≤ 400 states, length
/// ≤ 64), so an empty or deviously-sparse language just returns `None`.
pub fn pattern_witness(re: &Regex) -> Option<String> {
    let alphabet = pattern_alphabet(re.ast());
    let mut seen: HashSet<Rc<Re>> = HashSet::new();
    let mut frontier: Vec<(Rc<Re>, String)> = vec![(re.ast().clone(), String::new())];
    seen.insert(re.ast().clone());
    for _ in 0..64 {
        let mut next = Vec::new();
        for (state, prefix) in &frontier {
            if state.nullable() {
                return Some(prefix.clone());
            }
            for &c in &alphabet {
                let d = state.derivative(c);
                if matches!(&*d, Re::Empty) || seen.contains(&d) {
                    continue;
                }
                if seen.len() >= 400 {
                    return None;
                }
                seen.insert(d.clone());
                let mut s = prefix.clone();
                s.push(c);
                next.push((d, s));
            }
        }
        if next.is_empty() {
            return frontier
                .iter()
                .find(|(s, _)| s.nullable())
                .map(|(_, p)| p.clone());
        }
        frontier = next;
    }
    None
}

/// A small probe alphabet for the pattern: one character per class range
/// plus fallbacks that negated classes usually admit.
fn pattern_alphabet(re: &Rc<Re>) -> Vec<char> {
    fn walk(re: &Re, out: &mut Vec<char>) {
        match re {
            Re::Empty | Re::Epsilon => {}
            Re::Class(c) => {
                for probe in class_probes(c) {
                    out.push(probe);
                }
            }
            Re::Concat(a, b) | Re::Alt(a, b) => {
                walk(a, out);
                walk(b, out);
            }
            Re::Star(a) => walk(a, out),
        }
    }
    let mut out = Vec::new();
    walk(re, &mut out);
    for fallback in ['a', '0', 'A', ' ', '.', '~'] {
        out.push(fallback);
    }
    out.sort_unstable();
    out.dedup();
    out.truncate(16);
    out
}

fn class_probes(c: &CharClass) -> Vec<char> {
    let mut out = Vec::new();
    for probe in ['a', '0', 'A', 'z', '9', '-', '.', ' ', '~', 'é'] {
        if c.contains(probe) {
            out.push(probe);
            if out.len() >= 2 {
                break;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i64) -> Numeric {
        Numeric::integer(v as i128)
    }

    #[test]
    fn trivial_constraints_are_sat() {
        assert_eq!(constraint_sat(&NodeConstraint::Any), Sat3::Sat);
        for k in [
            NodeKind::Iri,
            NodeKind::BNode,
            NodeKind::Literal,
            NodeKind::NonLiteral,
        ] {
            assert_eq!(constraint_sat(&NodeConstraint::Kind(k)), Sat3::Sat);
        }
        assert_eq!(
            constraint_sat(&NodeConstraint::Datatype(xsd::INTEGER.into())),
            Sat3::Sat
        );
        assert_eq!(
            constraint_sat(&NodeConstraint::Datatype(xsd::DATE.into())),
            Sat3::Sat
        );
    }

    #[test]
    fn empty_value_set_is_unsat() {
        assert_eq!(
            constraint_sat(&NodeConstraint::ValueSet(vec![])),
            Sat3::Unsat
        );
    }

    #[test]
    fn contradictory_numeric_facets_are_unsat() {
        // The ISSUE's documented false negative: MININCLUSIVE 5 MAXINCLUSIVE 3.
        let c = NodeConstraint::datatype_with(
            xsd::INTEGER,
            vec![Facet::MinInclusive(int(5)), Facet::MaxInclusive(int(3))],
        );
        assert_eq!(constraint_sat(&c), Sat3::Unsat);
        // Exclusive bounds meeting at a point are empty too.
        let c = NodeConstraint::AllOf(vec![
            NodeConstraint::Facet(Facet::MinExclusive(int(5))),
            NodeConstraint::Facet(Facet::MaxInclusive(int(5))),
        ]);
        assert_eq!(constraint_sat(&c), Sat3::Unsat);
    }

    #[test]
    fn open_interval_with_room_is_sat() {
        // (5, 6) has 5.5 — needs a fractional witness.
        let c = NodeConstraint::AllOf(vec![
            NodeConstraint::Facet(Facet::MinExclusive(int(5))),
            NodeConstraint::Facet(Facet::MaxExclusive(int(6))),
        ]);
        assert_eq!(constraint_sat(&c), Sat3::Sat);
        // [5, 5] is exactly {5}.
        let c = NodeConstraint::AllOf(vec![
            NodeConstraint::Facet(Facet::MinInclusive(int(5))),
            NodeConstraint::Facet(Facet::MaxInclusive(int(5))),
        ]);
        assert_eq!(constraint_sat(&c), Sat3::Sat);
    }

    #[test]
    fn integer_datatype_pins_open_unit_interval_unknown_at_worst() {
        // xsd:integer ∧ (5, 6): genuinely empty, but proving it needs
        // density reasoning the checker doesn't do — must NOT be Sat.
        let c = NodeConstraint::datatype_with(
            xsd::INTEGER,
            vec![Facet::MinExclusive(int(5)), Facet::MaxExclusive(int(6))],
        );
        assert_ne!(constraint_sat(&c), Sat3::Sat);
    }

    #[test]
    fn not_x_conjoined_with_x_is_unsat() {
        // The ISSUE's second documented false negative.
        let x = NodeConstraint::Datatype(xsd::STRING.into());
        let c = NodeConstraint::AllOf(vec![x.clone(), NodeConstraint::Not(Box::new(x))]);
        assert_eq!(constraint_sat(&c), Sat3::Unsat);
    }

    #[test]
    fn double_negation_cancels() {
        let x = NodeConstraint::Kind(NodeKind::Iri);
        let c = NodeConstraint::Not(Box::new(NodeConstraint::Not(Box::new(x))));
        assert_eq!(constraint_sat(&c), Sat3::Sat);
    }

    #[test]
    fn kind_contradictions() {
        let c = NodeConstraint::AllOf(vec![
            NodeConstraint::Kind(NodeKind::Iri),
            NodeConstraint::Kind(NodeKind::BNode),
        ]);
        assert_eq!(constraint_sat(&c), Sat3::Unsat);
        let c = NodeConstraint::AllOf(vec![
            NodeConstraint::Kind(NodeKind::Literal),
            NodeConstraint::Kind(NodeKind::NonLiteral),
        ]);
        assert_eq!(constraint_sat(&c), Sat3::Unsat);
        // Compatible pair.
        let c = NodeConstraint::AllOf(vec![
            NodeConstraint::Kind(NodeKind::Iri),
            NodeConstraint::Kind(NodeKind::NonLiteral),
        ]);
        assert_eq!(constraint_sat(&c), Sat3::Sat);
    }

    #[test]
    fn datatype_vs_kind() {
        let c = NodeConstraint::AllOf(vec![
            NodeConstraint::Datatype(xsd::INTEGER.into()),
            NodeConstraint::Kind(NodeKind::NonLiteral),
        ]);
        assert_eq!(constraint_sat(&c), Sat3::Unsat);
        let c = NodeConstraint::AllOf(vec![
            NodeConstraint::Datatype(xsd::INTEGER.into()),
            NodeConstraint::Kind(NodeKind::Literal),
        ]);
        assert_eq!(constraint_sat(&c), Sat3::Sat);
    }

    #[test]
    fn distinct_datatypes_are_unsat() {
        let c = NodeConstraint::AllOf(vec![
            NodeConstraint::Datatype(xsd::INTEGER.into()),
            NodeConstraint::Datatype(xsd::STRING.into()),
        ]);
        assert_eq!(constraint_sat(&c), Sat3::Unsat);
    }

    #[test]
    fn value_set_filtered_by_facets() {
        use shapex_rdf::term::Term;
        // [1 2] ∧ MININCLUSIVE 10: both members refuted concretely.
        let c = NodeConstraint::AllOf(vec![
            NodeConstraint::ValueSet(vec![
                ValueSetValue::Term(Term::Literal(Literal::integer(1))),
                ValueSetValue::Term(Term::Literal(Literal::integer(2))),
            ]),
            NodeConstraint::Facet(Facet::MinInclusive(int(10))),
        ]);
        assert_eq!(constraint_sat(&c), Sat3::Unsat);
        // [1 20]: 20 survives.
        let c = NodeConstraint::AllOf(vec![
            NodeConstraint::ValueSet(vec![
                ValueSetValue::Term(Term::Literal(Literal::integer(1))),
                ValueSetValue::Term(Term::Literal(Literal::integer(20))),
            ]),
            NodeConstraint::Facet(Facet::MinInclusive(int(10))),
        ]);
        assert_eq!(constraint_sat(&c), Sat3::Sat);
    }

    #[test]
    fn iri_stem_vs_literal_kind() {
        let c = NodeConstraint::AllOf(vec![
            NodeConstraint::ValueSet(vec![ValueSetValue::IriStem("http://e/".into())]),
            NodeConstraint::Kind(NodeKind::Literal),
        ]);
        assert_eq!(constraint_sat(&c), Sat3::Unsat);
        let c = NodeConstraint::ValueSet(vec![ValueSetValue::IriStem("http://e/".into())]);
        assert_eq!(constraint_sat(&c), Sat3::Sat);
    }

    #[test]
    fn language_members() {
        let c = NodeConstraint::ValueSet(vec![ValueSetValue::Language("en".into())]);
        assert_eq!(constraint_sat(&c), Sat3::Sat);
        let c = NodeConstraint::AllOf(vec![
            NodeConstraint::ValueSet(vec![ValueSetValue::LanguageStem("en".into())]),
            NodeConstraint::Kind(NodeKind::Iri),
        ]);
        assert_eq!(constraint_sat(&c), Sat3::Unsat);
    }

    #[test]
    fn length_conflicts() {
        let c = NodeConstraint::AllOf(vec![
            NodeConstraint::Facet(Facet::MinLength(5)),
            NodeConstraint::Facet(Facet::MaxLength(3)),
        ]);
        assert_eq!(constraint_sat(&c), Sat3::Unsat);
        let c = NodeConstraint::AllOf(vec![
            NodeConstraint::Facet(Facet::Length(2)),
            NodeConstraint::Facet(Facet::Length(3)),
        ]);
        assert_eq!(constraint_sat(&c), Sat3::Unsat);
        let c = NodeConstraint::AllOf(vec![
            NodeConstraint::Facet(Facet::Length(3)),
            NodeConstraint::Facet(Facet::MinLength(2)),
        ]);
        assert_eq!(constraint_sat(&c), Sat3::Sat);
    }

    #[test]
    fn invalid_pattern_is_unsat() {
        let c = NodeConstraint::Facet(Facet::Pattern("(".into()));
        assert_eq!(constraint_sat(&c), Sat3::Unsat);
    }

    #[test]
    fn pattern_witness_search_proves_sat() {
        let c = NodeConstraint::Facet(Facet::Pattern(r"\d{4}-\d{2}".into()));
        assert_eq!(constraint_sat(&c), Sat3::Sat);
        let c = NodeConstraint::AllOf(vec![
            NodeConstraint::Kind(NodeKind::Literal),
            NodeConstraint::Facet(Facet::Pattern("[A-Z][a-z]+".into())),
        ]);
        assert_eq!(constraint_sat(&c), Sat3::Sat);
    }

    #[test]
    fn negated_kind_conjunction() {
        // LITERAL ∧ ¬IRI: any literal works.
        let c = NodeConstraint::AllOf(vec![
            NodeConstraint::Kind(NodeKind::Literal),
            NodeConstraint::Not(Box::new(NodeConstraint::Kind(NodeKind::Iri))),
        ]);
        assert_eq!(constraint_sat(&c), Sat3::Sat);
        // ¬(.) is unsatisfiable.
        let c = NodeConstraint::Not(Box::new(NodeConstraint::Any));
        assert_eq!(constraint_sat(&c), Sat3::Unsat);
    }

    #[test]
    fn any_of_splits_exactly() {
        // Empty disjunction is false.
        assert_eq!(constraint_sat(&NodeConstraint::AnyOf(vec![])), Sat3::Unsat);
        // Every branch contradictory ⇒ Unsat.
        let c = NodeConstraint::AllOf(vec![
            NodeConstraint::Kind(NodeKind::Iri),
            NodeConstraint::AnyOf(vec![
                NodeConstraint::Kind(NodeKind::Literal),
                NodeConstraint::Kind(NodeKind::BNode),
            ]),
        ]);
        assert_eq!(constraint_sat(&c), Sat3::Unsat);
        // One live branch ⇒ Sat.
        let c = NodeConstraint::AnyOf(vec![
            NodeConstraint::ValueSet(vec![]),
            NodeConstraint::Datatype(xsd::STRING.into()),
        ]);
        assert_eq!(constraint_sat(&c), Sat3::Sat);
        // ¬(X ∨ Y) flattens: ¬IRI ∧ ¬BNODE is satisfied by any literal.
        let c = NodeConstraint::Not(Box::new(NodeConstraint::AnyOf(vec![
            NodeConstraint::Kind(NodeKind::Iri),
            NodeConstraint::Kind(NodeKind::BNode),
        ])));
        assert_eq!(constraint_sat(&c), Sat3::Sat);
    }

    #[test]
    fn conj_api_over_separate_constraints() {
        let a = NodeConstraint::Kind(NodeKind::Literal);
        let b = NodeConstraint::Kind(NodeKind::NonLiteral);
        assert_eq!(conj_sat(&[&a, &b]), Sat3::Unsat);
        let c = NodeConstraint::Datatype(xsd::INTEGER.into());
        assert_eq!(conj_sat(&[&a, &c]), Sat3::Sat);
    }

    #[test]
    fn decimal_lexical_rendering() {
        assert_eq!(decimal_lexical(55, 1), "5.5");
        assert_eq!(decimal_lexical(-55, 1), "-5.5");
        assert_eq!(decimal_lexical(5, 0), "5");
        assert_eq!(decimal_lexical(5, 3), "0.005");
        assert_eq!(decimal_lexical(-5, 3), "-0.005");
    }

    #[test]
    fn lattice_order() {
        assert!(Sat3::Unsat < Sat3::Unknown && Sat3::Unknown < Sat3::Sat);
        assert_eq!(Sat3::Sat.min(Sat3::Unsat), Sat3::Unsat);
        assert_eq!(Sat3::Unknown.max(Sat3::Sat), Sat3::Sat);
    }
}
